//! Smoke test: every runnable example must complete successfully.
//!
//! Each example is executed as a subprocess via the same `cargo` binary that
//! is running this test. Release mode keeps the whole sweep to a few seconds
//! — the examples build real UV-indexes, which takes 5–55 s each without
//! optimisation. Note `cargo build --release` does NOT compile examples, so
//! on a cold target dir the first example run below pays a one-off release
//! build of the examples (their dependency tree is already built by the
//! tier-1 pipeline's release build).

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "quickstart",
    "fleet_tracking",
    "privacy_cloaking",
    "satellite_tracking",
    "sharded_serving",
    "virus_pattern_analysis",
];

#[test]
fn all_examples_run_to_completion() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    for example in EXAMPLES {
        let output = Command::new(&cargo)
            .current_dir(manifest_dir)
            .args(["run", "--quiet", "--release", "--example", example])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{example}`: {e}"));
        assert!(
            output.status.success(),
            "example `{example}` failed with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
        assert!(
            !output.stdout.is_empty(),
            "example `{example}` produced no output"
        );
    }
}
