//! Cross-crate property-based tests: for arbitrary small uncertain datasets
//! and query points, the UV-index answers must match the definition-level
//! ground truth, and the core invariants of the paper's constructions must
//! hold.

use proptest::prelude::*;
use uv_diagram::prelude::*;

/// Strategy: a small set of uncertain objects inside a 1,000 x 1,000 domain.
fn objects_strategy(max_objects: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec(
        (30.0..970.0f64, 30.0..970.0f64, 0.0..25.0f64),
        2..max_objects,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, r))| UncertainObject::with_uniform(i as u32, Point::new(x, y), r))
            .collect()
    })
}

fn brute_force_answer(objects: &[UncertainObject], q: Point) -> Vec<ObjectId> {
    let dminmax = objects
        .iter()
        .map(|o| o.dist_max(q))
        .fold(f64::INFINITY, f64::min);
    let mut ids: Vec<ObjectId> = objects
        .iter()
        .filter(|o| o.dist_min(q) <= dminmax + 1e-9)
        .map(|o| o.id)
        .collect();
    ids.sort_unstable();
    ids
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    /// The UV-index never invents an answer object and never misses one with
    /// non-negligible probability, for arbitrary object layouts and query
    /// points (including overlapping regions and zero radii).
    #[test]
    fn uv_index_matches_ground_truth(
        objects in objects_strategy(18),
        qx in 0.0..1000.0f64,
        qy in 0.0..1000.0f64,
    ) {
        let domain = Rect::square(1_000.0);
        let config = UvConfig { parallel: false, ..UvConfig::default() };
        let system = UvSystem::build(objects.clone(), domain, Method::IC, config).unwrap();
        let q = Point::new(qx, qy);
        let answer = system.pnn(q);
        let expected = brute_force_answer(&objects, q);

        for id in answer.answer_ids() {
            prop_assert!(expected.contains(&id), "spurious answer {id}");
        }
        let refs: Vec<&UncertainObject> =
            expected.iter().map(|id| &objects[*id as usize]).collect();
        for (id, p) in uv_diagram::data::qualification_probabilities(q, &refs, 60) {
            if p > 5e-3 {
                prop_assert!(
                    answer.answer_ids().contains(&id),
                    "missing answer {id} with probability {p}"
                );
            }
        }
    }

    /// Probabilities returned by a PNN query form a sub-distribution that is
    /// close to 1 and each lies in [0, 1].
    #[test]
    fn pnn_probabilities_are_a_distribution(
        objects in objects_strategy(12),
        qx in 0.0..1000.0f64,
        qy in 0.0..1000.0f64,
    ) {
        let domain = Rect::square(1_000.0);
        let config = UvConfig { parallel: false, ..UvConfig::default() };
        let system = UvSystem::build(objects, domain, Method::IC, config).unwrap();
        let answer = system.pnn(Point::new(qx, qy));
        prop_assert!(!answer.probabilities.is_empty());
        let mut total = 0.0;
        for (_, p) in &answer.probabilities {
            prop_assert!(*p >= 0.0 && *p <= 1.0 + 1e-9, "probability {p} out of range");
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 0.08, "probabilities sum to {total}");
    }

    /// Every object is associated with at least one leaf of the UV-index (its
    /// UV-cell is never empty), and every leaf region stays within the domain.
    #[test]
    fn every_object_has_a_nonempty_cell(objects in objects_strategy(15)) {
        let domain = Rect::square(1_000.0);
        let config = UvConfig { parallel: false, ..UvConfig::default() };
        let n = objects.len();
        let system = UvSystem::build(objects, domain, Method::IC, config).unwrap();
        for id in 0..n as u32 {
            prop_assert!(system.cell_area(id) > 0.0, "object {id} has an empty cell");
        }
        for (region, ids) in system.index().leaves() {
            prop_assert!(domain.contains_rect(region));
            prop_assert!(ids.len() <= n);
        }
    }

    /// The R-tree baseline and the UV-index agree on arbitrary inputs.
    #[test]
    fn baseline_and_uv_index_agree(
        objects in objects_strategy(15),
        qx in 0.0..1000.0f64,
        qy in 0.0..1000.0f64,
    ) {
        let domain = Rect::square(1_000.0);
        let config = UvConfig { parallel: false, ..UvConfig::default() };
        let system = UvSystem::build(objects, domain, Method::IC, config).unwrap();
        let q = Point::new(qx, qy);
        prop_assert_eq!(system.pnn(q).answer_ids(), system.pnn_rtree(q).answer_ids());
    }
}
