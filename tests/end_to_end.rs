//! End-to-end integration tests spanning every crate: dataset generation →
//! object store → R-tree → UV-index → queries, checked against brute-force
//! ground truth computed straight from the definitions in the paper.

use uv_diagram::prelude::*;

/// Brute-force PNN candidate set: every object whose minimum distance does
/// not exceed the smallest maximum distance (the definition the verification
/// step of [14] implements).
fn brute_force_answer(objects: &[UncertainObject], q: Point) -> Vec<ObjectId> {
    let dminmax = objects
        .iter()
        .map(|o| o.dist_max(q))
        .fold(f64::INFINITY, f64::min);
    let mut ids: Vec<ObjectId> = objects
        .iter()
        .filter(|o| o.dist_min(q) <= dminmax + 1e-9)
        .map(|o| o.id)
        .collect();
    ids.sort_unstable();
    ids
}

fn probabilities_of(objects: &[UncertainObject], q: Point, ids: &[ObjectId]) -> Vec<(u32, f64)> {
    let refs: Vec<&UncertainObject> = ids.iter().map(|id| &objects[*id as usize]).collect();
    uv_diagram::data::qualification_probabilities(q, &refs, 80)
}

#[test]
fn uv_index_pnn_equals_ground_truth_on_uniform_data() {
    let dataset = Dataset::generate(GeneratorConfig::paper_uniform(600));
    let system = UvSystem::with_defaults(dataset.objects.clone(), dataset.domain);
    for q in dataset.query_points(40, 2024) {
        let answer = system.pnn(q);
        let expected = brute_force_answer(&dataset.objects, q);
        for id in answer.answer_ids() {
            assert!(expected.contains(&id), "spurious answer {id} at {q:?}");
        }
        // Objects with non-negligible ground-truth probability must be found.
        for (id, p) in probabilities_of(&dataset.objects, q, &expected) {
            if p > 1e-3 {
                assert!(
                    answer.answer_ids().contains(&id),
                    "missed answer {id} (p = {p}) at {q:?}"
                );
            }
        }
        // Probabilities are a distribution.
        let total: f64 = answer.probabilities.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 0.05, "sum {total} at {q:?}");
    }
}

#[test]
fn uv_index_and_rtree_baseline_return_identical_answers() {
    for kind in [
        DatasetKind::Uniform,
        DatasetKind::GaussianSkew { sigma: 1200.0 },
        DatasetKind::Utility,
    ] {
        let dataset = Dataset::generate(GeneratorConfig {
            n: 400,
            kind,
            ..GeneratorConfig::paper_uniform(400)
        });
        let system = UvSystem::with_defaults(dataset.objects.clone(), dataset.domain);
        for q in dataset.query_points(15, 5) {
            let uv = system.pnn(q);
            let rt = system.pnn_rtree(q);
            assert_eq!(
                uv.answer_ids(),
                rt.answer_ids(),
                "{kind:?} differs at {q:?}"
            );
        }
    }
}

#[test]
fn all_construction_methods_agree() {
    let dataset = Dataset::generate(GeneratorConfig::paper_uniform(150));
    let config = UvConfig {
        parallel: false,
        ..UvConfig::default()
    };
    let systems: Vec<UvSystem> = [Method::Basic, Method::ICR, Method::IC]
        .into_iter()
        .map(|m| UvSystem::build(dataset.objects.clone(), dataset.domain, m, config).unwrap())
        .collect();
    for q in dataset.query_points(10, 9) {
        let answers: Vec<Vec<ObjectId>> = systems.iter().map(|s| s.pnn(q).answer_ids()).collect();
        assert_eq!(answers[0], answers[1], "Basic vs ICR at {q:?}");
        assert_eq!(answers[1], answers[2], "ICR vs IC at {q:?}");
    }
}

#[test]
fn query_points_on_cell_boundaries_and_domain_corners_are_answered() {
    let dataset = Dataset::generate(GeneratorConfig::paper_uniform(200));
    let system = UvSystem::with_defaults(dataset.objects.clone(), dataset.domain);
    // Domain corners and object centres are adversarial query locations.
    let mut queries = vec![
        Point::new(0.0, 0.0),
        Point::new(10_000.0, 0.0),
        Point::new(0.0, 10_000.0),
        Point::new(10_000.0, 10_000.0),
        Point::new(5_000.0, 0.0),
    ];
    queries.extend(dataset.objects.iter().take(20).map(|o| o.center()));
    for q in queries {
        let answer = system.pnn(q);
        let expected = brute_force_answer(&dataset.objects, q);
        assert!(!answer.probabilities.is_empty(), "no answer at {q:?}");
        for id in answer.answer_ids() {
            assert!(expected.contains(&id));
        }
    }
}

#[test]
fn pattern_queries_are_consistent_with_pnn_results() {
    let dataset = Dataset::generate(GeneratorConfig::paper_uniform(300));
    let system = UvSystem::with_defaults(dataset.objects.clone(), dataset.domain);

    // The UV-cell leaf regions of an answer object must cover the query point.
    for q in dataset.query_points(10, 3) {
        for (id, _) in system.pnn(q).probabilities {
            let covered = system
                .index()
                .cell_leaf_regions(id)
                .iter()
                .any(|r| r.contains(q));
            assert!(
                covered,
                "object {id} answers {q:?} but its cell regions miss it"
            );
        }
    }

    // Partition query densities: summing count*area over all leaves touching
    // the whole domain reproduces the total number of (object, leaf)
    // associations.
    let partitions = system.partition_query(&dataset.domain);
    let total_assoc: usize = partitions.iter().map(|p| p.object_count()).sum();
    let leaf_assoc: usize = system.index().leaves().map(|(_, ids)| ids.len()).sum();
    assert_eq!(total_assoc, leaf_assoc);
}

#[test]
fn io_accounting_shows_uv_index_advantage_at_scale() {
    let dataset = Dataset::generate(GeneratorConfig::paper_uniform(2_000));
    let system = UvSystem::with_defaults(dataset.objects.clone(), dataset.domain);
    let queries = dataset.query_points(25, 123);
    let mut uv_io = 0u64;
    let mut rt_io = 0u64;
    for q in &queries {
        uv_io += system.pnn(*q).breakdown.index_io;
        rt_io += system.pnn_rtree(*q).breakdown.index_io;
    }
    assert!(uv_io > 0);
    assert!(
        rt_io > uv_io,
        "R-tree should need more leaf I/O than the UV-index ({rt_io} vs {uv_io})"
    );
}

#[test]
fn non_circular_regions_are_supported_via_minimal_bounding_circles() {
    // Build objects from polygonal uncertainty regions (Section III-C) and
    // verify the whole pipeline still answers queries.
    let mut objects = Vec::new();
    for i in 0..100u32 {
        let cx = 100.0 + (i % 10) as f64 * 1_000.0;
        let cy = 100.0 + (i / 10) as f64 * 1_000.0;
        let vertices = vec![
            Point::new(cx - 30.0, cy - 10.0),
            Point::new(cx + 40.0, cy - 20.0),
            Point::new(cx + 10.0, cy + 35.0),
        ];
        objects.push(
            UncertainObject::from_polygon(i, &vertices, Pdf::Uniform).expect("valid polygon"),
        );
    }
    let domain = Rect::square(10_000.0);
    let system = UvSystem::with_defaults(objects.clone(), domain);
    let q = Point::new(4_500.0, 4_500.0);
    let answer = system.pnn(q);
    let expected = brute_force_answer(&objects, q);
    for id in answer.answer_ids() {
        assert!(expected.contains(&id));
    }
    assert!(!answer.probabilities.is_empty());
}

#[test]
fn snapshot_roundtrip_through_the_umbrella_crate() {
    // The full pipeline survives persistence: build → save → load → query,
    // with answers and structure bit-identical and updates still exact.
    let dataset = Dataset::generate(GeneratorConfig::paper_uniform(120));
    let mut system = UvSystem::with_defaults(dataset.objects.clone(), dataset.domain);

    let mut bytes = Vec::new();
    let written = system.save_snapshot(&mut bytes).expect("save succeeds");
    assert_eq!(written, bytes.len() as u64);
    let mut loaded = UvSystem::load_snapshot(&mut bytes.as_slice()).expect("load succeeds");

    for q in dataset.query_points(12, 7) {
        let a = system.pnn(q);
        let b = loaded.pnn(q);
        assert_eq!(a.probabilities, b.probabilities);
        assert_eq!(a.candidates_examined, b.candidates_examined);
    }

    // The same update applied to both replicas keeps them identical.
    for sys in [&mut system, &mut loaded] {
        sys.updater()
            .insert(UncertainObject::with_gaussian(
                5_000,
                Point::new(3_000.0, 6_000.0),
                20.0,
            ))
            .delete(5)
            .commit()
            .expect("batch applies");
    }
    assert_eq!(system.epoch(), loaded.epoch());
    for q in dataset.query_points(12, 8) {
        assert_eq!(system.pnn(q).probabilities, loaded.pnn(q).probabilities);
    }

    // Corruption surfaces as a typed error, never a panic.
    bytes[40] ^= 0x5A;
    assert!(matches!(
        UvSystem::load_snapshot(&mut bytes.as_slice()),
        Err(UvError::SnapshotCorrupt(_) | UvError::ConfigMismatch)
    ));
}

#[test]
fn sharded_serving_through_the_umbrella_crate() {
    // The prelude exposes the domain-sharded layer, and the whole pipeline
    // holds through it: build → route → update → snapshot, with every
    // routed answer bit-identical to the unsharded system.
    let dataset = Dataset::generate(GeneratorConfig::paper_uniform(150));
    let config = UvConfig::default()
        .with_seed_knn(24)
        .with_leaf_split_capacity(16)
        .with_num_shards(2);
    let mut sharded =
        ShardedUvSystem::build(dataset.objects.clone(), dataset.domain, Method::IC, config)
            .expect("valid configuration");
    let mut unsharded =
        UvSystem::build(dataset.objects.clone(), dataset.domain, Method::IC, config)
            .expect("valid configuration");
    assert_eq!(sharded.shard_count(), 4);
    assert!(sharded.replication_factor() >= 1.0);

    let queries = dataset.query_points(20, 31);
    for (q, routed) in queries.iter().zip(sharded.pnn_batch(&queries)) {
        let expected = unsharded.pnn(*q);
        assert_eq!(routed.probabilities, expected.probabilities);
        assert_eq!(routed.candidates_examined, expected.candidates_examined);
    }

    let batch = UpdateBatch::new()
        .insert(UncertainObject::with_gaussian(
            7_000,
            Point::new(2_000.0, 8_000.0),
            20.0,
        ))
        .move_to(3, Point::new(5_010.0, 4_990.0))
        .delete(9);
    let stats: ShardedUpdateStats = sharded.apply(batch.clone()).expect("sharded batch applies");
    unsharded.apply(batch).expect("unsharded batch applies");
    assert!(stats.shards_touched >= 1);
    for q in &queries {
        assert_eq!(
            sharded.pnn(*q).probabilities,
            unsharded.pnn(*q).probabilities
        );
    }

    let mut bytes = Vec::new();
    sharded.save_snapshot(&mut bytes).expect("save succeeds");
    let restored = ShardedUvSystem::load_snapshot(&mut bytes.as_slice()).expect("load succeeds");
    for q in &queries {
        assert_eq!(
            restored.pnn(*q).probabilities,
            sharded.pnn(*q).probabilities
        );
    }
}
