//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this shim provides exactly the API surface the workspace uses: the
//! [`Serialize`] / [`Deserialize`] marker traits and their derive macros.
//! The derives register a type as serialisable; no wire format is
//! implemented yet. When the real `serde` becomes available, deleting the
//! `shims/serde*` entries from the workspace `[workspace.dependencies]`
//! table and pointing them at crates.io is the only change required —
//! call sites already use the canonical import paths.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// Derived via `#[derive(Serialize)]`; carries no methods in this offline
/// stub.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
///
/// Derived via `#[derive(Deserialize)]`; carries no methods in this offline
/// stub.
pub trait Deserialize<'de>: Sized {}
