//! Derive macros for the offline `serde` stub.
//!
//! These parse just enough of the item to recover the type name (no `syn`
//! available offline) and emit empty marker-trait impls.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the name of the `struct`/`enum`/`union` a derive is attached to.
///
/// Panics (with a compile error) on generic types: nothing in this workspace
/// derives serde traits on generics, and supporting them without `syn` is
/// not worth the complexity until a call site needs it.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Skip the attribute group that follows `#`.
                tokens.next();
            }
            TokenTree::Ident(id) => {
                let word = id.to_string();
                if word == "struct" || word == "enum" || word == "union" {
                    if let Some(TokenTree::Ident(name)) = tokens.next() {
                        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<')
                        {
                            panic!(
                                "serde stub derive does not support generic type `{name}`; \
                                 extend shims/serde_derive if this is needed"
                            );
                        }
                        return name.to_string();
                    }
                    panic!("serde stub derive: expected a type name after `{word}`");
                }
                // `pub`, `pub(crate)`, etc. — keep scanning.
            }
            _ => {}
        }
    }
    panic!("serde stub derive: no struct/enum/union found in input");
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .expect("generated impl must parse")
}
