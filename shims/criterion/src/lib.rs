//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim provides the
//! criterion API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros — backed by plain
//! `std::time::Instant` wall-clock timing and a text report on stdout.
//!
//! Compared to the real criterion there is no statistical analysis, no
//! warm-up calibration and no HTML report: each benchmark runs a small
//! fixed number of samples (bounded by [`Criterion::sample_size`]) and
//! reports the fastest observed time, which is stable enough to compare
//! orders of magnitude between PRs until the real harness can be restored.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Samples actually executed per benchmark: enough for a stable minimum,
/// small enough that `cargo bench` stays fast without calibration.
const MAX_SAMPLES: usize = 5;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    best: Option<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording the fastest execution.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed call to warm caches and lazy statics.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            let elapsed = start.elapsed();
            if self.best.is_none_or(|b| elapsed < b) {
                self.best = Some(elapsed);
            }
        }
    }
}

fn run_benchmark(full_id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: samples.min(MAX_SAMPLES),
        best: None,
    };
    f(&mut bencher);
    match bencher.best {
        Some(best) => println!(
            "{full_id:<60} fastest of {} samples: {best:?}",
            bencher.samples
        ),
        None => println!("{full_id:<60} (no measurement — iter was never called)"),
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the target sample count (the shim caps execution at a small
    /// constant; the value is kept for API compatibility).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op in the shim; mirrors criterion's API).
    pub fn finish(self) {}
}

/// Declares a benchmark group: either `criterion_group!(name, target, ..)`
/// or the long form with `name = ..; config = ..; targets = ..`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a `harness = false` bench target. Harness flags
/// passed by `cargo bench`/`cargo test` (`--bench`, `--test`, filters) are
/// accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warm-up + min(3, MAX_SAMPLES) timed runs.
        assert_eq!(runs, 4);
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 10), &10, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| ()));
        group.finish();
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
