//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this shim provides the
//! criterion API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`] / [`criterion_main!`] macros — backed by plain
//! `std::time::Instant` wall-clock timing and a text report on stdout.
//!
//! Compared to the real criterion there is no warm-up calibration and no
//! HTML report, but each benchmark runs a small bounded number of timed
//! samples (default [`DEFAULT_MAX_SAMPLES`], overridable with the
//! `UV_BENCH_SAMPLES` environment variable) and reports the **median**,
//! minimum and standard deviation across them — enough statistics to tell a
//! real regression from scheduler noise when diffing `BENCH_*.json`
//! trajectories between PRs, until the real harness can be restored.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default cap on timed samples per benchmark: enough for a stable median,
/// small enough that `cargo bench` stays fast without calibration. Raise it
/// per run with `UV_BENCH_SAMPLES=<n>` for tighter statistics.
pub const DEFAULT_MAX_SAMPLES: usize = 5;

/// Timed samples actually executed per benchmark: `UV_BENCH_SAMPLES` when
/// set to a positive integer, [`DEFAULT_MAX_SAMPLES`] otherwise.
fn max_samples() -> usize {
    std::env::var("UV_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|n| *n > 0)
        .unwrap_or(DEFAULT_MAX_SAMPLES)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/param`.
    pub fn new(name: impl fmt::Display, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording every timed execution.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One untimed call to warm caches and lazy statics.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.timings.push(start.elapsed());
        }
    }
}

/// Median / minimum / standard deviation over one benchmark's samples.
struct SampleStats {
    median: Duration,
    min: Duration,
    stddev: Duration,
}

fn summarize(timings: &[Duration]) -> SampleStats {
    let mut sorted = timings.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let median = if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2
    };
    let mean = sorted.iter().sum::<Duration>().as_secs_f64() / n as f64;
    let variance = sorted
        .iter()
        .map(|d| {
            let diff = d.as_secs_f64() - mean;
            diff * diff
        })
        .sum::<f64>()
        / n as f64;
    SampleStats {
        median,
        min: sorted[0],
        stddev: Duration::from_secs_f64(variance.sqrt()),
    }
}

fn run_benchmark(full_id: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: samples.min(max_samples()),
        timings: Vec::new(),
    };
    f(&mut bencher);
    if bencher.timings.is_empty() {
        println!("{full_id:<60} (no measurement — iter was never called)");
    } else {
        let stats = summarize(&bencher.timings);
        println!(
            "{full_id:<60} median {:?} (min {:?}, stddev {:?}, {} samples)",
            stats.median,
            stats.min,
            stats.stddev,
            bencher.timings.len()
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the target sample count (the shim caps execution at
    /// `UV_BENCH_SAMPLES` / [`DEFAULT_MAX_SAMPLES`]; the value is kept for
    /// API compatibility).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (a no-op in the shim; mirrors criterion's API).
    pub fn finish(self) {}
}

/// Declares a benchmark group: either `criterion_group!(name, target, ..)`
/// or the long form with `name = ..; config = ..; targets = ..`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a `harness = false` bench target. Harness flags
/// passed by `cargo bench`/`cargo test` (`--bench`, `--test`, filters) are
/// accepted and ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warm-up + min(3, max samples) timed runs. The environment
        // override can only raise the cap, never shrink the requested 3.
        assert_eq!(runs, 1 + 3.min(max_samples()));
    }

    #[test]
    fn groups_and_ids() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("f", 10), &10, |b, n| {
            b.iter(|| black_box(*n * 2))
        });
        group.bench_function(BenchmarkId::from_parameter(7), |b| b.iter(|| ()));
        group.finish();
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn summary_statistics_are_order_insensitive() {
        let ms = Duration::from_millis;
        let stats = summarize(&[ms(9), ms(1), ms(5)]);
        assert_eq!(stats.median, ms(5));
        assert_eq!(stats.min, ms(1));
        assert!(stats.stddev > Duration::ZERO);
        // Even sample counts take the midpoint of the central pair.
        let stats = summarize(&[ms(4), ms(2)]);
        assert_eq!(stats.median, ms(3));
        assert_eq!(stats.min, ms(2));
    }
}
