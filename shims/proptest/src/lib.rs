//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this shim implements
//! the subset of proptest the workspace's property suites use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   attribute,
//! * [`strategy::Strategy`] with `prop_map`, implemented for primitive
//!   ranges, strategy tuples, [`collection::vec`] and [`bool::ANY`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`.
//!
//! Each test runs `ProptestConfig::cases` deterministic cases seeded from
//! the test's module path, so failures reproduce across runs. Like the real
//! proptest, the `PROPTEST_CASES` environment variable overrides the case
//! count globally — the CI PR gate keeps the configured (small) counts, a
//! scheduled deep run dials every suite up with one variable. Unlike the
//! real proptest there is **no shrinking**: a failing case reports the
//! panic message of the first failing input. The failing values can be
//! recovered by re-running the seed printed in the panic message.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Subset of proptest's run configuration honoured by this shim: only
    /// [`ProptestConfig::cases`] changes behaviour; the other fields exist so
    /// that struct-update syntax against `default()` keeps compiling.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; `prop_assume!` rejections are
        /// unbounded.
        pub max_global_rejects: u32,
        /// Accepted for compatibility; tests always run in-process.
        pub fork: bool,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 1024,
                max_global_rejects: 65_536,
                fork: false,
            }
        }
    }

    impl ProptestConfig {
        /// The number of cases a test actually runs: the `PROPTEST_CASES`
        /// environment variable (the real proptest's override convention)
        /// wins over the configured count; unset or unparsable falls back
        /// to [`ProptestConfig::cases`]. The `proptest!` macro calls this,
        /// so every suite in the workspace honours the variable without
        /// reading the environment itself.
        pub fn resolved_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    /// Stable FNV-1a hash of the test path, used as the per-test base seed.
    pub fn seed_for(test_path: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Generator for one test case: the base seed mixed with the case index.
    pub fn case_rng(seed: u64, case: u32) -> StdRng {
        StdRng::seed_from_u64(seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Mirrors proptest's trait of the same name, minus shrinking: a
    /// strategy only knows how to sample a fresh value from an RNG.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Returns a strategy producing `f(v)` for each value `v` of `self`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map {
                source: self,
                map: f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.map)(self.source.sample(rng))
        }
    }

    /// A strategy behind a reference samples like the strategy itself.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut StdRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// Strategy producing a constant value (mirrors `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            !size.is_empty(),
            "vec strategy needs a non-empty size range"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy generating `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy (mirrors `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.resolved_cases() {
                let mut rng = $crate::test_runner::case_rng(seed, case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let run = || $body;
                run();
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure in this
/// shim, so it behaves like `assert!` without shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
/// (The shim skips by returning from the case closure; skipped cases count
/// toward `cases`.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct P {
        x: f64,
        y: f64,
    }

    fn p_strategy() -> impl Strategy<Value = P> {
        (-10.0..10.0, -10.0..10.0).prop_map(|(x, y)| P { x, y })
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// Ranges respect their bounds and tuples compose.
        #[test]
        fn ranges_and_maps(p in p_strategy(), k in 1usize..5, flag in prop::bool::ANY) {
            prop_assert!((-10.0..10.0).contains(&p.x));
            prop_assert!((-10.0..10.0).contains(&p.y));
            prop_assert!((1..5).contains(&k));
            let chosen = if flag { k } else { k + 1 };
            prop_assert!((1..6).contains(&chosen));
        }

        /// Vec strategies honour their length range.
        #[test]
        fn vec_lengths(v in prop::collection::vec(0.0..1.0f64, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for x in &v {
                prop_assert!((0.0..1.0).contains(x), "{x} out of range");
            }
        }

        /// prop_assume skips cases without failing them.
        #[test]
        fn assume_skips(a in 0u32..100, b in 0u32..100) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = (0.0..1.0f64, 0u64..1000);
        let mut r1 = crate::test_runner::case_rng(1, 2);
        let mut r2 = crate::test_runner::case_rng(1, 2);
        assert_eq!(s.sample(&mut r1), s.sample(&mut r2));
    }

    /// `PROPTEST_CASES` overrides the configured count; unset or garbage
    /// falls back to it. Runs as one test because it mutates the process
    /// environment.
    #[test]
    fn proptest_cases_env_overrides_the_configured_count() {
        use crate::test_runner::ProptestConfig;
        let config = ProptestConfig {
            cases: 7,
            ..ProptestConfig::default()
        };
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(config.resolved_cases(), 7);
        std::env::set_var("PROPTEST_CASES", "41");
        assert_eq!(config.resolved_cases(), 41);
        std::env::set_var("PROPTEST_CASES", "not-a-number");
        assert_eq!(config.resolved_cases(), 7);
        std::env::remove_var("PROPTEST_CASES");
    }
}
