//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], a cheaply cloneable immutable byte buffer backed by
//! `Arc<[u8]>`. This matches the semantics the page store needs: pages are
//! written once and shared between readers without copying. (The real
//! `bytes::Bytes` adds zero-copy slicing and a `BytesMut` builder, neither
//! of which the workspace uses yet.)

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static byte string (copied into the shared buffer in this
    /// stub; the real crate borrows it zero-copy).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn roundtrip_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::from(&[1u8, 2, 3][..]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn deref_gives_slice_methods() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let chunks: Vec<&[u8]> = a.chunks_exact(2).collect();
        assert_eq!(chunks, vec![&[1u8, 2][..], &[3u8, 4][..]]);
    }

    #[test]
    fn empty_and_static() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"hi").len(), 2);
        assert_eq!(format!("{:?}", Bytes::from_static(b"hi")), "b\"hi\"");
    }
}
