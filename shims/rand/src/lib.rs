//! Offline stand-in for the `rand` crate (0.8-style API surface).
//!
//! The build environment has no access to crates.io, so this shim implements
//! the subset of `rand` the workspace uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] /
//! [`Rng::gen`] over primitive ranges — on top of a deterministic
//! splitmix64 generator. Determinism matters more than statistical strength
//! here: every dataset generator and example seeds explicitly so that
//! experiments are reproducible run to run.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a value uniformly from a range (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that [`Rng::gen`] can produce uniformly over their whole domain
/// (mirrors the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value using `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`]
/// (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0.0..1.0)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Uniform sample over the whole domain of `T`, e.g. `rng.gen::<f64>()`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Uniform `f64` in `[0, 1)` from a raw word (53 significant bits).
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f64` in `[0, 1]` (both endpoints attainable) from a raw word.
fn unit_f64_inclusive(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64());
        // `start + u * span` can round up to the excluded endpoint when the
        // range sits far from zero, so clamp to the largest value below it.
        (self.start + u * (self.end - self.start)).min(self.end.next_down())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        // Scale by a unit sample that reaches 1.0 so `hi` is attainable;
        // clamp in case rounding overshoots it.
        (lo + unit_f64_inclusive(rng.next_u64()) * (hi - lo)).min(hi)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = unit_f64(rng.next_u64()) as f32;
        (self.start + u * (self.end - self.start)).min(self.end.next_down())
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f64(rng.next_u64()) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    ///
    /// Not cryptographically secure (neither is the real `StdRng` guaranteed
    /// stable); every use in this workspace is an explicitly seeded
    /// simulation or test input.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.5..9.25);
            assert!((-3.5..9.25).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_stay_in_bounds_and_hit_all_values() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.gen_range(10usize..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn negative_integer_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let v = rng.gen_range(-10i32..-2);
            assert!((-10..-2).contains(&v));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "samples should span [0, 1)");
    }
}
