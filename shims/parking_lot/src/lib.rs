//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` / `read()` / `write()` return guards directly instead of a
//! `Result`. A poisoned std lock (a writer panicked) is recovered rather
//! than propagated, matching `parking_lot`'s behaviour of not tracking
//! poisoning at all.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual-exclusion lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        use std::sync::Arc;
        let lock = Arc::new(RwLock::new(5));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the std lock");
        })
        .join();
        assert_eq!(*lock.read(), 5);
    }
}
