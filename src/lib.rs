//! UV-Diagram: a Voronoi diagram for uncertain data — umbrella crate.
//!
//! This crate re-exports the whole workspace behind a single dependency and a
//! [`prelude`]. It is what the runnable examples and the integration tests
//! use; library consumers that want finer-grained dependencies can depend on
//! the individual crates directly:
//!
//! | crate | contents |
//! |---|---|
//! | [`geom`] (`uv-geom`) | 2-D geometry kernel: points, circles, rectangles, convex hulls, polygons, hyperbolic UV-edges |
//! | [`data`] (`uv-data`) | uncertain objects, pdfs, qualification probabilities, dataset generators, object storage |
//! | [`store`] (`uv-store`) | simulated 4 KB disk pages with I/O accounting |
//! | [`rtree`] (`uv-rtree`) | packed R-tree baseline: range, k-NN and branch-and-prune PNN queries |
//! | [`core`] (`uv-core`) | the UV-diagram itself: UV-cells, cr-objects, the adaptive UV-index, PNN and pattern queries |
//!
//! # Example
//!
//! ```
//! use uv_diagram::prelude::*;
//!
//! // Generate a small uncertain dataset and build the full system.
//! let dataset = Dataset::generate(GeneratorConfig::paper_uniform(150));
//! let system = UvSystem::with_defaults(dataset.objects.clone(), dataset.domain);
//!
//! // Probabilistic nearest-neighbour query at an arbitrary location.
//! let q = Point::new(5000.0, 5000.0);
//! let answer = system.pnn(q);
//! assert!(!answer.probabilities.is_empty());
//! let total: f64 = answer.probabilities.iter().map(|(_, p)| p).sum();
//! assert!((total - 1.0).abs() < 0.1);
//! ```
//!
//! *The paper-to-code map for the whole workspace — every definition, lemma,
//! algorithm and experiment of the paper, with its module and key functions —
//! lives in `docs/PAPER_MAP.md` at the repository root.*

pub use uv_core as core;
pub use uv_data as data;
pub use uv_geom as geom;
pub use uv_rtree as rtree;
pub use uv_store as store;

/// Commonly used items, re-exported for `use uv_diagram::prelude::*`.
pub mod prelude {
    pub use uv_core::{
        build_uv_index, ClientId, ConstructionStats, Method, PartitionCell, PossibleRegion,
        QueryEngine, SafeRegion, ShardedUpdateStats, ShardedUvSystem, SubscriptionEngine,
        SubscriptionStats, SubscriptionTable, TrajectoryStep, UpdateBatch, UpdateOp, UpdateStats,
        Updater, UvCell, UvConfig, UvError, UvIndex, UvSystem,
    };
    pub use uv_data::{
        AnswerDelta, Dataset, DatasetKind, GeneratorConfig, ObjectId, ObjectStore, Pdf, PnnAnswer,
        QueryBreakdown, UncertainObject,
    };
    pub use uv_geom::{Circle, Point, Rect};
    pub use uv_rtree::{pnn_query, RTree, RTreeConfig};
    pub use uv_store::{IoSnapshot, PageStore};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let dataset = Dataset::generate(GeneratorConfig::paper_uniform(80));
        let system = UvSystem::with_defaults(dataset.objects.clone(), dataset.domain);
        let answer = system.pnn(Point::new(1234.0, 4321.0));
        assert!(answer.best().is_some());
    }
}
