//! Page-backed object storage shared by both indexes.
//!
//! Leaf pages of the R-tree and of the UV-index store `<ID, MBC, pointer>`
//! tuples ([`ObjectEntry`]); the pointer refers to the full object record —
//! uncertainty region plus pdf — kept in the [`ObjectStore`]. Retrieving the
//! pdf of an answer candidate is the "object retrieval" component of the
//! query-time breakdown in Figure 6(c) and is charged one page read per
//! object page, identically for both indexes.

use crate::object::{ObjectId, UncertainObject};
use crate::pdf::Pdf;
use bytes::Bytes;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::Arc;
use uv_geom::{Circle, Point};
use uv_store::codec::{corrupt, Decode, Encode};
use uv_store::{PageId, PageStore, Record};

/// The `<ID, MBC, pointer>` tuple stored in leaf pages (Section V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectEntry {
    /// Object identifier.
    pub id: ObjectId,
    /// Minimum bounding circle of the object's uncertainty region.
    pub mbc: Circle,
    /// Disk address of the full object record (page holding its pdf).
    pub ptr: u64,
}

impl ObjectEntry {
    /// Builds the leaf entry of `object`, pointing at `ptr`.
    pub fn new(object: &UncertainObject, ptr: u64) -> Self {
        Self {
            id: object.id,
            mbc: object.mbc(),
            ptr,
        }
    }

    /// Minimum possible distance between the object and `q`.
    #[inline]
    pub fn dist_min(&self, q: Point) -> f64 {
        self.mbc.dist_min(q)
    }

    /// Maximum possible distance between the object and `q`.
    #[inline]
    pub fn dist_max(&self, q: Point) -> f64 {
        self.mbc.dist_max(q)
    }
}

impl Record for ObjectEntry {
    // id (4) + padding (4) + x, y, radius (24) + ptr (8)
    const SIZE: usize = 40;

    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.id.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        buf.extend_from_slice(&self.mbc.center.x.to_le_bytes());
        buf.extend_from_slice(&self.mbc.center.y.to_le_bytes());
        buf.extend_from_slice(&self.mbc.radius.to_le_bytes());
        buf.extend_from_slice(&self.ptr.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        let id = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        let x = f64::from_le_bytes(buf[8..16].try_into().unwrap());
        let y = f64::from_le_bytes(buf[16..24].try_into().unwrap());
        let r = f64::from_le_bytes(buf[24..32].try_into().unwrap());
        let ptr = u64::from_le_bytes(buf[32..40].try_into().unwrap());
        Self {
            id,
            mbc: Circle::new(Point::new(x, y), r),
            ptr,
        }
    }
}

/// Disk-resident store of full object records (uncertainty region + pdf).
///
/// Objects are packed several to a page; reading an object charges one page
/// read unless the page was already read for an earlier object of the same
/// query batch (the per-query cache models the buffer the paper's
/// implementation would enjoy within a single query).
///
/// The store is *dynamic*: [`ObjectStore::insert`] appends records
/// (compacting into the current append page while it has room),
/// [`ObjectStore::remove`] tombstones a record in place (the directory entry
/// disappears, the page bytes stay), and [`ObjectStore::update`] combines
/// the two. Tombstoned slots are never reused — a log-structured layout
/// whose garbage is bounded by the churn volume, not the dataset size.
#[derive(Debug)]
pub struct ObjectStore {
    store: Arc<PageStore>,
    /// Object id -> (page, objects on that page).
    directory: HashMap<ObjectId, PageId>,
    /// Decoded objects for verification-free access paths (construction).
    objects: HashMap<ObjectId, UncertainObject>,
    objects_per_page: usize,
    /// The partially filled page appends go to, with its live record count.
    append_page: Option<(PageId, usize)>,
    /// Records removed from the directory whose page bytes remain.
    tombstones: usize,
}

/// Fixed encoded size of one object record: id (4) + bar count (4) +
/// centre/radius (24) + up to 20 bars (160).
const OBJECT_RECORD_SIZE: usize = 192;

impl ObjectStore {
    /// Packs `objects` onto pages of `store` and builds the directory.
    pub fn build(store: Arc<PageStore>, objects: &[UncertainObject]) -> Self {
        let objects_per_page = (store.page_size() / OBJECT_RECORD_SIZE).max(1);
        let mut directory = HashMap::with_capacity(objects.len());
        let mut map = HashMap::with_capacity(objects.len());
        // A partially filled final page keeps accepting appends.
        let mut append_page = None;
        for chunk in objects.chunks(objects_per_page) {
            let mut buf = Vec::with_capacity(chunk.len() * OBJECT_RECORD_SIZE);
            for o in chunk {
                encode_object(o, &mut buf);
            }
            let page = store.allocate(Bytes::from(buf));
            for o in chunk {
                directory.insert(o.id, page);
                map.insert(o.id, o.clone());
            }
            append_page = (chunk.len() < objects_per_page).then_some((page, chunk.len()));
        }
        Self {
            store,
            directory,
            objects: map,
            objects_per_page,
            append_page,
            tombstones: 0,
        }
    }

    /// Appends a new object record, packing it into the current append page
    /// when that still has room (one page write either way).
    ///
    /// # Panics
    /// Panics if an object with the same id is already stored — callers
    /// validate ids before mutating the store.
    pub fn insert(&mut self, object: &UncertainObject) {
        assert!(
            !self.directory.contains_key(&object.id),
            "object {} is already stored",
            object.id
        );
        let mut record = Vec::with_capacity(OBJECT_RECORD_SIZE);
        encode_object(object, &mut record);
        let page = match self.append_page {
            Some((page, count)) if count < self.objects_per_page => {
                let mut bytes = self.store.read_uncounted(page).to_vec();
                bytes.extend_from_slice(&record);
                self.store.write(page, Bytes::from(bytes));
                self.append_page = Some((page, count + 1));
                page
            }
            _ => {
                let page = self.store.allocate(Bytes::from(record));
                self.append_page = Some((page, 1));
                page
            }
        };
        self.directory.insert(object.id, page);
        self.objects.insert(object.id, object.clone());
    }

    /// Tombstones the record of `id`: the directory entry and decoded object
    /// disappear, the page bytes stay behind as garbage. Returns `false`
    /// when the id was not stored.
    pub fn remove(&mut self, id: ObjectId) -> bool {
        if self.directory.remove(&id).is_none() {
            return false;
        }
        self.objects.remove(&id);
        self.tombstones += 1;
        true
    }

    /// Rewrites the record of `object` (tombstone + append).
    ///
    /// # Panics
    /// Panics if the object is not currently stored.
    pub fn update(&mut self, object: &UncertainObject) {
        assert!(self.remove(object.id), "object {} is not stored", object.id);
        self.insert(object);
    }

    /// Number of tombstoned (removed but not reclaimed) records.
    pub fn tombstones(&self) -> usize {
        self.tombstones
    }

    /// Number of objects per full page.
    pub fn objects_per_page(&self) -> usize {
        self.objects_per_page
    }

    /// The disk address stored in leaf entries for `id` (the page number).
    pub fn ptr_of(&self, id: ObjectId) -> u64 {
        self.directory.get(&id).map(|p| p.0 as u64).unwrap_or(0)
    }

    /// Retrieves the full record of `id`, charging one page read if its page
    /// is not in `touched_pages` yet (which is updated).
    pub fn fetch(
        &self,
        id: ObjectId,
        touched_pages: &mut std::collections::HashSet<u32>,
    ) -> Option<UncertainObject> {
        let page = *self.directory.get(&id)?;
        if touched_pages.insert(page.0) {
            let bytes = self.store.read(page);
            // Decode to honour the disk format (result matches the cache).
            let decoded = decode_page(&bytes);
            debug_assert!(decoded.iter().any(|o| o.id == id));
        }
        self.objects.get(&id).cloned()
    }

    /// Direct, I/O-free access used at construction time.
    pub fn get(&self, id: ObjectId) -> Option<&UncertainObject> {
        self.objects.get(&id)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Backing page store.
    pub fn store(&self) -> &Arc<PageStore> {
        &self.store
    }

    /// Writes the persistent state of the store: the id → page directory
    /// (id-sorted for a deterministic byte stream), the open append page and
    /// the tombstone count. The page *bytes* belong to the backing
    /// [`PageStore`], persisted separately; the decoded-object cache is
    /// rebuilt on load from the live object set.
    pub fn write_state<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        let mut directory: Vec<(u32, u32)> = self
            .directory
            .iter()
            .map(|(id, page)| (*id, page.0))
            .collect();
        directory.sort_unstable();
        directory.write_to(w)?;
        self.append_page
            .map(|(page, count)| (page.0, count as u64))
            .write_to(w)?;
        (self.tombstones as u64).write_to(w)
    }

    /// Reconstructs a store over an already-loaded page `store`.
    ///
    /// `objects` is the live object set the directory must cover exactly —
    /// it refills the decoded-object cache without re-reading (and
    /// re-truncating) page bytes, so fetches after a load return records
    /// bit-identical to the never-persisted store. Any disagreement between
    /// the directory and the object set, or any out-of-range page id, is
    /// reported as corruption rather than panicking later.
    pub fn read_state<R: Read + ?Sized>(
        store: Arc<PageStore>,
        objects: &[UncertainObject],
        r: &mut R,
    ) -> io::Result<Self> {
        let objects_per_page = (store.page_size() / OBJECT_RECORD_SIZE).max(1);
        let available = store.num_pages();
        let raw_directory: Vec<(u32, u32)> = Vec::read_from(r)?;
        let mut directory = HashMap::with_capacity(raw_directory.len());
        for (id, page) in raw_directory {
            if (page as usize) >= available {
                return Err(corrupt(format!(
                    "object {id} points at page {page}, store holds {available}"
                )));
            }
            if directory.insert(id, PageId(page)).is_some() {
                return Err(corrupt(format!(
                    "object {id} appears twice in the directory"
                )));
            }
        }
        let append_page = match Option::<(u32, u64)>::read_from(r)? {
            None => None,
            Some((page, count)) => {
                if (page as usize) >= available || count as usize > objects_per_page {
                    return Err(corrupt(format!(
                        "implausible append page {page} with {count} records"
                    )));
                }
                Some((PageId(page), count as usize))
            }
        };
        let tombstones = u64::read_from(r)? as usize;

        let mut map = HashMap::with_capacity(objects.len());
        for o in objects {
            if !directory.contains_key(&o.id) {
                return Err(corrupt(format!(
                    "live object {} missing from the directory",
                    o.id
                )));
            }
            if map.insert(o.id, o.clone()).is_some() {
                return Err(corrupt(format!("duplicate live object {}", o.id)));
            }
        }
        if map.len() != directory.len() {
            return Err(corrupt(format!(
                "directory holds {} entries for {} live objects",
                directory.len(),
                map.len()
            )));
        }
        Ok(Self {
            store,
            directory,
            objects: map,
            objects_per_page,
            append_page,
            tombstones,
        })
    }
}

fn encode_object(o: &UncertainObject, buf: &mut Vec<u8>) {
    let start = buf.len();
    buf.extend_from_slice(&o.id.to_le_bytes());
    let bars: &[f64] = match &o.pdf {
        Pdf::Uniform => &[],
        Pdf::Histogram { bars } => bars.as_slice(),
    };
    let nbars = bars.len().min(20) as u32;
    buf.extend_from_slice(&nbars.to_le_bytes());
    buf.extend_from_slice(&o.center().x.to_le_bytes());
    buf.extend_from_slice(&o.center().y.to_le_bytes());
    buf.extend_from_slice(&o.radius().to_le_bytes());
    for b in bars.iter().take(20) {
        buf.extend_from_slice(&b.to_le_bytes());
    }
    // Pad to the fixed record size.
    buf.resize(start + OBJECT_RECORD_SIZE, 0);
}

fn decode_page(bytes: &[u8]) -> Vec<UncertainObject> {
    bytes
        .chunks_exact(OBJECT_RECORD_SIZE)
        .map(|rec| {
            let id = u32::from_le_bytes(rec[0..4].try_into().unwrap());
            let nbars = u32::from_le_bytes(rec[4..8].try_into().unwrap()) as usize;
            let x = f64::from_le_bytes(rec[8..16].try_into().unwrap());
            let y = f64::from_le_bytes(rec[16..24].try_into().unwrap());
            let r = f64::from_le_bytes(rec[24..32].try_into().unwrap());
            let pdf = if nbars == 0 {
                Pdf::Uniform
            } else {
                let bars = (0..nbars)
                    .map(|k| f64::from_le_bytes(rec[32 + k * 8..40 + k * 8].try_into().unwrap()))
                    .collect();
                Pdf::Histogram { bars }
            };
            UncertainObject::new(id, Point::new(x, y), r, pdf)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn sample_objects(n: u32) -> Vec<UncertainObject> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    UncertainObject::with_gaussian(i, Point::new(i as f64 * 10.0, 5.0), 3.0)
                } else {
                    UncertainObject::with_uniform(i, Point::new(i as f64 * 10.0, 5.0), 3.0)
                }
            })
            .collect()
    }

    #[test]
    fn object_entry_roundtrip() {
        let o = UncertainObject::with_gaussian(9, Point::new(1.5, -2.5), 4.0);
        let e = ObjectEntry::new(&o, 77);
        let mut buf = Vec::new();
        e.encode(&mut buf);
        assert_eq!(buf.len(), ObjectEntry::SIZE);
        let back = ObjectEntry::decode(&buf);
        assert_eq!(back, e);
        assert_eq!(back.dist_min(Point::new(11.5, -2.5)), 6.0);
        assert_eq!(back.dist_max(Point::new(11.5, -2.5)), 14.0);
    }

    #[test]
    fn store_roundtrip_and_io_accounting() {
        let page_store = Arc::new(PageStore::new());
        let objects = sample_objects(50);
        let store = ObjectStore::build(Arc::clone(&page_store), &objects);
        assert_eq!(store.len(), 50);
        let build_io = page_store.io();
        assert!(build_io.writes > 0);
        page_store.reset_io();

        let mut touched = HashSet::new();
        let fetched = store.fetch(13, &mut touched).unwrap();
        assert_eq!(fetched, objects[13]);
        assert_eq!(page_store.io().reads, 1);

        // Fetching another object on the same page does not re-read it.
        let same_page_neighbor = 13 / store.objects_per_page() * store.objects_per_page();
        store
            .fetch(same_page_neighbor as u32, &mut touched)
            .unwrap();
        assert_eq!(page_store.io().reads, 1);

        // A fresh query batch pays the I/O again.
        let mut touched2 = HashSet::new();
        store.fetch(13, &mut touched2).unwrap();
        assert_eq!(page_store.io().reads, 2);
    }

    #[test]
    fn fetch_unknown_id_returns_none() {
        let page_store = Arc::new(PageStore::new());
        let store = ObjectStore::build(page_store, &sample_objects(3));
        let mut touched = HashSet::new();
        assert!(store.fetch(99, &mut touched).is_none());
        assert!(store.get(99).is_none());
        assert_eq!(store.ptr_of(99), 0);
    }

    #[test]
    fn churn_keeps_ptr_of_and_fetch_consistent() {
        // Regression for the dynamic store: after interleaved tombstoned
        // deletes, appends and rewrites, every live object must fetch to its
        // exact record, its pointer must name the page the record lives on,
        // and dead ids must be gone.
        let page_store = Arc::new(PageStore::new());
        let mut objects = sample_objects(40);
        let mut store = ObjectStore::build(Arc::clone(&page_store), &objects);

        // Delete every fourth object.
        for id in (0..40u32).step_by(4) {
            assert!(store.remove(id));
            assert!(!store.remove(id), "double delete must report false");
        }
        assert_eq!(store.len(), 30);
        assert_eq!(store.tombstones(), 10);

        // Append a fresh batch (re-using two of the freed ids).
        let mut fresh = sample_objects(48)[40..].to_vec();
        fresh.push(UncertainObject::with_uniform(0, Point::new(7.0, 7.0), 2.0));
        fresh.push(UncertainObject::with_gaussian(4, Point::new(9.0, 9.0), 3.0));
        for o in &fresh {
            store.insert(o);
        }
        // Move a survivor: its record is rewritten on an append page.
        objects[13] = UncertainObject::with_gaussian(13, Point::new(-3.0, -4.0), 5.0);
        store.update(&objects[13]);

        // `objects[13]` already holds the rewritten record.
        let live: Vec<UncertainObject> = objects
            .iter()
            .filter(|o| o.id % 4 != 0)
            .chain(fresh.iter())
            .cloned()
            .collect();
        for o in &live {
            let mut touched = HashSet::new();
            let fetched = store.fetch(o.id, &mut touched).unwrap();
            assert_eq!(&fetched, o, "object {} fetched a stale record", o.id);
            assert_eq!(store.get(o.id), Some(o));
            assert_eq!(
                store.ptr_of(o.id),
                touched.iter().next().copied().unwrap() as u64,
                "pointer of {} does not name its record page",
                o.id
            );
        }
        for dead in [8u32, 12, 16] {
            let mut touched = HashSet::new();
            assert!(store.fetch(dead, &mut touched).is_none());
            assert_eq!(store.ptr_of(dead), 0);
        }

        // I/O accounting stays exact under churn: fetching every live object
        // in one batch charges exactly one read per distinct directory page,
        // which must equal the store's atomic read counter delta.
        page_store.reset_io();
        let mut touched = HashSet::new();
        for o in &live {
            store.fetch(o.id, &mut touched).unwrap();
        }
        let distinct_pages: HashSet<u32> = live.iter().map(|o| store.ptr_of(o.id) as u32).collect();
        assert_eq!(touched.len(), distinct_pages.len());
        assert_eq!(page_store.io().reads, touched.len() as u64);
    }

    #[test]
    fn appends_compact_into_the_open_page() {
        let page_store = Arc::new(PageStore::new());
        let mut store = ObjectStore::build(Arc::clone(&page_store), &[]);
        let per_page = store.objects_per_page();
        let pages_before = page_store.num_pages();
        for o in sample_objects(per_page as u32) {
            store.insert(&o);
        }
        // A full page worth of appends allocates exactly one page.
        assert_eq!(page_store.num_pages(), pages_before + 1);
        store.insert(&UncertainObject::with_uniform(
            per_page as u32,
            Point::new(1.0, 1.0),
            1.0,
        ));
        assert_eq!(page_store.num_pages(), pages_before + 2);
    }

    #[test]
    fn state_roundtrip_preserves_directory_appends_and_tombstones() {
        let page_store = Arc::new(PageStore::new());
        let mut objects = sample_objects(30);
        let mut store = ObjectStore::build(Arc::clone(&page_store), &objects);
        // Churn so the persisted state covers tombstones, appends and moves.
        store.remove(3);
        store.remove(17);
        objects[5] = UncertainObject::with_gaussian(5, Point::new(-1.0, -2.0), 4.0);
        store.update(&objects[5]);
        let extra = UncertainObject::with_uniform(90, Point::new(8.0, 8.0), 2.0);
        store.insert(&extra);

        let live: Vec<UncertainObject> = objects
            .iter()
            .filter(|o| o.id != 3 && o.id != 17)
            .cloned()
            .chain(std::iter::once(extra.clone()))
            .collect();

        // Round-trip the page store and the object-store state.
        let pages: PageStore =
            uv_store::codec::from_bytes(&uv_store::codec::to_bytes(&*page_store)).unwrap();
        let pages = Arc::new(pages);
        let mut state = Vec::new();
        store.write_state(&mut state).unwrap();
        let back =
            ObjectStore::read_state(Arc::clone(&pages), &live, &mut state.as_slice()).unwrap();

        assert_eq!(back.len(), store.len());
        assert_eq!(back.tombstones(), store.tombstones());
        assert_eq!(back.objects_per_page(), store.objects_per_page());
        for o in &live {
            assert_eq!(back.ptr_of(o.id), store.ptr_of(o.id), "pointer of {}", o.id);
            let mut touched = HashSet::new();
            assert_eq!(back.fetch(o.id, &mut touched).as_ref(), Some(o));
        }
        // The restored append page keeps compacting appends like the
        // original would.
        let mut back = back;
        let mut orig = store;
        let next = UncertainObject::with_uniform(91, Point::new(9.0, 9.0), 2.0);
        back.insert(&next);
        orig.insert(&next);
        assert_eq!(back.ptr_of(91), orig.ptr_of(91));
    }

    #[test]
    fn state_rejects_directory_object_disagreements() {
        let page_store = Arc::new(PageStore::new());
        let objects = sample_objects(4);
        let store = ObjectStore::build(Arc::clone(&page_store), &objects);
        let mut state = Vec::new();
        store.write_state(&mut state).unwrap();
        // An object set missing a directory id.
        assert!(ObjectStore::read_state(
            Arc::clone(&page_store),
            &objects[..3],
            &mut state.as_slice()
        )
        .is_err());
        // An object set with an id the directory does not know.
        let mut extra = objects.clone();
        extra.push(UncertainObject::with_uniform(99, Point::new(1.0, 1.0), 1.0));
        assert!(
            ObjectStore::read_state(Arc::clone(&page_store), &extra, &mut state.as_slice())
                .is_err()
        );
        // A directory pointing at a page the store does not hold.
        let empty = Arc::new(PageStore::new());
        assert!(ObjectStore::read_state(empty, &objects, &mut state.as_slice()).is_err());
    }

    #[test]
    fn uniform_and_histogram_pdfs_survive_encoding() {
        let page_store = Arc::new(PageStore::new());
        let objects = sample_objects(4);
        let store = ObjectStore::build(Arc::clone(&page_store), &objects);
        // Decode straight from the page bytes to verify the on-disk format.
        let page = *store.directory.get(&0).unwrap();
        let decoded = decode_page(&page_store.read_uncounted(page));
        assert_eq!(decoded.len(), 4.min(store.objects_per_page()));
        assert_eq!(decoded[0], objects[0]);
        assert_eq!(decoded[1].pdf, Pdf::Uniform);
    }
}
