//! Page-backed object storage shared by both indexes.
//!
//! Leaf pages of the R-tree and of the UV-index store `<ID, MBC, pointer>`
//! tuples ([`ObjectEntry`]); the pointer refers to the full object record —
//! uncertainty region plus pdf — kept in the [`ObjectStore`]. Retrieving the
//! pdf of an answer candidate is the "object retrieval" component of the
//! query-time breakdown in Figure 6(c) and is charged one page read per
//! object page, identically for both indexes.

use crate::object::{ObjectId, UncertainObject};
use crate::pdf::Pdf;
use bytes::Bytes;
use std::collections::HashMap;
use std::sync::Arc;
use uv_geom::{Circle, Point};
use uv_store::{PageId, PageStore, Record};

/// The `<ID, MBC, pointer>` tuple stored in leaf pages (Section V-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectEntry {
    /// Object identifier.
    pub id: ObjectId,
    /// Minimum bounding circle of the object's uncertainty region.
    pub mbc: Circle,
    /// Disk address of the full object record (page holding its pdf).
    pub ptr: u64,
}

impl ObjectEntry {
    /// Builds the leaf entry of `object`, pointing at `ptr`.
    pub fn new(object: &UncertainObject, ptr: u64) -> Self {
        Self {
            id: object.id,
            mbc: object.mbc(),
            ptr,
        }
    }

    /// Minimum possible distance between the object and `q`.
    #[inline]
    pub fn dist_min(&self, q: Point) -> f64 {
        self.mbc.dist_min(q)
    }

    /// Maximum possible distance between the object and `q`.
    #[inline]
    pub fn dist_max(&self, q: Point) -> f64 {
        self.mbc.dist_max(q)
    }
}

impl Record for ObjectEntry {
    // id (4) + padding (4) + x, y, radius (24) + ptr (8)
    const SIZE: usize = 40;

    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.id.to_le_bytes());
        buf.extend_from_slice(&[0u8; 4]);
        buf.extend_from_slice(&self.mbc.center.x.to_le_bytes());
        buf.extend_from_slice(&self.mbc.center.y.to_le_bytes());
        buf.extend_from_slice(&self.mbc.radius.to_le_bytes());
        buf.extend_from_slice(&self.ptr.to_le_bytes());
    }

    fn decode(buf: &[u8]) -> Self {
        let id = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        let x = f64::from_le_bytes(buf[8..16].try_into().unwrap());
        let y = f64::from_le_bytes(buf[16..24].try_into().unwrap());
        let r = f64::from_le_bytes(buf[24..32].try_into().unwrap());
        let ptr = u64::from_le_bytes(buf[32..40].try_into().unwrap());
        Self {
            id,
            mbc: Circle::new(Point::new(x, y), r),
            ptr,
        }
    }
}

/// Disk-resident store of full object records (uncertainty region + pdf).
///
/// Objects are packed several to a page; reading an object charges one page
/// read unless the page was already read for an earlier object of the same
/// query batch (the per-query cache models the buffer the paper's
/// implementation would enjoy within a single query).
#[derive(Debug)]
pub struct ObjectStore {
    store: Arc<PageStore>,
    /// Object id -> (page, objects on that page).
    directory: HashMap<ObjectId, PageId>,
    /// Decoded objects for verification-free access paths (construction).
    objects: HashMap<ObjectId, UncertainObject>,
    objects_per_page: usize,
}

/// Fixed encoded size of one object record: id (4) + bar count (4) +
/// centre/radius (24) + up to 20 bars (160).
const OBJECT_RECORD_SIZE: usize = 192;

impl ObjectStore {
    /// Packs `objects` onto pages of `store` and builds the directory.
    pub fn build(store: Arc<PageStore>, objects: &[UncertainObject]) -> Self {
        let objects_per_page = (store.page_size() / OBJECT_RECORD_SIZE).max(1);
        let mut directory = HashMap::with_capacity(objects.len());
        let mut map = HashMap::with_capacity(objects.len());
        for chunk in objects.chunks(objects_per_page) {
            let mut buf = Vec::with_capacity(chunk.len() * OBJECT_RECORD_SIZE);
            for o in chunk {
                encode_object(o, &mut buf);
            }
            let page = store.allocate(Bytes::from(buf));
            for o in chunk {
                directory.insert(o.id, page);
                map.insert(o.id, o.clone());
            }
        }
        Self {
            store,
            directory,
            objects: map,
            objects_per_page,
        }
    }

    /// Number of objects per full page.
    pub fn objects_per_page(&self) -> usize {
        self.objects_per_page
    }

    /// The disk address stored in leaf entries for `id` (the page number).
    pub fn ptr_of(&self, id: ObjectId) -> u64 {
        self.directory.get(&id).map(|p| p.0 as u64).unwrap_or(0)
    }

    /// Retrieves the full record of `id`, charging one page read if its page
    /// is not in `touched_pages` yet (which is updated).
    pub fn fetch(
        &self,
        id: ObjectId,
        touched_pages: &mut std::collections::HashSet<u32>,
    ) -> Option<UncertainObject> {
        let page = *self.directory.get(&id)?;
        if touched_pages.insert(page.0) {
            let bytes = self.store.read(page);
            // Decode to honour the disk format (result matches the cache).
            let decoded = decode_page(&bytes);
            debug_assert!(decoded.iter().any(|o| o.id == id));
        }
        self.objects.get(&id).cloned()
    }

    /// Direct, I/O-free access used at construction time.
    pub fn get(&self, id: ObjectId) -> Option<&UncertainObject> {
        self.objects.get(&id)
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Backing page store.
    pub fn store(&self) -> &Arc<PageStore> {
        &self.store
    }
}

fn encode_object(o: &UncertainObject, buf: &mut Vec<u8>) {
    let start = buf.len();
    buf.extend_from_slice(&o.id.to_le_bytes());
    let bars: &[f64] = match &o.pdf {
        Pdf::Uniform => &[],
        Pdf::Histogram { bars } => bars.as_slice(),
    };
    let nbars = bars.len().min(20) as u32;
    buf.extend_from_slice(&nbars.to_le_bytes());
    buf.extend_from_slice(&o.center().x.to_le_bytes());
    buf.extend_from_slice(&o.center().y.to_le_bytes());
    buf.extend_from_slice(&o.radius().to_le_bytes());
    for b in bars.iter().take(20) {
        buf.extend_from_slice(&b.to_le_bytes());
    }
    // Pad to the fixed record size.
    buf.resize(start + OBJECT_RECORD_SIZE, 0);
}

fn decode_page(bytes: &[u8]) -> Vec<UncertainObject> {
    bytes
        .chunks_exact(OBJECT_RECORD_SIZE)
        .map(|rec| {
            let id = u32::from_le_bytes(rec[0..4].try_into().unwrap());
            let nbars = u32::from_le_bytes(rec[4..8].try_into().unwrap()) as usize;
            let x = f64::from_le_bytes(rec[8..16].try_into().unwrap());
            let y = f64::from_le_bytes(rec[16..24].try_into().unwrap());
            let r = f64::from_le_bytes(rec[24..32].try_into().unwrap());
            let pdf = if nbars == 0 {
                Pdf::Uniform
            } else {
                let bars = (0..nbars)
                    .map(|k| f64::from_le_bytes(rec[32 + k * 8..40 + k * 8].try_into().unwrap()))
                    .collect();
                Pdf::Histogram { bars }
            };
            UncertainObject::new(id, Point::new(x, y), r, pdf)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn sample_objects(n: u32) -> Vec<UncertainObject> {
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    UncertainObject::with_gaussian(i, Point::new(i as f64 * 10.0, 5.0), 3.0)
                } else {
                    UncertainObject::with_uniform(i, Point::new(i as f64 * 10.0, 5.0), 3.0)
                }
            })
            .collect()
    }

    #[test]
    fn object_entry_roundtrip() {
        let o = UncertainObject::with_gaussian(9, Point::new(1.5, -2.5), 4.0);
        let e = ObjectEntry::new(&o, 77);
        let mut buf = Vec::new();
        e.encode(&mut buf);
        assert_eq!(buf.len(), ObjectEntry::SIZE);
        let back = ObjectEntry::decode(&buf);
        assert_eq!(back, e);
        assert_eq!(back.dist_min(Point::new(11.5, -2.5)), 6.0);
        assert_eq!(back.dist_max(Point::new(11.5, -2.5)), 14.0);
    }

    #[test]
    fn store_roundtrip_and_io_accounting() {
        let page_store = Arc::new(PageStore::new());
        let objects = sample_objects(50);
        let store = ObjectStore::build(Arc::clone(&page_store), &objects);
        assert_eq!(store.len(), 50);
        let build_io = page_store.io();
        assert!(build_io.writes > 0);
        page_store.reset_io();

        let mut touched = HashSet::new();
        let fetched = store.fetch(13, &mut touched).unwrap();
        assert_eq!(fetched, objects[13]);
        assert_eq!(page_store.io().reads, 1);

        // Fetching another object on the same page does not re-read it.
        let same_page_neighbor = 13 / store.objects_per_page() * store.objects_per_page();
        store
            .fetch(same_page_neighbor as u32, &mut touched)
            .unwrap();
        assert_eq!(page_store.io().reads, 1);

        // A fresh query batch pays the I/O again.
        let mut touched2 = HashSet::new();
        store.fetch(13, &mut touched2).unwrap();
        assert_eq!(page_store.io().reads, 2);
    }

    #[test]
    fn fetch_unknown_id_returns_none() {
        let page_store = Arc::new(PageStore::new());
        let store = ObjectStore::build(page_store, &sample_objects(3));
        let mut touched = HashSet::new();
        assert!(store.fetch(99, &mut touched).is_none());
        assert!(store.get(99).is_none());
        assert_eq!(store.ptr_of(99), 0);
    }

    #[test]
    fn uniform_and_histogram_pdfs_survive_encoding() {
        let page_store = Arc::new(PageStore::new());
        let objects = sample_objects(4);
        let store = ObjectStore::build(Arc::clone(&page_store), &objects);
        // Decode straight from the page bytes to verify the on-disk format.
        let page = *store.directory.get(&0).unwrap();
        let decoded = decode_page(&page_store.read_uncounted(page));
        assert_eq!(decoded.len(), 4.min(store.objects_per_page()));
        assert_eq!(decoded[0], objects[0]);
        assert_eq!(decoded[1].pdf, Pdf::Uniform);
    }
}
