//! Qualification-probability computation for PNN answers.
//!
//! The paper delegates the final probability computation to the numerical
//! integration method of Cheng et al. \[14\] (Section VI-A): for a query point
//! `q` and the set `A` of answer candidates, the probability that `O_i` is
//! the nearest neighbour is
//!
//! ```text
//! P_i = ∫ f_i(t) · Π_{j ≠ i} (1 − F_j(t)) dt
//! ```
//!
//! where `f_i` / `F_i` are the pdf / cdf of the distance `dist(q, X_i)` of
//! the uncertain location `X_i` from `q`. Because every pdf in this model is
//! rotationally symmetric around the region centre, the distance cdf has a
//! closed form per concentric ring, which is what [`DistanceDistribution`]
//! evaluates; the outer integral is a midpoint Riemann sum.

use crate::object::{ObjectId, UncertainObject};
use uv_geom::Point;

/// Default number of integration steps of the outer integral.
pub const DEFAULT_INTEGRATION_STEPS: usize = 200;

/// Number of concentric rings used to discretise a pdf when it is not
/// already a histogram ([`crate::pdf::Pdf::num_bars`] returning `None`).
/// Safe-region stability margins must mirror the discretisation exactly,
/// which is why the constant is public.
pub const DEFAULT_RINGS: usize = 20;

/// Distribution of the distance between a fixed query point and an uncertain
/// object's location.
#[derive(Debug, Clone)]
pub struct DistanceDistribution {
    /// Distance from the query point to the region centre.
    center_dist: f64,
    /// Representative radius of each ring.
    ring_radius: Vec<f64>,
    /// Probability mass of each ring.
    ring_mass: Vec<f64>,
    /// Minimum possible distance (Equation (2)).
    pub dist_min: f64,
    /// Maximum possible distance (Equation (3)).
    pub dist_max: f64,
}

impl DistanceDistribution {
    /// Builds the distance distribution of `object` as seen from `q`.
    pub fn new(object: &UncertainObject, q: Point) -> Self {
        let rings = object.pdf.num_bars().unwrap_or(DEFAULT_RINGS);
        let masses = object.pdf.ring_masses(rings);
        let radius = object.radius();
        let ring_radius: Vec<f64> = (0..rings)
            .map(|k| radius * (k as f64 + 0.5) / rings as f64)
            .collect();
        Self {
            center_dist: object.center().dist(q),
            ring_radius,
            ring_mass: masses,
            dist_min: object.dist_min(q),
            dist_max: object.dist_max(q),
        }
    }

    /// `P(dist(q, X) <= t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= self.dist_min {
            return 0.0;
        }
        if t >= self.dist_max {
            return 1.0;
        }
        let d = self.center_dist;
        let mut acc = 0.0;
        for (s, w) in self.ring_radius.iter().zip(&self.ring_mass) {
            acc += w * ring_cdf(d, *s, t);
        }
        acc.clamp(0.0, 1.0)
    }
}

/// Fraction of a circle of radius `s` centred at distance `d` from the query
/// point that lies within distance `t` of the query point. Exact for points
/// distributed uniformly in angle on the ring. Shared with the batched
/// kernels of [`crate::arena`] so both paths evaluate the identical
/// expression.
pub(crate) fn ring_cdf(d: f64, s: f64, t: f64) -> f64 {
    if t >= d + s {
        return 1.0;
    }
    if t <= (d - s).abs() {
        return 0.0;
    }
    if d <= f64::EPSILON {
        // Query at the centre: distance is exactly s.
        return if t >= s { 1.0 } else { 0.0 };
    }
    if s <= f64::EPSILON {
        return if t >= d { 1.0 } else { 0.0 };
    }
    // Law of cosines: the ring arc within distance t subtends 2*phi.
    let cos_phi = ((d * d + s * s - t * t) / (2.0 * d * s)).clamp(-1.0, 1.0);
    let phi = cos_phi.acos();
    phi / std::f64::consts::PI
}

/// Computes the qualification probability of every candidate object for being
/// the nearest neighbour of `q`, using `steps` integration steps.
///
/// The candidate set is expected to be the output of the index verification
/// phase (all objects whose `distmin` does not exceed the smallest `distmax`,
/// i.e. `dminmax`); objects that cannot qualify receive probability zero.
/// Probabilities of a complete candidate set sum to ~1 up to integration
/// error.
pub fn qualification_probabilities(
    q: Point,
    candidates: &[&UncertainObject],
    steps: usize,
) -> Vec<(ObjectId, f64)> {
    if candidates.is_empty() {
        return Vec::new();
    }
    if candidates.len() == 1 {
        return vec![(candidates[0].id, 1.0)];
    }
    let steps = steps.max(2);
    let dists: Vec<DistanceDistribution> = candidates
        .iter()
        .map(|o| DistanceDistribution::new(o, q))
        .collect();

    // Integration bounds: from the smallest possible NN distance to dminmax,
    // beyond which the nearest neighbour distance is certain to have occurred.
    let lower = dists
        .iter()
        .map(|d| d.dist_min)
        .fold(f64::INFINITY, f64::min);
    let upper = dists
        .iter()
        .map(|d| d.dist_max)
        .fold(f64::INFINITY, f64::min);
    if upper <= lower || !upper.is_finite() || !lower.is_finite() {
        // Degenerate geometry (e.g. all candidates at the same point):
        // fall back to a uniform split among candidates that can reach the
        // minimum distance.
        let share = 1.0 / candidates.len() as f64;
        return candidates.iter().map(|o| (o.id, share)).collect();
    }

    let dt = (upper - lower) / steps as f64;
    let mut probs = vec![0.0_f64; candidates.len()];
    let mut cdf_lo: Vec<f64> = dists.iter().map(|d| d.cdf(lower)).collect();
    for step in 0..steps {
        let t0 = lower + step as f64 * dt;
        let t1 = t0 + dt;
        let cdf_hi: Vec<f64> = dists.iter().map(|d| d.cdf(t1)).collect();
        // Trapezoidal evaluation of the survival factors: averaging the cdf at
        // the step boundaries keeps the estimate consistent even when several
        // histogram cdfs jump inside the same step (e.g. identical objects).
        let cdf_mid: Vec<f64> = cdf_lo
            .iter()
            .zip(&cdf_hi)
            .map(|(lo, hi)| 0.5 * (lo + hi))
            .collect();
        for i in 0..candidates.len() {
            let df = (cdf_hi[i] - cdf_lo[i]).max(0.0);
            if df == 0.0 {
                continue;
            }
            let mut prod = 1.0;
            for (j, c) in cdf_mid.iter().enumerate() {
                if j != i {
                    prod *= 1.0 - c;
                    if prod == 0.0 {
                        break;
                    }
                }
            }
            probs[i] += df * prod;
        }
        cdf_lo = cdf_hi;
    }

    candidates
        .iter()
        .zip(probs)
        .map(|(o, p)| (o.id, p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdf::Pdf;

    fn obj(id: ObjectId, x: f64, y: f64, r: f64) -> UncertainObject {
        UncertainObject::with_uniform(id, Point::new(x, y), r)
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let o = UncertainObject::with_gaussian(1, Point::new(10.0, 0.0), 5.0);
        let d = DistanceDistribution::new(&o, Point::new(0.0, 0.0));
        assert_eq!(d.cdf(d.dist_min - 1.0), 0.0);
        assert_eq!(d.cdf(d.dist_max + 1.0), 1.0);
        let mut prev = 0.0;
        let mut t = d.dist_min;
        while t <= d.dist_max {
            let c = d.cdf(t);
            assert!(c >= prev - 1e-12, "cdf not monotone at t = {t}");
            assert!((0.0..=1.0).contains(&c));
            prev = c;
            t += 0.1;
        }
    }

    #[test]
    fn query_at_center_has_step_like_cdf() {
        let o = UncertainObject::with_uniform(1, Point::new(0.0, 0.0), 4.0);
        let d = DistanceDistribution::new(&o, Point::new(0.0, 0.0));
        assert_eq!(d.dist_min, 0.0);
        assert_eq!(d.dist_max, 4.0);
        // Uniform disk: P(dist <= t) = (t/r)^2; the ring discretisation
        // approximates this.
        let approx = d.cdf(2.0);
        assert!((approx - 0.25).abs() < 0.05, "got {approx}");
    }

    #[test]
    fn ring_cdf_limits() {
        assert_eq!(ring_cdf(10.0, 2.0, 12.5), 1.0);
        assert_eq!(ring_cdf(10.0, 2.0, 7.5), 0.0);
        let half = ring_cdf(10.0, 2.0, (100.0_f64 + 4.0).sqrt());
        assert!((half - 0.5).abs() < 1e-9);
        assert_eq!(ring_cdf(0.0, 2.0, 3.0), 1.0);
        assert_eq!(ring_cdf(0.0, 2.0, 1.0), 0.0);
        assert_eq!(ring_cdf(5.0, 0.0, 6.0), 1.0);
    }

    #[test]
    fn single_candidate_has_probability_one() {
        let o = obj(1, 0.0, 0.0, 2.0);
        let probs = qualification_probabilities(Point::new(5.0, 5.0), &[&o], 100);
        assert_eq!(probs, vec![(1, 1.0)]);
    }

    #[test]
    fn symmetric_candidates_split_evenly() {
        let a = obj(1, -10.0, 0.0, 2.0);
        let b = obj(2, 10.0, 0.0, 2.0);
        let probs = qualification_probabilities(Point::new(0.0, 0.0), &[&a, &b], 400);
        let pa = probs.iter().find(|(id, _)| *id == 1).unwrap().1;
        let pb = probs.iter().find(|(id, _)| *id == 2).unwrap().1;
        assert!((pa - 0.5).abs() < 0.02, "pa = {pa}");
        assert!((pb - 0.5).abs() < 0.02, "pb = {pb}");
        let total: f64 = probs.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 0.02, "total = {total}");
    }

    #[test]
    fn dominated_candidate_gets_zero() {
        // Object 2's minimum distance exceeds object 1's maximum distance:
        // it can never be the nearest neighbour.
        let near = obj(1, 1.0, 0.0, 0.5);
        let far = obj(2, 100.0, 0.0, 0.5);
        let probs = qualification_probabilities(Point::new(0.0, 0.0), &[&near, &far], 200);
        let p_far = probs.iter().find(|(id, _)| *id == 2).unwrap().1;
        let p_near = probs.iter().find(|(id, _)| *id == 1).unwrap().1;
        assert!(p_far.abs() < 1e-9);
        assert!((p_near - 1.0).abs() < 1e-6);
    }

    #[test]
    fn closer_object_gets_higher_probability() {
        let a = obj(1, 3.0, 0.0, 1.0);
        let b = obj(2, 6.0, 0.0, 1.0);
        let probs = qualification_probabilities(Point::new(0.0, 0.0), &[&a, &b], 400);
        let pa = probs.iter().find(|(id, _)| *id == 1).unwrap().1;
        let pb = probs.iter().find(|(id, _)| *id == 2).unwrap().1;
        assert!(pa > pb);
        assert!(pa > 0.9);
    }

    #[test]
    fn probabilities_sum_to_one_for_overlapping_candidates() {
        let objs: Vec<UncertainObject> = (0..5)
            .map(|i| {
                UncertainObject::new(
                    i,
                    Point::new(10.0 + i as f64 * 3.0, i as f64),
                    4.0,
                    Pdf::paper_gaussian(4.0),
                )
            })
            .collect();
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let probs = qualification_probabilities(Point::new(0.0, 0.0), &refs, 500);
        let total: f64 = probs.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 0.03, "total = {total}");
        for (_, p) in &probs {
            assert!(*p >= 0.0 && *p <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn identical_candidates_fall_back_to_even_split() {
        let a = obj(1, 5.0, 5.0, 1.0);
        let b = obj(2, 5.0, 5.0, 1.0);
        let probs = qualification_probabilities(Point::new(5.0, 5.0), &[&a, &b], 100);
        // Both have dist_min = 0 and the same dist_max; the integration range
        // is valid here, so just require a near-even, normalised split.
        let total: f64 = probs.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 0.05);
        assert!((probs[0].1 - probs[1].1).abs() < 0.05);
    }

    #[test]
    fn empty_candidates_yield_empty_result() {
        assert!(qualification_probabilities(Point::origin(), &[], 100).is_empty());
    }
}
