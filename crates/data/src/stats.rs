//! Query-answer and timing-breakdown types shared by both indexes.
//!
//! Figure 6(c) of the paper splits the PNN query time into three components:
//! index traversal, retrieval of the objects' pdfs, and qualification
//! probability computation. [`QueryBreakdown`] carries exactly those three
//! components plus the leaf-page and object-page I/O counts of Figure 6(b),
//! so that the R-tree baseline and the UV-index report comparable numbers.

use crate::object::ObjectId;
use std::time::Duration;

/// Timing / I/O breakdown of a single PNN query.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct QueryBreakdown {
    /// Time spent traversing the index (non-leaf descent plus leaf-page
    /// reads).
    pub traversal: Duration,
    /// Time spent fetching the candidate objects' full records (pdfs).
    pub retrieval: Duration,
    /// Time spent computing qualification probabilities.
    pub probability: Duration,
    /// Number of index leaf-page reads.
    pub index_io: u64,
    /// Number of object-page reads.
    pub object_io: u64,
}

impl QueryBreakdown {
    /// Total elapsed time of the query.
    pub fn total_time(&self) -> Duration {
        self.traversal + self.retrieval + self.probability
    }

    /// Total number of page reads charged to the query.
    pub fn total_io(&self) -> u64 {
        self.index_io + self.object_io
    }

    /// Component-wise sum, used to average over a query workload.
    pub fn accumulate(&mut self, other: &QueryBreakdown) {
        self.traversal += other.traversal;
        self.retrieval += other.retrieval;
        self.probability += other.probability;
        self.index_io += other.index_io;
        self.object_io += other.object_io;
    }

    /// Component-wise sum over a whole workload (e.g. every answer of a
    /// batched PNN run).
    pub fn sum<'a>(breakdowns: impl IntoIterator<Item = &'a QueryBreakdown>) -> QueryBreakdown {
        let mut acc = QueryBreakdown::default();
        for b in breakdowns {
            acc.accumulate(b);
        }
        acc
    }
}

/// Result of a probabilistic nearest-neighbour query: the answer objects with
/// their qualification probabilities, plus the cost breakdown.
#[derive(Debug, Clone, Default)]
pub struct PnnAnswer {
    /// `(object id, qualification probability)` for every answer object
    /// (non-zero probability of being the nearest neighbour).
    pub probabilities: Vec<(ObjectId, f64)>,
    /// Candidate objects examined before verification (diagnostic).
    pub candidates_examined: usize,
    /// Cost breakdown.
    pub breakdown: QueryBreakdown,
}

impl PnnAnswer {
    /// Ids of the answer objects, sorted ascending.
    pub fn answer_ids(&self) -> Vec<ObjectId> {
        let mut ids: Vec<ObjectId> = self.probabilities.iter().map(|(id, _)| *id).collect();
        ids.sort_unstable();
        ids
    }

    /// The most probable nearest neighbour, if any. Ordered with
    /// `total_cmp` so a NaN probability (degenerate pdf) cannot panic the
    /// comparator; query processing filters non-positive (and thus NaN)
    /// probabilities before they reach an answer.
    pub fn best(&self) -> Option<(ObjectId, f64)> {
        self.probabilities
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Set difference between two consecutive PNN answers — the unit of a
/// moving-PNN (trajectory) workload, where a stream of query points along a
/// path is answered and only the *changes* to the answer set matter (cf. the
/// probabilistic moving-NN formulation of Ali et al.).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnswerDelta {
    /// Objects that joined the answer set at this step (sorted ascending).
    pub entered: Vec<ObjectId>,
    /// Objects that dropped out of the answer set at this step (sorted
    /// ascending).
    pub left: Vec<ObjectId>,
    /// Number of objects present in both the previous and the current answer.
    pub retained: usize,
}

impl AnswerDelta {
    /// Delta from `prev` to `next`, comparing the answer id sets.
    pub fn between(prev: &PnnAnswer, next: &PnnAnswer) -> Self {
        let before = prev.answer_ids();
        let after = next.answer_ids();
        let entered: Vec<ObjectId> = after
            .iter()
            .copied()
            .filter(|id| before.binary_search(id).is_err())
            .collect();
        let left: Vec<ObjectId> = before
            .iter()
            .copied()
            .filter(|id| after.binary_search(id).is_err())
            .collect();
        let retained = after.len() - entered.len();
        Self {
            entered,
            left,
            retained,
        }
    }

    /// `true` when the answer set did not change at all.
    pub fn is_unchanged(&self) -> bool {
        self.entered.is_empty() && self.left.is_empty()
    }

    /// Number of objects that entered or left — the churn of this step.
    pub fn churn(&self) -> usize {
        self.entered.len() + self.left.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_totals_and_accumulate() {
        let mut a = QueryBreakdown {
            traversal: Duration::from_millis(3),
            retrieval: Duration::from_millis(2),
            probability: Duration::from_millis(5),
            index_io: 4,
            object_io: 6,
        };
        assert_eq!(a.total_time(), Duration::from_millis(10));
        assert_eq!(a.total_io(), 10);
        let b = QueryBreakdown {
            traversal: Duration::from_millis(1),
            index_io: 1,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.traversal, Duration::from_millis(4));
        assert_eq!(a.index_io, 5);
    }

    #[test]
    fn breakdown_sum_over_workload() {
        let parts = vec![
            QueryBreakdown {
                traversal: Duration::from_millis(1),
                index_io: 2,
                ..Default::default()
            },
            QueryBreakdown {
                retrieval: Duration::from_millis(4),
                object_io: 3,
                ..Default::default()
            },
        ];
        let total = QueryBreakdown::sum(&parts);
        assert_eq!(total.traversal, Duration::from_millis(1));
        assert_eq!(total.retrieval, Duration::from_millis(4));
        assert_eq!(total.index_io, 2);
        assert_eq!(total.object_io, 3);
        assert_eq!(QueryBreakdown::sum([]), QueryBreakdown::default());
    }

    fn answer_with(ids: &[(ObjectId, f64)]) -> PnnAnswer {
        PnnAnswer {
            probabilities: ids.to_vec(),
            candidates_examined: ids.len(),
            breakdown: QueryBreakdown::default(),
        }
    }

    #[test]
    fn answer_delta_tracks_entered_left_retained() {
        let a = answer_with(&[(1, 0.5), (2, 0.3), (3, 0.2)]);
        let b = answer_with(&[(2, 0.6), (4, 0.4)]);
        let d = AnswerDelta::between(&a, &b);
        assert_eq!(d.entered, vec![4]);
        assert_eq!(d.left, vec![1, 3]);
        assert_eq!(d.retained, 1);
        assert_eq!(d.churn(), 3);
        assert!(!d.is_unchanged());

        let same = AnswerDelta::between(&a, &a);
        assert!(same.is_unchanged());
        assert_eq!(same.retained, 3);
        assert_eq!(same.churn(), 0);

        // From an empty answer everything enters.
        let from_empty = AnswerDelta::between(&PnnAnswer::default(), &a);
        assert_eq!(from_empty.entered, vec![1, 2, 3]);
        assert!(from_empty.left.is_empty());
        assert_eq!(from_empty.retained, 0);
    }

    #[test]
    fn answer_helpers() {
        let ans = PnnAnswer {
            probabilities: vec![(5, 0.2), (1, 0.7), (9, 0.1)],
            candidates_examined: 3,
            breakdown: QueryBreakdown::default(),
        };
        assert_eq!(ans.answer_ids(), vec![1, 5, 9]);
        assert_eq!(ans.best(), Some((1, 0.7)));
        assert!(PnnAnswer::default().best().is_none());
    }
}
