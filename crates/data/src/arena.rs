//! Struct-of-arrays kernel arenas for the refinement hot path.
//!
//! Every PNN query, trajectory step, and subscription miss bottoms out in the
//! same two inner loops: the `d_minmax` candidate screen over a leaf's
//! `<ID, MBC, ptr>` entries and the qualification-probability quadrature of
//! [`crate::probability`]. Both were scalar, pointer-chased, and allocation
//! heavy: the screen re-derived `dist(q, c_i)` once per predicate, and every
//! quadrature call rebuilt per-object ring tables ([`DistanceDistribution`])
//! and allocated two fresh `Vec<f64>` per integration step.
//!
//! The arenas flatten those structures into contiguous `f64` slices laid out
//! for autovectorization, hoist the per-object setup (ring radii/masses) into
//! tables built once per candidate set, and reuse scratch buffers across
//! integration steps and across queries.
//!
//! **Contract: strict bit-identity.** Every kernel here preserves the scalar
//! evaluation order per element — the same IEEE-754 operation sequence the
//! reference implementations in [`crate::probability`] and the callers'
//! scalar screens perform — so the existing brute-force/cold-rebuild oracles
//! remain the reviewer of this code. `tests/proptest_kernels.rs` asserts the
//! equivalence down to the bit.
//!
//! [`DistanceDistribution`]: crate::probability::DistanceDistribution

use crate::object::{ObjectId, UncertainObject};
use crate::probability::{ring_cdf, DEFAULT_RINGS};
use crate::storage::ObjectEntry;
use uv_geom::{Point, EPS};

/// Reusable scratch for the quadrature of
/// [`KernelArena::qualification_probabilities`]: the per-step cdf vectors the
/// scalar reference allocates afresh (`2 × steps` allocations per query)
/// live here instead and are recycled.
#[derive(Debug, Clone, Default)]
pub struct QuadratureScratch {
    cdf_lo: Vec<f64>,
    cdf_hi: Vec<f64>,
    cdf_mid: Vec<f64>,
    probs: Vec<f64>,
}

/// A candidate set flattened onto struct-of-arrays storage.
///
/// The query-independent part (ids, centers, radii, and the concentric-ring
/// discretisation of every pdf) is built once by [`assign`](Self::assign) and
/// reused across quadrature steps *and* across queries: a trajectory step or
/// safe-region reuse hit only re-binds the query point
/// ([`bind_query`](Self::bind_query)), which recomputes the three
/// per-candidate distance terms and nothing else.
#[derive(Debug, Clone, Default)]
pub struct KernelArena {
    ids: Vec<ObjectId>,
    cx: Vec<f64>,
    cy: Vec<f64>,
    radius: Vec<f64>,
    /// Ring-table extent of candidate `i`: `ring_start[i]..ring_start[i + 1]`
    /// indexes `ring_radius`/`ring_mass`. Always `len() + 1` entries.
    ring_start: Vec<usize>,
    ring_radius: Vec<f64>,
    ring_mass: Vec<f64>,
    // Query-dependent terms, refreshed by `bind_query`.
    center_dist: Vec<f64>,
    dist_min: Vec<f64>,
    dist_max: Vec<f64>,
}

impl KernelArena {
    /// Empty arena; buffers grow on first use and are then recycled.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of candidates currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no candidates are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Candidate ids in arena order.
    #[inline]
    pub fn ids(&self) -> &[ObjectId] {
        &self.ids
    }

    /// Drops all candidates but keeps the allocations.
    pub fn clear(&mut self) {
        self.ids.clear();
        self.cx.clear();
        self.cy.clear();
        self.radius.clear();
        self.ring_start.clear();
        self.ring_radius.clear();
        self.ring_mass.clear();
        self.center_dist.clear();
        self.dist_min.clear();
        self.dist_max.clear();
    }

    /// Rebuilds the arena from a candidate set, precomputing every
    /// query-independent table. The ring discretisation matches
    /// [`DistanceDistribution::new`] exactly: `pdf.num_bars()` rings (or
    /// [`DEFAULT_RINGS`]), masses from `pdf.ring_masses`, representative
    /// radius `r · (k + 0.5) / rings`.
    ///
    /// [`DistanceDistribution::new`]: crate::probability::DistanceDistribution::new
    pub fn assign<'a, I>(&mut self, candidates: I)
    where
        I: IntoIterator<Item = &'a UncertainObject>,
    {
        self.clear();
        self.ring_start.push(0);
        for o in candidates {
            let rings = o.pdf.num_bars().unwrap_or(DEFAULT_RINGS);
            let masses = o.pdf.ring_masses(rings);
            let radius = o.radius();
            self.ids.push(o.id);
            self.cx.push(o.center().x);
            self.cy.push(o.center().y);
            self.radius.push(radius);
            for k in 0..rings {
                self.ring_radius
                    .push(radius * (k as f64 + 0.5) / rings as f64);
            }
            self.ring_mass.extend_from_slice(&masses);
            self.ring_start.push(self.ring_radius.len());
        }
    }

    /// Recomputes the per-candidate distance terms for a query point, in one
    /// flat pass: `center_dist = dist(c_i, q)`,
    /// `dist_min = max(center_dist − r_i, 0)` (Equation (2)),
    /// `dist_max = center_dist + r_i` (Equation (3)) — bit-identical to
    /// `Circle::dist_min`/`dist_max` on the same circle.
    pub fn bind_query(&mut self, q: Point) {
        let n = self.len();
        self.center_dist.clear();
        self.dist_min.clear();
        self.dist_max.clear();
        for i in 0..n {
            let cd = Point::new(self.cx[i], self.cy[i]).dist(q);
            self.center_dist.push(cd);
            self.dist_min.push((cd - self.radius[i]).max(0.0));
            self.dist_max.push(cd + self.radius[i]);
        }
    }

    /// Distance cdf of candidate `i` at `t` — the arena form of
    /// [`DistanceDistribution::cdf`], same guard order, same ring
    /// accumulation order.
    ///
    /// [`DistanceDistribution::cdf`]: crate::probability::DistanceDistribution::cdf
    #[inline]
    fn cdf(&self, i: usize, t: f64) -> f64 {
        if t <= self.dist_min[i] {
            return 0.0;
        }
        if t >= self.dist_max[i] {
            return 1.0;
        }
        let d = self.center_dist[i];
        let mut acc = 0.0;
        for k in self.ring_start[i]..self.ring_start[i + 1] {
            acc += self.ring_mass[k] * ring_cdf(d, self.ring_radius[k], t);
        }
        acc.clamp(0.0, 1.0)
    }

    /// Evaluates the cdf of every candidate at `t` into `out`, one flat loop
    /// per integration step (the batched kernel).
    fn cdf_batch(&self, t: f64, out: &mut Vec<f64>) {
        out.clear();
        for i in 0..self.len() {
            out.push(self.cdf(i, t));
        }
    }

    /// Qualification probability of every held candidate for being the
    /// nearest neighbour of `q` — bit-identical to
    /// [`crate::probability::qualification_probabilities`] over the same
    /// candidates in the same order, but allocation-free on the hot path:
    /// the per-step cdf vectors live in `scratch` and the ring tables were
    /// precomputed by [`assign`](Self::assign).
    pub fn qualification_probabilities(
        &mut self,
        q: Point,
        steps: usize,
        scratch: &mut QuadratureScratch,
    ) -> Vec<(ObjectId, f64)> {
        if self.is_empty() {
            return Vec::new();
        }
        if self.len() == 1 {
            return vec![(self.ids[0], 1.0)];
        }
        let steps = steps.max(2);
        self.bind_query(q);

        let lower = self.dist_min.iter().copied().fold(f64::INFINITY, f64::min);
        let upper = self.dist_max.iter().copied().fold(f64::INFINITY, f64::min);
        if upper <= lower || !upper.is_finite() || !lower.is_finite() {
            let share = 1.0 / self.len() as f64;
            return self.ids.iter().map(|id| (*id, share)).collect();
        }

        let dt = (upper - lower) / steps as f64;
        let n = self.len();
        scratch.probs.clear();
        scratch.probs.resize(n, 0.0);
        self.cdf_batch(lower, &mut scratch.cdf_lo);
        for step in 0..steps {
            let t0 = lower + step as f64 * dt;
            let t1 = t0 + dt;
            self.cdf_batch(t1, &mut scratch.cdf_hi);
            // Trapezoidal survival factors, exactly as the scalar reference:
            // cdf averaged at the step boundaries.
            scratch.cdf_mid.clear();
            scratch.cdf_mid.extend(
                scratch
                    .cdf_lo
                    .iter()
                    .zip(&scratch.cdf_hi)
                    .map(|(lo, hi)| 0.5 * (lo + hi)),
            );
            for i in 0..n {
                let df = (scratch.cdf_hi[i] - scratch.cdf_lo[i]).max(0.0);
                if df == 0.0 {
                    continue;
                }
                let mut prod = 1.0;
                for (j, c) in scratch.cdf_mid.iter().enumerate() {
                    if j != i {
                        prod *= 1.0 - c;
                        if prod == 0.0 {
                            break;
                        }
                    }
                }
                scratch.probs[i] += df * prod;
            }
            std::mem::swap(&mut scratch.cdf_lo, &mut scratch.cdf_hi);
        }

        self.ids
            .iter()
            .zip(&scratch.probs)
            .map(|(id, p)| (*id, *p))
            .collect()
    }
}

/// Result of the fused candidate screen: the `d_minmax` bound, and the
/// signed clearance of the screen decision (half the smallest margin by
/// which any entry clears or misses the candidate threshold) — the stability
/// radius the subscription engine previously re-derived in a second scalar
/// pass over the same entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScreenResult {
    /// `min_i dist_max(q, O_i)` over all screened entries (`∞` when empty).
    pub dminmax: f64,
    /// `min_i |dist_min(q, O_i) − (dminmax + EPS)| / 2` (`∞` when empty):
    /// the radius within which the candidate screen provably cannot change.
    pub clearance: f64,
}

/// A leaf's `<ID, MBC>` entries flattened onto struct-of-arrays storage for
/// the fused `d_minmax` screen. Built once per leaf (cached alongside the
/// page read) and shared by every query landing in that leaf.
#[derive(Debug, Clone, Default)]
pub struct EntryArena {
    ids: Vec<ObjectId>,
    cx: Vec<f64>,
    cy: Vec<f64>,
    radius: Vec<f64>,
}

/// Reusable per-query scratch for [`EntryArena::screen`]: the center
/// distances of the current query, kept so the candidate pass reuses the
/// distance the `d_minmax` fold already paid for.
#[derive(Debug, Clone, Default)]
pub struct ScreenScratch {
    dist: Vec<f64>,
}

impl EntryArena {
    /// Flattens a leaf's entries. Entry order is preserved — the screen's
    /// fold order (and therefore its bits) matches a scalar pass over the
    /// same slice.
    pub fn assign(&mut self, entries: &[ObjectEntry]) {
        self.ids.clear();
        self.cx.clear();
        self.cy.clear();
        self.radius.clear();
        for e in entries {
            self.ids.push(e.id);
            self.cx.push(e.mbc.center.x);
            self.cy.push(e.mbc.center.y);
            self.radius.push(e.mbc.radius);
        }
    }

    /// Number of entries held.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no entries are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Entry ids in arena order.
    #[inline]
    pub fn ids(&self) -> &[ObjectId] {
        &self.ids
    }

    /// The fused screen: one distance evaluation per entry feeds (a) the
    /// `d_minmax` fold, (b) the candidate filter
    /// `dist_min ≤ dminmax + EPS` (indices pushed into `candidates` in entry
    /// order), and (c) the signed-clearance fold that bounds the stability
    /// disk of the screen decision.
    ///
    /// Bit-identical to the scalar sequence it replaces — a `dist_max` fold,
    /// a `dist_min` filter, and a separate clearance pass each recomputing
    /// `dist(q, c_i)` — because recomputing a deterministic expression
    /// yields the same bits as reusing it.
    pub fn screen(
        &self,
        q: Point,
        scratch: &mut ScreenScratch,
        candidates: &mut Vec<usize>,
    ) -> ScreenResult {
        scratch.dist.clear();
        let mut dminmax = f64::INFINITY;
        for i in 0..self.len() {
            let cd = Point::new(self.cx[i], self.cy[i]).dist(q);
            scratch.dist.push(cd);
            dminmax = dminmax.min(cd + self.radius[i]);
        }
        let threshold = dminmax + EPS;
        candidates.clear();
        let mut clearance = f64::INFINITY;
        for i in 0..self.len() {
            let dmin = (scratch.dist[i] - self.radius[i]).max(0.0);
            if dmin <= threshold {
                candidates.push(i);
            }
            clearance = clearance.min((dmin - threshold).abs() / 2.0);
        }
        ScreenResult { dminmax, clearance }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdf::Pdf;
    use crate::probability::qualification_probabilities;
    use uv_geom::Circle;

    fn objects() -> Vec<UncertainObject> {
        vec![
            UncertainObject::with_gaussian(1, Point::new(3.0, 1.0), 2.0),
            UncertainObject::with_uniform(2, Point::new(5.0, -2.0), 1.5),
            UncertainObject::new(3, Point::new(4.0, 4.0), 0.0, Pdf::paper_gaussian(0.0)),
            UncertainObject::with_uniform(4, Point::new(2.5, 2.5), 3.0),
        ]
    }

    #[test]
    fn arena_quadrature_is_bit_identical_to_scalar() {
        let objs = objects();
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let mut arena = KernelArena::new();
        arena.assign(objs.iter());
        let mut scratch = QuadratureScratch::default();
        for q in [
            Point::new(0.0, 0.0),
            Point::new(3.5, 1.5),
            Point::new(4.0, 4.0),
            Point::new(-20.0, 13.0),
        ] {
            let scalar = qualification_probabilities(q, &refs, 77);
            let batched = arena.qualification_probabilities(q, 77, &mut scratch);
            assert_eq!(scalar.len(), batched.len());
            for ((ia, pa), (ib, pb)) in scalar.iter().zip(&batched) {
                assert_eq!(ia, ib);
                assert_eq!(pa.to_bits(), pb.to_bits(), "q = {q:?}");
            }
        }
    }

    #[test]
    fn arena_edge_cases_match_scalar() {
        let mut arena = KernelArena::new();
        let mut scratch = QuadratureScratch::default();
        // Empty.
        arena.assign(std::iter::empty());
        assert!(arena
            .qualification_probabilities(Point::origin(), 100, &mut scratch)
            .is_empty());
        // Single candidate short-circuits to probability one.
        let solo = [UncertainObject::with_uniform(9, Point::new(1.0, 1.0), 2.0)];
        arena.assign(solo.iter());
        assert_eq!(
            arena.qualification_probabilities(Point::origin(), 100, &mut scratch),
            vec![(9, 1.0)]
        );
        // Co-located candidates hit the degenerate uniform split.
        let twins = [
            UncertainObject::with_uniform(1, Point::new(5.0, 5.0), 0.0),
            UncertainObject::with_uniform(2, Point::new(5.0, 5.0), 0.0),
        ];
        let refs: Vec<&UncertainObject> = twins.iter().collect();
        arena.assign(twins.iter());
        let scalar = qualification_probabilities(Point::new(5.0, 5.0), &refs, 100);
        let batched = arena.qualification_probabilities(Point::new(5.0, 5.0), 100, &mut scratch);
        assert_eq!(scalar, batched);
    }

    #[test]
    fn arena_is_reusable_across_queries() {
        let objs = objects();
        let refs: Vec<&UncertainObject> = objs.iter().collect();
        let mut arena = KernelArena::new();
        arena.assign(objs.iter());
        let mut scratch = QuadratureScratch::default();
        // Two different queries against the same assignment — the second
        // must not see stale per-query state.
        let _ = arena.qualification_probabilities(Point::new(9.0, 9.0), 64, &mut scratch);
        let scalar = qualification_probabilities(Point::new(1.0, 2.0), &refs, 64);
        let batched = arena.qualification_probabilities(Point::new(1.0, 2.0), 64, &mut scratch);
        for ((ia, pa), (ib, pb)) in scalar.iter().zip(&batched) {
            assert_eq!(ia, ib);
            assert_eq!(pa.to_bits(), pb.to_bits());
        }
    }

    #[test]
    fn fused_screen_matches_scalar_passes() {
        let entries: Vec<ObjectEntry> = objects()
            .iter()
            .map(|o| ObjectEntry {
                id: o.id,
                mbc: o.mbc(),
                ptr: 0,
            })
            .collect();
        let mut arena = EntryArena::default();
        arena.assign(&entries);
        let mut scratch = ScreenScratch::default();
        let mut candidates = Vec::new();
        for q in [Point::new(0.0, 0.0), Point::new(4.0, 4.0)] {
            let r = arena.screen(q, &mut scratch, &mut candidates);
            // Scalar reference: three independent passes.
            let dminmax = entries
                .iter()
                .map(|e| e.dist_max(q))
                .fold(f64::INFINITY, f64::min);
            assert_eq!(r.dminmax.to_bits(), dminmax.to_bits());
            let threshold = dminmax + EPS;
            let scalar_cands: Vec<usize> = entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.dist_min(q) <= threshold)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(candidates, scalar_cands);
            let clearance = entries
                .iter()
                .map(|e| (e.dist_min(q) - threshold).abs() / 2.0)
                .fold(f64::INFINITY, f64::min);
            assert_eq!(r.clearance.to_bits(), clearance.to_bits());
        }
    }

    #[test]
    fn empty_screen_is_infinite() {
        let arena = EntryArena::default();
        let mut scratch = ScreenScratch::default();
        let mut candidates = vec![7];
        let r = arena.screen(Point::origin(), &mut scratch, &mut candidates);
        assert!(candidates.is_empty());
        assert!(r.dminmax.is_infinite());
        assert!(r.clearance.is_infinite());
    }

    #[test]
    fn zero_radius_entries_screen_cleanly() {
        let entries = [
            ObjectEntry {
                id: 1,
                mbc: Circle::point(Point::new(1.0, 0.0)),
                ptr: 0,
            },
            ObjectEntry {
                id: 2,
                mbc: Circle::point(Point::new(0.0, 1.0)),
                ptr: 0,
            },
        ];
        let mut arena = EntryArena::default();
        arena.assign(&entries);
        let mut scratch = ScreenScratch::default();
        let mut candidates = Vec::new();
        let r = arena.screen(Point::origin(), &mut scratch, &mut candidates);
        assert_eq!(candidates, vec![0, 1]);
        assert!(r.dminmax.is_finite());
        assert!(!r.clearance.is_nan());
    }
}
