//! Dataset generators reproducing the experimental setup of Section VI-A.
//!
//! * **Uniform** — the synthetic workload of Figures 6 and 7: object centres
//!   uniformly distributed in a 10k×10k domain, circular uncertainty regions
//!   of diameter 40, Gaussian pdf (sigma = diameter/6) as 20 histogram bars.
//! * **GaussianSkew** — the skewed workloads of Figure 7(g): centres drawn
//!   from a Gaussian around the domain centre with standard deviation
//!   `sigma`; a smaller `sigma` means a denser, more skewed dataset.
//! * **Utility / Roads / Rrlines** — synthetic stand-ins for the three real
//!   German datasets of Table II (17K, 30K and 36K objects). The real files
//!   are not redistributable here, so the generators reproduce the
//!   characteristics that matter to the experiments: cardinality and a
//!   non-uniform, clustered / line-following spatial distribution.
//!   (Substitution documented in DESIGN.md.)

use crate::object::UncertainObject;
use crate::pdf::Pdf;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use uv_geom::{Point, Rect};

/// Domain side length used throughout the paper's experiments.
pub const PAPER_DOMAIN_SIDE: f64 = 10_000.0;
/// Default uncertainty-region diameter.
pub const PAPER_DIAMETER: f64 = 40.0;

/// The spatial distribution of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Uniformly distributed centres.
    Uniform,
    /// Centres drawn from an isotropic Gaussian around the domain centre with
    /// the given standard deviation (the skew parameter of Figure 7(g)).
    GaussianSkew { sigma: f64 },
    /// Clustered point field resembling utility stations around towns.
    Utility,
    /// Points jittered along meandering polylines resembling a road network.
    Roads,
    /// Points along a few long corridors resembling railroad lines.
    Rrlines,
}

/// Parameters of a generated dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of objects.
    pub n: usize,
    /// Side length of the square domain `D`.
    pub domain_side: f64,
    /// Diameter of every uncertainty region.
    pub diameter: f64,
    /// Spatial distribution.
    pub kind: DatasetKind,
    /// Use a uniform pdf instead of the default Gaussian-histogram pdf.
    pub uniform_pdf: bool,
    /// RNG seed (generation is fully deterministic given the config).
    pub seed: u64,
}

impl GeneratorConfig {
    /// The paper's default synthetic configuration with `n` objects.
    pub fn paper_uniform(n: usize) -> Self {
        Self {
            n,
            domain_side: PAPER_DOMAIN_SIDE,
            diameter: PAPER_DIAMETER,
            kind: DatasetKind::Uniform,
            uniform_pdf: false,
            seed: 42,
        }
    }

    /// Skewed configuration for Figure 7(g).
    pub fn paper_skewed(n: usize, sigma: f64) -> Self {
        Self {
            kind: DatasetKind::GaussianSkew { sigma },
            ..Self::paper_uniform(n)
        }
    }

    /// Sets the uncertainty-region diameter (Figures 6(d) and 7(f)).
    pub fn with_diameter(mut self, diameter: f64) -> Self {
        self.diameter = diameter;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// A generated dataset: the objects plus the domain they live in.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub objects: Vec<UncertainObject>,
    pub domain: Rect,
    pub config: GeneratorConfig,
}

impl Dataset {
    /// Generates a dataset according to `config`.
    pub fn generate(config: GeneratorConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let domain = Rect::square(config.domain_side);
        let radius = config.diameter / 2.0;
        let centers = match config.kind {
            DatasetKind::Uniform => uniform_centers(&mut rng, config.n, &domain, radius),
            DatasetKind::GaussianSkew { sigma } => {
                gaussian_centers(&mut rng, config.n, &domain, radius, sigma)
            }
            DatasetKind::Utility => clustered_centers(&mut rng, config.n, &domain, radius, 60),
            DatasetKind::Roads => polyline_centers(&mut rng, config.n, &domain, radius, 40, 12),
            DatasetKind::Rrlines => polyline_centers(&mut rng, config.n, &domain, radius, 10, 3),
        };
        let objects = centers
            .into_iter()
            .enumerate()
            .map(|(i, c)| {
                if config.uniform_pdf {
                    UncertainObject::with_uniform(i as u32, c, radius)
                } else {
                    UncertainObject::new(i as u32, c, radius, Pdf::paper_gaussian(radius))
                }
            })
            .collect();
        Self {
            objects,
            domain,
            config,
        }
    }

    /// The "real dataset" stand-ins of Table II with the paper's
    /// cardinalities, optionally scaled down by `scale` (e.g. `0.1` for a
    /// ten-times smaller run).
    pub fn table2_datasets(scale: f64) -> Vec<(&'static str, Dataset)> {
        let sized = |name: &'static str, n: usize, kind: DatasetKind| {
            let n = ((n as f64 * scale).round() as usize).max(10);
            let config = GeneratorConfig {
                kind,
                ..GeneratorConfig::paper_uniform(n)
            };
            (name, Dataset::generate(config))
        };
        vec![
            sized("utility", 17_000, DatasetKind::Utility),
            sized("roads", 30_000, DatasetKind::Roads),
            sized("rrlines", 36_000, DatasetKind::Rrlines),
        ]
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when the dataset holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Uniformly distributed PNN query points over the domain (the paper uses
    /// 50 of them per measurement).
    pub fn query_points(&self, count: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                Point::new(
                    rng.gen_range(self.domain.min_x..self.domain.max_x),
                    rng.gen_range(self.domain.min_y..self.domain.max_y),
                )
            })
            .collect()
    }
}

fn clamp_into(domain: &Rect, radius: f64, p: Point) -> Point {
    Point::new(
        p.x.clamp(domain.min_x + radius, domain.max_x - radius),
        p.y.clamp(domain.min_y + radius, domain.max_y - radius),
    )
}

fn uniform_centers(rng: &mut StdRng, n: usize, domain: &Rect, radius: f64) -> Vec<Point> {
    (0..n)
        .map(|_| {
            Point::new(
                rng.gen_range(domain.min_x + radius..domain.max_x - radius),
                rng.gen_range(domain.min_y + radius..domain.max_y - radius),
            )
        })
        .collect()
}

/// Standard normal sample via Box–Muller (keeps the dependency set minimal).
fn std_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn gaussian_centers(
    rng: &mut StdRng,
    n: usize,
    domain: &Rect,
    radius: f64,
    sigma: f64,
) -> Vec<Point> {
    let c = domain.center();
    (0..n)
        .map(|_| {
            let p = Point::new(c.x + std_normal(rng) * sigma, c.y + std_normal(rng) * sigma);
            clamp_into(domain, radius, p)
        })
        .collect()
}

fn clustered_centers(
    rng: &mut StdRng,
    n: usize,
    domain: &Rect,
    radius: f64,
    clusters: usize,
) -> Vec<Point> {
    let clusters = clusters.max(1);
    let hubs = uniform_centers(rng, clusters, domain, radius);
    let spread = domain.width() / 70.0;
    (0..n)
        .map(|_| {
            let hub = hubs[rng.gen_range(0..hubs.len())];
            let p = Point::new(
                hub.x + std_normal(rng) * spread,
                hub.y + std_normal(rng) * spread,
            );
            clamp_into(domain, radius, p)
        })
        .collect()
}

fn polyline_centers(
    rng: &mut StdRng,
    n: usize,
    domain: &Rect,
    radius: f64,
    lines: usize,
    segments_per_line: usize,
) -> Vec<Point> {
    let lines = lines.max(1);
    let segments_per_line = segments_per_line.max(1);
    // Build meandering polylines through the domain.
    let mut polylines: Vec<Vec<Point>> = Vec::with_capacity(lines);
    for _ in 0..lines {
        let mut pts = Vec::with_capacity(segments_per_line + 1);
        let mut p = Point::new(
            rng.gen_range(domain.min_x..domain.max_x),
            rng.gen_range(domain.min_y..domain.max_y),
        );
        pts.push(p);
        let step = domain.width() / segments_per_line as f64;
        let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        for _ in 0..segments_per_line {
            heading += rng.gen_range(-0.6..0.6);
            p = clamp_into(
                domain,
                radius,
                Point::new(p.x + heading.cos() * step, p.y + heading.sin() * step),
            );
            pts.push(p);
        }
        polylines.push(pts);
    }
    // Sample points along random segments with a small cross-jitter.
    let jitter = domain.width() / 400.0;
    (0..n)
        .map(|_| {
            let line = &polylines[rng.gen_range(0..polylines.len())];
            let seg = rng.gen_range(0..line.len() - 1);
            let t: f64 = rng.gen_range(0.0..1.0);
            let base = line[seg].lerp(line[seg + 1], t);
            let p = Point::new(
                base.x + std_normal(rng) * jitter,
                base.y + std_normal(rng) * jitter,
            );
            clamp_into(domain, radius, p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn center_spread(objects: &[UncertainObject]) -> f64 {
        let n = objects.len() as f64;
        let mean = objects
            .iter()
            .fold(Point::origin(), |acc, o| acc + o.center())
            / n;
        (objects
            .iter()
            .map(|o| o.center().dist_sq(mean))
            .sum::<f64>()
            / n)
            .sqrt()
    }

    #[test]
    fn uniform_dataset_respects_domain_and_size() {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(500));
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.domain, Rect::square(PAPER_DOMAIN_SIDE));
        for o in &ds.objects {
            assert_eq!(o.radius(), PAPER_DIAMETER / 2.0);
            assert!(ds.domain.contains_rect(&o.mbr()), "region leaves domain");
        }
        // Ids are unique and dense.
        let mut ids: Vec<u32> = ds.objects.iter().map(|o| o.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 500);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = Dataset::generate(GeneratorConfig::paper_uniform(100));
        let b = Dataset::generate(GeneratorConfig::paper_uniform(100));
        let c = Dataset::generate(GeneratorConfig::paper_uniform(100).with_seed(7));
        assert_eq!(a.objects, b.objects);
        assert_ne!(a.objects, c.objects);
    }

    #[test]
    fn skewed_dataset_is_denser_than_uniform() {
        let uniform = Dataset::generate(GeneratorConfig::paper_uniform(800));
        let skewed = Dataset::generate(GeneratorConfig::paper_skewed(800, 1500.0));
        let very_skewed = Dataset::generate(GeneratorConfig::paper_skewed(800, 600.0));
        let su = center_spread(&uniform.objects);
        let ss = center_spread(&skewed.objects);
        let sv = center_spread(&very_skewed.objects);
        assert!(ss < su, "skewed spread {ss} should be below uniform {su}");
        assert!(sv < ss, "smaller sigma must give smaller spread");
    }

    #[test]
    fn diameter_override_applies() {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(50).with_diameter(100.0));
        for o in &ds.objects {
            assert_eq!(o.radius(), 50.0);
        }
    }

    #[test]
    fn germany_like_datasets_have_expected_sizes() {
        let sets = Dataset::table2_datasets(0.01);
        assert_eq!(sets.len(), 3);
        let names: Vec<&str> = sets.iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["utility", "roads", "rrlines"]);
        assert_eq!(sets[0].1.len(), 170);
        assert_eq!(sets[1].1.len(), 300);
        assert_eq!(sets[2].1.len(), 360);
        for (_, ds) in &sets {
            for o in &ds.objects {
                assert!(ds.domain.contains(o.center()));
            }
        }
    }

    #[test]
    fn clustered_data_is_more_concentrated_locally_than_uniform() {
        // Compare the average nearest-centre distance: clustered data has a
        // much smaller one at equal cardinality.
        let uniform = Dataset::generate(GeneratorConfig::paper_uniform(400));
        let utility = Dataset::generate(GeneratorConfig {
            kind: DatasetKind::Utility,
            ..GeneratorConfig::paper_uniform(400)
        });
        let avg_nn = |ds: &Dataset| {
            let mut total = 0.0;
            for (i, o) in ds.objects.iter().enumerate() {
                let mut best = f64::INFINITY;
                for (j, p) in ds.objects.iter().enumerate() {
                    if i != j {
                        best = best.min(o.center().dist(p.center()));
                    }
                }
                total += best;
            }
            total / ds.objects.len() as f64
        };
        assert!(avg_nn(&utility) < avg_nn(&uniform));
    }

    #[test]
    fn query_points_are_inside_domain_and_deterministic() {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(10));
        let q1 = ds.query_points(50, 1);
        let q2 = ds.query_points(50, 1);
        let q3 = ds.query_points(50, 2);
        assert_eq!(q1.len(), 50);
        assert_eq!(q1, q2);
        assert_ne!(q1, q3);
        for q in &q1 {
            assert!(ds.domain.contains(*q));
        }
    }
}
