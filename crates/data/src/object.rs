//! Uncertain objects: a circular uncertainty region plus a pdf bounded in it.

use crate::pdf::Pdf;
use serde::{Deserialize, Serialize};
use uv_geom::{Circle, Point, Rect};
use uv_store::codec::{Decode, Encode};

/// Identifier of an uncertain object (`O_i` in the paper).
pub type ObjectId = u32;

/// An uncertain object with attribute (location) uncertainty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UncertainObject {
    /// Object identifier.
    pub id: ObjectId,
    /// Circular uncertainty region `Cir(c_i, r_i)`.
    pub region: Circle,
    /// Probability density function bounded inside `region`.
    pub pdf: Pdf,
}

impl UncertainObject {
    /// Creates an object with an explicit pdf.
    pub fn new(id: ObjectId, center: Point, radius: f64, pdf: Pdf) -> Self {
        Self {
            id,
            region: Circle::new(center, radius),
            pdf,
        }
    }

    /// Creates an object with the paper's default Gaussian pdf
    /// (sigma = diameter / 6, 20 histogram bars).
    pub fn with_gaussian(id: ObjectId, center: Point, radius: f64) -> Self {
        Self::new(id, center, radius, Pdf::paper_gaussian(radius))
    }

    /// Creates an object with a uniform pdf over the region.
    pub fn with_uniform(id: ObjectId, center: Point, radius: f64) -> Self {
        Self::new(id, center, radius, Pdf::Uniform)
    }

    /// Converts a non-circular uncertainty region (given by its boundary
    /// vertices) into an object whose region is the minimal bounding circle,
    /// as prescribed in Section III-C: the enlargement can only grow the
    /// UV-cell, so no answer object is ever lost.
    pub fn from_polygon(id: ObjectId, vertices: &[Point], pdf: Pdf) -> Option<Self> {
        let mbc = Circle::min_bounding_circle(vertices)?;
        Some(Self {
            id,
            region: mbc,
            pdf,
        })
    }

    /// Centre of the uncertainty region.
    #[inline]
    pub fn center(&self) -> Point {
        self.region.center
    }

    /// Radius of the uncertainty region.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.region.radius
    }

    /// Minimum possible distance between the object and `q` (Equation (2)).
    #[inline]
    pub fn dist_min(&self, q: Point) -> f64 {
        self.region.dist_min(q)
    }

    /// Maximum possible distance between the object and `q` (Equation (3)).
    #[inline]
    pub fn dist_max(&self, q: Point) -> f64 {
        self.region.dist_max(q)
    }

    /// Minimum bounding rectangle of the uncertainty region (what the R-tree
    /// indexes).
    #[inline]
    pub fn mbr(&self) -> Rect {
        self.region.mbr()
    }

    /// Minimum bounding circle of the uncertainty region (stored in leaf
    /// pages as `MBC`). For circular regions this is the region itself.
    #[inline]
    pub fn mbc(&self) -> Circle {
        self.region
    }
}

/// Snapshot codec: id, uncertainty region and the *lossless* pdf
/// representation (the page-record encoding of `storage` truncates
/// histograms at 20 bars; the snapshot must not).
impl Encode for UncertainObject {
    fn write_to<W: std::io::Write + ?Sized>(&self, w: &mut W) -> std::io::Result<()> {
        self.id.write_to(w)?;
        self.region.write_to(w)?;
        self.pdf.write_to(w)
    }
}

impl Decode for UncertainObject {
    fn read_from<R: std::io::Read + ?Sized>(r: &mut R) -> std::io::Result<Self> {
        Ok(Self {
            id: ObjectId::read_from(r)?,
            region: Circle::read_from(r)?,
            pdf: Pdf::read_from(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_follow_paper_equations() {
        let o = UncertainObject::with_uniform(1, Point::new(0.0, 0.0), 3.0);
        let q = Point::new(10.0, 0.0);
        assert!((o.dist_min(q) - 7.0).abs() < 1e-12);
        assert!((o.dist_max(q) - 13.0).abs() < 1e-12);
        // Query inside the region.
        let inside = Point::new(1.0, 0.0);
        assert_eq!(o.dist_min(inside), 0.0);
    }

    #[test]
    fn gaussian_constructor_uses_default_bars() {
        let o = UncertainObject::with_gaussian(7, Point::new(5.0, 5.0), 20.0);
        assert_eq!(o.pdf.num_bars(), Some(crate::pdf::DEFAULT_HISTOGRAM_BARS));
        assert_eq!(o.id, 7);
        assert_eq!(o.radius(), 20.0);
    }

    #[test]
    fn from_polygon_uses_minimal_bounding_circle() {
        let verts = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let o = UncertainObject::from_polygon(3, &verts, Pdf::Uniform).unwrap();
        // MBC of a 4x2 rectangle: centre (2, 1), radius sqrt(5).
        assert!((o.center().x - 2.0).abs() < 1e-9);
        assert!((o.center().y - 1.0).abs() < 1e-9);
        assert!((o.radius() - 5.0_f64.sqrt()).abs() < 1e-9);
        for v in verts {
            assert!(o.region.contains(v));
        }
        assert!(UncertainObject::from_polygon(4, &[], Pdf::Uniform).is_none());
    }

    #[test]
    fn mbr_wraps_region() {
        let o = UncertainObject::with_uniform(1, Point::new(10.0, 20.0), 5.0);
        let r = o.mbr();
        assert_eq!(r, Rect::new(5.0, 15.0, 15.0, 25.0));
        assert_eq!(o.mbc(), o.region);
    }
}
