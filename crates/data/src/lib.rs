//! Uncertain-object model of the paper (attribute uncertainty): every object
//! has a closed circular *uncertainty region* and a probability density
//! function bounded inside it.
//!
//! The crate provides:
//!
//! * [`UncertainObject`] — id, circular region and pdf, with the
//!   `distmin`/`distmax` distances of Equations (2)–(3) and the conversion of
//!   non-circular regions to minimal bounding circles (Section III-C).
//! * [`Pdf`] — the uniform and Gaussian-histogram (20 bars) uncertainty pdfs
//!   used in the experimental setup (Section VI-A).
//! * [`probability`] — the numerical-integration qualification-probability
//!   computation of Cheng et al. \[14\] that the paper plugs in for the final
//!   PNN verification step.
//! * [`arena`] — struct-of-arrays kernel arenas batching the candidate
//!   screen and the quadrature over contiguous `f64` slices, bit-identical
//!   to the scalar references in [`probability`].
//! * [`generator`] — synthetic workloads: the uniform 10k×10k dataset, the
//!   skewed (Gaussian-centre) datasets of Figure 7(g) and "Germany-like"
//!   stand-ins for the utility / roads / rrlines real datasets of Table II.
//!
//! *The paper-to-code map for the whole workspace — every definition, lemma,
//! algorithm and experiment of the paper, with its module and key functions —
//! lives in `docs/PAPER_MAP.md` at the repository root.*

pub mod arena;
pub mod generator;
pub mod object;
pub mod pdf;
pub mod probability;
pub mod stats;
pub mod storage;

pub use arena::{EntryArena, KernelArena, QuadratureScratch, ScreenResult, ScreenScratch};
pub use generator::{Dataset, DatasetKind, GeneratorConfig};
pub use object::{ObjectId, UncertainObject};
pub use pdf::{Pdf, DEFAULT_HISTOGRAM_BARS};
pub use probability::{qualification_probabilities, DistanceDistribution, DEFAULT_RINGS};
pub use stats::{AnswerDelta, PnnAnswer, QueryBreakdown};
pub use storage::{ObjectEntry, ObjectStore};
