//! Uncertainty pdfs bounded inside a circular uncertainty region.
//!
//! The paper's experiments attach a Gaussian pdf to every object: mean at the
//! region centre, standard deviation equal to one sixth of the region
//! diameter, represented as 20 histogram bars (Section VI-A). Because both
//! the uniform and the (isotropic, centred) Gaussian pdf are rotationally
//! symmetric, the histogram bars are concentric rings: each bar records the
//! probability that the object lies in that ring. That radial form is exactly
//! what the qualification-probability integration needs.

use serde::{Deserialize, Serialize};
use uv_store::codec::{corrupt, Decode, Encode};

/// Number of histogram bars used by the paper's setup.
pub const DEFAULT_HISTOGRAM_BARS: usize = 20;

/// A probability density function over a circular uncertainty region of a
/// given radius. The pdf is rotationally symmetric around the region centre.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pdf {
    /// Uniform distribution over the disk.
    Uniform,
    /// Radial histogram: `bars[k]` is the probability mass of the ring
    /// `[k·r/m, (k+1)·r/m)` where `m = bars.len()` and `r` is the region
    /// radius. Bars are normalised to sum to one.
    Histogram { bars: Vec<f64> },
}

impl Pdf {
    /// Gaussian pdf truncated to the region, discretised into `bars`
    /// concentric rings. `sigma_fraction` is the standard deviation expressed
    /// as a fraction of the region *diameter*; the paper uses 1/6.
    pub fn gaussian(radius: f64, sigma_fraction: f64, bars: usize) -> Pdf {
        assert!(bars > 0, "histogram needs at least one bar");
        if radius <= 0.0 || sigma_fraction <= 0.0 {
            // Degenerate region: all mass at the centre.
            let mut masses = vec![0.0; bars];
            masses[0] = 1.0;
            return Pdf::Histogram { bars: masses };
        }
        let sigma = 2.0 * radius * sigma_fraction;
        let mut masses = Vec::with_capacity(bars);
        let mut total = 0.0;
        for k in 0..bars {
            let inner = radius * k as f64 / bars as f64;
            let outer = radius * (k + 1) as f64 / bars as f64;
            // Mass of an isotropic 2-D Gaussian in the annulus [inner, outer]:
            // exp(-inner^2 / 2 sigma^2) - exp(-outer^2 / 2 sigma^2).
            let m = (-(inner * inner) / (2.0 * sigma * sigma)).exp()
                - (-(outer * outer) / (2.0 * sigma * sigma)).exp();
            masses.push(m);
            total += m;
        }
        if total <= 0.0 || total.is_nan() {
            // Numerically degenerate: all mass at the centre.
            masses.iter_mut().for_each(|m| *m = 0.0);
            masses[0] = 1.0;
            total = 1.0;
        }
        for m in &mut masses {
            *m /= total;
        }
        Pdf::Histogram { bars: masses }
    }

    /// Gaussian pdf with the paper's defaults (sigma = diameter / 6, 20 bars).
    pub fn paper_gaussian(radius: f64) -> Pdf {
        Pdf::gaussian(radius, 1.0 / 6.0, DEFAULT_HISTOGRAM_BARS)
    }

    /// Probability mass per concentric ring when the region is divided into
    /// `rings` equal-width rings. This is the radial discretisation consumed
    /// by the distance-distribution machinery.
    pub fn ring_masses(&self, rings: usize) -> Vec<f64> {
        assert!(rings > 0);
        match self {
            Pdf::Uniform => {
                // Ring area fraction: ((k+1)^2 - k^2) / rings^2.
                let denom = (rings * rings) as f64;
                (0..rings).map(|k| ((2 * k + 1) as f64) / denom).collect()
            }
            Pdf::Histogram { bars } => {
                if bars.len() == rings {
                    return bars.clone();
                }
                // Re-bin by proportional overlap of ring intervals in
                // normalised radius [0, 1].
                let mut out = vec![0.0; rings];
                let src_w = 1.0 / bars.len() as f64;
                let dst_w = 1.0 / rings as f64;
                for (i, mass) in bars.iter().enumerate() {
                    let s0 = i as f64 * src_w;
                    let s1 = s0 + src_w;
                    for (j, slot) in out.iter_mut().enumerate() {
                        let d0 = j as f64 * dst_w;
                        let d1 = d0 + dst_w;
                        let overlap = (s1.min(d1) - s0.max(d0)).max(0.0);
                        *slot += mass * overlap / src_w;
                    }
                }
                out
            }
        }
    }

    /// Number of bars for histogram pdfs; `None` for the analytic uniform pdf.
    pub fn num_bars(&self) -> Option<usize> {
        match self {
            Pdf::Uniform => None,
            Pdf::Histogram { bars } => Some(bars.len()),
        }
    }
}

/// Snapshot codec: a one-byte discriminant followed by the full bar vector.
/// Unlike the 20-bar page record of `storage`, this representation is
/// lossless for any bar count — it is what the snapshot subsystem persists.
impl Encode for Pdf {
    fn write_to<W: std::io::Write + ?Sized>(&self, w: &mut W) -> std::io::Result<()> {
        match self {
            Pdf::Uniform => 0u8.write_to(w),
            Pdf::Histogram { bars } => {
                1u8.write_to(w)?;
                bars.write_to(w)
            }
        }
    }
}

impl Decode for Pdf {
    fn read_from<R: std::io::Read + ?Sized>(r: &mut R) -> std::io::Result<Self> {
        match u8::read_from(r)? {
            0 => Ok(Pdf::Uniform),
            1 => Ok(Pdf::Histogram {
                bars: Vec::read_from(r)?,
            }),
            other => Err(corrupt(format!("invalid pdf discriminant {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_sums_to_one(masses: &[f64]) {
        let total: f64 = masses.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "sum = {total}");
        assert!(masses.iter().all(|m| *m >= 0.0));
    }

    #[test]
    fn uniform_ring_masses_are_area_proportional() {
        let pdf = Pdf::Uniform;
        let masses = pdf.ring_masses(4);
        assert_sums_to_one(&masses);
        // Areas grow linearly in (2k+1): 1, 3, 5, 7 (normalised by 16).
        assert!((masses[0] - 1.0 / 16.0).abs() < 1e-12);
        assert!((masses[3] - 7.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_concentrates_mass_near_center() {
        let pdf = Pdf::paper_gaussian(20.0);
        let masses = pdf.ring_masses(DEFAULT_HISTOGRAM_BARS);
        assert_sums_to_one(&masses);
        // With sigma = diameter/6 = radius/3, the inner half of the region
        // (1.5 sigma) holds about 1 - exp(-1.125) ~ 0.675 of the mass —
        // clearly more than the uniform pdf's 0.25 for the same area.
        let inner: f64 = masses[..DEFAULT_HISTOGRAM_BARS / 2].iter().sum();
        assert!(inner > 0.6, "inner mass = {inner}");
        assert!(inner > Pdf::Uniform.ring_masses(2)[0] + 0.3);
        // Mass is unimodal-ish: the outermost ring has less mass than the peak.
        let max = masses.iter().cloned().fold(0.0_f64, f64::max);
        assert!(masses[DEFAULT_HISTOGRAM_BARS - 1] < max);
    }

    #[test]
    fn gaussian_zero_radius_degenerates_gracefully() {
        let pdf = Pdf::gaussian(0.0, 1.0 / 6.0, 5);
        let masses = pdf.ring_masses(5);
        assert_sums_to_one(&masses);
        assert!((masses[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_rebinning_preserves_mass() {
        let pdf = Pdf::paper_gaussian(10.0);
        for rings in [1, 3, 7, 20, 40] {
            let masses = pdf.ring_masses(rings);
            assert_eq!(masses.len(), rings);
            assert_sums_to_one(&masses);
        }
    }

    #[test]
    fn rebinning_identity_when_sizes_match() {
        let pdf = Pdf::gaussian(10.0, 0.25, 8);
        let direct = match &pdf {
            Pdf::Histogram { bars } => bars.clone(),
            _ => unreachable!(),
        };
        assert_eq!(pdf.ring_masses(8), direct);
    }

    #[test]
    fn num_bars() {
        assert_eq!(Pdf::Uniform.num_bars(), None);
        assert_eq!(
            Pdf::paper_gaussian(5.0).num_bars(),
            Some(DEFAULT_HISTOGRAM_BARS)
        );
    }
}
