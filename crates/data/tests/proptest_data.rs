//! Property-based tests of the uncertain-data model: pdfs, distance
//! distributions and qualification probabilities.

use proptest::prelude::*;
use uv_data::{qualification_probabilities, DistanceDistribution, Pdf, UncertainObject};
use uv_geom::Point;

fn object_strategy(id: u32) -> impl Strategy<Value = UncertainObject> {
    (
        -500.0..500.0f64,
        -500.0..500.0f64,
        0.0..60.0f64,
        prop::bool::ANY,
    )
        .prop_map(move |(x, y, r, gaussian)| {
            if gaussian {
                UncertainObject::with_gaussian(id, Point::new(x, y), r)
            } else {
                UncertainObject::with_uniform(id, Point::new(x, y), r)
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// Ring masses always form a probability distribution, for any pdf,
    /// radius and binning.
    #[test]
    fn ring_masses_are_a_distribution(
        radius in 0.0..100.0f64,
        sigma_fraction in 0.01..0.6f64,
        bars in 1usize..40,
        rings in 1usize..40,
    ) {
        for pdf in [Pdf::Uniform, Pdf::gaussian(radius, sigma_fraction, bars)] {
            let masses = pdf.ring_masses(rings);
            prop_assert_eq!(masses.len(), rings);
            let total: f64 = masses.iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
            prop_assert!(masses.iter().all(|m| *m >= -1e-12));
        }
    }

    /// The distance cdf is monotone, 0 before distmin and 1 after distmax.
    #[test]
    fn distance_cdf_is_monotone(o in object_strategy(0), qx in -600.0..600.0f64, qy in -600.0..600.0f64) {
        let q = Point::new(qx, qy);
        let dist = DistanceDistribution::new(&o, q);
        prop_assert!(dist.dist_min <= dist.dist_max + 1e-9);
        prop_assert_eq!(dist.cdf(dist.dist_min - 1.0), 0.0);
        prop_assert_eq!(dist.cdf(dist.dist_max + 1.0), 1.0);
        let span = (dist.dist_max - dist.dist_min).max(1e-6);
        let mut prev = -1e-12;
        for k in 0..=20 {
            let t = dist.dist_min + span * k as f64 / 20.0;
            let c = dist.cdf(t);
            prop_assert!((-1e-12..=1.0 + 1e-12).contains(&c));
            prop_assert!(c >= prev - 1e-9, "cdf decreased at t={t}");
            prev = c;
        }
    }

    /// Qualification probabilities are non-negative, bounded by one, and sum
    /// to ~1 for any candidate set that includes every possible NN.
    #[test]
    fn qualification_probabilities_form_a_distribution(
        objects in prop::collection::vec(
            (-300.0..300.0f64, -300.0..300.0f64, 0.1..50.0f64),
            1..8,
        ),
        qx in -300.0..300.0f64,
        qy in -300.0..300.0f64,
    ) {
        let objects: Vec<UncertainObject> = objects
            .into_iter()
            .enumerate()
            .map(|(i, (x, y, r))| UncertainObject::with_gaussian(i as u32, Point::new(x, y), r))
            .collect();
        let q = Point::new(qx, qy);
        let refs: Vec<&UncertainObject> = objects.iter().collect();
        let probs = qualification_probabilities(q, &refs, 200);
        prop_assert_eq!(probs.len(), objects.len());
        let total: f64 = probs.iter().map(|(_, p)| p).sum();
        prop_assert!(total <= 1.0 + 1e-6, "total {total} exceeds 1");
        prop_assert!(total > 0.9, "total {total} too small");
        for (_, p) in probs {
            prop_assert!((-1e-12..=1.0 + 1e-9).contains(&p));
        }
    }

    /// An object whose minimum distance exceeds another's maximum distance
    /// never receives positive probability.
    #[test]
    fn dominated_objects_get_zero_probability(
        near_r in 0.1..20.0f64,
        far_r in 0.1..20.0f64,
        gap in 1.0..500.0f64,
    ) {
        let q = Point::new(0.0, 0.0);
        let near = UncertainObject::with_uniform(0, Point::new(30.0, 0.0), near_r);
        // Place the far object beyond any possible overlap of the envelopes.
        let far_dist = 30.0 + near_r + far_r + gap + 1.0;
        let far = UncertainObject::with_uniform(1, Point::new(far_dist, 0.0), far_r);
        let probs = qualification_probabilities(q, &[&near, &far], 150);
        let p_far = probs.iter().find(|(id, _)| *id == 1).unwrap().1;
        prop_assert!(p_far.abs() < 1e-9, "dominated object got {p_far}");
        let p_near = probs.iter().find(|(id, _)| *id == 0).unwrap().1;
        prop_assert!((p_near - 1.0).abs() < 1e-6);
    }

    /// Leaf entries round-trip through their on-disk encoding.
    #[test]
    fn object_entry_roundtrip(o in object_strategy(7), ptr in 0u64..1_000_000) {
        use uv_store::Record;
        let entry = uv_data::ObjectEntry::new(&o, ptr);
        let mut buf = Vec::new();
        entry.encode(&mut buf);
        prop_assert_eq!(buf.len(), uv_data::ObjectEntry::SIZE);
        let back = uv_data::ObjectEntry::decode(&buf);
        prop_assert_eq!(back, entry);
    }
}
