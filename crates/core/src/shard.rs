//! Domain-sharded serving: a [`ShardedUvSystem`] splits the domain into an
//! `nx × ny` grid of shard rectangles and serves each rectangle from its own
//! [`UvSystem`], while answering every query *bit-identically* to one
//! unsharded system over the whole dataset.
//!
//! The ROADMAP names sharding as the next scaling axis, and the UV-partition
//! is already domain-decomposed: a PNN query is a point lookup, so queries
//! (and trajectory workloads, which concentrate spatially — cf. the moving
//! PNN setting of Ali et al.) route cleanly by position, and incremental
//! repair (Arseneva et al.'s locality argument) stays confined to the shards
//! an update actually touches.
//!
//! # Halo replication
//!
//! A shard must answer any query inside its rectangle without consulting its
//! neighbours, so it holds more than the objects *centred* in the rectangle:
//! it holds every object whose **influence region** intersects the
//! rectangle. The influence region is the disk `Cir(c_i, d)` with
//! `d = (prune_radius + r_i) / 2` — the inversion of the I-pruning radius
//! `2d − r_i` that PR 3's [`crate::UpdateSensitivity`] already maintains per
//! object. That disk circumscribes the object's possible region (Definition
//! 2), which in turn contains every point the object can be a PNN answer
//! for; objects replicated into a neighbouring shard's halo are exactly the
//! ones whose UV-cells cross the shard boundary. An object whose derivation
//! is globally sensitive (`prune_radius = ∞`, e.g. the degenerate co-located
//! path) is replicated everywhere.
//!
//! # Why sharded answers are bit-identical
//!
//! A shard's UV-index is built over a *subset*, so its grid differs from the
//! unsharded grid — but the verification step of Section V-A makes the
//! answer a function of the *filtered candidate set*, not of the grid:
//! `d_minmax` is attained by a possible NN of the query point (always inside
//! the halo), and Algorithm 5 never prunes an object from a region where it
//! can be a nearest neighbour, *whatever* reference set the overlap test
//! used — pruning requires a concrete dominating object, and dominating
//! objects exist identically in the shard subset and the full dataset. Every
//! candidate that survives the `d_minmax` filter therefore survives it in
//! both systems, and the qualification probabilities integrate over the same
//! set. The property suite (`tests/proptest_shard.rs`) enforces this
//! bit-exactly across {IC, ICR} × {Uniform, GaussianSkew}, before and after
//! random update batches.
//!
//! # The derivation-only router
//!
//! [`ShardedUvSystem`] keeps a [`DerivationRouter`] — **not** a full
//! [`UvSystem`] — as the derivation authority: the live object set, an
//! index-only R-tree and the per-object sensitivity table, with no UV-grid,
//! no leaf pages and no object-store pages. Its per-object sensitivity
//! bounds yield the halo radii, and [`DerivationRouter::apply`] implements
//! the validated, atomic global state transition through the same steps as
//! [`UvSystem::apply`] — so everything the shards reconcile against
//! (`rederived_ids`, the net diff, `domain_grown`) is bit-identical to what
//! the old full-system router produced, at a fraction of its footprint
//! (`experiments -- shard` measures the saving and gates on it). Updates
//! first apply to the router, then reconcile each shard's membership
//! (replica inserts/deletes plus geometry changes) through the PR-3
//! localized repair of the shards they touch. When the router grows its
//! domain in place ([`UpdateStats::domain_grown`]) the shard *geometry*
//! grows with it — only the outermost axis boundaries move, interior split
//! lines stay pinned, so interior shard rectangles are bit-unchanged and
//! the layout survives every update batch unchanged
//! ([`ShardedUpdateStats::resharded`] stays `false` forever).
//!
//! # Elastic resharding
//!
//! The layout is elastic *between* batches: [`ShardedUvSystem::split_shard`]
//! inserts a midpoint boundary on a hot shard's longer axis and
//! [`ShardedUvSystem::merge_shards`] removes the boundary between two cold
//! axis-adjacent slabs. Both keep the layout a product grid (a split divides
//! the whole row or column; a merge fuses a whole pair), so routing stays
//! two binary axis lookups. Only the shards whose rectangles changed are
//! rebuilt from their halo member sets ([`ReshardStats::rebuilt`]); every
//! other shard moves wholesale — epoch, leaf structure and safe regions
//! intact — to its new slot ([`ReshardStats::shard_map`]). Answers are
//! bit-identical to the unsharded oracle before, during and after a
//! reshard, and live [`crate::SubscriptionEngine`] clients migrate with
//! unbroken delta chains
//! ([`crate::SubscriptionEngine::refresh_after_reshard`]).
//!
//! Lock-free per-shard query/update tallies ([`ShardedUvSystem::load_stats`])
//! feed the [`ShardedUvSystem::maybe_reshard`] policy: when
//! [`crate::UvConfig::reshard_split_load`] is set, the hottest shard at or
//! above the threshold splits; otherwise, when
//! [`crate::UvConfig::reshard_merge_load`] is set, the coldest adjacent slab
//! pair at or below it merges. Tallies are *per interval*: every reshard
//! resets them, so the thresholds meter load since the last layout change.
//!
//! # Persistence
//!
//! [`ShardedUvSystem::save_snapshot`] writes one versioned header
//! ([`SHARD_MAGIC`], the [`crate::snapshot::FORMAT_VERSION`], then a META
//! section carrying the grid dimensions `nx × ny` and the exact shard-axis
//! boundaries — non-uniform after a reshard or domain growth, so they
//! cannot be recomputed from the domain) followed by framed
//! `uv_store::codec` sections: the router's slim state (config, method,
//! domain, epoch, objects and reference table; the R-tree is rebuilt on
//! load from the object set), then one section per shard, each a complete
//! [`UvSystem`] snapshot. Loading validates every section checksum, the
//! grid geometry, configuration agreement and halo coverage — malformed
//! input maps to typed [`UvError`]s, never a panic.

use crate::builder::Method;
use crate::config::UvConfig;
use crate::engine::{trajectory_steps, QueryEngine, StepReuse, TrajectoryStep};
use crate::router::DerivationRouter;
use crate::snapshot::{FORMAT_VERSION, SECTION_OVERHEAD};
use crate::system::UvSystem;
use crate::update::{UpdateBatch, UpdateStats};
use crate::UvError;
use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use uv_data::{ObjectId, PnnAnswer, UncertainObject};
use uv_geom::{Point, Rect};
use uv_store::codec::{read_section, write_section, Decode, Encode};

/// Magic bytes every sharded snapshot starts with (the per-shard payloads
/// inside carry the regular [`crate::snapshot::MAGIC`]).
pub const SHARD_MAGIC: [u8; 8] = *b"UVDSHRD\0";

mod tag {
    pub const META: u8 = 1;
    pub const ROUTER: u8 = 2;
    pub const SHARD: u8 = 3;
}

/// Statistics of one update batch applied through the sharded system: the
/// router's global [`UpdateStats`] plus the per-shard reconciliation.
#[derive(Debug, Clone, Default)]
pub struct ShardedUpdateStats {
    /// The router's (global) update statistics — net inserts/deletes/moves
    /// and the global re-derivation counters. The router has no grid, so
    /// its leaf counters are zero by contract.
    pub router: UpdateStats,
    /// Per-shard update statistics, indexed by shard; untouched shards keep
    /// a default entry with their current epoch untouched.
    pub per_shard: Vec<UpdateStats>,
    /// Shards that received a non-empty reconciliation batch.
    pub shards_touched: usize,
    /// Object replicas inserted across shards (membership gained: genuine
    /// inserts plus halo growth of existing objects).
    pub replicas_added: usize,
    /// Object replicas removed across shards (membership lost: genuine
    /// deletes plus halo shrinkage).
    pub replicas_removed: usize,
    /// Always `false`: applying a batch never changes the shard layout —
    /// domain growth extends the geometry in place, and elastic resharding
    /// is a separate explicit operation ([`ShardedUvSystem::split_shard`],
    /// [`ShardedUvSystem::merge_shards`], [`ShardedUvSystem::maybe_reshard`])
    /// reporting through [`ReshardStats`]. Retained for API stability and
    /// as the adversarial suite's assertion target
    /// (`tests/proptest_shard.rs`).
    pub resharded: bool,
    /// `true` when the router grew its domain in place this batch; the shard
    /// geometry grew with it (outer boundaries only — interior rectangles
    /// are bit-unchanged) and every shard re-indexed the grown domain.
    pub domain_grown: bool,
}

/// Per-shard query/update tallies since the last reshard (or build /
/// snapshot load), maintained lock-free on the query paths. Indexed like
/// the shard rectangles: row-major from the south-west.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardLoadStats {
    /// PNN queries (single, batched and trajectory steps) routed to each
    /// shard as its owner. Out-of-domain queries are counted nowhere.
    pub queries: Vec<u64>,
    /// Update batches that reached each shard with a non-empty
    /// reconciliation batch (net no-ops and untouched shards count zero).
    pub updates: Vec<u64>,
}

/// The outcome of one elastic reshard: how the old layout maps onto the new
/// one and which shards were rebuilt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardStats {
    /// For each *old* shard index: its slot in the new layout, or `None`
    /// when its rectangle changed and the shard was rebuilt. Mapped shards
    /// move wholesale — epoch, leaf structure and member set intact.
    pub shard_map: Vec<Option<usize>>,
    /// New grid width (columns).
    pub nx: usize,
    /// New grid height (rows).
    pub ny: usize,
    /// New-layout slots that were rebuilt from their halo member sets,
    /// ascending.
    pub rebuilt: Vec<usize>,
}

/// A domain-sharded UV-diagram serving deployment: an `nx × ny` grid of
/// shard rectangles, each served by its own [`UvSystem`] over the objects
/// whose influence region intersects the rectangle (halo replication), plus
/// a slim [`DerivationRouter`] as the derivation authority. See the [module
/// docs](crate::shard) for the correctness contract.
///
/// ```
/// use uv_core::{shard::ShardedUvSystem, Method, UvConfig, UvSystem};
/// use uv_data::{Dataset, GeneratorConfig};
///
/// let ds = Dataset::generate(GeneratorConfig::paper_uniform(120));
/// let config = UvConfig::default().with_seed_knn(24).with_num_shards(2);
/// let sharded =
///     ShardedUvSystem::build(ds.objects.clone(), ds.domain, Method::IC, config).unwrap();
/// let unsharded = UvSystem::build(ds.objects.clone(), ds.domain, Method::IC, config).unwrap();
/// for q in ds.query_points(12, 7) {
///     // Routed answers are bit-identical to the unsharded system.
///     assert_eq!(sharded.pnn(q).probabilities, unsharded.pnn(q).probabilities);
/// }
/// assert_eq!(sharded.shard_count(), 4);
/// ```
#[derive(Debug)]
pub struct ShardedUvSystem {
    /// The derivation-only routing authority: objects, domain, index-only
    /// R-tree and the sensitivity table — no grid, no pages.
    router: DerivationRouter,
    /// Grid width (columns) and height (rows). Uniform `num_shards ×
    /// num_shards` at build; elastic resharding makes them diverge.
    nx: usize,
    ny: usize,
    /// The `nx × ny` shard rectangles, row-major from the south-west.
    rects: Vec<Rect>,
    /// Cached split coordinates of the two axes (the exact values the
    /// rectangles were built from), so per-query routing allocates nothing.
    bounds_x: Vec<f64>,
    bounds_y: Vec<f64>,
    /// One serving system per rectangle, over its halo member set.
    shards: Vec<UvSystem>,
    /// Lock-free per-shard tallies since the last reshard: queries routed
    /// to each owner, and non-empty reconciliation batches applied.
    query_loads: Vec<AtomicU64>,
    update_loads: Vec<AtomicU64>,
}

/// Influence radius of one object: the radius of the disk circumscribing its
/// possible region, inverted from the I-pruning radius `2d − r_i` the
/// sensitivity bound stores. `None` means globally sensitive — the object is
/// replicated into every shard.
fn influence_radius(o: &UncertainObject, router: &DerivationRouter) -> Option<f64> {
    let state = router.object_state(o.id)?;
    let prune_radius = state.sensitivity().prune_radius;
    if !prune_radius.is_finite() {
        return None;
    }
    // prune_radius = 2d − r_i, so d = (prune_radius + r_i) / 2; the possible
    // region contains the uncertainty region itself, so d ≥ r_i — the max
    // guards the (unreachable) clamped case.
    Some((0.5 * (prune_radius + o.radius())).max(o.radius()))
}

/// The split coordinates of one axis: `side + 1` monotone boundaries with
/// the domain edges kept exact (no accumulated float drift at the rim).
fn axis_bounds(lo: f64, hi: f64, side: usize) -> Vec<f64> {
    let step = (hi - lo) / side as f64;
    let mut bounds: Vec<f64> = (0..=side).map(|k| lo + step * k as f64).collect();
    bounds[0] = lo;
    bounds[side] = hi;
    bounds
}

/// Index of the axis interval containing `v` under closed-edge semantics: a
/// value exactly on an interior boundary belongs to the lower (south/west)
/// interval — the same `<=` tie-break [`crate::UvIndex`]'s `locate_leaf`
/// uses on its split lines, and consistent with [`Rect::contains`] treating
/// boundaries as inside.
fn axis_index(bounds: &[f64], v: f64) -> usize {
    let side = bounds.len() - 1;
    for k in 0..side {
        if v <= bounds[k + 1] {
            return k;
        }
    }
    side - 1
}

/// The shard rectangles spanned by two (possibly non-uniform, possibly
/// different-length) axis boundary vectors, row-major from the south-west,
/// sharing exact boundary coordinates with [`axis_index`].
fn rects_from_bounds(xs: &[f64], ys: &[f64]) -> Vec<Rect> {
    let nx = xs.len() - 1;
    let ny = ys.len() - 1;
    let mut rects = Vec::with_capacity(nx * ny);
    for iy in 0..ny {
        for ix in 0..nx {
            rects.push(Rect::new(xs[ix], ys[iy], xs[ix + 1], ys[iy + 1]));
        }
    }
    rects
}

/// Domain growth on one shard axis: only the two outermost boundaries move
/// out to the grown domain edge. Interior split lines stay pinned, so every
/// interior shard rectangle survives bit-unchanged and only the border ring
/// absorbs the new territory.
fn extend_axis_bounds(bounds: &mut [f64], lo: f64, hi: f64) {
    bounds[0] = bounds[0].min(lo);
    let last = bounds.len() - 1;
    bounds[last] = bounds[last].max(hi);
}

/// Fresh (zeroed) lock-free tallies for `n` shards.
fn zero_loads(n: usize) -> Vec<AtomicU64> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

/// Halo member sets: for every shard rectangle, the objects whose influence
/// disk intersects it (globally sensitive objects join every shard). Every
/// live object lands in at least one shard — its influence disk contains its
/// own uncertainty region, which intersects the rectangle owning its centre.
fn shard_members(router: &DerivationRouter, rects: &[Rect]) -> Vec<Vec<UncertainObject>> {
    let mut members: Vec<Vec<UncertainObject>> = vec![Vec::new(); rects.len()];
    for o in router.objects() {
        match influence_radius(o, router) {
            None => {
                for list in members.iter_mut() {
                    list.push(o.clone());
                }
            }
            Some(radius) => {
                for (list, rect) in members.iter_mut().zip(rects) {
                    if rect.intersects_circle(o.center(), radius) {
                        list.push(o.clone());
                    }
                }
            }
        }
    }
    members
}

/// Runs `f` over `items` — one scoped thread per item when `parallel` and
/// there is more than one item, a plain sequential loop otherwise. Results
/// come back in item order. The single fan-out policy of this module:
/// shard builds, batched query routing, update reconciliation and reshard
/// rebuilds all go through here.
fn fan_out<T: Send, R: Send>(parallel: bool, items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    if parallel && items.len() > 1 {
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = items
                .into_iter()
                .map(|item| scope.spawn(move || f(item)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard fan-out worker panicked"))
                .collect()
        })
    } else {
        items.into_iter().map(f).collect()
    }
}

/// Builds one [`UvSystem`] per member set — in parallel when the
/// configuration allows (each shard build also parallelises its own
/// derivation internally; the scoped fan-out mainly helps many small
/// shards). Every shard indexes the *full* domain so `locate_leaf` works
/// for any point its rectangle can receive and halo objects never trigger
/// spurious domain growth.
fn build_shard_systems(
    member_sets: Vec<Vec<UncertainObject>>,
    domain: Rect,
    method: Method,
    config: UvConfig,
) -> Result<Vec<UvSystem>, UvError> {
    fan_out(config.parallel, member_sets, |objects| {
        UvSystem::build(objects, domain, method, config)
    })
    .into_iter()
    .collect()
}

impl ShardedUvSystem {
    /// Builds the sharded system: the derivation-only router over the full
    /// dataset, then the `config.num_shards × config.num_shards` shard
    /// systems over their halo member sets (in parallel when
    /// `config.parallel`). A configuration failing [`UvConfig::validate`]
    /// is a typed error, never a panic.
    pub fn build(
        objects: Vec<UncertainObject>,
        domain: Rect,
        method: Method,
        config: UvConfig,
    ) -> Result<Self, UvError> {
        let router = DerivationRouter::build(objects, domain, method, config)?;
        let side = config.num_shards;
        let bounds_x = axis_bounds(domain.min_x, domain.max_x, side);
        let bounds_y = axis_bounds(domain.min_y, domain.max_y, side);
        let rects = rects_from_bounds(&bounds_x, &bounds_y);
        let shards = build_shard_systems(shard_members(&router, &rects), domain, method, config)?;
        Ok(Self {
            router,
            nx: side,
            ny: side,
            query_loads: zero_loads(rects.len()),
            update_loads: zero_loads(rects.len()),
            rects,
            bounds_x,
            bounds_y,
            shards,
        })
    }

    /// Grid dimensions `(nx, ny)` — columns and rows of the shard layout.
    /// Equal at build (`num_shards` each); elastic resharding makes them
    /// diverge.
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Total number of shards (`nx × ny`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard rectangles, row-major from the south-west.
    pub fn shard_rects(&self) -> &[Rect] {
        &self.rects
    }

    /// The serving system of shard `idx`.
    pub fn shard(&self, idx: usize) -> &UvSystem {
        &self.shards[idx]
    }

    /// The derivation-only router: the update authority holding the live
    /// object set, the domain and the per-object sensitivity table — and
    /// nothing else (no grid, no pages).
    pub fn router(&self) -> &DerivationRouter {
        &self.router
    }

    /// Serialized size of the router's section inside a sharded snapshot
    /// (section header plus the [`DerivationRouter::state_bytes`] payload).
    /// The `shard` experiment subtracts this from the snapshot total and
    /// adds back a full unsharded snapshot to reconstruct what the retired
    /// full-`UvSystem`-router layout would have cost — the footprint win
    /// its memory gate enforces.
    pub fn router_snapshot_bytes(&self) -> u64 {
        SECTION_OVERHEAD + self.router.state_bytes()
    }

    /// The live object set (the router's view — shard member lists replicate
    /// subsets of it).
    pub fn objects(&self) -> &[UncertainObject] {
        self.router.objects()
    }

    /// The indexed domain.
    pub fn domain(&self) -> Rect {
        self.router.domain()
    }

    /// The configuration every subsystem was built with.
    pub fn config(&self) -> &UvConfig {
        self.router.config()
    }

    /// The construction method.
    pub fn method(&self) -> Method {
        self.router.method()
    }

    /// Total object replicas across shards divided by the live object count:
    /// `1.0` means no halo replication at all, `nx·ny` full replication. The
    /// halo-overhead statistic the `shard` experiment reports is this
    /// minus one.
    pub fn replication_factor(&self) -> f64 {
        let replicas: usize = self.shards.iter().map(|s| s.objects().len()).sum();
        replicas as f64 / self.router.objects().len().max(1) as f64
    }

    /// The shard owning query point `q` under closed-edge semantics (a point
    /// exactly on a shard split line belongs to the south/west shard, the
    /// same tie-break the grid's `locate_leaf` uses), or `None` when `q`
    /// lies outside the domain.
    pub fn owner_of(&self, q: Point) -> Option<usize> {
        if !self.domain().contains(q) {
            return None;
        }
        Some(axis_index(&self.bounds_y, q.y) * self.nx + axis_index(&self.bounds_x, q.x))
    }

    /// The per-shard query/update tallies since the last reshard (or build
    /// / snapshot load). Lock-free reads of the live counters.
    pub fn load_stats(&self) -> ShardLoadStats {
        ShardLoadStats {
            queries: self
                .query_loads
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            updates: self
                .update_loads
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Answers a PNN query through the owning shard — bit-identical
    /// (probabilities, candidate counts) to the unsharded [`UvSystem::pnn`].
    pub fn pnn(&self, q: Point) -> PnnAnswer {
        match self.owner_of(q) {
            Some(s) => {
                self.query_loads[s].fetch_add(1, Ordering::Relaxed);
                self.shards[s].pnn(q)
            }
            None => PnnAnswer::default(),
        }
    }

    /// Answers a batch of PNN queries: queries are grouped per owning shard
    /// and fanned out through each involved shard's [`crate::QueryEngine`] —
    /// on scoped threads when `config.parallel` (the same switch the shard
    /// builds and update reconciliation honour), sequentially otherwise.
    /// Answers come back in query order, bit-identical to the unsharded
    /// [`UvSystem::pnn_batch`]. Out-of-domain points get the empty answer,
    /// exactly as unsharded.
    pub fn pnn_batch(&self, queries: &[Point]) -> Vec<PnnAnswer> {
        let mut groups: Vec<Vec<(usize, Point)>> = vec![Vec::new(); self.shards.len()];
        let mut answers: Vec<PnnAnswer> = vec![PnnAnswer::default(); queries.len()];
        for (i, q) in queries.iter().enumerate() {
            if let Some(s) = self.owner_of(*q) {
                self.query_loads[s].fetch_add(1, Ordering::Relaxed);
                groups[s].push((i, *q));
            }
        }
        let jobs: Vec<(usize, Vec<(usize, Point)>)> = groups
            .into_iter()
            .enumerate()
            .filter(|(_, group)| !group.is_empty())
            .collect();
        let results = fan_out(self.config().parallel, jobs, |(s, group)| {
            let points: Vec<Point> = group.iter().map(|(_, q)| *q).collect();
            (group, self.shards[s].pnn_batch(&points))
        });
        for (group, shard_answers) in results {
            for ((i, _), answer) in group.into_iter().zip(shard_answers) {
                answers[i] = answer;
            }
        }
        answers
    }

    /// Answers a moving-PNN trajectory. Every path point routes to its
    /// owning shard — the query re-routes at each shard-boundary crossing —
    /// while the per-step answer deltas chain across the whole path, so the
    /// steps equal the unsharded [`UvSystem::pnn_trajectory`] bit-exactly.
    ///
    /// With [`UvConfig::safe_region`] enabled (the default) the walk carries
    /// the same per-step stability disk as the unsharded engine, scoped to
    /// the current owning shard: consecutive points inside the disk reuse
    /// the cached candidate set ([`TrajectoryStep::reused`]); a
    /// shard-boundary crossing drops the disk and re-derives on the
    /// destination shard. Answers are bit-identical either way.
    pub fn pnn_trajectory(&self, path: &[Point]) -> Vec<TrajectoryStep> {
        if !self.config().safe_region {
            let answers = self.pnn_batch(path).into_iter().map(|a| (a, false));
            return trajectory_steps(path, answers.collect());
        }
        let engines: Vec<QueryEngine<'_>> = self
            .shards
            .iter()
            .map(|s| QueryEngine::new(s.index(), s.object_store()))
            .collect();
        let mut reuse: Option<StepReuse> = None;
        let mut current: Option<usize> = None;
        let mut answers = Vec::with_capacity(path.len());
        for q in path {
            let owner = self.owner_of(*q);
            if owner != current {
                reuse = None;
                current = owner;
            }
            answers.push(match owner {
                Some(s) => {
                    self.query_loads[s].fetch_add(1, Ordering::Relaxed);
                    engines[s].pnn_step(*q, &mut reuse)
                }
                None => {
                    reuse = None;
                    (PnnAnswer::default(), false)
                }
            });
        }
        trajectory_steps(path, answers)
    }

    /// Applies an update batch atomically: the router validates and applies
    /// it globally (nothing is mutated on error), then every shard whose
    /// halo membership the net difference touches is reconciled through the
    /// PR-3 localized repair. When the batch grew the router's domain in
    /// place, the shard geometry grows with it first — only the outer ring
    /// of rectangles changes, every shard re-indexes the grown domain, and
    /// the layout is never rebuilt ([`ShardedUpdateStats::resharded`] stays
    /// `false`).
    pub fn apply(&mut self, batch: UpdateBatch) -> Result<ShardedUpdateStats, UvError> {
        // Geometry of the ids the batch touches, before the router mutates.
        let touched: HashSet<ObjectId> = batch
            .ops
            .iter()
            .map(|op| match op {
                crate::update::UpdateOp::Insert(o) => o.id,
                crate::update::UpdateOp::Delete(id) => *id,
                crate::update::UpdateOp::Move { id, .. } => *id,
            })
            .collect();
        let old_geometry: HashMap<ObjectId, UncertainObject> = self
            .router
            .objects()
            .iter()
            .filter(|o| touched.contains(&o.id))
            .map(|o| (o.id, o.clone()))
            .collect();
        let router_stats = self.router.apply(batch)?;
        let mut stats = ShardedUpdateStats {
            router: router_stats,
            per_shard: vec![UpdateStats::default(); self.shards.len()],
            ..ShardedUpdateStats::default()
        };
        if stats.router.inserted + stats.router.deleted + stats.router.moved == 0 {
            return Ok(stats); // net no-op: shards keep their epochs
        }
        if stats.router.domain_grown {
            // In-place geometry growth: pin the interior split lines and move
            // only the outermost boundaries to the grown domain edges, then
            // re-index every shard at the new domain (membership id-sets are
            // untouched, so the reconciliation diff below stays valid). The
            // grown domain is a pure function the router already computed, so
            // router, shards and rectangles agree without coordination.
            let domain = self.router.domain();
            extend_axis_bounds(&mut self.bounds_x, domain.min_x, domain.max_x);
            extend_axis_bounds(&mut self.bounds_y, domain.min_y, domain.max_y);
            self.rects = rects_from_bounds(&self.bounds_x, &self.bounds_y);
            stats.domain_grown = true;
            let parallel = self.router.config().parallel;
            let jobs: Vec<&mut UvSystem> = self.shards.iter_mut().collect();
            for outcome in fan_out(parallel, jobs, |shard| shard.grow_domain_to(domain)) {
                outcome?;
            }
        }

        // Reconcile each shard against the new halo membership — diffing
        // only the *candidate* ids whose membership can have changed, never
        // rescanning the whole object set. Membership is a function of an
        // object's geometry (changed only for the batch's own ids) and its
        // influence radius (changed only through a re-derivation, which the
        // router reports); everything else provably kept its replicas.
        let mut candidates: HashSet<ObjectId> = touched;
        candidates.extend(stats.router.rederived_ids.iter().copied());
        let live: HashMap<ObjectId, &UncertainObject> = self
            .router
            .objects()
            .iter()
            .filter(|o| candidates.contains(&o.id))
            .map(|o| (o.id, o))
            .collect();
        let mut shard_batches: Vec<UpdateBatch> =
            (0..self.shards.len()).map(|_| UpdateBatch::new()).collect();
        for id in &candidates {
            let current = live.get(id).copied(); // None = deleted
            let geometry_changed =
                current.is_some_and(|o| old_geometry.get(id).is_some_and(|old| old != o));
            let memberships = current.map(|o| match influence_radius(o, &self.router) {
                None => vec![true; self.rects.len()],
                Some(radius) => self
                    .rects
                    .iter()
                    .map(|rect| rect.intersects_circle(o.center(), radius))
                    .collect(),
            });
            for (s, batch) in shard_batches.iter_mut().enumerate() {
                // The shards are still pre-batch here (only the router has
                // applied), so current replica membership is an O(1) lookup
                // against the shard's own maintenance table — no per-batch
                // member-set snapshots.
                let was = self.shards[s].object_state(*id).is_some();
                let now = memberships.as_ref().is_some_and(|m| m[s]);
                match (was, now) {
                    (false, true) => {
                        stats.replicas_added += 1;
                        *batch =
                            std::mem::take(batch).insert(current.expect("member is live").clone());
                    }
                    (true, false) => {
                        stats.replicas_removed += 1;
                        *batch = std::mem::take(batch).delete(*id);
                    }
                    (true, true) if geometry_changed => {
                        // Delete + insert expresses any state change (a move,
                        // or a delete-then-reinsert with a different radius /
                        // pdf inside one router batch); the shard's net-diff
                        // turns the pair back into one geometry change.
                        *batch = std::mem::take(batch)
                            .delete(*id)
                            .insert(current.expect("member is live").clone());
                    }
                    _ => {}
                }
            }
        }

        // Only shards with a non-empty reconciliation batch spawn work.
        let jobs: Vec<(usize, &mut UvSystem, UpdateBatch)> = self
            .shards
            .iter_mut()
            .zip(shard_batches)
            .enumerate()
            .filter(|(_, (_, batch))| !batch.is_empty())
            .map(|(s, (shard, batch))| (s, shard, batch))
            .collect();
        let parallel = self.router.config().parallel;
        for (s, outcome) in fan_out(parallel, jobs, |(s, shard, batch)| (s, shard.apply(batch))) {
            stats.shards_touched += 1;
            stats.per_shard[s] = outcome?;
            self.update_loads[s].fetch_add(1, Ordering::Relaxed);
        }
        Ok(stats)
    }

    /// Inserts one object (a single-op batch).
    pub fn insert_object(
        &mut self,
        object: UncertainObject,
    ) -> Result<ShardedUpdateStats, UvError> {
        self.apply(UpdateBatch::new().insert(object))
    }

    /// Deletes one object (a single-op batch).
    pub fn delete_object(&mut self, id: ObjectId) -> Result<ShardedUpdateStats, UvError> {
        self.apply(UpdateBatch::new().delete(id))
    }

    /// Moves one object (a single-op batch).
    pub fn move_object(
        &mut self,
        id: ObjectId,
        center: Point,
    ) -> Result<ShardedUpdateStats, UvError> {
        self.apply(UpdateBatch::new().move_to(id, center))
    }

    /// Splits shard `idx` by inserting a midpoint boundary on its longer
    /// axis. The layout stays a product grid, so the whole row or column
    /// containing `idx` is divided: those shards are rebuilt from their
    /// halo member sets, every other shard moves wholesale to its new slot
    /// (epoch and leaf structure intact — see [`ReshardStats::shard_map`]).
    /// Answers stay bit-identical to the unsharded oracle; tallies reset.
    /// Out-of-range `idx`, a slab too thin to split and an axis already at
    /// its maximum resolution (1024) are typed errors that leave the
    /// deployment untouched.
    pub fn split_shard(&mut self, idx: usize) -> Result<ReshardStats, UvError> {
        if idx >= self.shards.len() {
            return Err(UvError::InvalidConfig("split_shard index out of range"));
        }
        let (ix, iy) = (idx % self.nx, idx / self.nx);
        let rect = self.rects[idx];
        let nx = self.nx;
        if rect.width() >= rect.height() {
            if nx + 1 > 1_024 {
                return Err(UvError::InvalidConfig(
                    "shard x-axis is already at its maximum resolution",
                ));
            }
            let (lo, hi) = (self.bounds_x[ix], self.bounds_x[ix + 1]);
            let mid = 0.5 * (lo + hi);
            if !(lo < mid && mid < hi) {
                return Err(UvError::InvalidConfig("shard slab is too thin to split"));
            }
            let mut xs = self.bounds_x.clone();
            xs.insert(ix + 1, mid);
            let shard_map: Vec<Option<usize>> = (0..self.shards.len())
                .map(|old| {
                    let (ox, oy) = (old % nx, old / nx);
                    if ox == ix {
                        None // the split column is rebuilt in both halves
                    } else {
                        Some(oy * (nx + 1) + if ox < ix { ox } else { ox + 1 })
                    }
                })
                .collect();
            let ys = self.bounds_y.clone();
            self.reshard_to(xs, ys, shard_map)
        } else {
            if self.ny + 1 > 1_024 {
                return Err(UvError::InvalidConfig(
                    "shard y-axis is already at its maximum resolution",
                ));
            }
            let (lo, hi) = (self.bounds_y[iy], self.bounds_y[iy + 1]);
            let mid = 0.5 * (lo + hi);
            if !(lo < mid && mid < hi) {
                return Err(UvError::InvalidConfig("shard slab is too thin to split"));
            }
            let mut ys = self.bounds_y.clone();
            ys.insert(iy + 1, mid);
            let shard_map: Vec<Option<usize>> = (0..self.shards.len())
                .map(|old| {
                    let (ox, oy) = (old % nx, old / nx);
                    if oy == iy {
                        None // the split row is rebuilt in both halves
                    } else {
                        Some((if oy < iy { oy } else { oy + 1 }) * nx + ox)
                    }
                })
                .collect();
            let xs = self.bounds_x.clone();
            self.reshard_to(xs, ys, shard_map)
        }
    }

    /// Merges two axis-adjacent shards by removing the boundary between
    /// them. The layout stays a product grid, so the whole pair of rows or
    /// columns fuses: each fused shard is rebuilt from its halo member set,
    /// every other shard moves wholesale (see [`ReshardStats::shard_map`]).
    /// Answers stay bit-identical to the unsharded oracle; tallies reset.
    /// Out-of-range, identical or non-adjacent (e.g. diagonal) indices are
    /// typed errors that leave the deployment untouched.
    pub fn merge_shards(&mut self, a: usize, b: usize) -> Result<ReshardStats, UvError> {
        if a >= self.shards.len() || b >= self.shards.len() {
            return Err(UvError::InvalidConfig("merge_shards index out of range"));
        }
        if a == b {
            return Err(UvError::InvalidConfig(
                "merge_shards requires two distinct shards",
            ));
        }
        let nx = self.nx;
        let (ax, ay) = (a % nx, a / nx);
        let (bx, by) = (b % nx, b / nx);
        if ay == by && ax.abs_diff(bx) == 1 {
            let c = ax.min(bx); // fuse columns c and c+1
            let mut xs = self.bounds_x.clone();
            xs.remove(c + 1);
            let shard_map: Vec<Option<usize>> = (0..self.shards.len())
                .map(|old| {
                    let (ox, oy) = (old % nx, old / nx);
                    if ox == c || ox == c + 1 {
                        None // every fused shard is rebuilt
                    } else {
                        Some(oy * (nx - 1) + if ox < c { ox } else { ox - 1 })
                    }
                })
                .collect();
            let ys = self.bounds_y.clone();
            self.reshard_to(xs, ys, shard_map)
        } else if ax == bx && ay.abs_diff(by) == 1 {
            let r = ay.min(by); // fuse rows r and r+1
            let mut ys = self.bounds_y.clone();
            ys.remove(r + 1);
            let shard_map: Vec<Option<usize>> = (0..self.shards.len())
                .map(|old| {
                    let (ox, oy) = (old % nx, old / nx);
                    if oy == r || oy == r + 1 {
                        None
                    } else {
                        Some((if oy < r { oy } else { oy - 1 }) * nx + ox)
                    }
                })
                .collect();
            let xs = self.bounds_x.clone();
            self.reshard_to(xs, ys, shard_map)
        } else {
            Err(UvError::InvalidConfig(
                "merge_shards requires two axis-adjacent shards",
            ))
        }
    }

    /// The elastic policy: consults the per-shard tallies against the
    /// [`UvConfig::reshard_split_load`] / [`UvConfig::reshard_merge_load`]
    /// thresholds and performs at most one reshard. When the split
    /// threshold is set and some shard's combined tally reaches it, the
    /// (first) hottest shard splits; otherwise, when the merge threshold is
    /// set, the coldest axis-adjacent slab pair at or below it merges.
    /// Returns `Ok(None)` when neither trigger fires (or both thresholds
    /// are zero — the default, resharding disabled). Tallies meter the
    /// interval since the last reshard: every reshard resets them.
    pub fn maybe_reshard(&mut self) -> Result<Option<ReshardStats>, UvError> {
        let split_at = self.config().reshard_split_load;
        let merge_at = self.config().reshard_merge_load;
        let loads = self.load_stats();
        let combined: Vec<u64> = loads
            .queries
            .iter()
            .zip(&loads.updates)
            .map(|(q, u)| q + u)
            .collect();
        if split_at > 0 {
            // Strict `>` keeps the first-encountered maximum: deterministic
            // for equal loads.
            let (hot, load) =
                combined.iter().enumerate().fold(
                    (0, 0),
                    |(bi, bl), (i, &l)| {
                        if l > bl {
                            (i, l)
                        } else {
                            (bi, bl)
                        }
                    },
                );
            if load >= split_at {
                return self.split_shard(hot).map(Some);
            }
        }
        if merge_at > 0 {
            let col_load = |c: usize| (0..self.ny).map(|r| combined[r * self.nx + c]).sum::<u64>();
            let row_load = |r: usize| (0..self.nx).map(|c| combined[r * self.nx + c]).sum::<u64>();
            // The coldest fusable pair across both axes; representatives are
            // any two axis-adjacent members, first-found wins ties.
            let mut best: Option<(u64, usize, usize)> = None;
            for c in 0..self.nx.saturating_sub(1) {
                let load = col_load(c) + col_load(c + 1);
                if best.is_none_or(|(bl, _, _)| load < bl) {
                    best = Some((load, c, c + 1));
                }
            }
            for r in 0..self.ny.saturating_sub(1) {
                let load = row_load(r) + row_load(r + 1);
                if best.is_none_or(|(bl, _, _)| load < bl) {
                    best = Some((load, r * self.nx, (r + 1) * self.nx));
                }
            }
            if let Some((load, a, b)) = best {
                if load <= merge_at {
                    return self.merge_shards(a, b).map(Some);
                }
            }
        }
        Ok(None)
    }

    /// Commits a new product-grid layout. `shard_map[old]` names the new
    /// slot of each current shard whose rectangle is unchanged (it moves
    /// wholesale — membership is a function of the rectangle, so its member
    /// set, epoch and leaf structure stay valid); unmapped slots are
    /// rebuilt from their halo member sets. Replacement shards are built
    /// *before* any live state mutates, so an error leaves the deployment
    /// exactly as it was. Tallies reset to zero on success.
    fn reshard_to(
        &mut self,
        bounds_x: Vec<f64>,
        bounds_y: Vec<f64>,
        shard_map: Vec<Option<usize>>,
    ) -> Result<ReshardStats, UvError> {
        let nx = bounds_x.len() - 1;
        let ny = bounds_y.len() - 1;
        let rects = rects_from_bounds(&bounds_x, &bounds_y);
        let mut claimed = vec![false; nx * ny];
        for target in shard_map.iter().flatten() {
            debug_assert!(!claimed[*target], "two old shards map to one new slot");
            claimed[*target] = true;
        }
        let rebuilt: Vec<usize> = (0..nx * ny).filter(|s| !claimed[*s]).collect();

        let mut members = shard_members(&self.router, &rects);
        let domain = self.router.domain();
        let method = self.router.method();
        let config = *self.router.config();
        let jobs: Vec<(usize, Vec<UncertainObject>)> = rebuilt
            .iter()
            .map(|&s| (s, std::mem::take(&mut members[s])))
            .collect();
        let outcomes = fan_out(config.parallel, jobs, |(s, objects)| {
            (s, UvSystem::build(objects, domain, method, config))
        });
        let mut fresh: Vec<(usize, UvSystem)> = Vec::with_capacity(outcomes.len());
        for (s, outcome) in outcomes {
            fresh.push((s, outcome?));
        }

        // Commit: nothing below can fail.
        let old = std::mem::take(&mut self.shards);
        let mut slots: Vec<Option<UvSystem>> = (0..nx * ny).map(|_| None).collect();
        for (old_idx, shard) in old.into_iter().enumerate() {
            if let Some(target) = shard_map[old_idx] {
                slots[target] = Some(shard);
            }
        }
        for (s, shard) in fresh {
            slots[s] = Some(shard);
        }
        self.shards = slots
            .into_iter()
            .map(|s| s.expect("every new slot is mapped or rebuilt"))
            .collect();
        self.nx = nx;
        self.ny = ny;
        self.rects = rects;
        self.bounds_x = bounds_x;
        self.bounds_y = bounds_y;
        self.query_loads = zero_loads(nx * ny);
        self.update_loads = zero_loads(nx * ny);
        Ok(ReshardStats {
            shard_map,
            nx,
            ny,
            rebuilt,
        })
    }

    /// Serialises the whole sharded deployment — the router's slim state
    /// and every shard — under one versioned header; returns the bytes
    /// written. See the [module docs](crate::shard) for the layout.
    pub fn save_snapshot<W: Write>(&self, w: &mut W) -> Result<u64, UvError> {
        w.write_all(&SHARD_MAGIC)?;
        FORMAT_VERSION.write_to(w)?;
        let mut written: u64 = SHARD_MAGIC.len() as u64 + 4;

        let mut meta = Vec::new();
        (self.nx as u64).write_to(&mut meta)?;
        (self.ny as u64).write_to(&mut meta)?;
        // The exact axis boundaries: non-uniform after a reshard or domain
        // growth, so a loader cannot recompute them from the domain alone.
        self.bounds_x.write_to(&mut meta)?;
        self.bounds_y.write_to(&mut meta)?;
        write_section(w, tag::META, &meta)?;
        written += SECTION_OVERHEAD + meta.len() as u64;

        let mut router_payload = Vec::new();
        self.router.write_state(&mut router_payload)?;
        write_section(w, tag::ROUTER, &router_payload)?;
        written += SECTION_OVERHEAD + router_payload.len() as u64;

        for shard in &self.shards {
            let mut payload = Vec::new();
            shard.save_snapshot(&mut payload)?;
            write_section(w, tag::SHARD, &payload)?;
            written += SECTION_OVERHEAD + payload.len() as u64;
        }
        w.flush()?;
        Ok(written)
    }

    /// Saves a snapshot to a file (created or truncated), returning the
    /// bytes written.
    pub fn save_snapshot_to_path<P: AsRef<Path>>(&self, path: P) -> Result<u64, UvError> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        self.save_snapshot(&mut w)
    }

    /// Loads a sharded snapshot written by
    /// [`ShardedUvSystem::save_snapshot`]: every section checksum, the grid
    /// geometry, configuration agreement between router and shards, and
    /// halo coverage are validated; malformed input is a typed [`UvError`],
    /// never a panic. Load tallies start at zero.
    pub fn load_snapshot<R: Read>(r: &mut R) -> Result<Self, UvError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != SHARD_MAGIC {
            return Err(UvError::SnapshotCorrupt(format!(
                "bad sharded-snapshot magic {magic:02x?}"
            )));
        }
        let version = u32::read_from(r)?;
        if version != FORMAT_VERSION {
            return Err(UvError::SnapshotVersionMismatch {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let meta = read_section(r, tag::META)?;
        let mut meta_slice = meta.as_slice();
        let nx = u64::read_from(&mut meta_slice)? as usize;
        let ny = u64::read_from(&mut meta_slice)? as usize;
        for (axis, dim) in [("x", nx), ("y", ny)] {
            if dim == 0 || dim > 1_024 {
                return Err(UvError::SnapshotCorrupt(format!(
                    "implausible shard grid {axis}-dimension {dim}"
                )));
            }
        }
        let bounds_x = Vec::<f64>::read_from(&mut meta_slice)?;
        let bounds_y = Vec::<f64>::read_from(&mut meta_slice)?;
        for (bounds, dim) in [(&bounds_x, nx), (&bounds_y, ny)] {
            if bounds.len() != dim + 1 {
                return Err(UvError::SnapshotCorrupt(format!(
                    "expected {} axis boundaries for grid dimension {dim}, found {}",
                    dim + 1,
                    bounds.len()
                )));
            }
            // `partial_cmp != Less` also rejects NaN boundaries (incomparable).
            if bounds
                .windows(2)
                .any(|w| w[0].partial_cmp(&w[1]) != Some(std::cmp::Ordering::Less))
            {
                return Err(UvError::SnapshotCorrupt(
                    "shard axis boundaries are not strictly increasing".into(),
                ));
            }
        }

        let router_payload = read_section(r, tag::ROUTER)?;
        let mut router_slice = router_payload.as_slice();
        let router = DerivationRouter::read_state(&mut router_slice)?;
        if !router_slice.is_empty() {
            return Err(UvError::SnapshotCorrupt(
                "trailing bytes after the router state".into(),
            ));
        }
        let domain = router.domain();
        if bounds_x[0] != domain.min_x
            || bounds_x[nx] != domain.max_x
            || bounds_y[0] != domain.min_y
            || bounds_y[ny] != domain.max_y
        {
            return Err(UvError::SnapshotCorrupt(
                "shard axis boundaries do not span the router's domain".into(),
            ));
        }

        let mut shards = Vec::with_capacity(nx * ny);
        for _ in 0..nx * ny {
            let payload = read_section(r, tag::SHARD)?;
            let shard = UvSystem::load_snapshot(&mut payload.as_slice())?;
            if shard.config() != router.config() {
                return Err(UvError::SnapshotCorrupt(
                    "a shard was persisted under a different configuration than the router".into(),
                ));
            }
            if shard.domain() != router.domain() {
                return Err(UvError::SnapshotCorrupt(
                    "a shard indexes a different domain than the router".into(),
                ));
            }
            shards.push(shard);
        }
        let mut probe = [0u8; 1];
        if r.read(&mut probe)? != 0 {
            return Err(UvError::SnapshotCorrupt(
                "trailing bytes after the final shard section".into(),
            ));
        }

        // Halo coverage: every shard member must be live globally, and every
        // live object must be replicated somewhere.
        let live: HashSet<ObjectId> = router.objects().iter().map(|o| o.id).collect();
        let mut covered: HashSet<ObjectId> = HashSet::with_capacity(live.len());
        for shard in &shards {
            for o in shard.objects() {
                if !live.contains(&o.id) {
                    return Err(UvError::SnapshotCorrupt(format!(
                        "shard replica {} is not live in the router",
                        o.id
                    )));
                }
                covered.insert(o.id);
            }
        }
        if covered.len() != live.len() {
            return Err(UvError::SnapshotCorrupt(
                "some live objects are replicated into no shard".into(),
            ));
        }

        Ok(Self {
            router,
            nx,
            ny,
            query_loads: zero_loads(nx * ny),
            update_loads: zero_loads(nx * ny),
            rects: rects_from_bounds(&bounds_x, &bounds_y),
            bounds_x,
            bounds_y,
            shards,
        })
    }

    /// Loads a sharded snapshot from a file.
    pub fn load_snapshot_from_path<P: AsRef<Path>>(path: P) -> Result<Self, UvError> {
        let file = std::fs::File::open(path)?;
        let mut r = std::io::BufReader::new(file);
        Self::load_snapshot(&mut r)
    }

    /// Resets the I/O counters of every shard (the router holds no pages,
    /// so it has none).
    pub fn reset_io(&self) {
        for shard in &self.shards {
            shard.reset_io();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uv_data::{Dataset, GeneratorConfig};

    fn config() -> UvConfig {
        UvConfig::default()
            .with_seed_knn(24)
            .with_leaf_split_capacity(16)
            .with_num_shards(2)
    }

    fn fixture(n: usize, shards: usize) -> (Dataset, ShardedUvSystem, UvSystem) {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(n));
        let cfg = config().with_num_shards(shards);
        let sharded =
            ShardedUvSystem::build(ds.objects.clone(), ds.domain, Method::IC, cfg).unwrap();
        let unsharded = UvSystem::build(ds.objects.clone(), ds.domain, Method::IC, cfg).unwrap();
        (ds, sharded, unsharded)
    }

    fn assert_answers_match(sharded: &ShardedUvSystem, unsharded: &UvSystem, queries: &[Point]) {
        let batch = sharded.pnn_batch(queries);
        for (q, batched) in queries.iter().zip(&batch) {
            let single = sharded.pnn(*q);
            let oracle = unsharded.pnn(*q);
            assert_eq!(
                single.probabilities, oracle.probabilities,
                "sharded pnn diverged at {q:?}"
            );
            assert_eq!(single.candidates_examined, oracle.candidates_examined);
            assert_eq!(batched.probabilities, oracle.probabilities);
            assert_eq!(batched.candidates_examined, oracle.candidates_examined);
        }
    }

    /// The rectangles must tile the domain exactly (no gaps, no overlap
    /// beyond shared boundaries) — checked by area.
    fn assert_rects_tile_domain(sharded: &ShardedUvSystem) {
        let domain = sharded.domain();
        let area: f64 = sharded.shard_rects().iter().map(Rect::area).sum();
        assert!(
            (area - domain.area()).abs() <= 1e-6 * domain.area(),
            "shard rects do not tile the domain"
        );
        assert!(sharded
            .shard_rects()
            .iter()
            .all(|r| domain.contains_rect(r)));
    }

    #[test]
    fn sharded_answers_match_unsharded_on_uniform_data() {
        let (ds, sharded, unsharded) = fixture(220, 2);
        assert_eq!(sharded.shard_count(), 4);
        assert!(sharded.replication_factor() >= 1.0);
        assert_answers_match(&sharded, &unsharded, &ds.query_points(40, 11));
    }

    #[test]
    fn larger_grids_still_match() {
        let (ds, sharded, unsharded) = fixture(200, 3);
        assert_eq!(sharded.shard_count(), 9);
        assert_answers_match(&sharded, &unsharded, &ds.query_points(30, 23));
    }

    #[test]
    fn split_line_queries_agree_with_closed_edge_semantics() {
        let (_, sharded, unsharded) = fixture(180, 2);
        let domain = sharded.domain();
        let cx = (domain.min_x + domain.max_x) * 0.5;
        let cy = (domain.min_y + domain.max_y) * 0.5;
        // Points exactly on the shard split lines, their crossing, and the
        // domain corners/edges (the same boundary classes `locate_leaf`'s
        // regression test probes).
        let mut boundary = vec![
            Point::new(cx, cy),
            Point::new(cx, domain.min_y + 100.0),
            Point::new(cx, domain.max_y - 100.0),
            Point::new(domain.min_x + 100.0, cy),
            Point::new(domain.max_x - 100.0, cy),
            Point::new(domain.min_x, cy),
            Point::new(domain.max_x, cy),
            Point::new(cx, domain.min_y),
            Point::new(cx, domain.max_y),
        ];
        boundary.extend(domain.corners());
        for q in &boundary {
            let owner = sharded.owner_of(*q).expect("boundary point is in-domain");
            // The owner must be the south/west shard: its closed rectangle
            // contains the point (consistent with Rect::quadrants/contains),
            // and no shard with a smaller index also contains it.
            assert!(
                sharded.shard_rects()[owner].contains(*q),
                "owner rect must contain {q:?}"
            );
            for (s, rect) in sharded.shard_rects().iter().enumerate() {
                if s >= owner {
                    break;
                }
                // Earlier (more south/west) rects may only contain the point
                // if they share the boundary — in which case the `<=`
                // tie-break must have picked the earliest one.
                assert!(
                    !rect.contains(*q) || sharded.owner_of(*q) == Some(owner),
                    "tie-break must be deterministic for {q:?}"
                );
            }
        }
        assert_answers_match(&sharded, &unsharded, &boundary);
        // Out-of-domain points return the empty answer, as unsharded.
        let outside = Point::new(domain.min_x - 50.0, cy);
        assert!(sharded.owner_of(outside).is_none());
        assert!(sharded.pnn(outside).probabilities.is_empty());
    }

    #[test]
    fn wide_halos_span_three_or_more_shards() {
        // A 3×3 grid over a modest dataset: seed-knn radii at n=160 are a
        // sizeable fraction of the domain, so many influence disks cross
        // several shard rectangles. Verify at least one object is
        // replicated into ≥3 shards and that its every replica answers
        // queries consistently (covered by the answer oracle).
        let (ds, sharded, unsharded) = fixture(160, 3);
        let mut max_replicas = 0usize;
        for o in sharded.objects() {
            let replicas = (0..sharded.shard_count())
                .filter(|s| sharded.shard(*s).objects().iter().any(|m| m.id == o.id))
                .count();
            assert!(replicas >= 1, "object {} is in no shard", o.id);
            max_replicas = max_replicas.max(replicas);
        }
        assert!(
            max_replicas >= 3,
            "expected some halo to span >= 3 shards, widest spans {max_replicas}"
        );
        assert_answers_match(&sharded, &unsharded, &ds.query_points(25, 3));
    }

    #[test]
    fn updates_route_to_touched_shards_and_stay_bit_identical() {
        let (ds, mut sharded, mut unsharded) = fixture(200, 2);
        let batch = UpdateBatch::new()
            .insert(UncertainObject::with_gaussian(
                9_000,
                Point::new(2_600.0, 7_300.0),
                20.0,
            ))
            .delete(11)
            .move_to(42, Point::new(7_700.0, 1_900.0));
        let stats = sharded.apply(batch.clone()).unwrap();
        unsharded.apply(batch).unwrap();
        assert_eq!(stats.router.inserted, 1);
        assert_eq!(stats.router.deleted, 1);
        assert_eq!(stats.router.moved, 1);
        assert!(!stats.resharded);
        assert!(stats.shards_touched >= 1);
        // The router has no grid: its stats never report leaf work.
        assert_eq!(stats.router.leaves_refined, 0);
        assert_eq!(stats.router.total_leaves, 0);
        assert_answers_match(&sharded, &unsharded, &ds.query_points(30, 5));
    }

    #[test]
    fn delete_then_reinsert_round_trips_through_the_sharded_path() {
        let (ds, mut sharded, unsharded) = fixture(150, 2);
        let victim = sharded.objects()[37].clone();
        let queries = ds.query_points(20, 41);
        let before: Vec<PnnAnswer> = queries.iter().map(|q| sharded.pnn(*q)).collect();
        let membership_before: Vec<Vec<bool>> = (0..sharded.shard_count())
            .map(|s| {
                sharded
                    .shard(s)
                    .objects()
                    .iter()
                    .map(|o| o.id == victim.id)
                    .collect()
            })
            .collect();

        let del = sharded.delete_object(victim.id).unwrap();
        assert_eq!(del.router.deleted, 1);
        assert!(del.replicas_removed >= 1);
        let ins = sharded.insert_object(victim.clone()).unwrap();
        assert_eq!(ins.router.inserted, 1);
        assert!(ins.replicas_added >= 1);

        // Membership, answers and the unsharded oracle all agree again.
        let membership_after: Vec<Vec<bool>> = (0..sharded.shard_count())
            .map(|s| {
                sharded
                    .shard(s)
                    .objects()
                    .iter()
                    .map(|o| o.id == victim.id)
                    .collect()
            })
            .collect();
        assert_eq!(
            membership_before
                .iter()
                .map(|v| v.iter().filter(|x| **x).count())
                .collect::<Vec<_>>(),
            membership_after
                .iter()
                .map(|v| v.iter().filter(|x| **x).count())
                .collect::<Vec<_>>(),
            "replica placement must round-trip"
        );
        for (q, b) in queries.iter().zip(&before) {
            let a = sharded.pnn(*q);
            assert_eq!(a.probabilities, b.probabilities);
            assert_eq!(a.candidates_examined, b.candidates_examined);
        }
        assert_answers_match(&sharded, &unsharded, &queries);
    }

    #[test]
    fn domain_growth_extends_the_shard_geometry_in_place() {
        let (ds, mut sharded, mut unsharded) = fixture(120, 2);
        let outside = UncertainObject::with_uniform(
            8_000,
            Point::new(ds.domain.max_x + 700.0, ds.domain.max_y + 700.0),
            10.0,
        );
        let stats = sharded.insert_object(outside.clone()).unwrap();
        unsharded.insert_object(outside).unwrap();
        assert!(!stats.resharded);
        assert!(stats.domain_grown);
        assert!(stats.router.domain_grown);
        assert!(!stats.router.full_rebuild);
        assert_eq!(sharded.domain(), unsharded.domain());
        assert_rects_tile_domain(&sharded);
        let domain = sharded.domain();
        for shard in 0..sharded.shard_count() {
            assert_eq!(sharded.shard(shard).domain(), domain);
        }
        // Answers match everywhere, including inside the newly annexed ring.
        let mut queries = ds.query_points(20, 9);
        queries.push(Point::new(ds.domain.max_x + 650.0, ds.domain.max_y + 650.0));
        queries.push(Point::new(ds.domain.max_x + 5.0, ds.domain.min_y + 5.0));
        assert_answers_match(&sharded, &unsharded, &queries);
    }

    #[test]
    fn domain_growth_touches_only_border_shard_geometry() {
        // On a 3×3 grid a north-east growth moves only the outermost axis
        // boundaries: every rect not on the grown border must survive
        // bit-unchanged, and the reconciliation that does reach the shards
        // is pure membership expansion — never a rebuild, eviction or move.
        let (ds, mut sharded, _) = fixture(140, 3);
        let (side, _) = sharded.grid_dims();
        let before = sharded.shard_rects().to_vec();
        let stats = sharded
            .insert_object(UncertainObject::with_uniform(
                8_100,
                Point::new(ds.domain.max_x + 900.0, ds.domain.max_y + 900.0),
                10.0,
            ))
            .unwrap();
        assert!(stats.domain_grown);
        assert!(!stats.resharded);
        let after = sharded.shard_rects();
        let mut unchanged = 0usize;
        for iy in 0..side {
            for ix in 0..side {
                let idx = iy * side + ix;
                if ix + 1 < side && iy + 1 < side {
                    assert_eq!(
                        before[idx], after[idx],
                        "non-border rect ({ix},{iy}) must be bit-unchanged"
                    );
                    unchanged += 1;
                }
            }
        }
        assert_eq!(unchanged, (side - 1) * (side - 1));
        // Reconciliation is membership-only and incremental everywhere: the
        // domain-seeded re-derivation widens influence disks, so shards may
        // *gain* replicas (the grown domain makes halos larger — that is
        // genuine, reportable work, not hidden structural churn), but no
        // shard loses members, no shard moves anything, and no shard — not
        // even the one annexing the new corner — rebuilds.
        for (s, st) in stats.per_shard.iter().enumerate() {
            assert!(!st.full_rebuild, "shard {s} must never rebuild");
            assert_eq!(st.deleted, 0, "growth must not evict replicas (shard {s})");
            assert_eq!(st.moved, 0, "growth must not move replicas (shard {s})");
        }
        assert_eq!(stats.replicas_removed, 0);
    }

    #[test]
    fn trajectory_reroutes_across_shards_bit_identically() {
        let (_, sharded, unsharded) = fixture(200, 2);
        let domain = sharded.domain();
        // A diagonal path crossing both split lines several times.
        let path: Vec<Point> = (0..40)
            .map(|i| {
                let t = i as f64 / 39.0;
                Point::new(
                    domain.min_x + domain.width() * (0.05 + 0.9 * t),
                    domain.min_y + domain.height() * (0.05 + 0.9 * ((2.5 * t) % 1.0)),
                )
            })
            .collect();
        let crossings = path
            .windows(2)
            .filter(|w| sharded.owner_of(w[0]) != sharded.owner_of(w[1]))
            .count();
        assert!(crossings >= 2, "path must cross shard boundaries");
        let sharded_steps = sharded.pnn_trajectory(&path);
        let oracle_steps = unsharded.pnn_trajectory(&path);
        assert_eq!(sharded_steps.len(), oracle_steps.len());
        for (a, b) in sharded_steps.iter().zip(&oracle_steps) {
            assert_eq!(a.answer.probabilities, b.answer.probabilities);
            assert_eq!(a.delta, b.delta);
        }
    }

    #[test]
    fn io_attribution_stays_exact_across_the_shard_fanout() {
        // Per-query I/O *values* legitimately differ from the unsharded
        // system (each shard has its own page layout), but attribution must
        // stay exact: summing the returned breakdowns reproduces the
        // physical read counters across every shard store.
        let (ds, sharded, _) = fixture(220, 2);
        let queries = ds.query_points(50, 77);
        sharded.reset_io();
        let answers = sharded.pnn_batch(&queries);
        let total = uv_data::QueryBreakdown::sum(answers.iter().map(|a| &a.breakdown));
        let index_reads: u64 = (0..sharded.shard_count())
            .map(|s| sharded.shard(s).index().store().io().reads)
            .sum();
        let object_reads: u64 = (0..sharded.shard_count())
            .map(|s| sharded.shard(s).object_store().store().io().reads)
            .sum();
        assert_eq!(total.index_io, index_reads);
        assert_eq!(total.object_io, object_reads);
    }

    #[test]
    fn load_counters_track_query_and_update_routing() {
        let (ds, mut sharded, _) = fixture(150, 2);
        let zero = sharded.load_stats();
        assert_eq!(zero.queries, vec![0; 4]);
        assert_eq!(zero.updates, vec![0; 4]);

        let queries = ds.query_points(25, 7);
        let in_domain = queries
            .iter()
            .filter(|q| sharded.owner_of(**q).is_some())
            .count() as u64;
        sharded.pnn(queries[0]);
        sharded.pnn_batch(&queries);
        let loads = sharded.load_stats();
        assert_eq!(
            loads.queries.iter().sum::<u64>(),
            in_domain + 1,
            "every owned query must be tallied exactly once"
        );
        // Each tally lands on the owner shard.
        for (s, rect) in sharded.shard_rects().iter().enumerate() {
            let owned = queries
                .iter()
                .filter(|q| sharded.owner_of(**q) == Some(s))
                .count() as u64;
            let extra = u64::from(sharded.owner_of(queries[0]) == Some(s));
            assert_eq!(
                loads.queries[s],
                owned + extra,
                "tally of shard {s} {rect:?}"
            );
        }
        assert_eq!(loads.updates.iter().sum::<u64>(), 0);

        let stats = sharded
            .move_object(42, Point::new(7_700.0, 1_900.0))
            .unwrap();
        let loads = sharded.load_stats();
        assert_eq!(
            loads.updates.iter().sum::<u64>(),
            stats.shards_touched as u64,
            "one update tally per touched shard"
        );
    }

    #[test]
    fn explicit_split_and_merge_keep_answers_bit_identical() {
        let (ds, mut sharded, unsharded) = fixture(180, 2);
        let queries = ds.query_points(30, 19);
        assert_answers_match(&sharded, &unsharded, &queries);

        // Shard 3 of the 2×2 layout is square, so the split lands on x:
        // its whole column divides and the grid becomes 3×2.
        let stats = sharded.split_shard(3).unwrap();
        assert_eq!((stats.nx, stats.ny), (3, 2));
        assert_eq!(sharded.grid_dims(), (3, 2));
        assert_eq!(sharded.shard_count(), 6);
        assert_eq!(stats.shard_map, vec![Some(0), None, Some(3), None]);
        assert_eq!(stats.rebuilt, vec![1, 2, 4, 5]);
        assert_rects_tile_domain(&sharded);
        // Counters reset with the new layout.
        assert_eq!(sharded.load_stats().queries, vec![0; 6]);
        assert_answers_match(&sharded, &unsharded, &queries);

        // Merge the two split columns back: the layout returns to the exact
        // original 2×2 geometry, and answers still match the oracle.
        let rects_before = sharded.shard_rects().to_vec();
        let stats = sharded.merge_shards(1, 2).unwrap();
        assert_eq!((stats.nx, stats.ny), (2, 2));
        assert_eq!(sharded.grid_dims(), (2, 2));
        assert_eq!(
            stats.shard_map,
            vec![Some(0), None, None, Some(2), None, None]
        );
        assert_eq!(stats.rebuilt, vec![1, 3]);
        assert_rects_tile_domain(&sharded);
        assert_ne!(rects_before, sharded.shard_rects());
        assert_answers_match(&sharded, &unsharded, &queries);
        // Moved shards kept their epoch and structure (shard 0 was never
        // rebuilt across either reshard).
        assert_eq!(sharded.shard(0).epoch(), 0);
    }

    #[test]
    fn maybe_reshard_follows_the_load_policy() {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(150));

        // Split trigger: hammer one shard past the threshold.
        let cfg = config()
            .with_reshard_split_load(10)
            .with_reshard_merge_load(4);
        let mut sharded =
            ShardedUvSystem::build(ds.objects.clone(), ds.domain, Method::IC, cfg).unwrap();
        let unsharded = UvSystem::build(ds.objects.clone(), ds.domain, Method::IC, cfg).unwrap();
        let hot = sharded.shard_rects()[0].center();
        for _ in 0..9 {
            sharded.pnn(hot); // below threshold: nothing fires yet
        }
        assert!(sharded.maybe_reshard().unwrap().is_none());
        for _ in 0..3 {
            sharded.pnn(hot); // 12 ≥ 10: the hot shard must split
        }
        let stats = sharded
            .maybe_reshard()
            .unwrap()
            .expect("hot shard must split");
        assert_eq!(stats.nx * stats.ny, 6, "2×2 must grow to 6 shards");
        assert_eq!(sharded.load_stats().queries.iter().sum::<u64>(), 0);
        assert_answers_match(&sharded, &unsharded, &ds.query_points(15, 5));

        // Merge trigger: with no split threshold, an all-cold layout folds
        // back one slab pair per policy call until a single shard remains.
        let cfg = config().with_reshard_merge_load(50);
        let mut cold =
            ShardedUvSystem::build(ds.objects.clone(), ds.domain, Method::IC, cfg).unwrap();
        let merged = cold.maybe_reshard().unwrap().expect("cold pair must merge");
        assert_eq!(merged.nx * merged.ny, 2, "2×2 must shrink to 2 shards");
        while cold.shard_count() > 1 {
            assert!(cold.maybe_reshard().unwrap().is_some());
        }
        assert_eq!(cold.grid_dims(), (1, 1));
        assert!(
            cold.maybe_reshard().unwrap().is_none(),
            "nothing left to fuse"
        );
        assert_answers_match(&cold, &unsharded, &ds.query_points(15, 6));

        // Disabled thresholds (the default): the policy never fires.
        let (_, mut inert, _) = fixture(60, 2);
        for _ in 0..50 {
            inert.pnn(hot);
        }
        assert!(inert.maybe_reshard().unwrap().is_none());
    }

    #[test]
    fn reshard_rejects_invalid_operations_untouched() {
        let (_, mut sharded, _) = fixture(80, 2);
        let rects = sharded.shard_rects().to_vec();
        // Diagonal, self and out-of-range merges; out-of-range split.
        for result in [
            sharded.merge_shards(0, 3),
            sharded.merge_shards(1, 1),
            sharded.merge_shards(0, 9),
            sharded.split_shard(4),
        ] {
            assert!(matches!(result, Err(UvError::InvalidConfig(_))));
        }
        assert_eq!(sharded.grid_dims(), (2, 2));
        assert_eq!(sharded.shard_rects(), rects.as_slice());
    }

    #[test]
    fn snapshot_roundtrip_preserves_every_shard() {
        let (ds, mut sharded, _) = fixture(150, 2);
        sharded
            .apply(
                UpdateBatch::new()
                    .delete(3)
                    .move_to(7, Point::new(4_300.0, 1_200.0)),
            )
            .unwrap();
        let mut bytes = Vec::new();
        let written = sharded.save_snapshot(&mut bytes).unwrap();
        assert_eq!(written, bytes.len() as u64);
        let loaded = ShardedUvSystem::load_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.grid_dims(), sharded.grid_dims());
        assert_eq!(loaded.shard_rects(), sharded.shard_rects());
        for s in 0..sharded.shard_count() {
            assert_eq!(
                loaded.shard(s).index().canonical_leaves(),
                sharded.shard(s).index().canonical_leaves(),
                "shard {s} grid diverged through the round-trip"
            );
            assert_eq!(loaded.shard(s).epoch(), sharded.shard(s).epoch());
        }
        // The router's slim state round-trips bit-identically.
        assert_eq!(loaded.router().epoch(), sharded.router().epoch());
        assert_eq!(loaded.router().objects(), sharded.router().objects());
        for o in sharded.router().objects() {
            let a = sharded.router().object_state(o.id).expect("saved state");
            let b = loaded.router().object_state(o.id).expect("loaded state");
            assert_eq!(a.reference_ids(), b.reference_ids(), "refs of {}", o.id);
            assert_eq!(a.sensitivity(), b.sensitivity(), "sensitivity of {}", o.id);
        }
        // Load tallies start at zero.
        assert_eq!(loaded.load_stats().queries, vec![0; 4]);
        for q in ds.query_points(20, 13) {
            let a = sharded.pnn(q);
            let b = loaded.pnn(q);
            assert_eq!(a.probabilities, b.probabilities);
            assert_eq!(a.candidates_examined, b.candidates_examined);
        }
    }

    #[test]
    fn reshard_snapshot_roundtrips_the_non_uniform_layout() {
        let (ds, mut sharded, unsharded) = fixture(120, 2);
        sharded.split_shard(0).unwrap(); // 3×2, non-uniform x-boundaries
        assert_eq!(sharded.grid_dims(), (3, 2));
        let mut bytes = Vec::new();
        sharded.save_snapshot(&mut bytes).unwrap();
        let loaded = ShardedUvSystem::load_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.grid_dims(), (3, 2));
        assert_eq!(loaded.shard_rects(), sharded.shard_rects());
        assert_eq!(loaded.load_stats().queries, vec![0; 6]);
        assert_answers_match(&loaded, &unsharded, &ds.query_points(15, 29));
    }

    #[test]
    fn snapshot_corruption_is_a_typed_error() {
        let (_, sharded, _) = fixture(80, 2);
        let mut bytes = Vec::new();
        sharded.save_snapshot(&mut bytes).unwrap();

        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            ShardedUvSystem::load_snapshot(&mut bad.as_slice()),
            Err(UvError::SnapshotCorrupt(_))
        ));

        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&77u32.to_le_bytes());
        assert_eq!(
            ShardedUvSystem::load_snapshot(&mut bad.as_slice()).unwrap_err(),
            UvError::SnapshotVersionMismatch {
                found: 77,
                supported: FORMAT_VERSION,
            }
        );

        for cut in [5, 20, bytes.len() / 3, bytes.len() - 1] {
            let err = ShardedUvSystem::load_snapshot(&mut &bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, UvError::SnapshotCorrupt(_)),
                "truncation at {cut} gave {err:?}"
            );
        }

        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&bytes);
        assert!(matches!(
            ShardedUvSystem::load_snapshot(&mut doubled.as_slice()),
            Err(UvError::SnapshotCorrupt(_))
        ));

        // A mid-stream payload flip lands in some section's checksum scope.
        let mut bad = bytes.clone();
        let mid = bytes.len() / 2;
        bad[mid] ^= 0x10;
        assert!(ShardedUvSystem::load_snapshot(&mut bad.as_slice()).is_err());
    }

    #[test]
    fn invalid_config_is_rejected_without_panicking() {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(40));
        let bad = UvConfig::default().with_num_shards(0);
        assert!(matches!(
            ShardedUvSystem::build(ds.objects.clone(), ds.domain, Method::IC, bad),
            Err(UvError::InvalidConfig(_))
        ));
    }
}
