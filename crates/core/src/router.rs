//! The derivation-only router: the sharded serving layer's update authority,
//! slimmed to exactly the state that routing decisions consume.
//!
//! PR 7's sharded layer kept **one full [`crate::UvSystem`]** as its router — grid,
//! leaf pages and object-store pages included — purely to answer two
//! questions per update batch: *which objects does this change affect*
//! (the [`crate::crobjects::UpdateSensitivity`] tables) and *what are the
//! re-derived objects' new influence disks* (geometry + sensitivity again).
//! Neither question ever touches a UV-grid leaf or an object-store page;
//! the shards hold their own full systems and serve every query. The router
//! duplicated the entire unsharded footprint for nothing.
//!
//! [`DerivationRouter`] is the refactor that removes the duplication. It
//! holds **no UV-grid, no leaf pages, no object-store pages** — only:
//!
//! * the live object set and the indexed domain;
//! * an *index-only* R-tree ([`uv_rtree::RTree::build_index_only`]): the
//!   STR packing over the objects with null record pointers, enough for the
//!   k-NN and range probes the derivation makes, with zero page payload
//!   (`derive_subset` never dereferences an entry pointer);
//! * the per-object reference-set / sensitivity table
//!   ([`crate::update::ObjectState`]) — the affected-object oracle;
//! * configuration, construction method and the epoch counter.
//!
//! # Correctness contract
//!
//! [`DerivationRouter::apply`] runs the **same pipeline as
//! [`crate::UvSystem::apply`] steps 1–8**: identical op validation (shared
//! `validate_object`), identical net-diff computation, identical in-place
//! domain growth (shared `grow_domain`), identical affected-set expansion
//! through the sensitivity bounds and identical re-derivation through
//! `crate::builder::derive_subset` — the derivation reads only R-tree
//! probes, objects and the domain, all of which the router keeps
//! bit-identical to the full system's. Steps 9–10 (grid repair, budget
//! reconciliation) have no grid to act on and are skipped: every leaf
//! counter in the returned [`UpdateStats`] is zero and
//! [`UpdateStats::refine_fraction`] is meaningless for a router — answers
//! come from the shards. Everything the sharded layer consumes —
//! `rederived_ids`, the net diff, `domain_grown`, the updated sensitivity
//! table — is bit-identical to what a full [`crate::UvSystem`] would have
//! produced, which is what keeps sharded answers bit-identical to the
//! unsharded oracle (property-tested in `tests/proptest_shard.rs`).
//!
//! # Persistence
//!
//! `DerivationRouter::write_state` (crate-internal) persists config,
//! method, domain, epoch, objects and the reference table (reusing the
//! unsharded snapshot's per-object encoding, d-bounds as bare hull
//! vertices). The R-tree is **not** persisted: STR packing is a pure
//! function of the object set, so `DerivationRouter::read_state` rebuilds
//! it bit-identically with
//! [`uv_rtree::RTree::build_index_only`]. That makes the sharded
//! container's ROUTER section a small multiple of the raw object data —
//! the measured memory win `experiments -- shard` gates on.

use crate::builder::{derive_subset, Method};
use crate::config::UvConfig;
use crate::snapshot::{read_object_state, write_object_state};
use crate::update::{
    grow_domain, validate_object, ObjectState, RefTable, UpdateBatch, UpdateOp, UpdateStats,
};
use crate::UvError;
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::sync::Arc;
use uv_data::{ObjectId, UncertainObject};
use uv_geom::{Circle, Point, Rect};
use uv_rtree::RTree;
use uv_store::codec::{Decode, Encode};
use uv_store::PageStore;

/// Derives the reference table of `objects` from scratch — the router's
/// analogue of the builder's Phase A, without the grid phases.
fn derive_ref_table(
    objects: &[UncertainObject],
    rtree: &RTree,
    domain: &Rect,
    config: &UvConfig,
    method: Method,
) -> RefTable {
    let by_id: HashMap<ObjectId, &UncertainObject> = objects.iter().map(|o| (o.id, o)).collect();
    let subjects: Vec<&UncertainObject> = objects.iter().collect();
    derive_subset(&subjects, objects, &by_id, rtree, domain, config, method)
        .into_iter()
        .map(|p| {
            (
                p.id,
                ObjectState {
                    reference_ids: p.reference_ids,
                    sensitivity: p.sensitivity,
                },
            )
        })
        .collect()
}

/// The sharded layer's update authority: object set, domain, an index-only
/// R-tree and the per-object sensitivity table — and nothing else. See the
/// [module docs](crate::router) for why this replaces the full
/// [`crate::UvSystem`] PR 7 routed through.
#[derive(Debug)]
pub struct DerivationRouter {
    pub(crate) objects: Vec<UncertainObject>,
    pub(crate) domain: Rect,
    pub(crate) rtree: RTree,
    pub(crate) ref_table: RefTable,
    pub(crate) config: UvConfig,
    pub(crate) method: Method,
    pub(crate) epoch: u64,
}

impl DerivationRouter {
    /// Builds a router over `objects`: validates the configuration, packs
    /// the index-only R-tree and derives every object's reference set and
    /// sensitivity — exactly the derivation [`crate::UvSystem::build`] performs,
    /// minus the grid construction.
    pub fn build(
        objects: Vec<UncertainObject>,
        domain: Rect,
        method: Method,
        config: UvConfig,
    ) -> Result<Self, UvError> {
        config.validate()?;
        let rtree = RTree::build_index_only(&objects, Arc::new(PageStore::new()));
        let ref_table = derive_ref_table(&objects, &rtree, &domain, &config, method);
        Ok(Self {
            objects,
            domain,
            rtree,
            ref_table,
            config,
            method,
            epoch: 0,
        })
    }

    /// The live object set.
    pub fn objects(&self) -> &[UncertainObject] {
        &self.objects
    }

    /// The indexed domain rectangle.
    pub fn domain(&self) -> Rect {
        self.domain
    }

    /// The configuration the router (and every shard) was built with.
    pub fn config(&self) -> &UvConfig {
        &self.config
    }

    /// The construction method.
    pub fn method(&self) -> Method {
        self.method
    }

    /// The update epoch: bumped once per applied batch with a non-empty net
    /// difference, mirroring [`crate::UvSystem`]'s index epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The maintenance state of one object (reference ids + sensitivity),
    /// or `None` for an unknown id.
    pub fn object_state(&self, id: ObjectId) -> Option<&ObjectState> {
        self.ref_table.get(&id)
    }

    /// Applies an update batch through the same pipeline as
    /// [`crate::UvSystem::apply`] steps 1–8 — identical validation, net diff,
    /// domain growth, affected-set expansion and re-derivation — without
    /// the grid repair (there is no grid). All leaf counters in the
    /// returned stats are zero; `rederived_ids`, the net-diff counts and
    /// `domain_grown` are bit-identical to the full system's.
    pub fn apply(&mut self, batch: UpdateBatch) -> Result<UpdateStats, UvError> {
        let mut stats = UpdateStats {
            epoch: self.epoch,
            ..UpdateStats::default()
        };

        // ---- 1. Validate by simulation (identical to UvSystem::apply) ----
        let before: HashMap<ObjectId, &UncertainObject> =
            self.objects.iter().map(|o| (o.id, o)).collect();
        let mut overlay: HashMap<ObjectId, Option<UncertainObject>> = HashMap::new();
        let is_live = |overlay: &HashMap<ObjectId, Option<UncertainObject>>,
                       before: &HashMap<ObjectId, &UncertainObject>,
                       id: &ObjectId| {
            overlay
                .get(id)
                .map_or(before.contains_key(id), Option::is_some)
        };
        for op in &batch.ops {
            match op {
                UpdateOp::Insert(o) => {
                    validate_object(o)?;
                    if is_live(&overlay, &before, &o.id) {
                        return Err(UvError::DuplicateObject(o.id));
                    }
                    overlay.insert(o.id, Some(o.clone()));
                }
                UpdateOp::Delete(id) => {
                    if !is_live(&overlay, &before, id) {
                        return Err(UvError::UnknownObject(*id));
                    }
                    overlay.insert(*id, None);
                }
                UpdateOp::Move { id, center } => {
                    let current = match overlay.get(id) {
                        Some(state) => state.as_ref(),
                        None => before.get(id).copied(),
                    };
                    let Some(current) = current else {
                        return Err(UvError::UnknownObject(*id));
                    };
                    if !center.x.is_finite() || !center.y.is_finite() {
                        return Err(UvError::InvalidObject(*id));
                    }
                    let mut moved = current.clone();
                    moved.region.center = *center;
                    overlay.insert(*id, Some(moved));
                }
            }
        }

        // ---- 2. Net difference -------------------------------------------
        let mut deleted: Vec<ObjectId> = Vec::new();
        let mut inserted: Vec<ObjectId> = Vec::new();
        let mut changed: Vec<ObjectId> = Vec::new();
        let mut removed_mbcs: Vec<Circle> = Vec::new();
        let mut added_mbcs: Vec<Circle> = Vec::new();
        let mut moved_mbcs: Vec<(Circle, Circle)> = Vec::new();
        for (id, state) in &overlay {
            match (before.get(id), state) {
                (Some(b), Some(o)) if *b != o => {
                    changed.push(*id);
                    moved_mbcs.push((b.mbc(), o.mbc()));
                }
                (Some(_), Some(_)) => {}
                (Some(b), None) => {
                    deleted.push(*id);
                    removed_mbcs.push(b.mbc());
                }
                (None, Some(o)) => {
                    inserted.push(*id);
                    added_mbcs.push(o.mbc());
                }
                (None, None) => {}
            }
        }
        drop(before);
        deleted.sort_unstable();
        inserted.sort_unstable();
        changed.sort_unstable();
        stats.deleted = deleted.len();
        stats.inserted = inserted.len();
        stats.moved = changed.len();
        if deleted.is_empty() && inserted.is_empty() && changed.is_empty() {
            return Ok(stats);
        }
        let updated = |id: &ObjectId| overlay[id].as_ref().expect("net-changed ids carry a state");

        // ---- 3. Apply the net difference to the object vector ------------
        self.objects
            .retain(|o| !matches!(overlay.get(&o.id), Some(None)));
        for o in self.objects.iter_mut() {
            if changed.binary_search(&o.id).is_ok() {
                *o = updated(&o.id).clone();
            }
        }
        for id in &inserted {
            self.objects.push(updated(id).clone());
        }

        // ---- 4. Index-only R-tree rebuild --------------------------------
        // The full system bulk-reloads its R-tree from the object store;
        // the router has no store, so it packs the same STR layout with
        // null record pointers into a fresh page arena. The k-NN and range
        // probes the derivation makes are bit-identical on both trees.
        self.rtree = RTree::build_index_only(&self.objects, Arc::new(PageStore::new()));

        // ---- 5. In-place domain growth -----------------------------------
        let needed = inserted
            .iter()
            .chain(&changed)
            .map(|id| updated(id).mbr())
            .filter(|mbr| !self.domain.contains_rect(mbr))
            .fold(None::<Rect>, |acc, mbr| {
                Some(acc.map_or(mbr, |a| a.union(&mbr)))
            });
        if let Some(needed) = needed {
            let domain = grow_domain(self.domain, &needed);
            return self.finish_with_domain_growth(stats, domain);
        }

        // ---- 6. Affected objects (identical sensitivity walk) ------------
        let changed_set: HashSet<ObjectId> = changed.iter().copied().collect();
        let inserted_set: HashSet<ObjectId> = inserted.iter().copied().collect();
        let mut affected: HashSet<ObjectId> = changed_set.union(&inserted_set).copied().collect();
        stats.objects_in_knn_radius = affected.len();
        let mut repartition_only: Vec<ObjectId> = Vec::new();
        for o in &self.objects {
            if affected.contains(&o.id) {
                continue;
            }
            let sensitivity = &self.ref_table[&o.id].sensitivity;
            let c = o.center();
            let mut impact = crate::crobjects::ChangeImpact::Unaffected;
            for mbc in &removed_mbcs {
                if sensitivity.affected_by_removed(c, mbc) {
                    impact = crate::crobjects::ChangeImpact::Rederive;
                    break;
                }
            }
            for mbc in &added_mbcs {
                if impact < crate::crobjects::ChangeImpact::Rederive
                    && sensitivity.affected_by_added(c, mbc)
                {
                    impact = crate::crobjects::ChangeImpact::Rederive;
                }
            }
            for (old, new) in &moved_mbcs {
                if impact < crate::crobjects::ChangeImpact::Rederive {
                    let mut verdict = sensitivity.move_impact(c, old, new);
                    if verdict == crate::crobjects::ChangeImpact::RepartitionOnly
                        && self.method != Method::IC
                    {
                        verdict = crate::crobjects::ChangeImpact::Rederive;
                    }
                    impact = impact.max(verdict);
                }
            }
            match impact {
                crate::crobjects::ChangeImpact::Rederive => {
                    affected.insert(o.id);
                    stats.objects_in_knn_radius += 1;
                }
                crate::crobjects::ChangeImpact::RepartitionOnly => {
                    repartition_only.push(o.id);
                    stats.objects_in_knn_radius += 1;
                }
                crate::crobjects::ChangeImpact::Unaffected => {
                    if removed_mbcs
                        .iter()
                        .chain(&added_mbcs)
                        .chain(moved_mbcs.iter().flat_map(|(a, b)| [a, b]))
                        .any(|mbc| sensitivity.affected_by_knn_bound(c, mbc))
                    {
                        stats.objects_in_knn_radius += 1;
                    }
                }
            }
        }

        // ---- 7. Re-derive the affected objects ---------------------------
        let by_id: HashMap<ObjectId, &UncertainObject> =
            self.objects.iter().map(|o| (o.id, o)).collect();
        let subjects: Vec<&UncertainObject> = self
            .objects
            .iter()
            .filter(|o| affected.contains(&o.id))
            .collect();
        let derived = derive_subset(
            &subjects,
            &self.objects,
            &by_id,
            &self.rtree,
            &self.domain,
            &self.config,
            self.method,
        );
        stats.objects_rederived = derived.len();

        // ---- 8. Diff derivations into the dirty set ----------------------
        // The router keeps the dirty bookkeeping (and the repartitioned
        // count) bit-identical to the full system's even though it has no
        // grid to repair — the sharded layer surfaces these stats.
        let mut dirty: Vec<ObjectId> = Vec::new();
        for p in derived {
            stats.rederived_ids.push(p.id);
            let refs_changed = self
                .ref_table
                .get(&p.id)
                .is_none_or(|w| w.reference_ids != p.reference_ids);
            let is_dirty = refs_changed
                || changed_set.contains(&p.id)
                || p.reference_ids.iter().any(|r| changed_set.contains(r));
            self.ref_table.insert(
                p.id,
                ObjectState {
                    reference_ids: p.reference_ids,
                    sensitivity: p.sensitivity,
                },
            );
            if is_dirty && !inserted_set.contains(&p.id) {
                dirty.push(p.id);
            }
        }
        for id in &deleted {
            self.ref_table.remove(id);
        }
        dirty.extend_from_slice(&repartition_only);
        dirty.sort_unstable();
        stats.objects_repartitioned = dirty.len() + inserted.len() + deleted.len();

        // No steps 9–10: there is no grid to repair and no budget to
        // reconcile. Leaf counters stay zero.
        self.epoch += 1;
        stats.epoch = self.epoch;
        Ok(stats)
    }

    /// Finishes a batch whose net difference left the old domain: adopts
    /// the exponentially grown domain and re-derives every object under it
    /// (the derivation is domain-seeded). Mirrors the full system's growth
    /// path with leaf counters zeroed.
    fn finish_with_domain_growth(
        &mut self,
        mut stats: UpdateStats,
        domain: Rect,
    ) -> Result<UpdateStats, UvError> {
        self.domain = domain;
        self.ref_table = derive_ref_table(
            &self.objects,
            &self.rtree,
            &self.domain,
            &self.config,
            self.method,
        );
        self.epoch += 1;
        stats.domain_grown = true;
        stats.objects_rederived = self.objects.len();
        stats.rederived_ids = self.objects.iter().map(|o| o.id).collect();
        stats.objects_in_knn_radius = self.objects.len();
        stats.objects_repartitioned = self.objects.len();
        stats.epoch = self.epoch;
        stats.repaired_rects = vec![self.domain];
        Ok(stats)
    }

    /// Adopts `domain` directly (no growth policy): re-derives everything
    /// under it and advances the epoch — the router-side analogue of
    /// [`crate::UvSystem`]'s `grow_domain_to`, used by snapshot-load paths that
    /// must reproduce an exact persisted domain. A no-op when `domain`
    /// equals the current one.
    #[allow(dead_code)]
    pub(crate) fn grow_domain_to(&mut self, domain: Rect) {
        if domain == self.domain {
            return;
        }
        self.domain = domain;
        self.ref_table = derive_ref_table(
            &self.objects,
            &self.rtree,
            &self.domain,
            &self.config,
            self.method,
        );
        self.epoch += 1;
    }

    /// Serialises the router's persistent state: config, method, domain,
    /// epoch, objects and the reference table (the unsharded snapshot's
    /// per-object encoding — d-bounds as bare hull vertices). The R-tree
    /// is deliberately absent: STR packing is a pure function of the
    /// object set, so [`DerivationRouter::read_state`] rebuilds it
    /// bit-identically.
    pub(crate) fn write_state<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.config.write_to(w)?;
        self.method.write_to(w)?;
        self.domain.write_to(w)?;
        self.epoch.write_to(w)?;
        self.objects.write_to(w)?;
        let mut entries: Vec<(u32, &ObjectState)> =
            self.ref_table.iter().map(|(id, s)| (*id, s)).collect();
        entries.sort_unstable_by_key(|(id, _)| *id);
        entries.len().write_to(w)?;
        for (id, state) in &entries {
            id.write_to(w)?;
            write_object_state(state, w)?;
        }
        Ok(())
    }

    /// The size of the router's persistent-state encoding in bytes —
    /// what the ROUTER section of a sharded snapshot costs, and the figure
    /// the shard experiment's memory gate compares against a full
    /// unsharded snapshot.
    pub fn state_bytes(&self) -> u64 {
        let mut bytes = Vec::new();
        self.write_state(&mut bytes)
            .expect("writing to a Vec cannot fail");
        bytes.len() as u64
    }

    /// Inverse of [`DerivationRouter::write_state`]: decodes and validates
    /// the slim state, then rebuilds the index-only R-tree from the object
    /// set. Malformed input yields a typed [`UvError`], never a panic.
    pub(crate) fn read_state<R: Read + ?Sized>(r: &mut R) -> Result<Self, UvError> {
        let config = UvConfig::read_from(r)?;
        config.validate().map_err(|e| {
            UvError::SnapshotCorrupt(format!("persisted router configuration: {e}"))
        })?;
        let method = Method::read_from(r)?;
        let domain = Rect::read_from(r)?;
        let epoch = u64::read_from(r)?;
        let objects: Vec<UncertainObject> = Vec::read_from(r)?;
        let entries = usize::read_from(r)?;
        let centers: HashMap<u32, Point> = objects.iter().map(|o| (o.id, o.center())).collect();
        let mut ref_table = RefTable::with_capacity(entries.min(4_096));
        for _ in 0..entries {
            let id = u32::read_from(r)?;
            let Some(center) = centers.get(&id) else {
                return Err(UvError::SnapshotCorrupt(format!(
                    "router reference table names unknown object {id}"
                )));
            };
            let state = read_object_state(*center, r)?;
            if ref_table.insert(id, state).is_some() {
                return Err(UvError::SnapshotCorrupt(format!(
                    "object {id} appears twice in the router reference table"
                )));
            }
        }
        if ref_table.len() != objects.len()
            || objects.iter().any(|o| !ref_table.contains_key(&o.id))
        {
            return Err(UvError::SnapshotCorrupt(
                "router reference table does not cover the live object set".into(),
            ));
        }
        let rtree = RTree::build_index_only(&objects, Arc::new(PageStore::new()));
        Ok(Self {
            objects,
            domain,
            rtree,
            ref_table,
            config,
            method,
            epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::UvSystem;
    use uv_data::{Dataset, GeneratorConfig};

    fn fixture(n: usize) -> (Dataset, UvSystem, DerivationRouter) {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(n));
        let config = UvConfig::default()
            .with_seed_knn(24)
            .with_leaf_split_capacity(16);
        let sys = UvSystem::build(ds.objects.clone(), ds.domain, Method::IC, config).unwrap();
        let router =
            DerivationRouter::build(ds.objects.clone(), ds.domain, Method::IC, config).unwrap();
        (ds, sys, router)
    }

    fn assert_tables_match(sys: &UvSystem, router: &DerivationRouter) {
        assert_eq!(sys.objects().len(), router.objects().len());
        assert_eq!(sys.domain(), router.domain());
        for o in sys.objects() {
            let a = sys.object_state(o.id).expect("system state");
            let b = router.object_state(o.id).expect("router state");
            assert_eq!(a.reference_ids(), b.reference_ids(), "refs of {}", o.id);
            assert_eq!(a.sensitivity(), b.sensitivity(), "sensitivity of {}", o.id);
        }
    }

    #[test]
    fn build_derives_the_same_reference_table_as_the_full_system() {
        let (_, sys, router) = fixture(150);
        assert_tables_match(&sys, &router);
        assert_eq!(router.epoch(), 0);
    }

    #[test]
    fn apply_mirrors_the_full_pipeline_bit_identically() {
        let (ds, mut sys, mut router) = fixture(150);
        let batch = UpdateBatch::new()
            .insert(UncertainObject::with_gaussian(
                900,
                Point::new(2_500.0, 2_500.0),
                20.0,
            ))
            .delete(17)
            .move_to(42, Point::new(7_400.0, 1_200.0));
        let a = sys.apply(batch.clone()).unwrap();
        let b = router.apply(batch).unwrap();
        assert_eq!(
            (a.inserted, a.deleted, a.moved),
            (b.inserted, b.deleted, b.moved)
        );
        assert_eq!(a.objects_rederived, b.objects_rederived);
        assert_eq!(a.objects_in_knn_radius, b.objects_in_knn_radius);
        assert_eq!(a.objects_repartitioned, b.objects_repartitioned);
        let mut ra = a.rederived_ids.clone();
        let mut rb = b.rederived_ids.clone();
        ra.sort_unstable();
        rb.sort_unstable();
        assert_eq!(ra, rb, "affected sets diverged");
        assert_eq!(a.epoch, b.epoch);
        // The router has no grid: its leaf counters are zero by contract.
        assert_eq!(b.leaves_refined, 0);
        assert_eq!(b.total_leaves, 0);
        assert_tables_match(&sys, &router);
        let _ = ds;
    }

    #[test]
    fn apply_rejects_the_same_ops_without_mutating() {
        let (_, mut sys, mut router) = fixture(60);
        let bad = [
            UpdateBatch::new().delete(999),
            UpdateBatch::new().insert(UncertainObject::with_uniform(
                3,
                Point::new(100.0, 100.0),
                5.0,
            )),
            UpdateBatch::new().move_to(2, Point::new(f64::NAN, 0.0)),
            UpdateBatch::new()
                .delete(1)
                .move_to(55_555, Point::new(1.0, 1.0)),
        ];
        for batch in bad {
            let ea = sys.apply(batch.clone()).unwrap_err();
            let eb = router.apply(batch).unwrap_err();
            assert_eq!(ea, eb, "error behaviour diverged");
        }
        assert_eq!(router.epoch(), 0);
        assert_eq!(router.objects().len(), 60);
        assert_tables_match(&sys, &router);
    }

    #[test]
    fn net_noop_batches_do_not_bump_the_epoch() {
        let (ds, _, mut router) = fixture(60);
        let stats = router.apply(UpdateBatch::new()).unwrap();
        assert_eq!(stats.epoch, 0);
        let original = ds.objects[5].clone();
        router
            .apply(UpdateBatch::new().delete(5).insert(original))
            .unwrap();
        assert_eq!(router.epoch(), 0);
    }

    #[test]
    fn domain_growth_matches_the_full_system() {
        let (ds, mut sys, mut router) = fixture(80);
        let outside = UncertainObject::with_uniform(
            800,
            Point::new(ds.domain.max_x + 500.0, ds.domain.max_y + 500.0),
            10.0,
        );
        let a = sys.insert_object(outside.clone()).unwrap();
        let b = router.apply(UpdateBatch::new().insert(outside)).unwrap();
        assert!(a.domain_grown && b.domain_grown);
        assert_eq!(sys.domain(), router.domain());
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.objects_rederived, b.objects_rederived);
        assert_tables_match(&sys, &router);
    }

    #[test]
    fn state_roundtrip_is_bit_identical_and_updatable() {
        let (_, mut sys, mut router) = fixture(120);
        let batch = UpdateBatch::new()
            .delete(3)
            .move_to(7, Point::new(4_321.0, 1_234.0));
        sys.apply(batch.clone()).unwrap();
        router.apply(batch).unwrap();

        let mut bytes = Vec::new();
        router.write_state(&mut bytes).unwrap();
        assert_eq!(bytes.len() as u64, router.state_bytes());
        let mut loaded = DerivationRouter::read_state(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.epoch(), router.epoch());
        assert_eq!(loaded.objects(), router.objects());
        assert_tables_match(&sys, &loaded);

        // Updates after the round-trip equal updates without it.
        let next = UpdateBatch::new()
            .insert(UncertainObject::with_uniform(
                901,
                Point::new(6_000.0, 3_000.0),
                15.0,
            ))
            .move_to(42, Point::new(1_111.0, 8_888.0));
        let a = router.apply(next.clone()).unwrap();
        let b = loaded.apply(next).unwrap();
        assert_eq!(a.objects_rederived, b.objects_rederived);
        let mut ra = a.rederived_ids.clone();
        let mut rb = b.rederived_ids.clone();
        ra.sort_unstable();
        rb.sort_unstable();
        assert_eq!(ra, rb);
        sys.apply(
            UpdateBatch::new()
                .insert(UncertainObject::with_uniform(
                    901,
                    Point::new(6_000.0, 3_000.0),
                    15.0,
                ))
                .move_to(42, Point::new(1_111.0, 8_888.0)),
        )
        .unwrap();
        assert_tables_match(&sys, &loaded);
    }

    #[test]
    fn corrupt_state_yields_typed_errors() {
        let (_, _, router) = fixture(60);
        let mut bytes = Vec::new();
        router.write_state(&mut bytes).unwrap();
        for cut in [3, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                matches!(
                    DerivationRouter::read_state(&mut &bytes[..cut]),
                    Err(UvError::SnapshotCorrupt(_))
                ),
                "truncation at {cut} must be corruption"
            );
        }
    }

    #[test]
    fn slim_state_is_smaller_than_a_full_snapshot() {
        // The tentpole's memory claim at unit scope: the router's persisted
        // state must undercut the full system snapshot it replaces.
        let (_, sys, router) = fixture(200);
        let mut full = Vec::new();
        let full_bytes = sys.save_snapshot(&mut full).unwrap();
        assert!(
            router.state_bytes() < full_bytes,
            "slim router ({}) must be smaller than the full snapshot ({})",
            router.state_bytes(),
            full_bytes
        );
    }
}
