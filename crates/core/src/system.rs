//! A batteries-included wrapper bundling every component a UV-diagram
//! deployment needs: the object store, the R-tree (used both as the paper's
//! baseline and as the construction substrate) and the UV-index itself.
//!
//! [`UvSystem`] is what the examples and the experiment harness use; the
//! individual pieces remain available for callers that want to manage
//! storage themselves.

use crate::builder::{build_uv_index_full, Method};
use crate::config::UvConfig;
use crate::engine::{QueryEngine, TrajectoryStep};
use crate::index::UvIndex;
use crate::stats::ConstructionStats;
use crate::update::RefTable;
use std::sync::Arc;
use uv_data::{ObjectId, ObjectStore, PnnAnswer, UncertainObject};
use uv_geom::{Point, Rect};
use uv_rtree::{pnn_query, RTree};
use uv_store::PageStore;

/// A complete UV-diagram deployment over one dataset.
///
/// Beyond the paper's frozen-dataset setting, the system is *dynamic*:
/// [`UvSystem::updater`], [`UvSystem::apply`] and the single-op wrappers
/// ([`UvSystem::insert_object`], [`UvSystem::delete_object`],
/// [`UvSystem::move_object`]) maintain every structure incrementally with
/// answers bit-identical to a cold rebuild — see [`crate::update`].
///
/// It is also *durable*: [`UvSystem::save_snapshot`] persists the whole
/// system to a versioned, checksummed binary stream and
/// [`UvSystem::load_snapshot`] reconstructs it query-ready in `O(bytes)`
/// with zero re-derivation — see [`crate::snapshot`].
#[derive(Debug)]
pub struct UvSystem {
    pub(crate) objects: Vec<UncertainObject>,
    pub(crate) domain: Rect,
    pub(crate) object_store: ObjectStore,
    pub(crate) rtree: RTree,
    pub(crate) index: UvIndex,
    pub(crate) construction: ConstructionStats,
    pub(crate) config: UvConfig,
    pub(crate) method: Method,
    /// Per-object reference sets and update-sensitivity bounds, kept in sync
    /// with the index by [`crate::update`].
    pub(crate) ref_table: RefTable,
}

impl UvSystem {
    /// Builds the object store, the R-tree and the UV-index (with `method`)
    /// over `objects`.
    ///
    /// A configuration that fails [`UvConfig::validate`] is reported as
    /// [`crate::UvError::InvalidConfig`] — construction never panics on bad
    /// tuning.
    pub fn build(
        objects: Vec<UncertainObject>,
        domain: Rect,
        method: Method,
        config: UvConfig,
    ) -> Result<Self, crate::UvError> {
        let object_pages = Arc::new(PageStore::new());
        let object_store = ObjectStore::build(Arc::clone(&object_pages), &objects);
        let rtree_pages = Arc::new(PageStore::new());
        let rtree = RTree::build(&objects, &object_store, rtree_pages);
        let index_pages = Arc::new(PageStore::new());
        let (index, construction, ref_table) = build_uv_index_full(
            &objects,
            &object_store,
            &rtree,
            domain,
            index_pages,
            method,
            config,
        )?;
        Ok(Self {
            objects,
            domain,
            object_store,
            rtree,
            index,
            construction,
            config,
            method,
            ref_table,
        })
    }

    /// Builds with the paper's default configuration and the IC method.
    /// Infallible: the default configuration always validates (asserted by
    /// the `uv_core::config` test suite).
    pub fn with_defaults(objects: Vec<UncertainObject>, domain: Rect) -> Self {
        Self::build(objects, domain, Method::IC, UvConfig::default())
            .expect("the default UvConfig always validates")
    }

    /// The indexed objects. Under dynamic maintenance the slice reflects the
    /// current live set: deletes remove, inserts append, moves mutate in
    /// place (the index itself orders members canonically by id, so slice
    /// order carries no meaning).
    pub fn objects(&self) -> &[UncertainObject] {
        &self.objects
    }

    /// The indexed domain. It grows — exponentially, in place, never through
    /// a rebuild — when an update inserts or moves an object beyond it
    /// ([`crate::update::UpdateStats::domain_grown`]).
    pub fn domain(&self) -> Rect {
        self.domain
    }

    /// The construction method the system was built with (re-used by
    /// incremental re-derivations).
    pub fn method(&self) -> Method {
        self.method
    }

    /// The configuration the system was built with.
    pub fn config(&self) -> &UvConfig {
        &self.config
    }

    /// Current index epoch: 0 after construction, bumped once per applied
    /// update batch.
    pub fn epoch(&self) -> u64 {
        self.index.epoch()
    }

    /// The retained maintenance state of one object (reference ids and
    /// sensitivity bound), if it is live.
    pub fn object_state(&self, id: ObjectId) -> Option<&crate::update::ObjectState> {
        self.ref_table.get(&id)
    }

    /// The UV-index.
    pub fn index(&self) -> &UvIndex {
        &self.index
    }

    /// The R-tree baseline over the same objects.
    pub fn rtree(&self) -> &RTree {
        &self.rtree
    }

    /// The shared object store (full records with pdfs).
    pub fn object_store(&self) -> &ObjectStore {
        &self.object_store
    }

    /// Statistics of the UV-index construction.
    pub fn construction_stats(&self) -> &ConstructionStats {
        &self.construction
    }

    /// Answers a PNN query with the UV-index (point lookup + verification).
    pub fn pnn(&self, q: Point) -> PnnAnswer {
        self.index
            .pnn(&self.object_store, q, self.config.integration_steps)
    }

    /// Creates a concurrent batched query engine over this system's index
    /// and object store (worker count and leaf-cache toggle come from the
    /// [`UvConfig`] the system was built with).
    ///
    /// The engine borrows the system; keep it alive across batches to retain
    /// its per-leaf cache. The convenience wrappers [`UvSystem::pnn_batch`]
    /// and [`UvSystem::pnn_trajectory`] build a fresh engine per call.
    pub fn engine(&self) -> QueryEngine<'_> {
        QueryEngine::new(&self.index, &self.object_store)
    }

    /// Answers a batch of PNN queries concurrently; answers are in query
    /// order and bit-identical to a sequential loop of [`UvSystem::pnn`].
    pub fn pnn_batch(&self, queries: &[Point]) -> Vec<PnnAnswer> {
        self.engine().pnn_batch(queries)
    }

    /// Answers a moving-PNN workload (a trajectory of query points),
    /// reporting each step's answer plus the delta against the previous
    /// step's answer set.
    pub fn pnn_trajectory(&self, path: &[Point]) -> Vec<TrajectoryStep> {
        self.engine().pnn_trajectory(path)
    }

    /// Answers the same PNN query with the R-tree branch-and-prune baseline
    /// of \[14\] — the comparison of Figure 6.
    pub fn pnn_rtree(&self, q: Point) -> PnnAnswer {
        pnn_query(
            &self.rtree,
            &self.object_store,
            q,
            self.config.integration_steps,
        )
    }

    /// Approximate area of the UV-cell of `id` (Section V-C, query 1).
    pub fn cell_area(&self, id: ObjectId) -> f64 {
        self.index.cell_area(id)
    }

    /// UV-partition query over `region` (Section V-C, query 2).
    pub fn partition_query(&self, region: &Rect) -> Vec<crate::pattern::PartitionCell> {
        self.index.partition_query(region)
    }

    /// Resets every I/O counter (index leaf pages, R-tree leaf pages, object
    /// pages). Call between measurement batches.
    pub fn reset_io(&self) {
        self.index.store().reset_io();
        self.rtree.store().reset_io();
        self.object_store.store().reset_io();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uv_data::{Dataset, GeneratorConfig};

    fn system(n: usize) -> (Dataset, UvSystem) {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(n));
        let sys = UvSystem::with_defaults(ds.objects.clone(), ds.domain);
        (ds, sys)
    }

    #[test]
    fn uv_index_and_rtree_agree_on_answers() {
        let (ds, sys) = system(250);
        for q in ds.query_points(20, 99) {
            let uv = sys.pnn(q);
            let rt = sys.pnn_rtree(q);
            assert_eq!(
                uv.answer_ids(),
                rt.answer_ids(),
                "answer sets differ at {q:?}"
            );
            // Probabilities agree closely as well (same integration method).
            for (id, p) in &uv.probabilities {
                let p2 = rt
                    .probabilities
                    .iter()
                    .find(|(id2, _)| id2 == id)
                    .map(|(_, p2)| *p2)
                    .unwrap();
                assert!((p - p2).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn uv_index_uses_fewer_leaf_ios_than_rtree() {
        let (ds, sys) = system(800);
        let queries = ds.query_points(30, 5);
        sys.reset_io();
        let mut uv_io = 0;
        let mut rt_io = 0;
        for q in &queries {
            uv_io += sys.pnn(*q).breakdown.index_io;
            rt_io += sys.pnn_rtree(*q).breakdown.index_io;
        }
        assert!(
            uv_io < rt_io,
            "UV-index should read fewer leaf pages ({uv_io} vs {rt_io})"
        );
    }

    #[test]
    fn batched_and_trajectory_queries_agree_with_point_lookups() {
        let (ds, sys) = system(200);
        let queries = ds.query_points(16, 13);
        let batch = sys.pnn_batch(&queries);
        for (q, a) in queries.iter().zip(&batch) {
            let single = sys.pnn(*q);
            assert_eq!(a.probabilities, single.probabilities);
            assert_eq!(a.candidates_examined, single.candidates_examined);
        }
        let steps = sys.pnn_trajectory(&queries);
        assert_eq!(steps.len(), queries.len());
        for (step, a) in steps.iter().zip(&batch) {
            assert_eq!(step.answer.probabilities, a.probabilities);
        }
        assert!(sys.engine().workers() >= 1);
    }

    #[test]
    fn every_invalid_config_is_a_typed_error_not_a_panic() {
        // Regression for the `validate().expect(..)` panic that used to sit
        // in `build_uv_index_full`: every rejection `UvConfig::validate` can
        // produce must surface as `UvError::InvalidConfig` from the public
        // construction entry points.
        use crate::builder::build_uv_index;
        use crate::UvError;
        use uv_store::PageStore;

        let ds = Dataset::generate(GeneratorConfig::paper_uniform(30));
        let base = UvConfig::default();
        let bad_configs = [
            UvConfig {
                num_seeds: 0,
                ..base
            },
            UvConfig {
                seed_knn: 0,
                ..base
            },
            UvConfig {
                split_threshold: 1.5,
                ..base
            },
            UvConfig {
                split_threshold: -0.1,
                ..base
            },
            UvConfig {
                max_nonleaf: 0,
                ..base
            },
            UvConfig {
                integration_steps: 1,
                ..base
            },
            UvConfig {
                curve_samples: 0,
                ..base
            },
            UvConfig {
                num_shards: 0,
                ..base
            },
        ];
        for config in bad_configs {
            let expected = config.validate().unwrap_err();
            assert!(matches!(expected, UvError::InvalidConfig(_)));
            let err = UvSystem::build(ds.objects.clone(), ds.domain, Method::IC, config)
                .expect_err("invalid config must be rejected");
            assert_eq!(err, expected, "UvSystem::build: {config:?}");

            // The free-standing builder surfaces the same typed error.
            let pages = Arc::new(PageStore::new());
            let object_store = ObjectStore::build(Arc::clone(&pages), &ds.objects);
            let rtree = RTree::build(&ds.objects, &object_store, pages);
            let err = build_uv_index(
                &ds.objects,
                &object_store,
                &rtree,
                ds.domain,
                Arc::new(PageStore::new()),
                Method::ICR,
                config,
            )
            .expect_err("invalid config must be rejected");
            assert_eq!(err, expected, "build_uv_index: {config:?}");
        }
    }

    #[test]
    fn accessors_are_consistent() {
        let (ds, sys) = system(150);
        assert_eq!(sys.objects().len(), 150);
        assert_eq!(sys.domain(), ds.domain);
        assert_eq!(sys.construction_stats().objects, 150);
        assert!(sys.cell_area(0) > 0.0);
        assert!(!sys.partition_query(&ds.domain).is_empty());
        assert_eq!(sys.rtree().len(), 150);
        assert_eq!(sys.object_store().len(), 150);
        assert!(sys.index().num_leaf_nodes() >= 1);
    }
}
