//! Continuous PNN subscriptions: per-client safe regions with delta push.
//!
//! The paper's UV-diagram makes one promise that batch queries cannot cash
//! in: inside a UV-cell the PNN answer is *constant* (Section V-A), so a
//! moving client whose position stays inside a known stable region needs no
//! index work at all — the setting of the probabilistic moving-NN literature
//! (Ali et al., see `docs/PAPER_MAP.md`). [`SubscriptionEngine`] is that
//! serving mode:
//!
//! * **Safe regions** — every full derivation for a client also computes a
//!   *stability disk* around the query point: the largest radius within
//!   which (a) the `d_minmax` candidate screen of the client's UV-leaf keeps
//!   the exact same candidate list (`candidate_stability_radius`) and (b)
//!   the numerically integrated qualification probabilities keep the exact
//!   same positive/zero split (`answer_stability_radius`). While a tick
//!   stays strictly inside the disk and in the same leaf, the answer *id
//!   set* is provably unchanged: the tick is answered with zero leaf page
//!   reads and pushes no delta.
//! * **Delta push** — a tick that leaves the safe region re-derives through
//!   the same per-leaf cache and worker pool as [`crate::engine`] and pushes
//!   an [`AnswerDelta`] only when the answer id set actually changed, so the
//!   client-visible stream is one unbroken chain of deltas.
//! * **Epoch-tagged invalidation** — after [`crate::UvSystem::apply`], only
//!   subscriptions whose position lies inside a repaired leaf rectangle
//!   ([`crate::update::UpdateStats::repaired_regions`]) re-derive; everyone
//!   else revalidates by bumping their epoch tag
//!   ([`SubscriptionEngine::refresh_after`]).
//! * **Shard-aware migration** — over a [`ShardedUvSystem`] each client is
//!   pinned to its owning shard; a tick that crosses a shard boundary
//!   re-derives on the destination shard and the client migrates, with the
//!   delta chain staying unbroken ([`SubscriptionEngine::sharded`]). An
//!   elastic reshard renumbers the pins of shards that moved wholesale and
//!   re-derives only clients on rebuilt shards — bit-identical answers, so
//!   the reshard itself pushes no deltas
//!   ([`SubscriptionEngine::refresh_after_reshard`]).
//!
//! The engine borrows the system immutably (like [`crate::engine`]'s
//! [`QueryEngine`]), so applying updates requires handing the table across:
//! [`SubscriptionEngine::into_table`], apply, then
//! [`SubscriptionEngine::with_table`] and a `refresh_after*` call with the
//! apply's stats **before the next tick** — the refresh is what re-derives
//! subscriptions the update invalidated.
//!
//! # Soundness of the stability margins
//!
//! Both radii below are *conservative* under-approximations built from
//! Lipschitz bounds on the exact quantities the query pipeline computes
//! (`dist_min`/`dist_max` are 1-Lipschitz in the query point, the
//! integration bounds and ring saturation points 1-Lipschitz, the step
//! width `dt` at most `2/steps`-Lipschitz), with explicit `~1e-9`-scale
//! guards wherever a floating-point comparison inside
//! [`uv_data::qualification_probabilities`] must land on a *specific side*
//! of a branch. A margin that comes out non-positive simply produces no
//! safe region, which only costs a re-derivation — never a wrong answer.

use crate::engine::QueryEngine;
use crate::error::UvError;
use crate::shard::{ReshardStats, ShardedUpdateStats, ShardedUvSystem};
use crate::system::UvSystem;
use crate::update::UpdateStats;
use std::collections::{BTreeMap, HashMap, HashSet};
use uv_data::{AnswerDelta, ObjectEntry, ObjectId, PnnAnswer, UncertainObject, DEFAULT_RINGS};
use uv_geom::{Point, EPS};

/// Identifier of a subscribed client, chosen by the caller.
pub type ClientId = u64;

/// A disk around a client's last fully derived position inside which the PNN
/// answer id set is provably unchanged, tagged with the UV-leaf the
/// derivation descended to. A tick strictly inside the disk that still lands
/// in the same leaf (and, sharded, the same owning shard at an unchanged
/// epoch) is served with zero leaf page reads.
#[derive(Debug, Clone, PartialEq)]
pub struct SafeRegion {
    leaf: usize,
    anchor: Point,
    radius: f64,
}

impl SafeRegion {
    /// Centre of the stability disk (the position of the derivation).
    pub fn anchor(&self) -> Point {
        self.anchor
    }

    /// Radius of the stability disk. May be infinite (e.g. a single live
    /// object answers every query with probability 1).
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// UV-leaf (grid node id) the derivation descended to; sharded, this is
    /// a node id *within the owning shard's index*.
    pub fn leaf(&self) -> usize {
        self.leaf
    }
}

/// One subscribed client: its last reported position, its current answer id
/// set (the state the pushed delta chain encodes), the epoch it was last
/// validated against and, when one exists, its safe region.
#[derive(Debug, Clone)]
pub struct Client {
    position: Point,
    answer_ids: Vec<ObjectId>,
    epoch: u64,
    shard: Option<usize>,
    safe: Option<SafeRegion>,
}

impl Client {
    /// Last reported position.
    pub fn position(&self) -> Point {
        self.position
    }

    /// Current answer id set (sorted ascending) — the state a consumer of
    /// the client's delta stream has accumulated.
    pub fn answer_ids(&self) -> &[ObjectId] {
        &self.answer_ids
    }

    /// The client's safe region, when the last derivation produced a
    /// positive stability radius.
    pub fn safe_region(&self) -> Option<&SafeRegion> {
        self.safe.as_ref()
    }

    /// Owning shard of the last derivation (always `None` on unsharded
    /// engines and for out-of-domain positions).
    pub fn shard(&self) -> Option<usize> {
        self.shard
    }
}

/// The registered clients, keyed by id. Owned by the engine during serving;
/// handed across update cycles via [`SubscriptionEngine::into_table`] /
/// [`SubscriptionEngine::with_table`] and persisted by
/// [`crate::UvSystem::save_snapshot_with_subscriptions`].
#[derive(Debug, Clone, Default)]
pub struct SubscriptionTable {
    clients: BTreeMap<ClientId, Client>,
}

impl SubscriptionTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// `true` when no client is registered.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// `true` when `id` is registered.
    pub fn contains(&self, id: ClientId) -> bool {
        self.clients.contains_key(&id)
    }

    /// The client registered under `id`.
    pub fn client(&self, id: ClientId) -> Option<&Client> {
        self.clients.get(&id)
    }

    /// Iterates over all clients in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (ClientId, &Client)> {
        self.clients.iter().map(|(id, c)| (*id, c))
    }

    /// Snapshot-load constructor: a client restored from disk carries no
    /// safe region and no shard pin, so its first tick (or refresh) fully
    /// re-derives; `epoch` is the loaded system's epoch, making the restored
    /// answer ids current.
    pub(crate) fn insert_persisted(
        &mut self,
        id: ClientId,
        position: Point,
        answer_ids: Vec<ObjectId>,
        epoch: u64,
    ) {
        self.clients.insert(
            id,
            Client {
                position,
                answer_ids,
                epoch,
                shard: None,
                safe: None,
            },
        );
    }
}

/// Serving counters of a [`SubscriptionEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubscriptionStats {
    /// Position reports processed (known clients only).
    pub ticks: u64,
    /// Ticks served from a safe region: zero leaf page reads, no delta.
    pub hits: u64,
    /// Full derivations (subscribes, safe-region misses, refreshes).
    pub derivations: u64,
    /// Derivations that moved a client to a different owning shard.
    pub migrations: u64,
    /// Clients re-derived by `refresh_after*` because an update's repaired
    /// region covered their position (or invalidated the whole table).
    pub invalidated: u64,
    /// Non-empty deltas pushed to clients.
    pub deltas_pushed: u64,
    /// Derivations that reused a leaf's cached clearance geometry (the
    /// screened entry arena an earlier derivation or query already built),
    /// so co-located clients share the screen setup instead of re-reading
    /// and re-screening the leaf.
    pub clearance_reuses: u64,
}

impl SubscriptionStats {
    /// Fraction of ticks served from a safe region (0.0 before any tick).
    pub fn hit_rate(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.hits as f64 / self.ticks as f64
        }
    }
}

/// The index stack a subscription engine serves from: one [`UvSystem`] with
/// its query engine, or a [`ShardedUvSystem`] with one query engine per
/// shard (each engine keeps its own per-leaf cache).
enum Backend<'a> {
    Single {
        system: &'a UvSystem,
        engine: QueryEngine<'a>,
    },
    Sharded {
        system: &'a ShardedUvSystem,
        engines: Vec<QueryEngine<'a>>,
    },
}

impl Backend<'_> {
    fn config(&self) -> &crate::UvConfig {
        match self {
            Backend::Single { system, .. } => system.config(),
            Backend::Sharded { system, .. } => system.config(),
        }
    }
}

/// Everything one full derivation hands back to the table.
struct Derived {
    answer: PnnAnswer,
    ids: Vec<ObjectId>,
    epoch: u64,
    shard: Option<usize>,
    safe: Option<SafeRegion>,
    /// Whether the derivation reused an already-built cached leaf arena
    /// (clearance geometry shared with earlier co-located derivations).
    clearance_reused: bool,
}

/// Continuous PNN subscription engine: thousands of moving clients register
/// once and then stream position ticks; the engine answers each tick either
/// from the client's safe region (zero leaf page reads, no delta) or by a
/// full re-derivation that pushes the answer-set delta.
///
/// ```
/// use uv_core::{SubscriptionEngine, UvSystem};
/// use uv_data::{Dataset, GeneratorConfig};
/// use uv_geom::Point;
///
/// let ds = Dataset::generate(GeneratorConfig::paper_uniform(150));
/// let system = UvSystem::with_defaults(ds.objects.clone(), ds.domain);
/// let mut subs = SubscriptionEngine::new(&system);
/// let start = ds.query_points(1, 7)[0];
/// let answer = subs.subscribe(42, start).unwrap();
/// assert_eq!(answer.answer_ids(), system.pnn(start).answer_ids());
/// // A tiny move almost always stays inside the safe region: no delta.
/// let deltas = subs.tick(&[(42, Point::new(start.x + 1e-6, start.y))]);
/// assert!(deltas.is_empty());
/// ```
pub struct SubscriptionEngine<'a> {
    backend: Backend<'a>,
    table: SubscriptionTable,
    stats: SubscriptionStats,
}

impl<'a> SubscriptionEngine<'a> {
    /// Creates an engine over a single (unsharded) system with an empty
    /// subscription table.
    pub fn new(system: &'a UvSystem) -> Self {
        Self::with_table(system, SubscriptionTable::new())
    }

    /// Creates an engine over a single system, resuming an existing table
    /// (from [`SubscriptionEngine::into_table`] across an update cycle, or
    /// from a loaded snapshot).
    pub fn with_table(system: &'a UvSystem, table: SubscriptionTable) -> Self {
        let engine = QueryEngine::new(system.index(), system.object_store());
        Self {
            backend: Backend::Single { system, engine },
            table,
            stats: SubscriptionStats::default(),
        }
    }

    /// Creates an engine over a sharded system with an empty table.
    pub fn sharded(system: &'a ShardedUvSystem) -> Self {
        Self::sharded_with_table(system, SubscriptionTable::new())
    }

    /// Creates an engine over a sharded system, resuming an existing table.
    ///
    /// After a [`ShardedUvSystem::apply`], call
    /// [`SubscriptionEngine::refresh_after_sharded`] with the apply's stats
    /// before the next tick: resharding remaps shard indices, and the
    /// refresh is what re-derives every client the update invalidated.
    pub fn sharded_with_table(system: &'a ShardedUvSystem, table: SubscriptionTable) -> Self {
        let engines = (0..system.shard_count())
            .map(|s| {
                let shard = system.shard(s);
                QueryEngine::new(shard.index(), shard.object_store())
            })
            .collect();
        Self {
            backend: Backend::Sharded { system, engines },
            table,
            stats: SubscriptionStats::default(),
        }
    }

    /// The subscription table (positions, answer sets, safe regions).
    pub fn table(&self) -> &SubscriptionTable {
        &self.table
    }

    /// Releases the table, e.g. to apply updates (which needs `&mut` on the
    /// system) and resume via [`SubscriptionEngine::with_table`].
    pub fn into_table(self) -> SubscriptionTable {
        self.table
    }

    /// Serving counters since construction (or the last reset).
    pub fn stats(&self) -> SubscriptionStats {
        self.stats
    }

    /// Zeroes the serving counters.
    pub fn reset_stats(&mut self) {
        self.stats = SubscriptionStats::default();
    }

    /// Registers client `id` at `position` and returns its initial answer
    /// (the head of its delta chain). Errors with
    /// [`UvError::DuplicateClient`] when the id is already registered.
    pub fn subscribe(&mut self, id: ClientId, position: Point) -> Result<PnnAnswer, UvError> {
        if self.table.clients.contains_key(&id) {
            return Err(UvError::DuplicateClient(id));
        }
        let d = derive(&self.backend, position);
        self.stats.derivations += 1;
        if d.clearance_reused {
            self.stats.clearance_reuses += 1;
        }
        self.table.clients.insert(
            id,
            Client {
                position,
                answer_ids: d.ids,
                epoch: d.epoch,
                shard: d.shard,
                safe: d.safe,
            },
        );
        Ok(d.answer)
    }

    /// Removes client `id`. Errors with [`UvError::UnknownClient`] when it
    /// is not registered.
    pub fn unsubscribe(&mut self, id: ClientId) -> Result<(), UvError> {
        match self.table.clients.remove(&id) {
            Some(_) => Ok(()),
            None => Err(UvError::UnknownClient(id)),
        }
    }

    /// Processes a batch of position reports and returns the non-empty
    /// answer-set deltas, in report order.
    ///
    /// A report inside the client's safe region is a *hit*: the answer id
    /// set is provably unchanged, so the tick costs zero leaf page reads
    /// and pushes nothing. Misses re-derive concurrently over the worker
    /// pool (sequentially when one client appears twice in the batch, so
    /// later reports see earlier state) and push a delta only when the
    /// answer set actually changed. Reports for unregistered ids are
    /// silently skipped.
    pub fn tick(&mut self, moves: &[(ClientId, Point)]) -> Vec<(ClientId, AnswerDelta)> {
        let mut seen = HashSet::with_capacity(moves.len());
        let unique_ids = moves.iter().all(|(id, _)| seen.insert(*id));
        let mut derived: HashMap<usize, Derived> = HashMap::new();
        if unique_ids {
            let misses: Vec<(usize, Point)> = moves
                .iter()
                .enumerate()
                .filter(|(_, (id, p))| {
                    self.table
                        .clients
                        .get(id)
                        .is_some_and(|c| !hit(&self.backend, c, *p))
                })
                .map(|(i, (_, p))| (i, *p))
                .collect();
            derived = self.derive_many(misses).into_iter().collect();
        }
        let mut out = Vec::new();
        for (i, (id, p)) in moves.iter().enumerate() {
            let Some(client) = self.table.clients.get(id) else {
                continue;
            };
            self.stats.ticks += 1;
            if hit(&self.backend, client, *p) {
                self.stats.hits += 1;
                self.table
                    .clients
                    .get_mut(id)
                    .expect("client exists")
                    .position = *p;
                continue;
            }
            let d = derived
                .remove(&i)
                .unwrap_or_else(|| derive(&self.backend, *p));
            if let Some(delta) = self.apply_derived(*id, *p, d) {
                out.push((*id, delta));
            }
        }
        out
    }

    /// Revalidates every subscription after an (unsharded)
    /// [`crate::UvSystem::apply`], given the apply's stats: clients whose
    /// position lies outside every repaired leaf rectangle keep their
    /// answer *and safe region* and only bump their epoch tag; clients
    /// inside a repaired rectangle (or too many epochs behind) re-derive,
    /// returning the resulting non-empty deltas in ascending client order.
    pub fn refresh_after(&mut self, stats: &UpdateStats) -> Vec<(ClientId, AnswerDelta)> {
        let Backend::Single { system, .. } = &self.backend else {
            panic!("refresh_after serves unsharded engines; use refresh_after_sharded");
        };
        let cur = system.epoch();
        let selective = stats.epoch == cur;
        let mut stale = Vec::new();
        for (id, client) in self.table.clients.iter_mut() {
            if client.epoch == cur {
                continue;
            }
            if selective
                && client.epoch + 1 == cur
                && !stats
                    .repaired_regions()
                    .iter()
                    .any(|r| r.contains(client.position))
            {
                // A PNN answer can only change at points inside a repaired
                // leaf; same for the safe region, whose hit test is pinned
                // to the client's (untouched) leaf.
                client.epoch = cur;
                continue;
            }
            stale.push((*id, client.position));
        }
        self.rederive_stale(stale)
    }

    /// Sharded counterpart of [`SubscriptionEngine::refresh_after`]: the
    /// epoch tags and repaired rectangles are checked per owning shard.
    /// Resharding and domain growth remap shard ownership, so they
    /// invalidate the whole table.
    pub fn refresh_after_sharded(
        &mut self,
        stats: &ShardedUpdateStats,
    ) -> Vec<(ClientId, AnswerDelta)> {
        let Backend::Sharded { system, .. } = &self.backend else {
            panic!("refresh_after_sharded serves sharded engines; use refresh_after");
        };
        let remapped = stats.domain_grown || stats.resharded;
        let mut stale = Vec::new();
        for (id, client) in self.table.clients.iter_mut() {
            if remapped {
                stale.push((*id, client.position));
                continue;
            }
            let Some(s) = client.shard else {
                // No shard pin: either out of domain at derivation time
                // (still out — the domain did not grow) or restored from a
                // snapshot and never derived here; re-derive when owned.
                if system.owner_of(client.position).is_some() {
                    stale.push((*id, client.position));
                }
                continue;
            };
            let cur = system.shard(s).epoch();
            if client.epoch == cur {
                continue;
            }
            let per = stats.per_shard.get(s);
            if per.is_some_and(|p| p.epoch == cur)
                && client.epoch + 1 == cur
                && !per
                    .expect("checked above")
                    .repaired_regions()
                    .iter()
                    .any(|r| r.contains(client.position))
            {
                client.epoch = cur;
                continue;
            }
            stale.push((*id, client.position));
        }
        self.rederive_stale(stale)
    }

    /// Remaps every subscription after an elastic reshard
    /// ([`ShardedUvSystem::split_shard`], [`ShardedUvSystem::merge_shards`]
    /// or [`ShardedUvSystem::maybe_reshard`]), given the reshard's stats.
    /// Call it on the engine built over the *post-reshard* system
    /// ([`SubscriptionEngine::sharded_with_table`]) before the next tick.
    ///
    /// Clients pinned to a shard that moved wholesale
    /// ([`ReshardStats::shard_map`]` = Some(new)`) keep their answer, epoch
    /// and safe region — the shard's rectangle, epoch and leaf structure are
    /// untouched, so the pin is simply renumbered. Clients pinned to a
    /// rebuilt shard re-derive on the new layout; routed answers are
    /// bit-identical to the unsharded oracle, so a reshard never changes an
    /// answer set and the returned delta list is empty — the client-visible
    /// delta chain continues unbroken (property-tested in
    /// `tests/proptest_shard.rs`).
    pub fn refresh_after_reshard(&mut self, stats: &ReshardStats) -> Vec<(ClientId, AnswerDelta)> {
        let Backend::Sharded { system, .. } = &self.backend else {
            panic!("refresh_after_reshard serves sharded engines");
        };
        let mut stale = Vec::new();
        for (id, client) in self.table.clients.iter_mut() {
            match client.shard {
                Some(s) => match stats.shard_map.get(s).copied().flatten() {
                    // Renumber the pin: the moved shard kept its rectangle
                    // (ownership region unchanged), its epoch and its leaf
                    // ids, so the safe region stays valid as-is.
                    Some(new) => client.shard = Some(new),
                    None => stale.push((*id, client.position)),
                },
                // Unpinned clients were out of domain (reshards never change
                // the domain) or snapshot-restored; re-derive when owned.
                None => {
                    if system.owner_of(client.position).is_some() {
                        stale.push((*id, client.position));
                    }
                }
            }
        }
        self.rederive_stale(stale)
    }

    /// Re-derives `stale` clients (concurrently) at their current positions
    /// and pushes the resulting non-empty deltas in the given order.
    fn rederive_stale(&mut self, stale: Vec<(ClientId, Point)>) -> Vec<(ClientId, AnswerDelta)> {
        self.stats.invalidated += stale.len() as u64;
        let jobs: Vec<(usize, Point)> = stale
            .iter()
            .enumerate()
            .map(|(i, (_, p))| (i, *p))
            .collect();
        let mut derived: HashMap<usize, Derived> = self.derive_many(jobs).into_iter().collect();
        let mut out = Vec::new();
        for (i, (id, p)) in stale.into_iter().enumerate() {
            let d = derived.remove(&i).expect("one derivation per stale client");
            if let Some(delta) = self.apply_derived(id, p, d) {
                out.push((id, delta));
            }
        }
        out
    }

    /// Runs the indexed derivation jobs over the configured worker pool.
    fn derive_many(&self, jobs: Vec<(usize, Point)>) -> Vec<(usize, Derived)> {
        let workers = self.backend.config().resolved_query_workers().max(1);
        if workers <= 1 || jobs.len() <= 1 {
            return jobs
                .into_iter()
                .map(|(i, p)| (i, derive(&self.backend, p)))
                .collect();
        }
        let chunk_size = jobs.len().div_ceil(workers);
        let backend = &self.backend;
        let mut out = Vec::with_capacity(jobs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|(i, p)| (*i, derive(backend, *p)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("subscription worker panicked"));
            }
        });
        out
    }

    /// Commits one derivation to the table, returning the delta to push (if
    /// the answer set changed).
    fn apply_derived(&mut self, id: ClientId, p: Point, d: Derived) -> Option<AnswerDelta> {
        self.stats.derivations += 1;
        if d.clearance_reused {
            self.stats.clearance_reuses += 1;
        }
        let client = self
            .table
            .clients
            .get_mut(&id)
            .expect("derivation for an unregistered client");
        if let (Some(old), Some(new)) = (client.shard, d.shard) {
            if old != new {
                self.stats.migrations += 1;
            }
        }
        let delta = delta_between_ids(&client.answer_ids, &d.ids);
        client.position = p;
        client.answer_ids = d.ids;
        client.epoch = d.epoch;
        client.shard = d.shard;
        client.safe = d.safe;
        if delta.is_unchanged() {
            None
        } else {
            self.stats.deltas_pushed += 1;
            Some(delta)
        }
    }
}

/// Safe-region hit test: strictly inside the stability disk, same leaf
/// (located through the in-memory grid — no page reads), current epoch and,
/// sharded, still owned by the pinned shard.
fn hit(backend: &Backend<'_>, client: &Client, p: Point) -> bool {
    let Some(safe) = &client.safe else {
        return false;
    };
    // `partial_cmp` rather than `<` so a NaN distance (non-finite client
    // position) is a miss, never a hit.
    if p.dist(safe.anchor).partial_cmp(&safe.radius) != Some(std::cmp::Ordering::Less) {
        return false;
    }
    match backend {
        Backend::Single { system, .. } => {
            client.epoch == system.epoch() && system.index().locate_leaf(p) == Some(safe.leaf)
        }
        Backend::Sharded { system, engines } => {
            let Some(s) = client.shard else { return false };
            if s >= engines.len() {
                return false;
            }
            system.owner_of(p) == Some(s)
                && client.epoch == system.shard(s).epoch()
                && engines[s].index().locate_leaf(p) == Some(safe.leaf)
        }
    }
}

/// One full derivation (answer + safe region) against the backend.
fn derive(backend: &Backend<'_>, p: Point) -> Derived {
    match backend {
        Backend::Single { system, engine } => derive_on(engine, system, p, system.epoch(), None),
        Backend::Sharded { system, engines } => match system.owner_of(p) {
            None => Derived {
                answer: PnnAnswer::default(),
                ids: Vec::new(),
                epoch: 0,
                shard: None,
                safe: None,
                clearance_reused: false,
            },
            Some(s) => derive_on(
                &engines[s],
                system.shard(s),
                p,
                system.shard(s).epoch(),
                Some(s),
            ),
        },
    }
}

/// Derives on one concrete system/engine pair, computing the stability
/// radius from the fused-screen clearance (bit-identical to
/// [`candidate_stability_radius`] over the screened leaf entries) and the
/// integrated candidates.
fn derive_on(
    engine: &QueryEngine<'_>,
    system: &UvSystem,
    p: Point,
    epoch: u64,
    shard: Option<usize>,
) -> Derived {
    let Some(d) = engine.derive_at(p) else {
        return Derived {
            answer: PnnAnswer::default(),
            ids: Vec::new(),
            epoch,
            shard,
            safe: None,
            clearance_reused: false,
        };
    };
    let config = system.config();
    let rho = d.clearance.min(answer_stability_radius(
        p,
        &d.candidates,
        &d.answer,
        config.integration_steps,
    ));
    let rho = config.apply_safe_region_floor(rho, system.domain());
    Derived {
        ids: d.answer.answer_ids(),
        safe: (rho > 0.0).then_some(SafeRegion {
            leaf: d.leaf,
            anchor: p,
            radius: rho,
        }),
        epoch,
        shard,
        answer: d.answer,
        clearance_reused: d.arena_reused,
    }
}

/// Diff of two sorted-ascending answer id sets, mirroring
/// [`AnswerDelta::between`].
fn delta_between_ids(prev: &[ObjectId], next: &[ObjectId]) -> AnswerDelta {
    let entered: Vec<ObjectId> = next
        .iter()
        .filter(|id| prev.binary_search(id).is_err())
        .copied()
        .collect();
    let left: Vec<ObjectId> = prev
        .iter()
        .filter(|id| next.binary_search(id).is_err())
        .copied()
        .collect();
    let retained = next.len() - entered.len();
    AnswerDelta {
        entered,
        left,
        retained,
    }
}

/// Largest radius around `q` within which the `d_minmax` candidate screen
/// over `entries` provably keeps the exact same outcome for every entry.
///
/// The screen admits entry `e` iff `dist_min_e(q) <= dminmax(q) + EPS`,
/// where `dminmax(q) = min_e dist_max_e(q)`. Both sides are 1-Lipschitz in
/// `q`, so the signed clearance `f_e(q) = dist_min_e(q) - dminmax(q) - EPS`
/// is 2-Lipschitz and a move of less than `|f_e|/2` cannot flip its sign.
/// The minimum over all entries therefore freezes the candidate *list*
/// (same ids, same order, same examined count). Infinite when there are no
/// entries (nothing to flip).
///
/// Retained as the scalar reference for the fused screen in
/// [`uv_data::EntryArena::screen`], which computes this same clearance
/// bit-for-bit alongside the candidate pass; production derivations go
/// through the arena, the tests here keep this reference as the reviewer.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn candidate_stability_radius(q: Point, entries: &[ObjectEntry]) -> f64 {
    if entries.is_empty() {
        return f64::INFINITY;
    }
    let dminmax = entries
        .iter()
        .map(|e| e.dist_max(q))
        .fold(f64::INFINITY, f64::min);
    let threshold = dminmax + EPS;
    entries
        .iter()
        .map(|e| (e.dist_min(q) - threshold).abs() / 2.0)
        .fold(f64::INFINITY, f64::min)
}

/// Per-candidate ring discretisation facts the stability analysis needs:
/// the onset `a` (the smallest distance at which the candidate's distance
/// cdf becomes positive: `min |d - s_k|` over positive-mass rings), the
/// saturation `sat` (the largest `d + s_k`, beyond which every positive
/// ring's cdf is 1) and the total ring mass (whether the clamp in
/// [`uv_data::DistanceDistribution::cdf`] reaches an exact 1.0 at `sat`).
/// `None` when the analysis would be fragile: a degenerate radius or a
/// query (nearly) at the candidate's centre switch `ring_cdf` into its step
/// branches, or no ring carries mass.
fn ring_support(o: &UncertainObject, q: Point) -> Option<(f64, f64, f64)> {
    let d = o.center().dist(q);
    let radius = o.radius();
    if radius <= 1e-9 || d <= 1e-9 {
        return None;
    }
    let rings = o.pdf.num_bars().unwrap_or(DEFAULT_RINGS);
    let masses = o.pdf.ring_masses(rings);
    let mut onset = f64::INFINITY;
    let mut sat = f64::NEG_INFINITY;
    let mut mass = 0.0;
    for (k, w) in masses.iter().enumerate() {
        if *w <= 0.0 {
            continue;
        }
        let s = radius * (k as f64 + 0.5) / rings as f64;
        onset = onset.min((d - s).abs());
        sat = sat.max(d + s);
        mass += w;
    }
    if !onset.is_finite() || !sat.is_finite() {
        return None;
    }
    Some((onset, sat, mass))
}

/// Largest radius around `q` within which the numerically integrated
/// answer — the *set* of candidates retained with positive probability by
/// [`uv_data::qualification_probabilities`] followed by the `p > 0.0`
/// filter — provably cannot change, assuming the candidate list itself is
/// frozen (see [`candidate_stability_radius`]; callers take the minimum of
/// both radii).
///
/// The analysis tracks, per candidate, which side of zero its *computed*
/// probability landed on and bounds how far `q` can move before the
/// floating-point evaluation could land differently:
///
/// * a candidate computed **positive** stays positive while some
///   integration step both starts at or before its cdf onset `a_i` and ends
///   strictly after it, with every competitor's survival factor still
///   strictly below saturation at the step start;
/// * a candidate computed **zero** stays exactly zero while either its
///   onset lies at or beyond the integration's upper bound (`df` is exactly
///   `0.0` on every step — the cdf sums zero terms) or some competitor's
///   cdf is exactly `1.0` (by forced `dist_max` return or by clamp with
///   total ring mass >= 1) at the start of every step that could see a
///   positive `df` (the survival product is exactly `0.0`).
///
/// All quantities involved are 1-Lipschitz in `q` except the step width
/// (`2/steps`-Lipschitz), giving the `/2` and `/4` divisors; `~1e-9`-scale
/// guards absorb floating-point evaluation noise around each branch point.
/// Probabilities within `1e-12` of the `p > 0.0` filter are treated as
/// unstable. Any non-positive margin yields radius 0 — no safe region, so a
/// pessimistic bound only ever costs a re-derivation.
pub(crate) fn answer_stability_radius(
    q: Point,
    candidates: &[UncertainObject],
    answer: &PnnAnswer,
    steps: usize,
) -> f64 {
    let n = candidates.len();
    if n <= 1 {
        // Empty answers stay empty and a lone candidate keeps probability 1
        // for as long as the candidate list itself is stable.
        return f64::INFINITY;
    }
    let dist_min: Vec<f64> = candidates.iter().map(|o| o.dist_min(q)).collect();
    let dist_max: Vec<f64> = candidates.iter().map(|o| o.dist_max(q)).collect();
    let lower = dist_min.iter().copied().fold(f64::INFINITY, f64::min);
    let upper = dist_max.iter().copied().fold(f64::INFINITY, f64::min);
    if upper <= lower {
        // Degenerate-geometry branch: a uniform share among all candidates,
        // stable while `upper` stays at or below `lower`.
        return (lower - upper) / 2.0;
    }
    let mut rho = (upper - lower) / 2.0;

    let steps_eff = steps.max(2) as f64;
    let dt = (upper - lower) / steps_eff;
    let guard = 1e-9 * (1.0 + upper.abs());

    let mut supports = Vec::with_capacity(n);
    for o in candidates {
        match ring_support(o, q) {
            Some(s) => supports.push(s),
            None => return 0.0,
        }
    }
    // First exact-saturation point of each competitor's cdf: `dist_max`
    // always forces an exact 1.0; the ring-sum clamp does too, but only
    // when the masses sum to at least 1 (Gaussian ring masses normalise to
    // ~1 from below, so the clamp may never engage).
    let zero_sat: Vec<f64> = supports
        .iter()
        .zip(&dist_max)
        .map(|((_, sat, mass), dm)| if *mass >= 1.0 { *sat } else { *dm })
        .collect();
    let positive: HashMap<ObjectId, f64> = answer.probabilities.iter().copied().collect();

    for (i, o) in candidates.iter().enumerate() {
        let (onset, _, _) = supports[i];
        // Keep the query far enough from the candidate's centre that
        // `ring_cdf` stays in its law-of-cosines branch everywhere in the
        // disk.
        let d_center = o.center().dist(q);
        rho = rho.min((d_center - 1e-9) / 2.0);
        match positive.get(&o.id) {
            Some(p) => {
                if *p < 1e-12 {
                    return 0.0;
                }
                // Competitors must all still be strictly unsaturated at the
                // start of the step that first crosses the onset.
                let sat_lo = supports
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, (_, sat, _))| *sat)
                    .fold(f64::INFINITY, f64::min)
                    - guard;
                rho = rho.min((sat_lo.min(upper) - (onset + 2.0 * dt)) / 4.0);
            }
            None => {
                let z = zero_sat
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, zs)| *zs)
                    .fold(f64::INFINITY, f64::min);
                let never_rises = (onset - upper - guard) / 2.0;
                let killed_first = (onset - dt - z - guard) / 4.0;
                rho = rho.min(never_rises.max(killed_first));
            }
        }
        if rho <= 0.0 {
            return 0.0;
        }
    }
    rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Method, UvConfig, UvSystem};
    use uv_data::{qualification_probabilities, QueryBreakdown};
    use uv_data::{Dataset, GeneratorConfig};
    use uv_geom::Rect;

    fn fixture(n: usize) -> (Dataset, UvSystem) {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(n));
        let system = UvSystem::build(
            ds.objects.clone(),
            ds.domain,
            Method::IC,
            UvConfig::default(),
        )
        .unwrap();
        (ds, system)
    }

    #[test]
    fn subscribe_returns_the_pnn_answer_and_rejects_duplicates() {
        let (ds, system) = fixture(200);
        let mut subs = SubscriptionEngine::new(&system);
        let q = ds.query_points(1, 3)[0];
        let answer = subs.subscribe(7, q).unwrap();
        assert_eq!(answer.probabilities, system.pnn(q).probabilities);
        assert_eq!(
            subs.subscribe(7, q).unwrap_err(),
            UvError::DuplicateClient(7)
        );
        assert_eq!(subs.table().len(), 1);
        assert_eq!(
            subs.table().client(7).unwrap().answer_ids(),
            answer.answer_ids()
        );
    }

    #[test]
    fn unsubscribe_unknown_errors_and_known_removes() {
        let (ds, system) = fixture(150);
        let mut subs = SubscriptionEngine::new(&system);
        assert_eq!(subs.unsubscribe(9).unwrap_err(), UvError::UnknownClient(9));
        subs.subscribe(9, ds.query_points(1, 5)[0]).unwrap();
        subs.unsubscribe(9).unwrap();
        assert!(subs.table().is_empty());
    }

    #[test]
    fn safe_region_hits_read_no_leaf_pages_and_match_the_oracle() {
        let (ds, system) = fixture(400);
        let mut subs = SubscriptionEngine::new(&system);
        let points = ds.query_points(64, 11);
        for (i, q) in points.iter().enumerate() {
            subs.subscribe(i as ClientId, *q).unwrap();
        }
        // Nudge every client by a vanishing amount: almost all ticks should
        // be safe-region hits, and hits must read zero leaf pages.
        system.reset_io();
        let moves: Vec<(ClientId, Point)> = points
            .iter()
            .enumerate()
            .map(|(i, q)| (i as ClientId, Point::new(q.x + 1e-7, q.y - 1e-7)))
            .collect();
        let deltas = subs.tick(&moves);
        let stats = subs.stats();
        assert_eq!(stats.ticks, 64);
        assert!(
            stats.hit_rate() > 0.9,
            "expected mostly hits, got {stats:?}"
        );
        if stats.hits == stats.ticks {
            let io = system.index().store().io();
            assert_eq!(io.reads, 0, "pure-hit tick must read no pages");
            assert!(deltas.is_empty());
        }
        // Every client's tracked answer must equal the oracle at its new
        // position, hit or miss.
        for (id, client) in subs.table().iter() {
            let oracle = system.pnn(moves[id as usize].1);
            assert_eq!(
                client.answer_ids(),
                oracle.answer_ids(),
                "client {id} diverged from the oracle"
            );
        }
    }

    #[test]
    fn long_random_walk_stays_bit_identical_to_per_tick_oracle() {
        let (ds, system) = fixture(300);
        let mut subs = SubscriptionEngine::new(&system);
        let start = ds.query_points(1, 21)[0];
        subs.subscribe(1, start).unwrap();
        let mut tracked = subs.table().client(1).unwrap().answer_ids().to_vec();
        let mut p = start;
        // Deterministic jagged walk: mixes sub-safe-region steps with jumps.
        let mut k = 0u64;
        for _ in 0..200 {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dx = ((k >> 16) % 2001) as f64 / 10.0 - 100.0;
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let dy = ((k >> 16) % 2001) as f64 / 10.0 - 100.0;
            p = Point::new(
                (p.x + dx).clamp(ds.domain.min_x, ds.domain.max_x),
                (p.y + dy).clamp(ds.domain.min_y, ds.domain.max_y),
            );
            let deltas = subs.tick(&[(1, p)]);
            for (_, delta) in &deltas {
                for id in &delta.left {
                    let pos = tracked.binary_search(id).expect("left id was tracked");
                    tracked.remove(pos);
                }
                for id in &delta.entered {
                    let pos = tracked.binary_search(id).unwrap_err();
                    tracked.insert(pos, *id);
                }
            }
            assert_eq!(
                tracked,
                system.pnn(p).answer_ids(),
                "delta chain diverged at {p:?}"
            );
        }
        let stats = subs.stats();
        assert!(stats.ticks == 200 && stats.derivations >= 1);
    }

    #[test]
    fn duplicate_ids_in_one_tick_are_processed_sequentially() {
        let (ds, system) = fixture(250);
        let mut subs = SubscriptionEngine::new(&system);
        let q = ds.query_points(1, 9)[0];
        subs.subscribe(3, q).unwrap();
        let far = Point::new(
            ds.domain.min_x + ds.domain.width() * 0.1,
            ds.domain.min_y + ds.domain.height() * 0.1,
        );
        let deltas = subs.tick(&[(3, far), (3, q)]);
        // Both moves processed in order: final position is back at q with
        // the original answer; the two deltas (if any) must compose to the
        // identity.
        assert_eq!(subs.table().client(3).unwrap().position(), q);
        assert_eq!(
            subs.table().client(3).unwrap().answer_ids(),
            system.pnn(q).answer_ids()
        );
        if deltas.len() == 2 {
            assert_eq!(deltas[0].1.entered, deltas[1].1.left);
            assert_eq!(deltas[0].1.left, deltas[1].1.entered);
        }
        // Unknown ids are skipped silently.
        assert!(subs.tick(&[(99, q)]).is_empty());
    }

    #[test]
    fn refresh_after_rederives_only_touched_regions() {
        let (ds, mut system) = fixture(300);
        let points = ds.query_points(32, 17);
        let mut subs = SubscriptionEngine::new(&system);
        for (i, q) in points.iter().enumerate() {
            subs.subscribe(i as ClientId, *q).unwrap();
        }
        let table = subs.into_table();
        // Move one object: the repair touches few leaves.
        let target = ds.objects[0].id;
        let dest = Point::new(
            ds.domain.min_x + ds.domain.width() * 0.25,
            ds.domain.min_y + ds.domain.height() * 0.75,
        );
        let stats = system.updater().move_to(target, dest).commit().unwrap();
        assert!(!stats.repaired_regions().is_empty());
        let mut subs = SubscriptionEngine::with_table(&system, table);
        let deltas = subs.refresh_after(&stats);
        let sstats = subs.stats();
        assert!(
            (sstats.invalidated as usize) < points.len(),
            "selective invalidation should spare clients outside repaired leaves: {sstats:?}"
        );
        // All clients current again, answers equal the oracle.
        for (id, client) in subs.table().iter() {
            assert_eq!(
                client.answer_ids(),
                system.pnn(points[id as usize]).answer_ids(),
                "client {id} stale after refresh"
            );
        }
        // Pushed deltas must be consistent: only invalidated clients may push.
        assert!(deltas.len() as u64 <= sstats.invalidated);
        // Subsequent ticks still work (epochs upgraded).
        let moves: Vec<(ClientId, Point)> = points
            .iter()
            .enumerate()
            .map(|(i, q)| (i as ClientId, *q))
            .collect();
        subs.tick(&moves);
        for (id, client) in subs.table().iter() {
            assert_eq!(
                client.answer_ids(),
                system.pnn(points[id as usize]).answer_ids(),
                "client {id} stale after post-refresh tick"
            );
        }
    }

    #[test]
    fn candidate_stability_radius_edges() {
        let q = Point::new(0.0, 0.0);
        assert_eq!(candidate_stability_radius(q, &[]), f64::INFINITY);
        let a = UncertainObject::with_uniform(1, Point::new(10.0, 0.0), 2.0);
        let b = UncertainObject::with_uniform(2, Point::new(100.0, 0.0), 2.0);
        let entries = vec![ObjectEntry::new(&a, 0), ObjectEntry::new(&b, 0)];
        let rho = candidate_stability_radius(q, &entries);
        // b fails the screen by ~86; a passes by ~dminmax. The margin must
        // be positive and no larger than half the smallest clearance.
        assert!(rho > 0.0 && rho.is_finite());
        assert!(rho <= (b.dist_min(q) - (a.dist_max(q) + EPS)).abs() / 2.0 + 1e-12);
    }

    #[test]
    fn fused_screen_clearance_is_bit_identical_to_the_scalar_reference() {
        // The arena's fused screen reports the same clearance bits as the
        // retained scalar reference, so the safe regions derived through the
        // engine are exactly the PR 7 disks.
        let objects = [
            UncertainObject::with_uniform(1, Point::new(12.0, 5.0), 3.0),
            UncertainObject::with_uniform(2, Point::new(40.0, 11.0), 2.0),
            UncertainObject::with_gaussian(3, Point::new(25.0, 30.0), 6.0),
            UncertainObject::with_uniform(4, Point::new(12.0, 5.0), 3.0), // co-located twin
            UncertainObject::with_uniform(5, Point::new(7.0, 9.0), 0.0),  // zero radius
        ];
        let entries: Vec<ObjectEntry> = objects.iter().map(|o| ObjectEntry::new(o, 0)).collect();
        let mut arena = uv_data::EntryArena::default();
        arena.assign(&entries);
        let mut scratch = uv_data::ScreenScratch::default();
        let mut candidates = Vec::new();
        for q in [
            Point::new(0.0, 0.0),
            Point::new(13.0, 6.0),
            Point::new(26.0, 29.5),
            Point::new(100.0, -40.0),
        ] {
            let screen = arena.screen(q, &mut scratch, &mut candidates);
            let scalar = candidate_stability_radius(q, &entries);
            assert_eq!(
                screen.clearance.to_bits(),
                scalar.to_bits(),
                "clearance diverged from the scalar reference at {q:?}"
            );
        }
    }

    #[test]
    fn co_located_subscribers_reuse_the_leaf_clearance_geometry() {
        let (ds, system) = fixture(250);
        let mut subs = SubscriptionEngine::new(&system);
        let q = ds.query_points(1, 17)[0];
        // A cluster of clients at (essentially) the same position: the first
        // derivation builds the leaf's screened arena, the rest reuse it.
        let n = 16u64;
        for i in 0..n {
            let p = Point::new(q.x + 1e-9 * i as f64, q.y);
            subs.subscribe(i, p).unwrap();
        }
        let stats = subs.stats();
        assert_eq!(stats.derivations, n);
        assert!(
            stats.clearance_reuses >= n - 1,
            "co-located subscribes should reuse the cached leaf arena: {stats:?}"
        );
    }

    #[test]
    fn answer_stability_radius_is_conservative_on_a_grid() {
        // Empirical soundness sweep: at every probe point, the computed
        // radius must keep the answer id set unchanged at points just
        // inside the disk along several directions.
        let objects = vec![
            UncertainObject::with_uniform(1, Point::new(30.0, 30.0), 8.0),
            UncertainObject::with_uniform(2, Point::new(70.0, 30.0), 6.0),
            UncertainObject::with_gaussian(3, Point::new(50.0, 70.0), 10.0),
            UncertainObject::with_uniform(4, Point::new(45.0, 45.0), 4.0),
        ];
        let refs: Vec<&UncertainObject> = objects.iter().collect();
        let answer_at = |q: Point| {
            let mut probs = qualification_probabilities(q, &refs, 60);
            probs.retain(|(_, p)| *p > 0.0);
            let mut ids: Vec<ObjectId> = probs.iter().map(|(id, _)| *id).collect();
            ids.sort_unstable();
            ids
        };
        for gy in 0..12 {
            for gx in 0..12 {
                let q = Point::new(8.0 * gx as f64 + 3.7, 8.0 * gy as f64 + 2.3);
                let mut probs = qualification_probabilities(q, &refs, 60);
                probs.retain(|(_, p)| *p > 0.0);
                let answer = PnnAnswer {
                    probabilities: probs,
                    candidates_examined: refs.len(),
                    breakdown: QueryBreakdown::default(),
                };
                let rho = answer_stability_radius(q, &objects, &answer, 60);
                assert!(rho >= 0.0 && !rho.is_nan());
                if rho <= 0.0 || !rho.is_finite() {
                    continue;
                }
                let base = answer.answer_ids();
                for (dx, dy) in [(1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.7, -0.7)] {
                    let step = rho * 0.95;
                    let probe = Point::new(q.x + dx * step, q.y + dy * step);
                    assert_eq!(
                        answer_at(probe),
                        base,
                        "answer set changed inside stability disk at {q:?} + {rho}*({dx},{dy})"
                    );
                }
            }
        }
    }

    #[test]
    fn safe_region_accessors_and_floor_knob() {
        let (ds, _) = fixture(200);
        // With an absurdly large floor every radius collapses to zero: no
        // safe regions, every tick re-derives, answers still exact.
        let system = UvSystem::build(
            ds.objects.clone(),
            ds.domain,
            Method::IC,
            UvConfig::default().with_safe_region_min_radius_fraction(1.0),
        )
        .unwrap();
        let mut subs = SubscriptionEngine::new(&system);
        let q = ds.query_points(1, 2)[0];
        subs.subscribe(1, q).unwrap();
        assert!(subs.table().client(1).unwrap().safe_region().is_none());
        let p2 = Point::new(q.x + 1e-9, q.y);
        subs.tick(&[(1, p2)]);
        assert_eq!(subs.stats().hits, 0);
        assert_eq!(
            subs.table().client(1).unwrap().answer_ids(),
            system.pnn(p2).answer_ids()
        );

        // Defaults produce a safe region with sane accessors at most points.
        let system = UvSystem::with_defaults(ds.objects.clone(), ds.domain);
        let mut subs = SubscriptionEngine::new(&system);
        subs.subscribe(1, q).unwrap();
        if let Some(region) = subs.table().client(1).unwrap().safe_region() {
            assert_eq!(region.anchor(), q);
            assert!(region.radius() > 0.0);
            assert!(region.leaf() < usize::MAX);
        }
    }

    #[test]
    fn out_of_domain_clients_have_empty_answers_and_recover() {
        let (ds, system) = fixture(150);
        let mut subs = SubscriptionEngine::new(&system);
        let outside = Point::new(ds.domain.max_x + 1_000.0, ds.domain.max_y + 1_000.0);
        let answer = subs.subscribe(5, outside).unwrap();
        assert!(answer.probabilities.is_empty());
        // Walking back inside pushes the full answer as `entered`.
        let inside = ds.query_points(1, 4)[0];
        let deltas = subs.tick(&[(5, inside)]);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].1.entered, system.pnn(inside).answer_ids());
        assert!(deltas[0].1.left.is_empty());
    }

    #[test]
    fn delta_between_ids_matches_answer_delta_semantics() {
        let d = delta_between_ids(&[1, 2, 3], &[2, 3, 4]);
        assert_eq!(d.entered, vec![4]);
        assert_eq!(d.left, vec![1]);
        assert_eq!(d.retained, 2);
        assert!(delta_between_ids(&[], &[]).is_unchanged());
        assert!(delta_between_ids(&[7], &[7]).is_unchanged());
    }

    #[test]
    fn stats_hit_rate() {
        let mut s = SubscriptionStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.ticks = 10;
        s.hits = 8;
        assert!((s.hit_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn table_resume_preserves_the_delta_chain() {
        let (ds, system) = fixture(200);
        let mut subs = SubscriptionEngine::new(&system);
        let q = ds.query_points(1, 8)[0];
        subs.subscribe(11, q).unwrap();
        let table = subs.into_table();
        let mut resumed = SubscriptionEngine::with_table(&system, table);
        // Same position: the resumed client's answer is current; a no-move
        // tick pushes nothing.
        let deltas = resumed.tick(&[(11, q)]);
        assert!(deltas.is_empty());
        assert_eq!(
            resumed.table().client(11).unwrap().answer_ids(),
            system.pnn(q).answer_ids()
        );
    }

    #[test]
    fn domain_growth_invalidates_every_in_domain_client() {
        let (ds, mut system) = fixture(120);
        let points = ds.query_points(8, 13);
        let mut subs = SubscriptionEngine::new(&system);
        for (i, q) in points.iter().enumerate() {
            subs.subscribe(i as ClientId, *q).unwrap();
        }
        let table = subs.into_table();
        let outside = UncertainObject::with_uniform(
            9_000,
            Point::new(ds.domain.max_x + 600.0, ds.domain.max_y + 600.0),
            10.0,
        );
        let stats = system.insert_object(outside).unwrap();
        assert!(stats.domain_grown);
        let mut subs = SubscriptionEngine::with_table(&system, table);
        subs.refresh_after(&stats);
        assert_eq!(subs.stats().invalidated, points.len() as u64);
        for (id, client) in subs.table().iter() {
            assert_eq!(
                client.answer_ids(),
                system.pnn(points[id as usize]).answer_ids()
            );
        }
    }

    #[test]
    fn reshard_migrates_subscriptions_with_unbroken_delta_chains() {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(150));
        let config = UvConfig::default()
            .with_seed_knn(24)
            .with_leaf_split_capacity(16)
            .with_num_shards(2);
        let mut sharded =
            ShardedUvSystem::build(ds.objects.clone(), ds.domain, Method::IC, config).unwrap();
        let oracle = UvSystem::build(ds.objects.clone(), ds.domain, Method::IC, config).unwrap();
        let points = ds.query_points(12, 31);
        let mut subs = SubscriptionEngine::sharded(&sharded);
        for (i, q) in points.iter().enumerate() {
            subs.subscribe(i as ClientId, *q).unwrap();
        }
        let pins_before: Vec<Option<usize>> = (0..points.len())
            .map(|i| subs.table().client(i as ClientId).unwrap().shard())
            .collect();

        // Hot split: 2x2 -> 3x2. Clients on the four moved shards keep their
        // pins (renumbered); clients on the two rebuilt shards re-derive.
        let table = subs.into_table();
        let stats = sharded.split_shard(0).unwrap();
        let mut subs = SubscriptionEngine::sharded_with_table(&sharded, table);
        let deltas = subs.refresh_after_reshard(&stats);
        assert!(
            deltas.is_empty(),
            "bit-identical answers push no deltas: {deltas:?}"
        );
        let rebuilt_clients = pins_before
            .iter()
            .filter(|p| p.is_some_and(|s| stats.shard_map[s].is_none()))
            .count() as u64;
        assert_eq!(subs.stats().invalidated, rebuilt_clients);
        for (id, client) in subs.table().iter() {
            assert_eq!(client.shard(), sharded.owner_of(client.position()));
            assert_eq!(
                client.answer_ids(),
                oracle.pnn(points[id as usize]).answer_ids(),
                "client {id} diverged after the split"
            );
        }

        // Ticks keep flowing on the post-split layout.
        let moves: Vec<(ClientId, Point)> = points
            .iter()
            .enumerate()
            .map(|(i, q)| (i as ClientId, Point::new(q.x + 150.0, q.y)))
            .collect();
        subs.tick(&moves);
        for (id, client) in subs.table().iter() {
            assert_eq!(
                client.answer_ids(),
                oracle.pnn(moves[id as usize].1).answer_ids(),
                "client {id} diverged on the tick after the split"
            );
        }

        // Cold merge after churn: the chain survives a second reshard too.
        let table = subs.into_table();
        let stats = sharded.merge_shards(1, 2).unwrap();
        let mut subs = SubscriptionEngine::sharded_with_table(&sharded, table);
        assert!(subs.refresh_after_reshard(&stats).is_empty());
        for (id, client) in subs.table().iter() {
            assert_eq!(client.shard(), sharded.owner_of(client.position()));
            assert_eq!(
                client.answer_ids(),
                oracle.pnn(moves[id as usize].1).answer_ids(),
                "client {id} diverged after the merge"
            );
        }
    }

    #[test]
    fn ring_support_guards_degenerate_geometry() {
        let q = Point::new(0.0, 0.0);
        let at_center = UncertainObject::with_uniform(1, q, 5.0);
        assert!(ring_support(&at_center, q).is_none());
        let degenerate = UncertainObject::with_uniform(2, Point::new(3.0, 0.0), 0.0);
        assert!(ring_support(&degenerate, q).is_none());
        let fine = UncertainObject::with_uniform(3, Point::new(10.0, 0.0), 2.0);
        let (onset, sat, mass) = ring_support(&fine, q).unwrap();
        assert!(onset >= fine.dist_min(q) && sat <= fine.dist_max(q));
        assert!((0.9..=1.1).contains(&mass));
    }

    #[test]
    fn tick_applies_safe_region_floor_from_config() {
        // A small but positive floor: regions narrower than the floor are
        // dropped, wider ones kept as-is.
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(100));
        let domain: Rect = ds.domain;
        let system = UvSystem::build(
            ds.objects.clone(),
            domain,
            Method::IC,
            UvConfig::default().with_safe_region_min_radius_fraction(1e-12),
        )
        .unwrap();
        let mut subs = SubscriptionEngine::new(&system);
        let q = ds.query_points(1, 6)[0];
        subs.subscribe(1, q).unwrap();
        if let Some(r) = subs.table().client(1).unwrap().safe_region() {
            assert!(r.radius() >= 1e-12 * domain.width().max(domain.height()));
        }
    }
}
