//! Possible regions (`P_i`, Definition 2): the evolving region that is
//! repeatedly shrunk by outside regions of UV-edges until it becomes the
//! UV-cell.
//!
//! The region is stored as a polygon whose boundary follows the hyperbolic
//! UV-edges at configurable fidelity; *membership decisions during clipping
//! are made with the exact sign predicate* (`distmin(O_i, p)` vs.
//! `distmax(O_j, p)`), so an object that truly reshapes the region is never
//! classified as irrelevant because of the polygonal approximation — the
//! approximation can only keep the region slightly larger than the true cell,
//! which is the safe direction for all pruning lemmas.

use uv_geom::{clip_keep_traced_with, Circle, ClipScratch, OutsideRegion, Point, Polygon, Rect};

/// A possible region of a subject object, shrunk by clipping with outside
/// regions of other objects.
#[derive(Debug, Clone, PartialEq)]
pub struct PossibleRegion {
    subject: Circle,
    polygon: Polygon,
    /// Cached maximum distance of the region boundary from the subject centre
    /// (the `d` of Lemma 2).
    max_dist: f64,
    /// Outside regions of the objects whose clips actually changed the
    /// region so far, hoisted at clip time so trace evaluations never rebuild
    /// them. The boundary of the region is the zero set of the minimum of
    /// their keep predicates; tracing new boundary segments against that
    /// minimum keeps repeated clips consistent with one another.
    constraints: Vec<OutsideRegion>,
}

impl PossibleRegion {
    /// The initial possible region: the whole domain `D` (Algorithm 1,
    /// Step 2).
    pub fn full(subject: Circle, domain: &Rect) -> Self {
        let polygon = Polygon::from_rect(domain);
        let max_dist = polygon.max_dist_from(subject.center);
        Self {
            subject,
            polygon,
            max_dist,
            constraints: Vec::new(),
        }
    }

    /// The uncertainty region of the subject object.
    pub fn subject(&self) -> Circle {
        self.subject
    }

    /// Current polygonal boundary.
    pub fn polygon(&self) -> &Polygon {
        &self.polygon
    }

    /// Maximum distance of the region from the subject centre — the `d` used
    /// by I-pruning (Lemma 2).
    pub fn max_dist(&self) -> f64 {
        self.max_dist
    }

    /// Area of the region.
    pub fn area(&self) -> f64 {
        self.polygon.area()
    }

    /// `true` when `q` lies inside the region.
    pub fn contains(&self, q: Point) -> bool {
        self.polygon.contains(q)
    }

    /// Convex hull of the region boundary (used by C-pruning, Lemma 3).
    pub fn convex_hull(&self) -> Vec<Point> {
        uv_geom::convex_hull(self.polygon.vertices())
    }

    /// Axis-aligned bounding box of the region.
    pub fn mbr(&self) -> Rect {
        self.polygon.mbr()
    }

    /// Clips the region by the outside region `X_i(j)` of `other`
    /// (Algorithm 1, Step 6: `P_i <- P_i - X_i(j)`).
    ///
    /// Returns `true` when the region actually changed, i.e. `other`
    /// contributed a UV-edge to the current region boundary.
    pub fn clip(&mut self, other: Circle, curve_samples: usize, max_edge_len: f64) -> bool {
        self.clip_with(
            other,
            curve_samples,
            max_edge_len,
            &mut ClipScratch::default(),
        )
    }

    /// [`PossibleRegion::clip`] with caller-provided scratch buffers, so a
    /// build or repair loop clipping one region against many objects reuses
    /// its allocations across clips. Output is bit-identical to `clip`.
    pub fn clip_with(
        &mut self,
        other: Circle,
        curve_samples: usize,
        max_edge_len: f64,
        scratch: &mut ClipScratch,
    ) -> bool {
        let outside = OutsideRegion::new(self.subject, other);
        if outside.is_empty() {
            // Overlapping uncertainty regions: the UV-edge does not exist and
            // the outside region has zero area (Section III-C).
            return false;
        }
        let keep = |p: Point| outside.keep_signed(p);
        // Trace new boundary segments along the boundary of the intersection
        // of every constraint applied so far (plus the new one), so a new
        // UV-edge never re-introduces area removed by an earlier one.
        let constraints = &self.constraints;
        let trace = |p: Point| {
            let mut m = outside.keep_signed(p);
            for c in constraints {
                m = m.min(c.keep_signed(p));
            }
            m
        };
        let clipped = clip_keep_traced_with(
            self.polygon.vertices(),
            &self.polygon,
            &keep,
            &trace,
            outside.keep_anchor(),
            curve_samples,
            max_edge_len,
            scratch,
        );
        if clipped.len() < 3 {
            // The true region always contains a neighbourhood of the subject
            // centre (its own minimum distance is zero there), so a collapse
            // to nothing can only be a sampling artefact of an already tiny
            // region; keep the previous boundary.
            return false;
        }
        if clipped.len() == self.polygon.len()
            && clipped
                .iter()
                .zip(self.polygon.vertices())
                .all(|(a, b)| a == b)
        {
            return false;
        }
        self.polygon = Polygon::new(clipped);
        self.max_dist = self.polygon.max_dist_from(self.subject.center);
        self.constraints.push(outside);
        true
    }

    /// `true` when, judged by the exact predicate on the current boundary
    /// vertices, `other` can still influence the region (Lemma 1: only
    /// boundary points need to be examined). Used as a cheap pre-check by the
    /// exact cell construction.
    pub fn may_be_affected_by(&self, other: Circle) -> bool {
        let outside = OutsideRegion::new(self.subject, other);
        if outside.is_empty() {
            return false;
        }
        self.polygon
            .vertices()
            .iter()
            .any(|v| outside.signed(*v) >= 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> Rect {
        Rect::square(1000.0)
    }

    fn subject() -> Circle {
        Circle::new(Point::new(500.0, 500.0), 20.0)
    }

    #[test]
    fn full_region_covers_domain() {
        let r = PossibleRegion::full(subject(), &domain());
        assert!((r.area() - 1_000_000.0).abs() < 1e-6);
        assert!(r.contains(Point::new(1.0, 999.0)));
        assert!(!r.contains(Point::new(-1.0, 500.0)));
        // d = distance from the centre to the farthest corner.
        let expected = Point::new(500.0, 500.0).dist(Point::new(0.0, 0.0));
        assert!((r.max_dist() - expected).abs() < 1e-9);
    }

    #[test]
    fn clipping_by_far_object_shrinks_the_far_side() {
        let mut r = PossibleRegion::full(subject(), &domain());
        let other = Circle::new(Point::new(900.0, 500.0), 20.0);
        let changed = r.clip(other, 8, 20.0);
        assert!(changed);
        assert!(r.area() < 1_000_000.0);
        // Points well past the other object are cut away; points near the
        // subject remain.
        assert!(!r.contains(Point::new(990.0, 500.0)));
        assert!(r.contains(Point::new(500.0, 500.0)));
        assert!(r.contains(Point::new(10.0, 500.0)));
        // max_dist cache is updated.
        assert!(r.max_dist() < Point::new(500.0, 500.0).dist(Point::new(0.0, 0.0)) + 1e-9);
        // Every surviving vertex satisfies the keep predicate.
        let outside = OutsideRegion::new(subject(), other);
        for v in r.polygon().vertices() {
            assert!(outside.keep_signed(*v) >= -1e-6);
        }
    }

    #[test]
    fn clipping_by_overlapping_object_is_a_no_op() {
        let mut r = PossibleRegion::full(subject(), &domain());
        let overlapping = Circle::new(Point::new(510.0, 500.0), 20.0);
        assert!(!r.clip(overlapping, 8, 20.0));
        assert!((r.area() - 1_000_000.0).abs() < 1e-6);
        assert!(!r.may_be_affected_by(overlapping));
    }

    #[test]
    fn clip_change_flag_reflects_geometry() {
        let mut r = PossibleRegion::full(subject(), &domain());
        // First clip changes the region.
        let near = Circle::new(Point::new(700.0, 500.0), 10.0);
        assert!(r.clip(near, 8, 20.0));
        let area_after_first = r.area();
        // An object far outside the remaining region (beyond the domain
        // corner, on the side already cut away) cannot change it again.
        let far = Circle::new(Point::new(995.0, 500.0), 2.0);
        let changed = r.clip(far, 8, 20.0);
        if changed {
            // If it did change (its UV-edge still crosses the region), the
            // area must have shrunk.
            assert!(r.area() < area_after_first);
        } else {
            assert_eq!(r.area(), area_after_first);
        }
        // Clipping twice with the same object the second time is a no-op.
        let again = r.clip(near, 8, 20.0);
        assert!(!again || r.area() <= area_after_first);
    }

    #[test]
    fn successive_clips_only_shrink() {
        let mut r = PossibleRegion::full(subject(), &domain());
        let mut prev_area = r.area();
        for (x, y) in [
            (800.0, 500.0),
            (500.0, 850.0),
            (200.0, 200.0),
            (500.0, 100.0),
        ] {
            r.clip(Circle::new(Point::new(x, y), 15.0), 8, 20.0);
            assert!(r.area() <= prev_area + 1e-6);
            prev_area = r.area();
        }
        // The subject's own region is always inside its possible region.
        assert!(r.contains(subject().center));
        assert!(r.contains(Point::new(520.0, 500.0)));
    }

    #[test]
    fn may_be_affected_matches_lemma_one() {
        let mut r = PossibleRegion::full(subject(), &domain());
        for (x, y) in [(800.0, 500.0), (500.0, 850.0), (200.0, 200.0)] {
            r.clip(Circle::new(Point::new(x, y), 15.0), 8, 20.0);
        }
        // A nearby object may still affect the (now small-ish) region.
        assert!(r.may_be_affected_by(Circle::new(Point::new(620.0, 620.0), 15.0)));
        // An object much farther than twice the max distance cannot.
        let d = r.max_dist();
        let far = Circle::new(Point::new(500.0 + 3.0 * d + 100.0, 500.0), subject().radius);
        assert!(!r.may_be_affected_by(far));
    }

    #[test]
    fn convex_hull_contains_region_vertices() {
        let mut r = PossibleRegion::full(subject(), &domain());
        r.clip(Circle::new(Point::new(700.0, 650.0), 15.0), 8, 20.0);
        r.clip(Circle::new(Point::new(300.0, 350.0), 15.0), 8, 20.0);
        let hull = r.convex_hull();
        assert!(hull.len() >= 3);
        for v in r.polygon().vertices() {
            assert!(uv_geom::hull::hull_contains(&hull, *v));
        }
    }
}
