//! The UV-diagram: a Voronoi diagram for uncertain data (ICDE 2010).
//!
//! This crate implements the paper's primary contribution:
//!
//! * [`region::PossibleRegion`] — a possible region `P_i` (Definition 2),
//!   clipped by outside regions of UV-edges (Definition 3, Equation (5)).
//! * [`cell`] — exact UV-cell construction (Algorithm 1, the "Basic" method)
//!   and r-object extraction.
//! * [`crobjects`] — candidate reference objects (Algorithm 2): seed-based
//!   initial possible regions, index-level pruning (Lemma 2) and
//!   computational-level pruning (Lemma 3).
//! * [`index`] — the UV-index, an adaptive quad-tree grid over UV-partitions
//!   (Algorithms 3–5), with PNN query processing (Section V-A).
//! * [`builder`] — the three construction methods compared in Section VI
//!   (Basic, ICR, IC) with per-phase statistics.
//! * [`pattern`] — nearest-neighbour pattern analysis queries: UV-cell
//!   retrieval and UV-partition (density) retrieval (Section V-C).
//! * [`engine`] — a concurrent batched PNN serving layer over a shared
//!   read-only index: worker-pool fan-out, per-leaf memoization and
//!   trajectory (moving-PNN) workloads — beyond the paper, toward the
//!   production system of `ROADMAP.md`.
//! * [`update`] — dynamic maintenance beyond the paper: incremental
//!   insert/delete/move with localized UV-partition repair, bit-identical to
//!   a cold rebuild, on an epoch-versioned index.
//! * [`snapshot`] — persistence beyond the paper: the whole system saved to
//!   a versioned, checksummed binary format and loaded back query-ready in
//!   `O(bytes)` with zero re-derivation — the *build once, query many* cost
//!   model made durable across process restarts.
//! * [`router`] — the derivation-only update authority beyond the paper:
//!   the object set, an index-only R-tree and the per-object sensitivity
//!   tables, with no UV-grid, leaf pages or object-store pages — the slim
//!   state the sharded layer routes updates through, at a fraction of a
//!   full system's footprint.
//! * [`shard`] — domain-sharded serving beyond the paper: the domain split
//!   into an `nx × ny` grid of shard rectangles, each served by its own
//!   system over a halo-replicated object subset, with queries routed by
//!   point ownership and answers bit-identical to the unsharded system.
//!   Elastic resharding splits hot shards and merges cold ones online,
//!   driven by per-shard load tallies, without breaking bit-identity or
//!   live subscription delta chains.
//! * [`subscribe`] — continuous PNN subscriptions beyond the paper: moving
//!   clients carry per-position *safe regions* (UV-leaf pinned stability
//!   disks derived from the `d_minmax` screen and the integration's branch
//!   structure); ticks inside the region cost zero leaf page reads, misses
//!   push answer-set deltas, updates invalidate by repaired-leaf epoch, and
//!   shard crossings migrate the subscription with an unbroken delta chain.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use uv_core::{builder::{build_uv_index, Method}, UvConfig};
//! use uv_data::{Dataset, GeneratorConfig, ObjectStore};
//! use uv_rtree::RTree;
//! use uv_store::PageStore;
//!
//! // A small uncertain dataset in a 10k x 10k domain.
//! let dataset = Dataset::generate(GeneratorConfig::paper_uniform(200));
//! let pages = Arc::new(PageStore::new());
//! let objects = ObjectStore::build(Arc::clone(&pages), &dataset.objects);
//! let rtree = RTree::build(&dataset.objects, &objects, Arc::clone(&pages));
//!
//! // Build the UV-index with the IC method (cr-objects, no refinement).
//! // A bad configuration surfaces as `UvError::InvalidConfig`, never a panic.
//! let (index, stats) = build_uv_index(
//!     &dataset.objects, &objects, &rtree, dataset.domain,
//!     Arc::new(PageStore::new()), Method::IC, UvConfig::default(),
//! ).unwrap();
//! assert_eq!(stats.objects, 200);
//!
//! // Answer a probabilistic nearest-neighbour query with a point lookup.
//! let q = dataset.query_points(1, 7)[0];
//! let answer = index.pnn(&objects, q, 100);
//! assert!(!answer.probabilities.is_empty());
//! ```
//!
//! *The paper-to-code map for the whole workspace — every definition, lemma,
//! algorithm and experiment of the paper, with its module and key functions —
//! lives in `docs/PAPER_MAP.md` at the repository root.*

pub mod builder;
pub mod cell;
pub mod config;
pub mod crobjects;
pub mod engine;
pub mod error;
pub mod index;
pub mod pattern;
pub mod region;
pub mod router;
pub mod shard;
pub mod snapshot;
pub mod stats;
pub mod subscribe;
pub mod system;
pub mod update;

pub use builder::{build_uv_index, Method};
pub use cell::UvCell;
pub use config::UvConfig;
pub use crobjects::{ChangeImpact, CrObjects, UpdateSensitivity};
pub use engine::{QueryEngine, TrajectoryStep};
pub use error::UvError;
pub use index::UvIndex;
pub use pattern::PartitionCell;
pub use region::PossibleRegion;
pub use router::DerivationRouter;
pub use shard::{ReshardStats, ShardLoadStats, ShardedUpdateStats, ShardedUvSystem};
pub use stats::{ConstructionStats, PruneStats};
pub use subscribe::{
    ClientId, SafeRegion, SubscriptionEngine, SubscriptionStats, SubscriptionTable,
};
pub use system::UvSystem;
pub use update::{ObjectState, UpdateBatch, UpdateOp, UpdateStats, Updater};
