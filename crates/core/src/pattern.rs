//! Nearest-neighbour pattern analysis queries (Section V-C).
//!
//! 1. **UV-cell retrieval** — the approximate area / extent / shape of the
//!    region in which an object can be the nearest neighbour, computed from
//!    the leaf regions associated with the object (the per-leaf summaries are
//!    maintained offline at construction time, as the paper suggests).
//! 2. **UV-partition retrieval** — given a query region `R`, all leaf regions
//!    intersecting `R` together with their nearest-neighbour *density*
//!    (objects associated with the leaf divided by the leaf area).

use crate::index::{GridNode, UvIndex};
use uv_data::ObjectId;
use uv_geom::Rect;

/// One grid cell returned by a UV-partition query.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionCell {
    /// Region covered by the leaf.
    pub region: Rect,
    /// Objects whose UV-cells (may) overlap the region.
    pub object_ids: Vec<ObjectId>,
    /// Nearest-neighbour density: objects per unit area.
    pub density: f64,
}

impl PartitionCell {
    /// Number of objects associated with the cell.
    pub fn object_count(&self) -> usize {
        self.object_ids.len()
    }
}

impl UvIndex {
    /// Regions of all leaves associated with object `id` (the approximate
    /// shape of its UV-cell). Uses the offline per-leaf summaries, so no I/O
    /// is charged.
    pub fn cell_leaf_regions(&self, id: ObjectId) -> Vec<Rect> {
        self.leaves()
            .filter(|(_, ids)| ids.contains(&id))
            .map(|(region, _)| *region)
            .collect()
    }

    /// Approximate area of the UV-cell of `id`: the total area of the leaf
    /// regions associated with it. This over-approximates the true cell (a
    /// leaf is associated with every cell that may overlap it), exactly as
    /// the paper's offline area information does.
    pub fn cell_area(&self, id: ObjectId) -> f64 {
        self.cell_leaf_regions(id).iter().map(Rect::area).sum()
    }

    /// Bounding box of the UV-cell of `id`, or `None` when the object is
    /// unknown to the index.
    pub fn cell_extent(&self, id: ObjectId) -> Option<Rect> {
        let regions = self.cell_leaf_regions(id);
        if regions.is_empty() {
            return None;
        }
        Some(regions.iter().fold(Rect::empty(), |acc, r| acc.union(r)))
    }

    /// UV-partition query: every leaf region intersecting `query_region`,
    /// with its object list and density. Leaf page lists are read from disk
    /// (charging I/O), mirroring how a user-facing query would materialise
    /// the partition contents.
    pub fn partition_query(&self, query_region: &Rect) -> Vec<PartitionCell> {
        let mut out = Vec::new();
        for (node, region) in self.nodes.iter().zip(&self.node_regions) {
            let GridNode::Leaf { list, .. } = node else {
                continue;
            };
            if !region.intersects(query_region) {
                continue;
            }
            let object_ids: Vec<ObjectId> = list.read_all().iter().map(|e| e.id).collect();
            let area = region.area();
            let density = if area > 0.0 {
                object_ids.len() as f64 / area
            } else {
                0.0
            };
            out.push(PartitionCell {
                region: *region,
                object_ids,
                density,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_uv_index, Method};
    use crate::config::UvConfig;
    use std::sync::Arc;
    use uv_data::{Dataset, GeneratorConfig, ObjectStore};
    use uv_rtree::RTree;
    use uv_store::PageStore;

    fn build(n: usize) -> (Dataset, UvIndex) {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(n));
        let pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&pages), &ds.objects);
        let rtree = RTree::build(&ds.objects, &objects, pages);
        let (index, _) = build_uv_index(
            &ds.objects,
            &objects,
            &rtree,
            ds.domain,
            Arc::new(PageStore::new()),
            Method::IC,
            UvConfig::default(),
        )
        .unwrap();
        (ds, index)
    }

    #[test]
    fn cell_area_is_positive_and_bounded_by_domain() {
        let (ds, index) = build(400);
        for id in [0u32, 100, 399] {
            let area = index.cell_area(id);
            assert!(area > 0.0, "object {id} has empty cell");
            assert!(area <= ds.domain.area() + 1e-6);
            let extent = index.cell_extent(id).unwrap();
            assert!(ds.domain.contains_rect(&extent));
            // The cell extent must contain the object's own centre.
            assert!(extent.contains(ds.objects[id as usize].center()));
        }
        assert!(index.cell_extent(9999).is_none());
        assert_eq!(index.cell_area(9999), 0.0);
    }

    #[test]
    fn denser_neighbourhoods_have_smaller_cells() {
        // An object in a crowded area should have a smaller UV-cell footprint
        // than the average cell, which in turn is far below the domain area.
        let (ds, index) = build(600);
        let total: f64 = (0..ds.len() as u32).map(|id| index.cell_area(id)).sum();
        let avg = total / ds.len() as f64;
        assert!(avg < ds.domain.area() * 0.25);
    }

    #[test]
    fn partition_query_returns_intersecting_cells_only() {
        let (ds, index) = build(500);
        let region = Rect::new(2000.0, 2000.0, 4000.0, 4000.0);
        let cells = index.partition_query(&region);
        assert!(!cells.is_empty());
        for cell in &cells {
            assert!(cell.region.intersects(&region));
            assert!(ds.domain.contains_rect(&cell.region));
            assert!(cell.density >= 0.0);
            assert_eq!(cell.object_count(), cell.object_ids.len());
            assert!(cell.object_count() > 0, "leaf with no associated objects");
        }
        // A query covering the whole domain returns every leaf.
        let all = index.partition_query(&ds.domain);
        assert_eq!(all.len(), index.num_leaf_nodes());
        // A query outside the domain returns nothing.
        let outside = Rect::new(20_000.0, 20_000.0, 21_000.0, 21_000.0);
        assert!(index.partition_query(&outside).is_empty());
    }

    #[test]
    fn partition_query_grows_with_region_size() {
        let (_, index) = build(500);
        let small = index.partition_query(&Rect::new(4500.0, 4500.0, 5500.0, 5500.0));
        let large = index.partition_query(&Rect::new(2000.0, 2000.0, 8000.0, 8000.0));
        assert!(large.len() >= small.len());
    }

    #[test]
    fn partition_query_charges_io() {
        let (_, index) = build(400);
        index.store().reset_io();
        let cells = index.partition_query(&Rect::new(1000.0, 1000.0, 3000.0, 3000.0));
        assert!(!cells.is_empty());
        assert!(index.store().io().reads > 0);
    }

    #[test]
    fn cell_regions_cover_query_answers() {
        // If the PNN answer at q contains object o, then q must lie in one of
        // o's leaf regions — the leaf-region union covers the true UV-cell.
        let (ds, index) = build(300);
        let pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&pages), &ds.objects);
        for q in ds.query_points(15, 5) {
            let answer = index.pnn(&objects, q, 60);
            for (id, _) in &answer.probabilities {
                let regions = index.cell_leaf_regions(*id);
                assert!(
                    regions.iter().any(|r| r.contains(q)),
                    "query {q:?} not covered by leaf regions of object {id}"
                );
            }
        }
    }
}
