//! Construction-time statistics: pruning ratios and per-phase timings.
//!
//! Figure 7 of the paper reports (a) total construction time of the three
//! methods, (b) the pruning ratio `p_c` of I- and C-pruning, and (d)/(e) the
//! fraction of construction time spent on pruning, r-object generation and
//! indexing. These types carry exactly those quantities.

use std::time::Duration;

/// Survivor counts of the pruning pipeline for a single object.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Number of other objects in the dataset (`n - 1`).
    pub total_others: usize,
    /// Number of seeds used to build the initial possible region.
    pub seeds: usize,
    /// Survivors of I-pruning (set `I` of Algorithm 2).
    pub after_i_pruning: usize,
    /// Survivors of C-pruning plus seeds (the cr-objects `C_i`).
    pub after_c_pruning: usize,
}

impl PruneStats {
    /// Fraction of objects discarded by I-pruning (`p_c` of Figure 7(b)).
    pub fn i_ratio(&self) -> f64 {
        if self.total_others == 0 {
            return 1.0;
        }
        1.0 - self.after_i_pruning as f64 / self.total_others as f64
    }

    /// Fraction of objects discarded after C-pruning.
    pub fn c_ratio(&self) -> f64 {
        if self.total_others == 0 {
            return 1.0;
        }
        1.0 - self.after_c_pruning as f64 / self.total_others as f64
    }
}

/// Statistics of one UV-index construction run.
#[derive(Debug, Clone, Default)]
pub struct ConstructionStats {
    /// Number of indexed objects.
    pub objects: usize,
    /// Wall-clock construction time.
    pub total: Duration,
    /// Time spent generating initial possible regions (seed selection and
    /// clipping).
    pub seed_time: Duration,
    /// Time spent on I- and C-pruning.
    pub pruning_time: Duration,
    /// Time spent generating exact cells / r-objects (zero for IC).
    pub refinement_time: Duration,
    /// Time spent inserting cells into the adaptive grid (Algorithm 3).
    pub indexing_time: Duration,
    /// Average I-pruning ratio over all objects.
    pub avg_i_ratio: f64,
    /// Average C-pruning ratio over all objects.
    pub avg_c_ratio: f64,
    /// Average number of cr-objects (or r-objects, depending on the method)
    /// per object.
    pub avg_reference_objects: f64,
    /// Non-leaf grid nodes allocated.
    pub nonleaf_nodes: usize,
    /// Leaf grid nodes.
    pub leaf_nodes: usize,
    /// Total disk pages used by leaf lists.
    pub leaf_pages: usize,
}

impl ConstructionStats {
    /// Fraction of the accounted time spent on I+C pruning (Figure 7(d)/(e)).
    pub fn pruning_fraction(&self) -> f64 {
        self.fraction_of(self.seed_time + self.pruning_time)
    }

    /// Fraction of the accounted time spent generating r-objects
    /// (Figure 7(d); zero for IC).
    pub fn refinement_fraction(&self) -> f64 {
        self.fraction_of(self.refinement_time)
    }

    /// Fraction of the accounted time spent indexing (Algorithm 3).
    pub fn indexing_fraction(&self) -> f64 {
        self.fraction_of(self.indexing_time)
    }

    fn fraction_of(&self, part: Duration) -> f64 {
        let accounted =
            self.seed_time + self.pruning_time + self.refinement_time + self.indexing_time;
        if accounted.is_zero() {
            0.0
        } else {
            part.as_secs_f64() / accounted.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_ratios() {
        let s = PruneStats {
            total_others: 1000,
            seeds: 8,
            after_i_pruning: 100,
            after_c_pruning: 40,
        };
        assert!((s.i_ratio() - 0.9).abs() < 1e-12);
        assert!((s.c_ratio() - 0.96).abs() < 1e-12);
        // Degenerate dataset of one object.
        let single = PruneStats::default();
        assert_eq!(single.i_ratio(), 1.0);
        assert_eq!(single.c_ratio(), 1.0);
    }

    #[test]
    fn time_fractions_sum_to_one() {
        let s = ConstructionStats {
            seed_time: Duration::from_millis(10),
            pruning_time: Duration::from_millis(40),
            refinement_time: Duration::from_millis(30),
            indexing_time: Duration::from_millis(20),
            ..Default::default()
        };
        let total = s.pruning_fraction() + s.refinement_fraction() + s.indexing_fraction();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((s.pruning_fraction() - 0.5).abs() < 1e-9);
        assert!((s.refinement_fraction() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn zero_durations_give_zero_fractions() {
        let s = ConstructionStats::default();
        assert_eq!(s.pruning_fraction(), 0.0);
        assert_eq!(s.indexing_fraction(), 0.0);
    }
}
