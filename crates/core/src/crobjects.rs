//! Candidate reference objects (Algorithm 2): an efficiently computable
//! superset of the r-objects that define an object's UV-cell.
//!
//! The three steps of the paper are implemented faithfully:
//!
//! 1. **`initPossibleRegion`** (Section IV-B) — a k-NN query around the
//!    subject's centre retrieves `k` close objects, the domain is divided
//!    into `k_s` sectors centred at `c_i`, and the closest object of each
//!    sector becomes a *seed*; clipping the domain by the seeds' outside
//!    regions yields a small initial possible region.
//! 2. **I-pruning** (Section IV-C, Lemma 2) — a circular range query of
//!    radius `2d - r_i` (where `d` is the maximum distance of the possible
//!    region from `c_i`) discards every object whose centre lies outside the
//!    circle; such objects cannot reshape the region.
//! 3. **C-pruning** (Section IV-D, Lemma 3) — d-bounds are built at the
//!    vertices of the possible region's convex hull; an object whose centre
//!    lies outside every d-bound cannot reshape the region either.
//!
//! The survivors are the cr-objects `C_i ⊇ F_i`.

use crate::config::UvConfig;
use crate::region::PossibleRegion;
use crate::stats::PruneStats;
use uv_data::{ObjectEntry, ObjectId, UncertainObject};
use uv_geom::{Circle, Point, Rect};
use uv_rtree::RTree;

/// How far away another object's change can be while still (possibly)
/// altering the subject's cr-derivation — the *affected-object bound* of the
/// dynamic maintenance subsystem ([`crate::update`]).
///
/// `derive_cr_objects` consumes exactly two index queries: the seed-selection
/// k-NN and the I-pruning circular range query. An insert/delete/move of an
/// object `O_j` can therefore only change the subject's derivation when `O_j`
/// enters or leaves one of those two result sets:
///
/// * `knn_dist` — the distance of the k-th nearest neighbour (under the k-NN
///   metric `distmin(O_j, c_i)`). A change strictly farther than this cannot
///   alter the k-NN set, hence not the seeds nor the possible region.
/// * `prune_radius` — the I-pruning radius `2d - r_i` (Lemma 2). A change
///   whose centre is strictly outside this circle cannot alter the I-pruning
///   survivors (and C-pruning only filters those).
///
/// Both are `f64::INFINITY` when the derivation is globally sensitive: fewer
/// than `k` other objects exist (every change alters the k-NN set) or the
/// degenerate co-located path was taken (its branch condition depends on the
/// dataset cardinality).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpdateSensitivity {
    /// Distance of the k-th seed-selection neighbour (`distmin` metric).
    pub knn_dist: f64,
    /// The I-pruning radius `max(0, 2d - r_i)` around the subject centre.
    pub prune_radius: f64,
}

impl UpdateSensitivity {
    /// Sensitivity of a derivation that must be repeated on *any* change.
    pub fn always_affected() -> Self {
        Self {
            knn_dist: f64::INFINITY,
            prune_radius: f64::INFINITY,
        }
    }

    /// `true` when a change of an object with MBC `mbc` (its old or new
    /// state) can alter a derivation done from `center` with this
    /// sensitivity. Sound with a small tolerance: flagging too much merely
    /// costs a re-derivation, flagging too little would desynchronise the
    /// index, so ties err on the affected side.
    pub fn affected_by(&self, center: uv_geom::Point, mbc: &Circle) -> bool {
        use uv_geom::EPS;
        mbc.dist_min(center) <= self.knn_dist + EPS
            || mbc.center.dist(center) <= self.prune_radius + EPS
    }
}

/// The cr-objects of one subject object, with the possible region and the
/// pruning statistics that produced them.
#[derive(Debug, Clone)]
pub struct CrObjects {
    /// The subject object.
    pub object_id: ObjectId,
    /// Candidate reference objects `C_i` (sorted, deduplicated).
    pub cr_ids: Vec<ObjectId>,
    /// The initial possible region built from the seeds.
    pub region: PossibleRegion,
    /// Pruning statistics (seed count, survivors of each phase).
    pub stats: PruneStats,
    /// Affected-object bound for dynamic maintenance.
    pub sensitivity: UpdateSensitivity,
}

impl CrObjects {
    /// Number of cr-objects.
    pub fn len(&self) -> usize {
        self.cr_ids.len()
    }

    /// `true` when no other object can shape the cell (singleton datasets).
    pub fn is_empty(&self) -> bool {
        self.cr_ids.is_empty()
    }
}

/// Derives the cr-objects of `subject` (Algorithm 2).
///
/// `rtree` indexes the whole dataset (including `subject`, which is skipped),
/// and `all_objects` provides uncertainty-region geometry by id.
pub fn derive_cr_objects(
    subject: &UncertainObject,
    rtree: &RTree,
    all_objects: &[UncertainObject],
    domain: &Rect,
    config: &UvConfig,
) -> CrObjects {
    let total_others = all_objects.len().saturating_sub(1);
    let ci = subject.center();
    let max_edge_len = config.max_edge_len(domain.width().max(domain.height()));

    // ---- Step 1: initial possible region from seeds --------------------------
    let neighbours = rtree.knn(ci, config.seed_knn, Some(subject.id));
    let seeds = select_seeds(ci, &neighbours, config.num_seeds);

    // Degenerate case: every k-NN neighbour is co-located with `c_i`, so no
    // seed exists, the possible region is never clipped and I-pruning's
    // radius degrades to the whole domain. Co-located objects cannot clip the
    // region (their UV-edge against the subject is empty) but they are
    // legitimate reference objects, so when the k-NN set already covers every
    // other object we take them as cr-objects directly and skip the
    // (vacuous) pruning phases. When the dataset holds more objects than the
    // k-NN returned, farther objects could still shape the cell, so we fall
    // through to the normal path, whose full-domain region keeps every
    // survivor — sound, merely unpruned.
    if seeds.is_empty() && !neighbours.is_empty() && neighbours.len() >= total_others {
        let mut cr_ids: Vec<ObjectId> = neighbours.iter().map(|e| e.id).collect();
        cr_ids.sort_unstable();
        cr_ids.dedup();
        let stats = PruneStats {
            total_others,
            seeds: 0,
            after_i_pruning: cr_ids.len(),
            after_c_pruning: cr_ids.len(),
        };
        return CrObjects {
            object_id: subject.id,
            cr_ids,
            region: PossibleRegion::full(subject.mbc(), domain),
            stats,
            // The branch condition compares against the dataset cardinality,
            // so any change re-derives.
            sensitivity: UpdateSensitivity::always_affected(),
        };
    }

    let mut region = PossibleRegion::full(subject.mbc(), domain);
    for seed in &seeds {
        region.clip(seed.mbc, config.curve_samples, max_edge_len);
    }

    // ---- Step 2: I-pruning (Lemma 2) -----------------------------------------
    let d = region.max_dist();
    let i_radius = (2.0 * d - subject.radius()).max(0.0);
    let i_survivors: Vec<ObjectEntry> = rtree
        .range_circle_centers(ci, i_radius)
        .into_iter()
        .filter(|e| e.id != subject.id)
        .collect();

    // ---- Step 3: C-pruning (Lemma 3) -----------------------------------------
    let hull = region.convex_hull();
    let d_bounds: Vec<Circle> = hull.iter().map(|v| Circle::new(*v, v.dist(ci))).collect();
    let mut cr_ids: Vec<ObjectId> = i_survivors
        .iter()
        .filter(|e| d_bounds.iter().any(|bound| bound.contains(e.mbc.center)))
        .map(|e| e.id)
        .collect();

    // The seeds shaped the initial region, so they are candidate reference
    // objects by construction; keep them even if a later, smaller hull would
    // prune them.
    cr_ids.extend(seeds.iter().map(|s| s.id));
    cr_ids.sort_unstable();
    cr_ids.dedup();

    let stats = PruneStats {
        total_others,
        seeds: seeds.len(),
        after_i_pruning: i_survivors.len(),
        after_c_pruning: cr_ids.len(),
    };

    // When fewer than `k` other objects exist, any insert enters the k-NN
    // result; otherwise a change beyond the k-th neighbour distance (the
    // canonical knn result is sorted, so the last entry is farthest) cannot
    // alter the k-NN set.
    let knn_dist = if neighbours.len() < config.seed_knn {
        f64::INFINITY
    } else {
        neighbours.last().map_or(f64::INFINITY, |e| e.dist_min(ci))
    };

    CrObjects {
        object_id: subject.id,
        cr_ids,
        region,
        stats,
        sensitivity: UpdateSensitivity {
            knn_dist,
            prune_radius: i_radius,
        },
    }
}

/// Selects at most `num_seeds` seeds from the k-NN result by dividing the
/// plane around `ci` into equal sectors and keeping the closest neighbour of
/// every non-empty sector (Section IV-B).
fn select_seeds(ci: Point, neighbours: &[ObjectEntry], num_seeds: usize) -> Vec<ObjectEntry> {
    let num_seeds = num_seeds.max(1);
    let mut best: Vec<Option<(f64, ObjectEntry)>> = vec![None; num_seeds];
    for e in neighbours {
        let dir = e.mbc.center - ci;
        if dir.norm() <= f64::EPSILON {
            continue;
        }
        let mut angle = dir.y.atan2(dir.x);
        if angle < 0.0 {
            angle += std::f64::consts::TAU;
        }
        let sector =
            ((angle / std::f64::consts::TAU * num_seeds as f64) as usize).min(num_seeds - 1);
        let dist = e.mbc.dist_min(ci);
        match &best[sector] {
            Some((d, _)) if *d <= dist => {}
            _ => best[sector] = Some((dist, *e)),
        }
    }
    best.into_iter().flatten().map(|(_, e)| e).collect()
}

/// Soundness check used by tests and debug assertions: every r-object of the
/// exact cell must appear among the cr-objects.
pub fn cr_objects_cover_r_objects(cr: &CrObjects, r_objects: &[ObjectId]) -> bool {
    r_objects.iter().all(|r| cr.cr_ids.binary_search(r).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::build_exact_cell;
    use std::sync::Arc;
    use uv_data::{Dataset, DatasetKind, GeneratorConfig, ObjectStore};
    use uv_store::PageStore;

    fn setup(n: usize, kind: DatasetKind) -> (Dataset, RTree) {
        let config = GeneratorConfig {
            kind,
            ..GeneratorConfig::paper_uniform(n)
        };
        let ds = Dataset::generate(config);
        let pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&pages), &ds.objects);
        let tree = RTree::build(&ds.objects, &objects, pages);
        (ds, tree)
    }

    fn test_config() -> UvConfig {
        UvConfig {
            parallel: false,
            ..UvConfig::default()
        }
    }

    #[test]
    fn seeds_are_spread_across_sectors() {
        let (ds, tree) = setup(500, DatasetKind::Uniform);
        let subject = &ds.objects[123];
        let neighbours = tree.knn(subject.center(), 300, Some(subject.id));
        let seeds = select_seeds(subject.center(), &neighbours, 8);
        assert!(!seeds.is_empty());
        assert!(seeds.len() <= 8);
        // Seeds must come from distinct sectors: their angles must differ.
        let mut sectors: Vec<usize> = seeds
            .iter()
            .map(|s| {
                let dir = s.mbc.center - subject.center();
                let mut a = dir.y.atan2(dir.x);
                if a < 0.0 {
                    a += std::f64::consts::TAU;
                }
                (a / std::f64::consts::TAU * 8.0) as usize
            })
            .collect();
        sectors.sort_unstable();
        sectors.dedup();
        assert_eq!(sectors.len(), seeds.len());
    }

    #[test]
    fn pruning_is_sound_cr_objects_cover_r_objects() {
        let (ds, tree) = setup(300, DatasetKind::Uniform);
        let config = test_config();
        for subject in ds.objects.iter().step_by(29) {
            let cr = derive_cr_objects(subject, &tree, &ds.objects, &ds.domain, &config);
            // Exact cell against the full dataset.
            let cell = build_exact_cell(
                subject,
                ds.objects.iter().filter(|o| o.id != subject.id),
                &ds.domain,
                &config,
            );
            assert!(
                cr_objects_cover_r_objects(&cr, &cell.r_objects),
                "object {}: r-objects {:?} not covered by cr-objects {:?}",
                subject.id,
                cell.r_objects,
                cr.cr_ids
            );
        }
    }

    #[test]
    fn pruning_discards_most_objects() {
        let (ds, tree) = setup(800, DatasetKind::Uniform);
        let config = test_config();
        let mut total_ratio = 0.0;
        let samples = 20;
        for subject in ds.objects.iter().step_by(800 / samples) {
            let cr = derive_cr_objects(subject, &tree, &ds.objects, &ds.domain, &config);
            total_ratio += cr.stats.c_ratio();
            assert!(cr.stats.after_i_pruning <= cr.stats.total_others);
            assert!(cr.stats.after_c_pruning <= cr.stats.after_i_pruning + cr.stats.seeds);
        }
        let avg = total_ratio / samples as f64;
        assert!(
            avg > 0.8,
            "C-pruning should discard the vast majority of objects, got ratio {avg}"
        );
    }

    #[test]
    fn i_pruning_is_weaker_than_c_pruning() {
        let (ds, tree) = setup(600, DatasetKind::Uniform);
        let config = test_config();
        let cr = derive_cr_objects(&ds.objects[10], &tree, &ds.objects, &ds.domain, &config);
        assert!(cr.stats.i_ratio() <= cr.stats.c_ratio() + 1e-12);
        assert!(cr.stats.i_ratio() > 0.0);
    }

    #[test]
    fn skewed_data_keeps_pruning_sound() {
        let (ds, tree) = setup(300, DatasetKind::GaussianSkew { sigma: 800.0 });
        let config = test_config();
        for subject in ds.objects.iter().step_by(43) {
            let cr = derive_cr_objects(subject, &tree, &ds.objects, &ds.domain, &config);
            let cell = build_exact_cell(
                subject,
                ds.objects.iter().filter(|o| o.id != subject.id),
                &ds.domain,
                &config,
            );
            assert!(cr_objects_cover_r_objects(&cr, &cell.r_objects));
        }
    }

    #[test]
    fn fully_co_located_neighbours_still_yield_cr_objects() {
        // All objects share one centre: seed selection finds no direction to
        // sector, so without the degenerate-case guard the cr set would be
        // derived from an unclipped whole-domain region. The guard must fall
        // back to taking the co-located objects as cr-objects directly.
        let domain = Rect::square(1_000.0);
        let objects: Vec<UncertainObject> = (0..6)
            .map(|i| UncertainObject::with_uniform(i, Point::new(500.0, 500.0), 10.0))
            .collect();
        let pages = Arc::new(PageStore::new());
        let store = ObjectStore::build(Arc::clone(&pages), &objects);
        let tree = RTree::build(&objects, &store, pages);
        let config = test_config();

        for subject in &objects {
            let cr = derive_cr_objects(subject, &tree, &objects, &domain, &config);
            assert_eq!(cr.stats.seeds, 0, "co-located neighbours yield no seeds");
            let mut expected: Vec<ObjectId> = objects
                .iter()
                .map(|o| o.id)
                .filter(|id| *id != subject.id)
                .collect();
            expected.sort_unstable();
            assert_eq!(
                cr.cr_ids, expected,
                "co-located objects must become cr-objects directly"
            );
            assert_eq!(cr.stats.after_c_pruning, expected.len());
            // The possible region legitimately stays the whole domain: every
            // other object is equidistant from the subject everywhere.
            assert!(cr.region.contains(subject.center()));
        }
    }

    #[test]
    fn co_located_cluster_with_distant_objects_keeps_pruning_sound() {
        // A co-located cluster plus distant objects: seeds exist (from the
        // distant objects), so the normal path runs; the distant shapers must
        // stay in the cr set.
        let domain = Rect::square(1_000.0);
        let mut objects: Vec<UncertainObject> = (0..4)
            .map(|i| UncertainObject::with_uniform(i, Point::new(500.0, 500.0), 10.0))
            .collect();
        objects.push(UncertainObject::with_uniform(
            4,
            Point::new(650.0, 500.0),
            10.0,
        ));
        objects.push(UncertainObject::with_uniform(
            5,
            Point::new(500.0, 320.0),
            10.0,
        ));
        let pages = Arc::new(PageStore::new());
        let store = ObjectStore::build(Arc::clone(&pages), &objects);
        let tree = RTree::build(&objects, &store, pages);
        let config = test_config();

        let subject = &objects[0];
        let cr = derive_cr_objects(subject, &tree, &objects, &domain, &config);
        assert!(cr.stats.seeds > 0);
        // The co-located companions are kept (they are r-objects of the
        // subject's cell) and the cr set covers the exact r-objects.
        for id in [1u32, 2, 3] {
            assert!(cr.cr_ids.contains(&id), "co-located object {id} missing");
        }
        let cell = build_exact_cell(
            subject,
            objects.iter().filter(|o| o.id != subject.id),
            &domain,
            &config,
        );
        assert!(cr_objects_cover_r_objects(&cr, &cell.r_objects));
    }

    #[test]
    fn tiny_datasets_degenerate_gracefully() {
        let (ds, tree) = setup(2, DatasetKind::Uniform);
        let config = test_config();
        let cr = derive_cr_objects(&ds.objects[0], &tree, &ds.objects, &ds.domain, &config);
        assert_eq!(cr.stats.total_others, 1);
        assert_eq!(cr.cr_ids, vec![1]);
        assert!(!cr.is_empty());
        assert_eq!(cr.len(), 1);
    }

    #[test]
    fn cr_region_is_no_larger_than_domain_and_contains_subject() {
        let (ds, tree) = setup(400, DatasetKind::Uniform);
        let config = test_config();
        let subject = &ds.objects[200];
        let cr = derive_cr_objects(subject, &tree, &ds.objects, &ds.domain, &config);
        assert!(cr.region.area() <= ds.domain.area() + 1e-6);
        assert!(cr.region.contains(subject.center()));
        // With 8 seeds around, the initial region should be far smaller than
        // the domain for a uniform dataset of this size.
        assert!(cr.region.area() < ds.domain.area() * 0.25);
    }
}
