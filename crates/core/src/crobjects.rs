//! Candidate reference objects (Algorithm 2): an efficiently computable
//! superset of the r-objects that define an object's UV-cell.
//!
//! The three steps of the paper are implemented faithfully:
//!
//! 1. **`initPossibleRegion`** (Section IV-B) — a k-NN query around the
//!    subject's centre retrieves `k` close objects, the domain is divided
//!    into `k_s` sectors centred at `c_i`, and the closest object of each
//!    sector becomes a *seed*; clipping the domain by the seeds' outside
//!    regions yields a small initial possible region.
//! 2. **I-pruning** (Section IV-C, Lemma 2) — a circular range query of
//!    radius `2d - r_i` (where `d` is the maximum distance of the possible
//!    region from `c_i`) discards every object whose centre lies outside the
//!    circle; such objects cannot reshape the region.
//! 3. **C-pruning** (Section IV-D, Lemma 3) — d-bounds are built at the
//!    vertices of the possible region's convex hull; an object whose centre
//!    lies outside every d-bound cannot reshape the region either.
//!
//! The survivors are the cr-objects `C_i ⊇ F_i`.

use crate::config::UvConfig;
use crate::region::PossibleRegion;
use crate::stats::PruneStats;
use uv_data::{ObjectEntry, ObjectId, UncertainObject};
use uv_geom::{Circle, ClipScratch, Point, Rect};
use uv_rtree::RTree;

/// How far away another object's change can be while still (possibly)
/// altering the subject's cr-derivation — the *affected-object bound* of the
/// dynamic maintenance subsystem ([`crate::update`]).
///
/// `derive_cr_objects` consumes exactly two index queries: the seed-selection
/// k-NN and the I-pruning circular range query. An insert/delete/move of an
/// object `O_j` can therefore only change the subject's derivation when `O_j`
/// enters or leaves one of those two result sets:
///
/// * `knn_dist` — the distance of the k-th nearest neighbour (under the k-NN
///   metric `distmin(O_j, c_i)`). A change strictly farther than this cannot
///   alter the k-NN set, hence not the seeds nor the possible region.
/// * `prune_radius` — the I-pruning radius `2d - r_i` (Lemma 2). A change
///   whose centre is strictly outside this circle cannot alter the I-pruning
///   survivors (and C-pruning only filters those).
///
/// Both are `f64::INFINITY` when the derivation is globally sensitive: fewer
/// than `k` other objects exist (every change alters the k-NN set) or the
/// degenerate co-located path was taken (its branch condition depends on the
/// dataset cardinality).
///
/// # The seed-sector prefilter
///
/// The two radii alone are loose: at the dynamic-serving tuning they flag
/// ~30% of a uniform dataset per 1% churn step, yet almost none of those
/// derivations come back different. Two exact observations tighten them,
/// valid whenever the derivation is *boundary-safe* — the k-NN query
/// returned a full `k` result and every seed is strictly closer than the
/// k-th neighbour:
///
/// * **Seed-sector gate** (k-NN radius). The k-NN result feeds the
///   derivation *only through the seeds* — per sector, the closest
///   neighbour. An object *appearing* (insert, or the destination of a
///   move) in sector `s` strictly farther than `seed_dists[s]` cannot
///   displace that sector's seed (an unseeded sector keeps `INFINITY`
///   there, so appearances in it always re-derive), and the k-NN
///   membership churn it causes is harmless: it evicts the k-th member,
///   which (boundary safety) is farther than every seed and therefore no
///   seed. An object *disappearing* (delete, or the origin of a move)
///   beyond every seed was itself no seed, and the member its departure
///   admits arrives at a distance at least the k-th — no seed either, but
///   only when **every** sector is seeded; with an unseeded sector the
///   admitted member could seed it, so disappearances inside the k-NN
///   radius of a partially-seeded subject always re-derive. That also
///   keeps the stored `knn_dist` conservative for such subjects: only
///   skipped *appearances* can drift the true k-th distance, and they only
///   move it closer.
/// * **C-pruning gate** (I-pruning circle). A change whose centre lies
///   inside the I-pruning circle enters/leaves the I-survivor set — but
///   C-pruning (Lemma 3) discards any survivor whose centre lies outside
///   every d-bound before it can shape the cr set. With seeds unchanged the
///   possible region, its hull and therefore the `d_bounds` are unchanged,
///   so a centre outside every d-bound (old and new position) leaves the
///   cr-objects exactly as they were.
///
/// Unchanged seeds mean an unchanged possible region, I-pruning radius,
/// seed distances and d-bounds, so the stored bound remains sound without
/// re-derivation, inductively across any number of skipped changes.
/// `seed_dists`/`d_bounds` are empty when the prefilter is unusable (fewer
/// than `k` neighbours exist, a seed ties the k-th distance, or a
/// degenerate path ran); the tests then fall back to the plain radii.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateSensitivity {
    /// Distance of the k-th seed-selection neighbour (`distmin` metric).
    pub knn_dist: f64,
    /// The I-pruning radius `max(0, 2d - r_i)` around the subject centre.
    pub prune_radius: f64,
    /// Per-sector seed distances (`distmin` of each sector's seed from the
    /// subject centre, `INFINITY` for unseeded sectors); empty when the
    /// seed-sector prefilter does not apply.
    pub(crate) seed_dists: Vec<f64>,
    /// The C-pruning d-bounds of the derivation (Lemma 3): one circle per
    /// hull vertex of the possible region, passing through the subject
    /// centre. Empty exactly when `seed_dists` is.
    pub(crate) d_bounds: Vec<Circle>,
}

/// What an update elsewhere means for one subject's retained state — the
/// verdict of [`UpdateSensitivity::move_impact`] and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ChangeImpact {
    /// The change cannot alter the subject's derivation or its grid
    /// placement: skip it entirely.
    Unaffected,
    /// The reference *id list* is provably unchanged but a referenced
    /// object's geometry moved: the subject's overlap tests must be
    /// re-evaluated (grid repair), yet the expensive cr-derivation can be
    /// skipped. Only exact for the IC method, whose reference ids are the
    /// cr-ids themselves — ICR refines through the references' geometry,
    /// so its callers must escalate this to [`ChangeImpact::Rederive`].
    RepartitionOnly,
    /// The derivation itself may change: re-derive the subject.
    Rederive,
}

impl UpdateSensitivity {
    /// Sensitivity of a derivation that must be repeated on *any* change.
    pub fn always_affected() -> Self {
        Self {
            knn_dist: f64::INFINITY,
            prune_radius: f64::INFINITY,
            seed_dists: Vec::new(),
            d_bounds: Vec::new(),
        }
    }

    /// Per-sector seed distances when the seed-sector prefilter applies.
    pub fn seed_dists(&self) -> Option<&[f64]> {
        (!self.seed_dists.is_empty()).then_some(self.seed_dists.as_slice())
    }

    /// The C-pruning d-bounds (Lemma 3): one circle per hull vertex of the
    /// possible region, passing through the subject centre. Empty when the
    /// prefilter does not apply. Snapshots persist only the hull vertices —
    /// the radii are recomputed on load — so the per-object snapshot
    /// footprint is `16` bytes per vertex, not `24`.
    pub fn d_bounds(&self) -> &[Circle] {
        &self.d_bounds
    }

    /// `true` when the seed-sector/C-pruning prefilter state is available.
    fn tight(&self) -> bool {
        !self.seed_dists.is_empty() && !self.d_bounds.is_empty()
    }

    /// Pruning admission: a centre inside the I-pruning circle *and* inside
    /// some d-bound survives to the cr set (`contains` carries its own
    /// tolerance, matching the derivation exactly). Only meaningful when
    /// [`UpdateSensitivity::tight`].
    fn admitted(&self, center: uv_geom::Point, mbc: &Circle) -> bool {
        use uv_geom::EPS;
        mbc.center.dist(center) <= self.prune_radius + EPS
            && self.d_bounds.iter().any(|b| b.contains(mbc.center))
    }

    /// `true` when some sector is unseeded, i.e. an object admitted into
    /// the k-NN set could become a brand-new seed.
    fn any_unseeded(&self) -> bool {
        self.seed_dists.iter().any(|s| s.is_infinite())
    }

    /// Per-sector seed-displacement gate for a state at `distmin` `d` from
    /// the subject (the caller has already established `d` is inside the
    /// k-NN radius). A change centred exactly on the subject has no sector
    /// and always hits; a state in an unseeded sector hits through the
    /// `INFINITY` entry.
    fn sector_gate(&self, center: uv_geom::Point, mbc: &Circle, d: f64) -> bool {
        use uv_geom::EPS;
        match sector_of(center, mbc.center, self.seed_dists.len()) {
            Some(sector) => d <= self.seed_dists[sector] + EPS,
            None => true,
        }
    }

    /// Seed-displacement gate, capped by the k-NN radius. `removed` states
    /// of partially-seeded subjects always hit (the admitted (k+1)-th
    /// member could seed an unseeded sector).
    fn seed_hit(&self, center: uv_geom::Point, mbc: &Circle, removed: bool) -> bool {
        use uv_geom::EPS;
        let d = mbc.dist_min(center);
        if d > self.knn_dist + EPS {
            return false;
        }
        if removed && self.any_unseeded() {
            return true;
        }
        self.sector_gate(center, mbc, d)
    }

    /// `true` when an object *appearing* with MBC `mbc` (an insert) can
    /// alter a derivation done from `center` with this sensitivity. Sound
    /// with a small tolerance: flagging too much merely costs a
    /// re-derivation, flagging too little would desynchronise the index,
    /// so ties err on the affected side.
    pub fn affected_by_added(&self, center: uv_geom::Point, mbc: &Circle) -> bool {
        if !self.tight() {
            return self.affected_by_knn_bound(center, mbc);
        }
        self.seed_hit(center, mbc, false) || self.admitted(center, mbc)
    }

    /// `true` when an object *disappearing* with MBC `mbc` (a delete) can
    /// alter the derivation. Same tolerance contract as
    /// [`UpdateSensitivity::affected_by_added`].
    pub fn affected_by_removed(&self, center: uv_geom::Point, mbc: &Circle) -> bool {
        if !self.tight() {
            return self.affected_by_knn_bound(center, mbc);
        }
        self.seed_hit(center, mbc, true) || self.admitted(center, mbc)
    }

    /// Direction-agnostic test: affected as either an appearance or a
    /// disappearance.
    pub fn affected_by(&self, center: uv_geom::Point, mbc: &Circle) -> bool {
        self.affected_by_removed(center, mbc) || self.affected_by_added(center, mbc)
    }

    /// Joint verdict for a *move* `old → new` of another object. A move is
    /// strictly weaker than a delete + insert pair:
    ///
    /// * a move whose both states are inside the k-NN radius changes no
    ///   k-NN *membership* — nothing leaves, so no (k+1)-th member is
    ///   admitted and the unseeded-sector hazard of plain deletes does not
    ///   arise; only the per-sector seed gates matter;
    /// * a move whose both states pass the pruning admission while
    ///   displacing no seed keeps the cr *id set* exactly — the moved
    ///   object stays a cr-object — so the subject needs its overlap tests
    ///   re-run ([`ChangeImpact::RepartitionOnly`]) but not its
    ///   derivation.
    pub fn move_impact(&self, center: uv_geom::Point, old: &Circle, new: &Circle) -> ChangeImpact {
        use uv_geom::EPS;
        if !self.tight() {
            return if self.affected_by_knn_bound(center, old)
                || self.affected_by_knn_bound(center, new)
            {
                ChangeImpact::Rederive
            } else {
                ChangeImpact::Unaffected
            };
        }
        let d_old = old.dist_min(center);
        let d_new = new.dist_min(center);
        let old_in = d_old <= self.knn_dist + EPS;
        let new_in = d_new <= self.knn_dist + EPS;
        // Leaving the k-NN set admits the (k+1)-th member, which could
        // seed an unseeded sector.
        if old_in && !new_in && self.any_unseeded() {
            return ChangeImpact::Rederive;
        }
        if (old_in && self.sector_gate(center, old, d_old))
            || (new_in && self.sector_gate(center, new, d_new))
        {
            return ChangeImpact::Rederive;
        }
        match (self.admitted(center, old), self.admitted(center, new)) {
            (true, true) => ChangeImpact::RepartitionOnly,
            (false, false) => ChangeImpact::Unaffected,
            _ => ChangeImpact::Rederive,
        }
    }

    /// The PR-3 bound: [`UpdateSensitivity::affected_by`] without the
    /// seed-sector prefilter. Kept for reporting — the churn experiment
    /// shows how many re-derivations the prefilter skips.
    pub fn affected_by_knn_bound(&self, center: uv_geom::Point, mbc: &Circle) -> bool {
        use uv_geom::EPS;
        mbc.dist_min(center) <= self.knn_dist + EPS
            || mbc.center.dist(center) <= self.prune_radius + EPS
    }
}

/// The cr-objects of one subject object, with the possible region and the
/// pruning statistics that produced them.
#[derive(Debug, Clone)]
pub struct CrObjects {
    /// The subject object.
    pub object_id: ObjectId,
    /// Candidate reference objects `C_i` (sorted, deduplicated).
    pub cr_ids: Vec<ObjectId>,
    /// The initial possible region built from the seeds.
    pub region: PossibleRegion,
    /// Pruning statistics (seed count, survivors of each phase).
    pub stats: PruneStats,
    /// Affected-object bound for dynamic maintenance.
    pub sensitivity: UpdateSensitivity,
}

impl CrObjects {
    /// Number of cr-objects.
    pub fn len(&self) -> usize {
        self.cr_ids.len()
    }

    /// `true` when no other object can shape the cell (singleton datasets).
    pub fn is_empty(&self) -> bool {
        self.cr_ids.is_empty()
    }
}

/// Derives the cr-objects of `subject` (Algorithm 2).
///
/// `rtree` indexes the whole dataset (including `subject`, which is skipped),
/// and `all_objects` provides uncertainty-region geometry by id.
pub fn derive_cr_objects(
    subject: &UncertainObject,
    rtree: &RTree,
    all_objects: &[UncertainObject],
    domain: &Rect,
    config: &UvConfig,
) -> CrObjects {
    let total_others = all_objects.len().saturating_sub(1);
    let ci = subject.center();
    let max_edge_len = config.max_edge_len(domain.width().max(domain.height()));

    // ---- Step 1: initial possible region from seeds --------------------------
    let neighbours = rtree.knn(ci, config.seed_knn, Some(subject.id));
    let seeds = select_seeds(ci, &neighbours, config.num_seeds);

    // Degenerate case: every k-NN neighbour is co-located with `c_i`, so no
    // seed exists, the possible region is never clipped and I-pruning's
    // radius degrades to the whole domain. Co-located objects cannot clip the
    // region (their UV-edge against the subject is empty) but they are
    // legitimate reference objects, so when the k-NN set already covers every
    // other object we take them as cr-objects directly and skip the
    // (vacuous) pruning phases. When the dataset holds more objects than the
    // k-NN returned, farther objects could still shape the cell, so we fall
    // through to the normal path, whose full-domain region keeps every
    // survivor — sound, merely unpruned.
    if seeds.is_empty() && !neighbours.is_empty() && neighbours.len() >= total_others {
        let mut cr_ids: Vec<ObjectId> = neighbours.iter().map(|e| e.id).collect();
        cr_ids.sort_unstable();
        cr_ids.dedup();
        let stats = PruneStats {
            total_others,
            seeds: 0,
            after_i_pruning: cr_ids.len(),
            after_c_pruning: cr_ids.len(),
        };
        return CrObjects {
            object_id: subject.id,
            cr_ids,
            region: PossibleRegion::full(subject.mbc(), domain),
            stats,
            // The branch condition compares against the dataset cardinality,
            // so any change re-derives.
            sensitivity: UpdateSensitivity::always_affected(),
        };
    }

    let mut region = PossibleRegion::full(subject.mbc(), domain);
    let mut clip_scratch = ClipScratch::default();
    for seed in &seeds {
        region.clip_with(
            seed.mbc,
            config.curve_samples,
            max_edge_len,
            &mut clip_scratch,
        );
    }

    // ---- Step 2: I-pruning (Lemma 2) -----------------------------------------
    let d = region.max_dist();
    let i_radius = (2.0 * d - subject.radius()).max(0.0);
    let i_survivors: Vec<ObjectEntry> = rtree
        .range_circle_centers(ci, i_radius)
        .into_iter()
        .filter(|e| e.id != subject.id)
        .collect();

    // ---- Step 3: C-pruning (Lemma 3) -----------------------------------------
    let hull = region.convex_hull();
    let d_bounds: Vec<Circle> = hull.iter().map(|v| Circle::new(*v, v.dist(ci))).collect();
    let mut cr_ids: Vec<ObjectId> = i_survivors
        .iter()
        .filter(|e| d_bounds.iter().any(|bound| bound.contains(e.mbc.center)))
        .map(|e| e.id)
        .collect();

    // The seeds shaped the initial region, so they are candidate reference
    // objects by construction; keep them even if a later, smaller hull would
    // prune them.
    cr_ids.extend(seeds.iter().map(|s| s.id));
    cr_ids.sort_unstable();
    cr_ids.dedup();

    let stats = PruneStats {
        total_others,
        seeds: seeds.len(),
        after_i_pruning: i_survivors.len(),
        after_c_pruning: cr_ids.len(),
    };

    // When fewer than `k` other objects exist, any insert enters the k-NN
    // result; otherwise a change beyond the k-th neighbour distance (the
    // canonical knn result is sorted, so the last entry is farthest) cannot
    // alter the k-NN set.
    let knn_dist = if neighbours.len() < config.seed_knn {
        f64::INFINITY
    } else {
        neighbours.last().map_or(f64::INFINITY, |e| e.dist_min(ci))
    };

    // Seed-sector / C-pruning prefilter state: usable only when the
    // derivation is boundary-safe — a full-`k` neighbour set with every
    // seed strictly inside the k-th neighbour distance, so k-NN membership
    // churn beyond the seeds can never promote or demote a seed (see the
    // type docs). Unseeded sectors keep `INFINITY` (appearances there
    // always re-derive). The d-bounds are the exact circles C-pruning
    // filtered with above; everything stays valid for as long as the seeds
    // do.
    let mut seed_dists = vec![f64::INFINITY; config.num_seeds.max(1)];
    for seed in &seeds {
        if let Some(sector) = sector_of(ci, seed.mbc.center, seed_dists.len()) {
            seed_dists[sector] = seed.mbc.dist_min(ci);
        }
    }
    let max_seed = seeds
        .iter()
        .map(|s| s.mbc.dist_min(ci))
        .fold(f64::NEG_INFINITY, f64::max);
    let boundary_safe =
        knn_dist.is_finite() && max_seed + uv_geom::EPS < knn_dist && !d_bounds.is_empty();
    if !boundary_safe {
        seed_dists.clear();
    }

    CrObjects {
        object_id: subject.id,
        cr_ids,
        region,
        stats,
        sensitivity: UpdateSensitivity {
            knn_dist,
            prune_radius: i_radius,
            seed_dists,
            d_bounds: if boundary_safe { d_bounds } else { Vec::new() },
        },
    }
}

/// The sector (of `num_seeds` equal angular sectors around `ci`) that the
/// point `c` falls into; `None` when `c` coincides with `ci` (no direction).
///
/// Shared by seed selection and by the seed-sector prefilter of
/// [`UpdateSensitivity::affected_by`] — the two must bucket a centre into
/// the same sector or the prefilter would be unsound.
pub(crate) fn sector_of(ci: Point, c: Point, num_seeds: usize) -> Option<usize> {
    if num_seeds == 0 {
        return None;
    }
    let dir = c - ci;
    if dir.norm() <= f64::EPSILON {
        return None;
    }
    let mut angle = dir.y.atan2(dir.x);
    if angle < 0.0 {
        angle += std::f64::consts::TAU;
    }
    Some(((angle / std::f64::consts::TAU * num_seeds as f64) as usize).min(num_seeds - 1))
}

/// Selects at most `num_seeds` seeds from the k-NN result by dividing the
/// plane around `ci` into equal sectors and keeping the closest neighbour of
/// every non-empty sector (Section IV-B).
fn select_seeds(ci: Point, neighbours: &[ObjectEntry], num_seeds: usize) -> Vec<ObjectEntry> {
    let num_seeds = num_seeds.max(1);
    let mut best: Vec<Option<(f64, ObjectEntry)>> = vec![None; num_seeds];
    for e in neighbours {
        let Some(sector) = sector_of(ci, e.mbc.center, num_seeds) else {
            continue;
        };
        let dist = e.mbc.dist_min(ci);
        match &best[sector] {
            Some((d, _)) if *d <= dist => {}
            _ => best[sector] = Some((dist, *e)),
        }
    }
    best.into_iter().flatten().map(|(_, e)| e).collect()
}

/// Soundness check used by tests and debug assertions: every r-object of the
/// exact cell must appear among the cr-objects.
pub fn cr_objects_cover_r_objects(cr: &CrObjects, r_objects: &[ObjectId]) -> bool {
    r_objects.iter().all(|r| cr.cr_ids.binary_search(r).is_ok())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::build_exact_cell;
    use std::sync::Arc;
    use uv_data::{Dataset, DatasetKind, GeneratorConfig, ObjectStore};
    use uv_store::PageStore;

    fn setup(n: usize, kind: DatasetKind) -> (Dataset, RTree) {
        let config = GeneratorConfig {
            kind,
            ..GeneratorConfig::paper_uniform(n)
        };
        let ds = Dataset::generate(config);
        let pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&pages), &ds.objects);
        let tree = RTree::build(&ds.objects, &objects, pages);
        (ds, tree)
    }

    fn test_config() -> UvConfig {
        UvConfig {
            parallel: false,
            ..UvConfig::default()
        }
    }

    #[test]
    fn seeds_are_spread_across_sectors() {
        let (ds, tree) = setup(500, DatasetKind::Uniform);
        let subject = &ds.objects[123];
        let neighbours = tree.knn(subject.center(), 300, Some(subject.id));
        let seeds = select_seeds(subject.center(), &neighbours, 8);
        assert!(!seeds.is_empty());
        assert!(seeds.len() <= 8);
        // Seeds must come from distinct sectors: their angles must differ.
        let mut sectors: Vec<usize> = seeds
            .iter()
            .map(|s| {
                let dir = s.mbc.center - subject.center();
                let mut a = dir.y.atan2(dir.x);
                if a < 0.0 {
                    a += std::f64::consts::TAU;
                }
                (a / std::f64::consts::TAU * 8.0) as usize
            })
            .collect();
        sectors.sort_unstable();
        sectors.dedup();
        assert_eq!(sectors.len(), seeds.len());
    }

    #[test]
    fn pruning_is_sound_cr_objects_cover_r_objects() {
        let (ds, tree) = setup(300, DatasetKind::Uniform);
        let config = test_config();
        for subject in ds.objects.iter().step_by(29) {
            let cr = derive_cr_objects(subject, &tree, &ds.objects, &ds.domain, &config);
            // Exact cell against the full dataset.
            let cell = build_exact_cell(
                subject,
                ds.objects.iter().filter(|o| o.id != subject.id),
                &ds.domain,
                &config,
            );
            assert!(
                cr_objects_cover_r_objects(&cr, &cell.r_objects),
                "object {}: r-objects {:?} not covered by cr-objects {:?}",
                subject.id,
                cell.r_objects,
                cr.cr_ids
            );
        }
    }

    #[test]
    fn pruning_discards_most_objects() {
        let (ds, tree) = setup(800, DatasetKind::Uniform);
        let config = test_config();
        let mut total_ratio = 0.0;
        let samples = 20;
        for subject in ds.objects.iter().step_by(800 / samples) {
            let cr = derive_cr_objects(subject, &tree, &ds.objects, &ds.domain, &config);
            total_ratio += cr.stats.c_ratio();
            assert!(cr.stats.after_i_pruning <= cr.stats.total_others);
            assert!(cr.stats.after_c_pruning <= cr.stats.after_i_pruning + cr.stats.seeds);
        }
        let avg = total_ratio / samples as f64;
        assert!(
            avg > 0.8,
            "C-pruning should discard the vast majority of objects, got ratio {avg}"
        );
    }

    #[test]
    fn i_pruning_is_weaker_than_c_pruning() {
        let (ds, tree) = setup(600, DatasetKind::Uniform);
        let config = test_config();
        let cr = derive_cr_objects(&ds.objects[10], &tree, &ds.objects, &ds.domain, &config);
        assert!(cr.stats.i_ratio() <= cr.stats.c_ratio() + 1e-12);
        assert!(cr.stats.i_ratio() > 0.0);
    }

    #[test]
    fn skewed_data_keeps_pruning_sound() {
        let (ds, tree) = setup(300, DatasetKind::GaussianSkew { sigma: 800.0 });
        let config = test_config();
        for subject in ds.objects.iter().step_by(43) {
            let cr = derive_cr_objects(subject, &tree, &ds.objects, &ds.domain, &config);
            let cell = build_exact_cell(
                subject,
                ds.objects.iter().filter(|o| o.id != subject.id),
                &ds.domain,
                &config,
            );
            assert!(cr_objects_cover_r_objects(&cr, &cell.r_objects));
        }
    }

    #[test]
    fn fully_co_located_neighbours_still_yield_cr_objects() {
        // All objects share one centre: seed selection finds no direction to
        // sector, so without the degenerate-case guard the cr set would be
        // derived from an unclipped whole-domain region. The guard must fall
        // back to taking the co-located objects as cr-objects directly.
        let domain = Rect::square(1_000.0);
        let objects: Vec<UncertainObject> = (0..6)
            .map(|i| UncertainObject::with_uniform(i, Point::new(500.0, 500.0), 10.0))
            .collect();
        let pages = Arc::new(PageStore::new());
        let store = ObjectStore::build(Arc::clone(&pages), &objects);
        let tree = RTree::build(&objects, &store, pages);
        let config = test_config();

        for subject in &objects {
            let cr = derive_cr_objects(subject, &tree, &objects, &domain, &config);
            assert_eq!(cr.stats.seeds, 0, "co-located neighbours yield no seeds");
            let mut expected: Vec<ObjectId> = objects
                .iter()
                .map(|o| o.id)
                .filter(|id| *id != subject.id)
                .collect();
            expected.sort_unstable();
            assert_eq!(
                cr.cr_ids, expected,
                "co-located objects must become cr-objects directly"
            );
            assert_eq!(cr.stats.after_c_pruning, expected.len());
            // The possible region legitimately stays the whole domain: every
            // other object is equidistant from the subject everywhere.
            assert!(cr.region.contains(subject.center()));
        }
    }

    #[test]
    fn co_located_cluster_with_distant_objects_keeps_pruning_sound() {
        // A co-located cluster plus distant objects: seeds exist (from the
        // distant objects), so the normal path runs; the distant shapers must
        // stay in the cr set.
        let domain = Rect::square(1_000.0);
        let mut objects: Vec<UncertainObject> = (0..4)
            .map(|i| UncertainObject::with_uniform(i, Point::new(500.0, 500.0), 10.0))
            .collect();
        objects.push(UncertainObject::with_uniform(
            4,
            Point::new(650.0, 500.0),
            10.0,
        ));
        objects.push(UncertainObject::with_uniform(
            5,
            Point::new(500.0, 320.0),
            10.0,
        ));
        let pages = Arc::new(PageStore::new());
        let store = ObjectStore::build(Arc::clone(&pages), &objects);
        let tree = RTree::build(&objects, &store, pages);
        let config = test_config();

        let subject = &objects[0];
        let cr = derive_cr_objects(subject, &tree, &objects, &domain, &config);
        assert!(cr.stats.seeds > 0);
        // The co-located companions are kept (they are r-objects of the
        // subject's cell) and the cr set covers the exact r-objects.
        for id in [1u32, 2, 3] {
            assert!(cr.cr_ids.contains(&id), "co-located object {id} missing");
        }
        let cell = build_exact_cell(
            subject,
            objects.iter().filter(|o| o.id != subject.id),
            &domain,
            &config,
        );
        assert!(cr_objects_cover_r_objects(&cr, &cell.r_objects));
    }

    #[test]
    fn seed_sector_prefilter_tightens_the_knn_bound() {
        let (ds, tree) = setup(600, DatasetKind::Uniform);
        // A k small enough that the k-NN radius is local, mirroring the
        // dynamic-serving tuning.
        let config = UvConfig {
            parallel: false,
            seed_knn: 32,
            ..UvConfig::default()
        };
        let mut prefiltered = 0usize;
        let mut tightened = 0usize;
        for subject in ds.objects.iter().step_by(17) {
            let cr = derive_cr_objects(subject, &tree, &ds.objects, &ds.domain, &config);
            let s = &cr.sensitivity;
            let Some(seed_dists) = s.seed_dists() else {
                continue;
            };
            prefiltered += 1;
            assert_eq!(seed_dists.len(), config.num_seeds);
            let max_seed = seed_dists
                .iter()
                .copied()
                .filter(|d| d.is_finite())
                .fold(f64::MIN, f64::max);
            assert!(
                max_seed < s.knn_dist,
                "boundary safety requires every seed strictly inside the k-th distance"
            );
            // Anything the tight bound flags, the loose bound flags too.
            let ci = subject.center();
            for other in ds.objects.iter().step_by(23) {
                let mbc = other.mbc();
                if s.affected_by(ci, &mbc) {
                    assert!(
                        s.affected_by_knn_bound(ci, &mbc),
                        "tight bound flagged an object the loose bound missed"
                    );
                } else if s.affected_by_knn_bound(ci, &mbc) {
                    tightened += 1;
                }
            }
            // A change closer than its sector's seed is always affected.
            for (sector, dist) in seed_dists.iter().enumerate() {
                if !dist.is_finite() {
                    continue; // unseeded sector
                }
                let angle = (sector as f64 + 0.5) / seed_dists.len() as f64 * std::f64::consts::TAU;
                let c = Point::new(
                    ci.x + angle.cos() * dist * 0.5,
                    ci.y + angle.sin() * dist * 0.5,
                );
                assert!(s.affected_by(ci, &Circle::new(c, 0.0)));
            }
            // A co-located change has no sector and stays affected.
            assert!(s.affected_by(ci, &Circle::new(ci, 0.0)));
        }
        assert!(
            prefiltered >= 20,
            "uniform data at k=32 should be boundary-safe almost everywhere ({prefiltered})"
        );
        assert!(
            tightened > 0,
            "the prefilter should skip some objects inside the k-NN radius"
        );
    }

    #[test]
    fn tiny_datasets_degenerate_gracefully() {
        let (ds, tree) = setup(2, DatasetKind::Uniform);
        let config = test_config();
        let cr = derive_cr_objects(&ds.objects[0], &tree, &ds.objects, &ds.domain, &config);
        assert_eq!(cr.stats.total_others, 1);
        assert_eq!(cr.cr_ids, vec![1]);
        assert!(!cr.is_empty());
        assert_eq!(cr.len(), 1);
    }

    #[test]
    fn cr_region_is_no_larger_than_domain_and_contains_subject() {
        let (ds, tree) = setup(400, DatasetKind::Uniform);
        let config = test_config();
        let subject = &ds.objects[200];
        let cr = derive_cr_objects(subject, &tree, &ds.objects, &ds.domain, &config);
        assert!(cr.region.area() <= ds.domain.area() + 1e-6);
        assert!(cr.region.contains(subject.center()));
        // With 8 seeds around, the initial region should be far smaller than
        // the domain for a uniform dataset of this size.
        assert!(cr.region.area() < ds.domain.area() * 0.25);
    }
}
