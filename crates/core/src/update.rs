//! Dynamic maintenance: incremental insert / delete / move with localized
//! UV-partition repair.
//!
//! The paper builds the UV-index once over a frozen dataset; a live
//! deployment (fleet tracking, moving users — see `ROADMAP.md`) sees objects
//! join, leave and change position continuously, and rebuilding the whole
//! index per change is a non-starter. This module maintains a
//! [`UvSystem`] under updates with a correctness contract that is *absolute*:
//! after any update sequence, the index state — grid structure, leaf member
//! lists, and therefore every PNN answer — is **bit-identical** to a cold
//! full rebuild over the same object set.
//!
//! # How it stays exact *and* local
//!
//! 1. **Canonical structure.** The grid built by [`crate::builder`] is a pure
//!    function of the per-object reference sets (id-ordered member lists,
//!    set-determined splits), not of insertion order. Equal object state
//!    implies equal index state, so local repair towards the same state is
//!    possible at all.
//! 2. **Affected objects by sensitivity bound.** A change of object `O_j`
//!    can alter the derivation of `O_i` only if `O_j` enters or leaves one of
//!    the two index queries the derivation makes: the seed-selection k-NN or
//!    the I-pruning range query (Lemma 2). Each object therefore stores an
//!    [`crate::crobjects::UpdateSensitivity`] — the k-th neighbour distance
//!    and the I-pruning radius `2d - r_i` — and only objects whose bound
//!    admits the changed MBC are re-derived.
//! 3. **Dirty objects to dirty leaves.** Only objects whose MBC or reference
//!    set actually changed can change any Algorithm 5 overlap answer. The
//!    repair descends the grid with exact per-node deltas, re-derives member
//!    lists of touched leaves through the same machinery the builder uses,
//!    and re-evaluates the canonical split/merge condition where member
//!    counts crossed it. Untouched leaves are not read, not rewritten, not
//!    even visited.
//! 4. **Substrate rebuild.** The packed (STR) R-tree is bulk-reloaded from
//!    the updated object set every batch — deterministic, cheap
//!    (`O(n log n)` comparisons, no UV geometry), and it guarantees that
//!    re-derived objects see exactly the tree a cold build would query. The
//!    expensive, localized part — cr-derivation and leaf refinement — is
//!    what the affected bounds confine.
//!
//! # No full rebuilds
//!
//! Two situations used to abandon incremental repair for a cold rebuild;
//! both are now handled in place, so [`UpdateStats::full_rebuild`] is
//! structurally unreachable under any legal op sequence (the field is kept,
//! always `false`, for API stability — the adversarial suite in
//! `tests/proptest_adversarial.rs` churns both paths and asserts exactly
//! that). Arseneva et al. (*Sublinear Explicit Incremental Planar Voronoi
//! Diagrams*) show Voronoi topology admits incremental maintenance; the two
//! mechanisms here are our budget- and domain-aware analogues:
//!
//! * **Domain growth** — an inserted or moved object extends beyond the
//!   indexed domain `D`. The domain grows *exponentially*: it is doubled
//!   away from every violated side until the new geometry fits, so a
//!   staircase of `K` just-outside inserts triggers only `O(log)` growth
//!   events. Because the derivation is domain-seeded (the possible region
//!   starts from the domain rectangle and the hull discretisation scales
//!   with the domain side), *every* object is re-derived under the grown
//!   domain and the grid is rebuilt canonically — but **into the live
//!   system**: the object store (tombstones included) and the R-tree pages
//!   carry over, the epoch advances exactly once, and
//!   [`UpdateStats::domain_grown`] reports the event. The result is
//!   bit-identical to a cold build at the grown domain by construction.
//! * **Memory budget `M` binds** — when the non-leaf budget denies a split,
//!   budget allocation becomes order-dependent, so no *local* decision can
//!   reproduce it. Repair therefore runs with an **unbounded** budget first
//!   (member sets stay exact everywhere), and whenever the budget is or was
//!   bound, `crate::builder::reconcile_budget` replays the cold build's
//!   preorder allocation over the repaired tree — collapsing subtrees a
//!   bounded cold build could not afford and expanding leaves a past denial
//!   left behind — which reproduces the budget-bound cold grid exactly.
//!
//! # Epochs
//!
//! Every applied batch bumps the index [`UvIndex::epoch`]. The query
//! engine's per-leaf cache tags itself with the epoch it was filled at and
//! is bypassed on mismatch, so a reader can never be served leaf pages from
//! before an update; Rust's aliasing rules additionally make it impossible
//! to hold a live [`crate::QueryEngine`] across a mutation.

use crate::builder::{
    build_uv_index_full, derive_subset, grow_node, make_leaf, reconcile_budget, split_members,
    GridCtx, GrowStats, Method, NodeBudget,
};
use crate::crobjects::{ChangeImpact, UpdateSensitivity};
use crate::index::{GridNode, UvIndex};
use crate::system::UvSystem;
use crate::UvError;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use uv_data::{ObjectEntry, ObjectId, UncertainObject};
use uv_geom::{Circle, Point, Rect};
use uv_rtree::RTree;
use uv_store::PageStore;

/// Per-object state the system retains between updates: the reference ids
/// the object was indexed under and the sensitivity bound that decides when
/// a change elsewhere forces its re-derivation.
#[derive(Debug, Clone)]
pub struct ObjectState {
    pub(crate) reference_ids: Vec<ObjectId>,
    pub(crate) sensitivity: UpdateSensitivity,
}

impl ObjectState {
    /// The reference objects (cr- or r-objects, per the construction method)
    /// the object is indexed under.
    pub fn reference_ids(&self) -> &[ObjectId] {
        &self.reference_ids
    }

    /// The affected-object bound of this object's derivation.
    pub fn sensitivity(&self) -> &UpdateSensitivity {
        &self.sensitivity
    }
}

/// Id-indexed [`ObjectState`] of every live object.
pub(crate) type RefTable = HashMap<ObjectId, ObjectState>;

/// One update operation.
#[derive(Debug, Clone)]
pub enum UpdateOp {
    /// Add a new object (its id must be unused).
    Insert(UncertainObject),
    /// Remove an existing object.
    Delete(ObjectId),
    /// Move an existing object's uncertainty region to a new centre
    /// (radius and pdf are kept).
    Move {
        /// The object to move.
        id: ObjectId,
        /// The new centre of its uncertainty region.
        center: Point,
    },
}

/// A batch of update operations, applied atomically as one epoch.
///
/// Ops are applied in order against a shadow of the current object set, so a
/// batch may delete an id and re-insert it; only the *net* difference to the
/// object set drives index repair.
#[derive(Debug, Clone, Default)]
pub struct UpdateBatch {
    pub(crate) ops: Vec<UpdateOp>,
}

impl UpdateBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an insert.
    pub fn insert(mut self, object: UncertainObject) -> Self {
        self.ops.push(UpdateOp::Insert(object));
        self
    }

    /// Queues a delete.
    pub fn delete(mut self, id: ObjectId) -> Self {
        self.ops.push(UpdateOp::Delete(id));
        self
    }

    /// Queues a move.
    pub fn move_to(mut self, id: ObjectId, center: Point) -> Self {
        self.ops.push(UpdateOp::Move { id, center });
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// `true` when no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Statistics of one applied update batch — in particular the *locality*
/// counters the churn experiment reports: how many leaves the repair
/// actually rewrote versus the leaf count a full rebuild would have written.
#[derive(Debug, Clone, Default)]
pub struct UpdateStats {
    /// Net object insertions.
    pub inserted: usize,
    /// Net object deletions.
    pub deleted: usize,
    /// Net object geometry changes (moves).
    pub moved: usize,
    /// Objects whose reference derivation was repeated (affected set).
    pub objects_rederived: usize,
    /// Objects the plain k-NN-radius bound alone (the PR-3 rule, without
    /// the seed-sector prefilter) would have re-derived. The difference to
    /// [`UpdateStats::objects_rederived`] is the work the prefilter skipped.
    pub objects_in_knn_radius: usize,
    /// Objects whose derivation or geometry actually changed, i.e. that
    /// entered the grid repair.
    pub objects_repartitioned: usize,
    /// Leaf page lists written by the repair (rebuilt, split-produced or
    /// merge-produced). A full rebuild writes every leaf.
    pub leaves_refined: usize,
    /// Leaves that split into subtrees.
    pub leaves_split: usize,
    /// Internal nodes collapsed back into leaves.
    pub leaves_merged: usize,
    /// Leaf count of the index after the update.
    pub total_leaves: usize,
    /// Always `false`: every trigger that used to force a cold rebuild
    /// (domain growth, a bound memory budget) is now handled in place. The
    /// field is retained for API stability and as the adversarial suite's
    /// assertion target.
    pub full_rebuild: bool,
    /// `true` when the batch extended the indexed domain in place: an
    /// inserted or moved object landed outside `D`, the domain was grown
    /// exponentially to cover it and every object was re-derived under the
    /// grown domain (the derivation is domain-seeded), with the object
    /// store, R-tree pages and epoch sequence carrying over.
    pub domain_grown: bool,
    /// Index epoch after the update.
    pub epoch: u64,
    /// Ids whose derivation was repeated this batch (the affected set of
    /// [`UpdateStats::objects_rederived`]). The sharded serving layer diffs
    /// halo membership for exactly these objects (plus the batch's own ids)
    /// instead of rescanning the whole object set — membership depends only
    /// on an object's geometry and its sensitivity, and the sensitivity can
    /// only change through a re-derivation.
    pub(crate) rederived_ids: Vec<ObjectId>,
    /// Regions of every leaf page list the repair rewrote (split products,
    /// merge survivors and plain content rewrites alike — all leaf writes
    /// flow through the builder's `make_leaf`). A PNN answer can only have
    /// changed at query points inside one of these rectangles, which is what
    /// lets [`crate::subscribe::SubscriptionEngine::refresh_after`] re-derive
    /// only the subscriptions whose safe region touches a repaired leaf.
    /// Domain growth re-derives everything, so it reports the grown domain.
    pub(crate) repaired_rects: Vec<Rect>,
}

impl UpdateStats {
    /// Fraction of the index's leaves the repair rewrote (1.0 when the
    /// domain grew in place, since every leaf is re-derived). The churn
    /// experiment's locality criterion is that this stays at or below 0.1
    /// for a 1% churn step.
    pub fn refine_fraction(&self) -> f64 {
        if self.full_rebuild {
            return 1.0;
        }
        self.leaves_refined as f64 / self.total_leaves.max(1) as f64
    }

    /// Regions of the leaf page lists this batch rewrote — the update's
    /// invalidation footprint. Query answers are unchanged at every point
    /// outside these rectangles; after domain growth the footprint is the
    /// whole (grown) domain.
    pub fn repaired_regions(&self) -> &[Rect] {
        &self.repaired_rects
    }
}

/// Fluent update handle borrowing a [`UvSystem`]: queue inserts, deletes and
/// moves, then [`Updater::commit`] them as one atomic batch.
///
/// ```
/// use uv_core::UvSystem;
/// use uv_data::{Dataset, GeneratorConfig, UncertainObject};
/// use uv_geom::Point;
///
/// let ds = Dataset::generate(GeneratorConfig::paper_uniform(120));
/// let mut system = UvSystem::with_defaults(ds.objects.clone(), ds.domain);
/// let stats = system
///     .updater()
///     .insert(UncertainObject::with_uniform(500, Point::new(1_000.0, 2_000.0), 20.0))
///     .delete(3)
///     .move_to(7, Point::new(4_321.0, 1_234.0))
///     .commit()
///     .unwrap();
/// assert_eq!((stats.inserted, stats.deleted, stats.moved), (1, 1, 1));
/// assert_eq!(system.index().epoch(), 1);
/// ```
#[derive(Debug)]
pub struct Updater<'a> {
    system: &'a mut UvSystem,
    batch: UpdateBatch,
}

impl<'a> Updater<'a> {
    pub(crate) fn new(system: &'a mut UvSystem) -> Self {
        Self {
            system,
            batch: UpdateBatch::new(),
        }
    }

    /// Queues an insert.
    pub fn insert(mut self, object: UncertainObject) -> Self {
        self.batch = self.batch.insert(object);
        self
    }

    /// Queues a delete.
    pub fn delete(mut self, id: ObjectId) -> Self {
        self.batch = self.batch.delete(id);
        self
    }

    /// Queues a move.
    pub fn move_to(mut self, id: ObjectId, center: Point) -> Self {
        self.batch = self.batch.move_to(id, center);
        self
    }

    /// Number of queued operations.
    pub fn pending(&self) -> usize {
        self.batch.len()
    }

    /// Applies the queued operations as one atomic batch.
    pub fn commit(self) -> Result<UpdateStats, UvError> {
        self.system.apply(self.batch)
    }
}

impl UvSystem {
    /// Starts a fluent update batch against this system.
    pub fn updater(&mut self) -> Updater<'_> {
        Updater::new(self)
    }

    /// Inserts one object (a single-op [`UpdateBatch`]).
    pub fn insert_object(&mut self, object: UncertainObject) -> Result<UpdateStats, UvError> {
        self.apply(UpdateBatch::new().insert(object))
    }

    /// Deletes one object (a single-op [`UpdateBatch`]).
    pub fn delete_object(&mut self, id: ObjectId) -> Result<UpdateStats, UvError> {
        self.apply(UpdateBatch::new().delete(id))
    }

    /// Moves one object (a single-op [`UpdateBatch`]).
    pub fn move_object(&mut self, id: ObjectId, center: Point) -> Result<UpdateStats, UvError> {
        self.apply(UpdateBatch::new().move_to(id, center))
    }

    /// Applies an update batch atomically: validates every op against a
    /// shadow of the object set (nothing is mutated on error), computes the
    /// net object-set difference, and repairs the UV-partition locally.
    /// Domain growth is handled in place (exponential extension plus a
    /// canonical re-derivation that keeps the stores and epoch sequence) and
    /// a bound non-leaf budget by post-repair reconciliation — an update
    /// never falls back to a full rebuild. Bumps the index epoch exactly
    /// once when the net difference is non-empty.
    pub fn apply(&mut self, batch: UpdateBatch) -> Result<UpdateStats, UvError> {
        let mut stats = UpdateStats {
            epoch: self.index.epoch(),
            total_leaves: self.index.num_leaf_nodes(),
            ..UpdateStats::default()
        };

        // ---- 1. Validate by simulation -----------------------------------
        // `overlay` shadows only what the batch touches (`Some` = new state,
        // `None` = deleted); the untouched majority of the object set is
        // never cloned. Nothing in `self` is mutated until the whole batch
        // validates.
        let before: HashMap<ObjectId, &UncertainObject> =
            self.objects.iter().map(|o| (o.id, o)).collect();
        let mut overlay: HashMap<ObjectId, Option<UncertainObject>> = HashMap::new();
        let is_live = |overlay: &HashMap<ObjectId, Option<UncertainObject>>,
                       before: &HashMap<ObjectId, &UncertainObject>,
                       id: &ObjectId| {
            overlay
                .get(id)
                .map_or(before.contains_key(id), Option::is_some)
        };
        for op in &batch.ops {
            match op {
                UpdateOp::Insert(o) => {
                    validate_object(o)?;
                    if is_live(&overlay, &before, &o.id) {
                        return Err(UvError::DuplicateObject(o.id));
                    }
                    overlay.insert(o.id, Some(o.clone()));
                }
                UpdateOp::Delete(id) => {
                    if !is_live(&overlay, &before, id) {
                        return Err(UvError::UnknownObject(*id));
                    }
                    overlay.insert(*id, None);
                }
                UpdateOp::Move { id, center } => {
                    let current = match overlay.get(id) {
                        Some(state) => state.as_ref(),
                        None => before.get(id).copied(),
                    };
                    let Some(current) = current else {
                        return Err(UvError::UnknownObject(*id));
                    };
                    if !center.x.is_finite() || !center.y.is_finite() {
                        return Err(UvError::InvalidObject(*id));
                    }
                    let mut moved = current.clone();
                    moved.region.center = *center;
                    overlay.insert(*id, Some(moved));
                }
            }
        }

        // ---- 2. Net difference -------------------------------------------
        // Also captures the old/new geometry of everything that changes or
        // disappears, split by direction: disappearing states (deletes,
        // move origins) and appearing states (inserts, move destinations)
        // carry different seed-displacement hazards, which the sensitivity
        // prefilter exploits.
        let mut deleted: Vec<ObjectId> = Vec::new();
        let mut inserted: Vec<ObjectId> = Vec::new();
        let mut changed: Vec<ObjectId> = Vec::new();
        let mut removed_mbcs: Vec<Circle> = Vec::new();
        let mut added_mbcs: Vec<Circle> = Vec::new();
        let mut moved_mbcs: Vec<(Circle, Circle)> = Vec::new();
        for (id, state) in &overlay {
            match (before.get(id), state) {
                (Some(b), Some(o)) if *b != o => {
                    changed.push(*id);
                    moved_mbcs.push((b.mbc(), o.mbc()));
                }
                (Some(_), Some(_)) => {} // touched but net-unchanged
                (Some(b), None) => {
                    deleted.push(*id);
                    removed_mbcs.push(b.mbc());
                }
                (None, Some(o)) => {
                    inserted.push(*id);
                    added_mbcs.push(o.mbc());
                }
                (None, None) => {} // inserted then deleted within the batch
            }
        }
        drop(before);
        deleted.sort_unstable();
        inserted.sort_unstable();
        changed.sort_unstable();
        stats.deleted = deleted.len();
        stats.inserted = inserted.len();
        stats.moved = changed.len();
        if deleted.is_empty() && inserted.is_empty() && changed.is_empty() {
            return Ok(stats);
        }
        let updated = |id: &ObjectId| overlay[id].as_ref().expect("net-changed ids carry a state");

        // ---- 3. Apply the net difference to the object vector ------------
        self.objects
            .retain(|o| !matches!(overlay.get(&o.id), Some(None)));
        for o in self.objects.iter_mut() {
            if changed.binary_search(&o.id).is_ok() {
                *o = updated(&o.id).clone();
            }
        }
        for id in &inserted {
            self.objects.push(updated(id).clone());
        }

        // ---- 4. Secondary structures -------------------------------------
        for id in &deleted {
            self.object_store.remove(*id);
        }
        for id in &changed {
            self.object_store.update(updated(id));
        }
        for id in &inserted {
            self.object_store.insert(updated(id));
        }
        let rtree_pages = Arc::clone(self.rtree.store());
        self.rtree = RTree::build(&self.objects, &self.object_store, rtree_pages);

        // ---- 5. In-place domain growth -----------------------------------
        // The derivation is domain-seeded (possible regions start from the
        // domain rectangle, the hull discretisation scales with its side),
        // so a domain change invalidates every derivation: growth re-derives
        // everything and rebuilds the grid canonically — into the live
        // system, over the stores updated above.
        let needed = inserted
            .iter()
            .chain(&changed)
            .map(|id| updated(id).mbr())
            .filter(|mbr| !self.domain.contains_rect(mbr))
            .fold(None::<Rect>, |acc, mbr| {
                Some(acc.map_or(mbr, |a| a.union(&mbr)))
            });
        if let Some(needed) = needed {
            let domain = grow_domain(self.domain, &needed);
            return self.finish_with_domain_growth(stats, domain);
        }

        // ---- 6. Affected objects -----------------------------------------
        let changed_set: HashSet<ObjectId> = changed.iter().copied().collect();
        let inserted_set: HashSet<ObjectId> = inserted.iter().copied().collect();
        let mut affected: HashSet<ObjectId> = changed_set.union(&inserted_set).copied().collect();
        stats.objects_in_knn_radius = affected.len();
        // Subjects whose reference id list is provably unchanged but whose
        // referenced geometry moved: grid repair without re-derivation.
        // Only the IC method may take this shortcut (ICR refines through
        // the references' geometry, so its derivation must repeat).
        let mut repartition_only: Vec<ObjectId> = Vec::new();
        for o in &self.objects {
            if affected.contains(&o.id) {
                continue;
            }
            let sensitivity = &self.ref_table[&o.id].sensitivity;
            let c = o.center();
            let mut impact = ChangeImpact::Unaffected;
            for mbc in &removed_mbcs {
                if sensitivity.affected_by_removed(c, mbc) {
                    impact = ChangeImpact::Rederive;
                    break;
                }
            }
            for mbc in &added_mbcs {
                if impact < ChangeImpact::Rederive && sensitivity.affected_by_added(c, mbc) {
                    impact = ChangeImpact::Rederive;
                }
            }
            for (old, new) in &moved_mbcs {
                if impact < ChangeImpact::Rederive {
                    let mut verdict = sensitivity.move_impact(c, old, new);
                    if verdict == ChangeImpact::RepartitionOnly && self.method != Method::IC {
                        verdict = ChangeImpact::Rederive;
                    }
                    impact = impact.max(verdict);
                }
            }
            match impact {
                ChangeImpact::Rederive => {
                    affected.insert(o.id);
                    stats.objects_in_knn_radius += 1;
                }
                ChangeImpact::RepartitionOnly => {
                    repartition_only.push(o.id);
                    stats.objects_in_knn_radius += 1;
                }
                ChangeImpact::Unaffected => {
                    // Inside the k-NN radius but skipped by the prefilter —
                    // counted so the churn experiment can report the saving
                    // against the PR-3 bound.
                    if removed_mbcs
                        .iter()
                        .chain(&added_mbcs)
                        .chain(moved_mbcs.iter().flat_map(|(a, b)| [a, b]))
                        .any(|mbc| sensitivity.affected_by_knn_bound(c, mbc))
                    {
                        stats.objects_in_knn_radius += 1;
                    }
                }
            }
        }

        // ---- 7. Re-derive the affected objects ---------------------------
        let by_id: HashMap<ObjectId, &UncertainObject> =
            self.objects.iter().map(|o| (o.id, o)).collect();
        let subjects: Vec<&UncertainObject> = self
            .objects
            .iter()
            .filter(|o| affected.contains(&o.id))
            .collect();
        let derived = derive_subset(
            &subjects,
            &self.objects,
            &by_id,
            &self.rtree,
            &self.domain,
            &self.config,
            self.method,
        );
        stats.objects_rederived = derived.len();

        // ---- 8. Diff derivations into the dirty set ----------------------
        // An object needs grid repair when its overlap-test inputs changed:
        // its own MBC, its reference id list, or the MBC of an object it
        // references.
        let mut dirty: Vec<ObjectId> = Vec::new();
        for p in derived {
            stats.rederived_ids.push(p.id);
            let refs_changed = self
                .ref_table
                .get(&p.id)
                .is_none_or(|w| w.reference_ids != p.reference_ids);
            let is_dirty = refs_changed
                || changed_set.contains(&p.id)
                || p.reference_ids.iter().any(|r| changed_set.contains(r));
            self.ref_table.insert(
                p.id,
                ObjectState {
                    reference_ids: p.reference_ids,
                    sensitivity: p.sensitivity,
                },
            );
            if is_dirty && !inserted_set.contains(&p.id) {
                dirty.push(p.id);
            }
        }
        for id in &deleted {
            self.ref_table.remove(id);
        }
        // Repartition-only subjects skipped the derivation (their reference
        // id lists are provably unchanged) but reference moved geometry, so
        // their overlap tests must be re-run.
        dirty.extend_from_slice(&repartition_only);
        dirty.sort_unstable();
        stats.objects_repartitioned = dirty.len() + inserted.len() + deleted.len();

        // ---- 9. Localized grid repair ------------------------------------
        let mbcs: HashMap<ObjectId, Circle> =
            self.objects.iter().map(|o| (o.id, o.mbc())).collect();
        let entries: HashMap<ObjectId, ObjectEntry> = self
            .objects
            .iter()
            .map(|o| (o.id, ObjectEntry::new(o, self.object_store.ptr_of(o.id))))
            .collect();
        let ctx = GridCtx {
            mbcs: &mbcs,
            entries: &entries,
            states: &self.ref_table,
        };
        // Entries whose on-page bytes changed (MBC or record pointer): their
        // leaves must rewrite pages even when membership is unchanged.
        let entry_dirty: HashSet<ObjectId> = changed_set.clone();

        // Root-level delta classification.
        let domain = self.domain;
        let root_members: HashSet<ObjectId> = match &self.index.nodes[0] {
            GridNode::Leaf { object_ids, .. } | GridNode::Internal { object_ids, .. } => {
                object_ids.iter().copied().collect()
            }
            GridNode::Free => unreachable!("the root is never free"),
        };
        let mut added_root: Vec<ObjectId> = Vec::new();
        let mut removed_root: Vec<ObjectId> = Vec::new();
        let mut changed_root: Vec<ObjectId> = Vec::new();
        for id in &inserted {
            if ctx.overlaps(*id, &domain) {
                added_root.push(*id);
            }
        }
        for id in &deleted {
            if root_members.contains(id) {
                removed_root.push(*id);
            }
        }
        for id in &dirty {
            match (root_members.contains(id), ctx.overlaps(*id, &domain)) {
                (true, true) => changed_root.push(*id),
                (true, false) => removed_root.push(*id),
                (false, true) => added_root.push(*id),
                (false, false) => {}
            }
        }

        let prev_budget_bound = self.index.budget_bound;
        let mut repairer = Repairer {
            ctx,
            entry_dirty: &entry_dirty,
            grow: GrowStats::default(),
            merges: 0,
        };
        repairer.repair(
            &mut self.index,
            0,
            &added_root,
            &removed_root,
            &changed_root,
        );
        let Repairer {
            ctx,
            mut grow,
            mut merges,
            ..
        } = repairer;

        // ---- 10. Budget reconciliation & epoch ---------------------------
        // The repair above ran with an unbounded budget, so member sets are
        // exact everywhere but the tree may exceed the non-leaf cap `M` —
        // and if a *previous* build or batch was denied a split, the tree
        // may also contain overflowing leaves a freed-up budget would now
        // expand. Replaying the cold build's preorder allocation restores
        // the bounded canonical structure in both cases. When the budget
        // never bound and the repaired tree fits the cap, no cold-build
        // decision point can differ, so the replay is skipped entirely.
        if prev_budget_bound || self.index.nonleaf_count > self.config.max_nonleaf {
            merges += reconcile_budget(&mut self.index, &ctx, &mut grow);
        }
        stats.leaves_refined = grow.leaves_built;
        stats.leaves_split = grow.splits;
        stats.leaves_merged = merges;
        stats.repaired_rects = grow.leaf_rects;
        self.index.epoch += 1;
        stats.epoch = self.index.epoch;
        stats.total_leaves = self.index.num_leaf_nodes();
        Ok(stats)
    }

    /// Extends the indexed domain to `domain` in place: re-derives every
    /// object (the derivation is domain-seeded, so none survives a domain
    /// change) and rebuilds the grid canonically over the *existing* object
    /// and R-tree stores, advancing the epoch by one. A no-op when `domain`
    /// equals the current one. The configuration was validated when the
    /// system was first built; the `Result` threads the builder's
    /// typed-error signature through.
    pub(crate) fn grow_domain_to(&mut self, domain: Rect) -> Result<(), UvError> {
        if domain == self.domain {
            return Ok(());
        }
        let index_pages = Arc::new(PageStore::new());
        let (index, construction, ref_table) = build_uv_index_full(
            &self.objects,
            &self.object_store,
            &self.rtree,
            domain,
            index_pages,
            self.method,
            self.config,
        )?;
        let epoch = self.index.epoch() + 1;
        self.domain = domain;
        self.index = index;
        self.index.epoch = epoch;
        self.construction = construction;
        self.ref_table = ref_table;
        Ok(())
    }

    /// Finishes a batch whose net difference left the old domain: grows the
    /// domain in place via [`UvSystem::grow_domain_to`] and fills the stats
    /// of the implied global re-derivation (every live object is re-derived,
    /// every leaf rewritten — which is exactly what `rederived_ids` tells
    /// the sharded layer to reconcile).
    fn finish_with_domain_growth(
        &mut self,
        mut stats: UpdateStats,
        domain: Rect,
    ) -> Result<UpdateStats, UvError> {
        self.grow_domain_to(domain)?;
        stats.domain_grown = true;
        stats.objects_rederived = self.objects.len();
        stats.rederived_ids = self.objects.iter().map(|o| o.id).collect();
        stats.objects_in_knn_radius = self.objects.len();
        stats.objects_repartitioned = self.objects.len();
        stats.leaves_refined = self.index.num_leaf_nodes();
        stats.total_leaves = self.index.num_leaf_nodes();
        stats.epoch = self.index.epoch;
        stats.repaired_rects = vec![self.domain];
        Ok(stats)
    }
}

/// The domain-growth policy: doubles the domain away from every violated
/// side until `needed` fits. Growth is exponential so a staircase of `K`
/// just-outside inserts costs `O(log)` growth events, and the result is a
/// pure function of (current domain, needed rectangle) — the sharded
/// router, its shards and any cold-rebuild oracle all agree on the grown
/// domain without coordination. Shared with [`crate::router`], whose slim
/// apply pipeline must grow bit-identically to this one.
pub(crate) fn grow_domain(mut domain: Rect, needed: &Rect) -> Rect {
    while !domain.contains_rect(needed) {
        let w = domain.width().max(1.0);
        let h = domain.height().max(1.0);
        if needed.min_x < domain.min_x {
            domain.min_x -= w;
        }
        if needed.max_x > domain.max_x {
            domain.max_x += w;
        }
        if needed.min_y < domain.min_y {
            domain.min_y -= h;
        }
        if needed.max_y > domain.max_y {
            domain.max_y += h;
        }
    }
    domain
}

/// Shared op validation: both [`UvSystem::apply`] and the derivation-only
/// router ([`crate::router`]) must accept and reject exactly the same
/// objects, or the sharded layer's error behaviour would diverge from the
/// unsharded oracle.
pub(crate) fn validate_object(o: &UncertainObject) -> Result<(), UvError> {
    let c = o.center();
    if !c.x.is_finite() || !c.y.is_finite() || !o.radius().is_finite() || o.radius() < 0.0 {
        return Err(UvError::InvalidObject(o.id));
    }
    Ok(())
}

/// Merges a node's member list with its delta, keeping ascending id order
/// (the canonical member order).
fn merged_members(old: &[ObjectId], added: &[ObjectId], removed: &[ObjectId]) -> Vec<ObjectId> {
    let gone: HashSet<ObjectId> = removed.iter().copied().collect();
    let mut out: Vec<ObjectId> = old
        .iter()
        .filter(|id| !gone.contains(id))
        .copied()
        .collect();
    out.extend_from_slice(added);
    out.sort_unstable();
    out
}

/// Recursive grid repair. Node deltas obey a strict contract established by
/// the parent: `added` pass the node's overlap test and are not members,
/// `removed` are members to drop, `changed` are members that stay members of
/// *this* node but whose entries or deeper membership may differ.
struct Repairer<'a> {
    ctx: GridCtx<'a>,
    entry_dirty: &'a HashSet<ObjectId>,
    grow: GrowStats,
    merges: usize,
}

impl Repairer<'_> {
    fn repair(
        &mut self,
        index: &mut UvIndex,
        node: usize,
        added: &[ObjectId],
        removed: &[ObjectId],
        changed: &[ObjectId],
    ) {
        if added.is_empty() && removed.is_empty() && changed.is_empty() {
            return;
        }
        let region = index.node_regions[node];
        match &index.nodes[node] {
            GridNode::Leaf { object_ids, .. } => {
                let new_members = merged_members(object_ids, added, removed);
                let list_changed = !added.is_empty() || !removed.is_empty();
                if split_members(index, &self.ctx, &region, &new_members).is_some() {
                    // The canonical structure wants a subtree here now (the
                    // member count grew past the capacity, or a changed
                    // reference set flipped the split fraction). Repair runs
                    // with an unbounded budget so the member sets come out
                    // exact; the caller replays the cold build's preorder
                    // allocation afterwards (`reconcile_budget`) if the
                    // non-leaf cap could bind.
                    let mut budget = NodeBudget::unbounded();
                    grow_node(
                        index,
                        node,
                        new_members,
                        &self.ctx,
                        &mut self.grow,
                        &mut budget,
                    );
                } else if list_changed || changed.iter().any(|id| self.entry_dirty.contains(id)) {
                    make_leaf(index, node, new_members, &self.ctx, &mut self.grow);
                }
            }
            GridNode::Internal {
                children,
                object_ids,
            } => {
                let children = *children;
                let new_members = merged_members(object_ids, added, removed);
                // Classify the delta against each child's region and current
                // member set; this also yields the children's new member
                // counts, which decide whether this node keeps its subtree.
                let mut child_added: [Vec<ObjectId>; 4] = Default::default();
                let mut child_removed: [Vec<ObjectId>; 4] = Default::default();
                let mut child_changed: [Vec<ObjectId>; 4] = Default::default();
                let mut new_counts = [0usize; 4];
                for k in 0..4 {
                    let child = children[k] as usize;
                    let child_region = index.node_regions[child];
                    let members: HashSet<ObjectId> = match &index.nodes[child] {
                        GridNode::Leaf { object_ids, .. }
                        | GridNode::Internal { object_ids, .. } => {
                            object_ids.iter().copied().collect()
                        }
                        GridNode::Free => unreachable!("children are never free"),
                    };
                    for id in added {
                        if self.ctx.overlaps(*id, &child_region) {
                            child_added[k].push(*id);
                        }
                    }
                    for id in removed {
                        if members.contains(id) {
                            child_removed[k].push(*id);
                        }
                    }
                    for id in changed {
                        match (members.contains(id), self.ctx.overlaps(*id, &child_region)) {
                            (true, true) => child_changed[k].push(*id),
                            (true, false) => child_removed[k].push(*id),
                            (false, true) => child_added[k].push(*id),
                            (false, false) => {}
                        }
                    }
                    new_counts[k] = members.len() + child_added[k].len() - child_removed[k].len();
                }
                let min_child = new_counts.iter().min().copied().unwrap_or(0);
                let keep_split = new_members.len() > index.split_capacity()
                    && (min_child as f64) / (new_members.len() as f64)
                        < index.config().split_threshold;
                if keep_split {
                    if let GridNode::Internal { object_ids, .. } = &mut index.nodes[node] {
                        *object_ids = new_members;
                    }
                    for k in 0..4 {
                        self.repair(
                            index,
                            children[k] as usize,
                            &child_added[k],
                            &child_removed[k],
                            &child_changed[k],
                        );
                    }
                } else {
                    // The canonical structure is a leaf here now: collapse
                    // the subtree and rebuild the member list as one page
                    // list.
                    index.free_children(node);
                    index.nonleaf_count -= 1;
                    self.merges += 1;
                    make_leaf(index, node, new_members, &self.ctx, &mut self.grow);
                }
            }
            GridNode::Free => unreachable!("free nodes are unreachable from the root"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Method, UvConfig};
    use uv_data::{Dataset, GeneratorConfig};

    fn system(n: usize, config: UvConfig) -> (Dataset, UvSystem) {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(n));
        let sys = UvSystem::build(ds.objects.clone(), ds.domain, Method::IC, config).unwrap();
        (ds, sys)
    }

    /// Canonical view of the grid for structural comparison (the shared
    /// [`UvIndex::canonical_leaves`] oracle).
    fn canonical_leaves(sys: &UvSystem) -> Vec<crate::index::CanonicalLeaf> {
        sys.index().canonical_leaves()
    }

    fn assert_matches_cold_rebuild(sys: &UvSystem) {
        let rebuilt = UvSystem::build(
            sys.objects().to_vec(),
            sys.domain(),
            sys.method(),
            *sys.config(),
        )
        .unwrap();
        assert_eq!(
            canonical_leaves(sys),
            canonical_leaves(&rebuilt),
            "incrementally maintained grid diverged from a cold rebuild"
        );
        let queries = Dataset::generate(GeneratorConfig::paper_uniform(10)).query_points(25, 99);
        for q in queries {
            let a = sys.pnn(q);
            let b = rebuilt.pnn(q);
            assert_eq!(a.probabilities, b.probabilities, "answers differ at {q:?}");
            assert_eq!(a.candidates_examined, b.candidates_examined);
        }
    }

    #[test]
    fn insert_delete_move_match_cold_rebuild() {
        let (ds, mut sys) = system(150, UvConfig::default().with_leaf_split_capacity(24));
        let stats = sys
            .updater()
            .insert(UncertainObject::with_gaussian(
                900,
                Point::new(2_500.0, 2_500.0),
                20.0,
            ))
            .delete(17)
            .move_to(42, Point::new(7_400.0, 1_200.0))
            .commit()
            .unwrap();
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.deleted, 1);
        assert_eq!(stats.moved, 1);
        assert!(!stats.full_rebuild);
        assert_eq!(stats.epoch, 1);
        assert_eq!(sys.index().epoch(), 1);
        assert_eq!(sys.objects().len(), ds.objects.len());
        assert_matches_cold_rebuild(&sys);
    }

    #[test]
    fn empty_batch_and_net_noop_do_not_bump_epoch() {
        let (ds, mut sys) = system(80, UvConfig::default());
        let stats = sys.apply(UpdateBatch::new()).unwrap();
        assert_eq!(stats.epoch, 0);
        assert_eq!(sys.index().epoch(), 0);
        // Delete + identical reinsert nets to nothing.
        let original = ds.objects[5].clone();
        let stats = sys
            .apply(UpdateBatch::new().delete(5).insert(original))
            .unwrap();
        assert_eq!(stats.inserted + stats.deleted + stats.moved, 0);
        assert_eq!(sys.index().epoch(), 0);
        // A move to the same position is also a net no-op.
        let c = ds.objects[9].center();
        let stats = sys.move_object(9, c).unwrap();
        assert_eq!(stats.moved, 0);
        assert_eq!(sys.index().epoch(), 0);
    }

    #[test]
    fn validation_rejects_bad_ops_without_mutating() {
        let (_, mut sys) = system(60, UvConfig::default());
        let before = canonical_leaves(&sys);
        assert_eq!(
            sys.delete_object(999).unwrap_err(),
            UvError::UnknownObject(999)
        );
        assert_eq!(
            sys.insert_object(UncertainObject::with_uniform(
                3,
                Point::new(100.0, 100.0),
                5.0
            ))
            .unwrap_err(),
            UvError::DuplicateObject(3)
        );
        assert_eq!(
            sys.move_object(2, Point::new(f64::NAN, 0.0)).unwrap_err(),
            UvError::InvalidObject(2)
        );
        // (A negative radius cannot occur: `Circle::new` clamps it to zero.)
        assert_eq!(
            sys.insert_object(UncertainObject::with_uniform(
                700,
                Point::new(f64::INFINITY, 0.0),
                1.0
            ))
            .unwrap_err(),
            UvError::InvalidObject(700)
        );
        // A failing op later in a batch must leave earlier ops unapplied.
        let err = sys.apply(
            UpdateBatch::new()
                .delete(1)
                .move_to(55_555, Point::new(1.0, 1.0)),
        );
        assert_eq!(err.unwrap_err(), UvError::UnknownObject(55_555));
        assert_eq!(sys.objects().len(), 60);
        assert_eq!(canonical_leaves(&sys), before);
        assert_eq!(sys.index().epoch(), 0);
    }

    #[test]
    fn delete_then_reinsert_in_separate_batches_restores_state() {
        let (ds, mut sys) = system(120, UvConfig::default().with_leaf_split_capacity(24));
        let before = canonical_leaves(&sys);
        let victim = ds.objects[33].clone();
        sys.delete_object(33).unwrap();
        assert_ne!(canonical_leaves(&sys), before);
        assert_matches_cold_rebuild(&sys);
        sys.insert_object(victim).unwrap();
        assert_eq!(canonical_leaves(&sys), before);
        assert_eq!(sys.index().epoch(), 2);
        assert_matches_cold_rebuild(&sys);
    }

    #[test]
    fn domain_growth_extends_the_grid_in_place() {
        let (ds, mut sys) = system(80, UvConfig::default());
        let outside = UncertainObject::with_uniform(
            800,
            Point::new(ds.domain.max_x + 500.0, ds.domain.max_y + 500.0),
            10.0,
        );
        let stats = sys.insert_object(outside).unwrap();
        assert!(!stats.full_rebuild);
        assert!(stats.domain_grown);
        assert_eq!(stats.epoch, 1);
        assert!(sys
            .domain()
            .contains_rect(&sys.objects().last().unwrap().mbr()));
        assert!(sys.domain().max_x >= ds.domain.max_x + 510.0);
        assert_matches_cold_rebuild(&sys);
    }

    #[test]
    fn staircase_growth_amortizes_to_one_growth_event() {
        // Exponential expansion: the first just-outside insert doubles the
        // domain, which then swallows the rest of the staircase.
        let (ds, mut sys) = system(80, UvConfig::default());
        let mut growths = 0;
        for k in 1..=6u32 {
            let o = UncertainObject::with_uniform(
                800 + k,
                Point::new(ds.domain.max_x + f64::from(k) * 50.0, 5_000.0),
                5.0,
            );
            let stats = sys.insert_object(o).unwrap();
            assert!(!stats.full_rebuild);
            growths += usize::from(stats.domain_grown);
        }
        assert_eq!(growths, 1, "staircase must not grow on every step");
        assert_matches_cold_rebuild(&sys);
    }

    #[test]
    fn budget_bound_index_repairs_in_place() {
        // A tiny non-leaf budget makes canonical budget allocation
        // order-dependent; the updater repairs unbounded and then replays
        // the cold build's preorder allocation instead of rebuilding.
        let (_, mut sys) = system(
            400,
            UvConfig::default()
                .with_max_nonleaf(1)
                .with_leaf_split_capacity(16),
        );
        assert!(sys.index().num_nonleaf_nodes() <= 1);
        let stats = sys.move_object(0, Point::new(5_001.0, 5_002.0)).unwrap();
        assert!(!stats.full_rebuild);
        assert!(!stats.domain_grown);
        assert_matches_cold_rebuild(&sys);
    }

    #[test]
    fn deleting_everything_leaves_an_empty_working_system() {
        let (_, mut sys) = system(60, UvConfig::default());
        let mut batch = UpdateBatch::new();
        for id in 0..60u32 {
            batch = batch.delete(id);
        }
        let stats = sys.apply(batch).unwrap();
        assert_eq!(stats.deleted, 60);
        assert!(sys.objects().is_empty());
        assert_eq!(sys.index().num_leaf_nodes(), 1);
        assert!(sys
            .pnn(Point::new(5_000.0, 5_000.0))
            .probabilities
            .is_empty());
        // And the system accepts new objects again.
        sys.insert_object(UncertainObject::with_uniform(
            0,
            Point::new(4_000.0, 4_000.0),
            20.0,
        ))
        .unwrap();
        assert_eq!(sys.objects().len(), 1);
        assert!(!sys
            .pnn(Point::new(5_000.0, 5_000.0))
            .probabilities
            .is_empty());
        assert_matches_cold_rebuild(&sys);
    }

    #[test]
    fn update_stats_report_locality_counters() {
        let (_, mut sys) = system(300, UvConfig::default().with_leaf_split_capacity(16));
        let total = sys.index().num_leaf_nodes();
        assert!(total > 10, "fixture must split into many leaves");
        let stats = sys.move_object(7, Point::new(5_050.0, 5_050.0)).unwrap();
        assert!(!stats.full_rebuild);
        assert!(stats.objects_rederived >= 1);
        assert!(stats.leaves_refined >= 1);
        assert!(stats.leaves_refined < total);
        assert!(stats.refine_fraction() < 1.0);
        assert_eq!(stats.total_leaves, sys.index().num_leaf_nodes());
        assert_matches_cold_rebuild(&sys);
    }
}
