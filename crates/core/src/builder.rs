//! UV-index construction: the Basic, ICR and IC methods of Section VI.
//!
//! * **Basic** — Algorithm 1 per object against the whole dataset, then index
//!   the resulting r-objects. Exponentially expensive in principle and by far
//!   the slowest in practice (Figure 7(a)).
//! * **ICR** — derive cr-objects with Algorithm 2 (I- and C-pruning), refine
//!   them to exact r-objects by building the cell against the cr set, then
//!   index the r-objects.
//! * **IC** — derive cr-objects and hand them directly to Algorithm 3 without
//!   refinement; the paper's recommended method.
//!
//! Indexing realises Algorithms 3 (`InsertObj`) and 4 (`CheckSplit`) as an
//! *order-canonical* top-down build: a node's member set is the objects whose
//! Algorithm 5 overlap test passes for its region, and a node splits exactly
//! when its member count exceeds the leaf capacity, the split fraction
//! `theta` falls below `T_theta`, and the memory cap `M` on non-leaf nodes
//! permits. Unlike a literal insertion-order replay of Algorithm 3, the
//! resulting grid is a pure function of the per-object reference sets — the
//! property the dynamic maintenance subsystem ([`crate::update`]) relies on
//! to repair the partition locally while staying bit-identical to a full
//! rebuild. Member lists are kept in ascending id order for the same reason.

use crate::cell::build_exact_cell;
use crate::config::UvConfig;
use crate::crobjects::{derive_cr_objects, UpdateSensitivity};
use crate::index::{check_overlap, GridNode, UvIndex};
use crate::stats::{ConstructionStats, PruneStats};
use crate::update::{ObjectState, RefTable};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use uv_data::{ObjectEntry, ObjectId, ObjectStore, UncertainObject};
use uv_geom::{Circle, Rect};
use uv_rtree::RTree;
use uv_store::{PageStore, PagedList};

/// UV-index construction method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Algorithm 1 against all objects (no pruning).
    Basic,
    /// I- and C-pruning followed by exact r-object refinement.
    ICR,
    /// I- and C-pruning only; cr-objects are indexed directly.
    IC,
}

impl Method {
    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Basic => "Basic",
            Method::ICR => "ICR",
            Method::IC => "IC",
        }
    }
}

/// Per-object result of the reference-object derivation phase.
pub(crate) struct PerObject {
    pub(crate) id: ObjectId,
    pub(crate) reference_ids: Vec<ObjectId>,
    pub(crate) sensitivity: UpdateSensitivity,
    pub(crate) prune: PruneStats,
    pub(crate) prune_time: Duration,
    pub(crate) refine_time: Duration,
}

/// Builds a UV-index over `objects` with the chosen `method`.
///
/// * `object_store` supplies the disk pointers stored in leaf entries (and is
///   the store queries later fetch pdfs from).
/// * `rtree` is the R-tree over the same objects, used by seed selection and
///   I-pruning (the paper assumes it is already available).
/// * `store` receives the UV-index leaf pages.
///
/// Returns the index together with construction statistics, or
/// [`crate::UvError::InvalidConfig`] when `config` fails
/// [`UvConfig::validate`] — a bad configuration surfaces as a typed error,
/// never a panic.
pub fn build_uv_index(
    objects: &[UncertainObject],
    object_store: &ObjectStore,
    rtree: &RTree,
    domain: Rect,
    store: Arc<PageStore>,
    method: Method,
    config: UvConfig,
) -> Result<(UvIndex, ConstructionStats), crate::UvError> {
    let (index, stats, _) =
        build_uv_index_full(objects, object_store, rtree, domain, store, method, config)?;
    Ok((index, stats))
}

/// Like [`build_uv_index`], additionally returning the per-object reference
/// sets and update-sensitivity bounds — the state [`crate::update`] needs to
/// maintain the index incrementally.
pub(crate) fn build_uv_index_full(
    objects: &[UncertainObject],
    object_store: &ObjectStore,
    rtree: &RTree,
    domain: Rect,
    store: Arc<PageStore>,
    method: Method,
    config: UvConfig,
) -> Result<(UvIndex, ConstructionStats, RefTable), crate::UvError> {
    config.validate()?;
    let t_total = Instant::now();

    // ---- Phase A: derive reference objects per object ------------------------
    let t_phase_a = Instant::now();
    // One id -> object map for the whole build: ICR refinement resolves every
    // cr-id through it instead of scanning `objects` per id (which made the
    // refinement phase quadratic in the dataset size).
    let by_id: HashMap<ObjectId, &UncertainObject> = objects.iter().map(|o| (o.id, o)).collect();
    let subjects: Vec<&UncertainObject> = objects.iter().collect();
    let per_object = derive_subset(&subjects, objects, &by_id, rtree, &domain, &config, method);
    let phase_a_wall = t_phase_a.elapsed();

    // ---- Phase B: canonical top-down grid build ------------------------------
    let t_phase_b = Instant::now();
    let mut index = UvIndex::new(domain, Arc::clone(&store), config);
    let ref_table: RefTable = per_object
        .iter()
        .map(|p| {
            (
                p.id,
                ObjectState {
                    reference_ids: p.reference_ids.clone(),
                    sensitivity: p.sensitivity.clone(),
                },
            )
        })
        .collect();
    let mbcs: HashMap<ObjectId, Circle> = objects.iter().map(|o| (o.id, o.mbc())).collect();
    let entries: HashMap<ObjectId, ObjectEntry> = objects
        .iter()
        .map(|o| (o.id, ObjectEntry::new(o, object_store.ptr_of(o.id))))
        .collect();
    let ctx = GridCtx {
        mbcs: &mbcs,
        entries: &entries,
        states: &ref_table,
    };
    let mut root_members: Vec<ObjectId> = objects.iter().map(|o| o.id).collect();
    root_members.sort_unstable();
    root_members.retain(|id| ctx.overlaps(*id, &domain));
    let mut grow = GrowStats::default();
    let mut budget = NodeBudget::bounded(config.max_nonleaf);
    grow_node(&mut index, 0, root_members, &ctx, &mut grow, &mut budget);
    index.budget_bound = budget.denied;
    let indexing_time = t_phase_b.elapsed();

    // ---- Statistics -----------------------------------------------------------
    let n = objects.len().max(1) as f64;
    let prune_sum: Duration = per_object.iter().map(|p| p.prune_time).sum();
    let refine_sum: Duration = per_object.iter().map(|p| p.refine_time).sum();
    let cpu_sum = prune_sum + refine_sum;
    // Under parallel derivation the per-object durations add up to CPU time;
    // scale them onto the phase wall time so the reported fractions and the
    // total remain consistent.
    let scale = if cpu_sum.is_zero() {
        0.0
    } else {
        phase_a_wall.as_secs_f64() / cpu_sum.as_secs_f64()
    };
    let stats = ConstructionStats {
        objects: objects.len(),
        total: t_total.elapsed(),
        seed_time: Duration::ZERO,
        pruning_time: prune_sum.mul_f64(scale),
        refinement_time: refine_sum.mul_f64(scale),
        indexing_time,
        avg_i_ratio: per_object.iter().map(|p| p.prune.i_ratio()).sum::<f64>() / n,
        avg_c_ratio: per_object.iter().map(|p| p.prune.c_ratio()).sum::<f64>() / n,
        avg_reference_objects: per_object
            .iter()
            .map(|p| p.reference_ids.len() as f64)
            .sum::<f64>()
            / n,
        nonleaf_nodes: index.num_nonleaf_nodes(),
        leaf_nodes: index.num_leaf_nodes(),
        leaf_pages: index.num_leaf_pages(),
    };
    Ok((index, stats, ref_table))
}

pub(crate) fn derive_one(
    subject: &UncertainObject,
    objects: &[UncertainObject],
    by_id: &HashMap<ObjectId, &UncertainObject>,
    rtree: &RTree,
    domain: &Rect,
    config: &UvConfig,
    method: Method,
) -> PerObject {
    match method {
        Method::Basic => {
            let t = Instant::now();
            let cell = build_exact_cell(
                subject,
                objects.iter().filter(|o| o.id != subject.id),
                domain,
                config,
            );
            PerObject {
                id: subject.id,
                reference_ids: cell.r_objects,
                // Basic derives against the whole dataset with no pruning
                // structure to bound the change radius.
                sensitivity: UpdateSensitivity::always_affected(),
                prune: PruneStats {
                    total_others: objects.len().saturating_sub(1),
                    ..PruneStats::default()
                },
                prune_time: Duration::ZERO,
                refine_time: t.elapsed(),
            }
        }
        Method::ICR => {
            let t = Instant::now();
            let cr = derive_cr_objects(subject, rtree, objects, domain, config);
            let prune_time = t.elapsed();
            let t = Instant::now();
            let cr_objects: Vec<&UncertainObject> = cr
                .cr_ids
                .iter()
                .filter_map(|id| by_id.get(id).copied())
                .collect();
            let cell = build_exact_cell(subject, cr_objects, domain, config);
            let refine_time = t.elapsed();
            PerObject {
                id: subject.id,
                reference_ids: cell.r_objects,
                sensitivity: cr.sensitivity,
                prune: cr.stats,
                prune_time,
                refine_time,
            }
        }
        Method::IC => {
            let t = Instant::now();
            let cr = derive_cr_objects(subject, rtree, objects, domain, config);
            PerObject {
                id: subject.id,
                reference_ids: cr.cr_ids,
                sensitivity: cr.sensitivity,
                prune: cr.stats,
                prune_time: t.elapsed(),
                refine_time: Duration::ZERO,
            }
        }
    }
}

/// Derives the reference objects of `subjects` (a subset of the dataset),
/// fanning out over threads when the configuration allows and the subset is
/// large enough to amortise the spawns. Used by the full build (over every
/// object) and by [`crate::update`] (over the affected objects only).
pub(crate) fn derive_subset(
    subjects: &[&UncertainObject],
    objects: &[UncertainObject],
    by_id: &HashMap<ObjectId, &UncertainObject>,
    rtree: &RTree,
    domain: &Rect,
    config: &UvConfig,
    method: Method,
) -> Vec<PerObject> {
    if !(config.parallel && subjects.len() > 64) {
        return subjects
            .iter()
            .map(|o| derive_one(o, objects, by_id, rtree, domain, config, method))
            .collect();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(subjects.len());
    let chunk_size = subjects.len().div_ceil(threads);
    let mut results: Vec<PerObject> = Vec::with_capacity(subjects.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = subjects
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter()
                        .map(|o| derive_one(o, objects, by_id, rtree, domain, config, method))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            results.extend(h.join().expect("derivation thread panicked"));
        }
    });
    results
}

/// Read-only context for overlap tests and leaf-page construction: current
/// MBCs, leaf entries and reference sets of every live object.
pub(crate) struct GridCtx<'a> {
    pub(crate) mbcs: &'a HashMap<ObjectId, Circle>,
    pub(crate) entries: &'a HashMap<ObjectId, ObjectEntry>,
    pub(crate) states: &'a RefTable,
}

impl GridCtx<'_> {
    /// Algorithm 5 via the reference objects of `id`.
    pub(crate) fn overlaps(&self, id: ObjectId, region: &Rect) -> bool {
        let subject = self.mbcs[&id];
        let crs: Vec<Circle> = self.states[&id]
            .reference_ids
            .iter()
            .filter_map(|r| self.mbcs.get(r).copied())
            .collect();
        check_overlap(subject, &crs, region)
    }
}

/// Counters of one grow pass (initial build, leaf split or leaf merge).
#[derive(Debug, Default)]
pub(crate) struct GrowStats {
    /// Leaf page lists written.
    pub(crate) leaves_built: usize,
    /// Nodes turned into internal nodes.
    pub(crate) splits: usize,
    /// Regions of the leaf page lists written. Every structural or content
    /// rewrite of a leaf flows through [`make_leaf`], so after a repair this
    /// is exactly the set of regions whose answers may have changed — the
    /// invalidation footprint consumed by [`crate::subscribe`] (a cold build
    /// collects them too; callers that don't care simply drop the vector).
    pub(crate) leaf_rects: Vec<Rect>,
}

/// Algorithm 4 (`CheckSplit`), canonical form: returns the four quadrant
/// member lists when `members` of `region` warrant a split — the member count
/// exceeds the leaf capacity and the split fraction `theta` (smallest
/// quadrant member count over the node's member count) stays below
/// `T_theta`. The memory cap `M` is *not* checked here; callers decide what a
/// denied split means (the builder degrades to an overflowing leaf, the
/// updater repairs unbounded and replays the budget afterwards through
/// [`reconcile_budget`]).
/// A node whose region side has shrunk below this fraction of the domain
/// side never splits, bounding the grid depth at ~20 regardless of the
/// non-leaf budget. Like every split-rule input this is a pure function of
/// the region, so the canonical structure stays reproducible by local
/// repair.
const MIN_LEAF_SIDE_FRACTION: f64 = 1.0 / (1 << 20) as f64;

pub(crate) fn split_members(
    index: &UvIndex,
    ctx: &GridCtx<'_>,
    region: &Rect,
    members: &[ObjectId],
) -> Option<[Vec<ObjectId>; 4]> {
    if members.len() <= index.split_capacity() {
        return None;
    }
    let domain = index.domain();
    if region.width() <= domain.width() * MIN_LEAF_SIDE_FRACTION
        || region.height() <= domain.height() * MIN_LEAF_SIDE_FRACTION
    {
        return None;
    }
    let quadrants = region.quadrants();
    let mut parts: [Vec<ObjectId>; 4] = Default::default();
    for id in members {
        for (k, quadrant) in quadrants.iter().enumerate() {
            if ctx.overlaps(*id, quadrant) {
                parts[k].push(*id);
            }
        }
    }
    let min_child = parts.iter().map(Vec::len).min().unwrap_or(0);
    let theta = min_child as f64 / members.len() as f64;
    (theta < index.config().split_threshold).then_some(parts)
}

/// Explicit non-leaf budget of one grow pass. The cold build's budget check
/// of Algorithm 4 is a *preorder* counter: at every wanted split it compares
/// the number of internal nodes allocated so far against the cap `M` and,
/// when denied, degrades the node to an overflowing leaf. Carrying the
/// counter explicitly (instead of reading [`UvIndex::nonleaf_count`], which
/// during repair is a property of the whole tree rather than of one preorder
/// replay) is what lets [`reconcile_budget`] reproduce a budget-bound cold
/// build over an already-repaired tree.
#[derive(Debug)]
pub(crate) struct NodeBudget {
    /// The cap `M` on internal nodes (`usize::MAX` = unbounded).
    pub(crate) cap: usize,
    /// Internal nodes allocated so far in this preorder replay.
    pub(crate) used: usize,
    /// `true` once a wanted split has been denied.
    pub(crate) denied: bool,
}

impl NodeBudget {
    /// A bounded budget starting from zero allocations — the cold build.
    pub(crate) fn bounded(cap: usize) -> Self {
        Self {
            cap,
            used: 0,
            denied: false,
        }
    }

    /// An unbounded budget: every wanted split is granted. Localized repair
    /// grows subtrees under this budget (keeping member sets exact
    /// everywhere) and leaves the cap to [`reconcile_budget`].
    pub(crate) fn unbounded() -> Self {
        Self::bounded(usize::MAX)
    }
}

/// Builds the subtree rooted at slot `node` (whose region is already set)
/// from its canonical member set: split while Algorithm 4 says so and
/// `budget` permits, otherwise write a leaf page list.
pub(crate) fn grow_node(
    index: &mut UvIndex,
    node: usize,
    members: Vec<ObjectId>,
    ctx: &GridCtx<'_>,
    stats: &mut GrowStats,
    budget: &mut NodeBudget,
) {
    let region = index.node_regions[node];
    if let Some(parts) = split_members(index, ctx, &region, &members) {
        if budget.used + 1 > budget.cap {
            // OVERFLOW of Algorithm 4: the memory budget for non-leaf nodes
            // is exhausted; the leaf keeps an overlong page list.
            budget.denied = true;
        } else {
            budget.used += 1;
            index.nonleaf_count += 1;
            stats.splits += 1;
            let quadrants = region.quadrants();
            let mut children = [0u32; 4];
            for (k, quadrant) in quadrants.iter().enumerate() {
                children[k] = index.alloc_node(GridNode::Free, *quadrant);
            }
            index.nodes[node] = GridNode::Internal {
                children,
                object_ids: members,
            };
            for (k, part) in parts.into_iter().enumerate() {
                grow_node(index, children[k] as usize, part, ctx, stats, budget);
            }
            return;
        }
    }
    make_leaf(index, node, members, ctx, stats);
}

/// Replays the cold build's preorder budget allocation over an
/// already-repaired (budget-unbounded) tree, in place: walks the tree in the
/// exact order `grow_node` allocates (node, then children SW → NW), keeping
/// its own preorder counter, and
///
/// * **collapses** an internal node the cold build could not have afforded
///   (`used + 1 > M`) back into the overflowing leaf the cold build would
///   have kept, and
/// * **expands** a splittable leaf the cold build *could* afford — a leaf a
///   past denial left behind when deletions have since freed budget — by
///   replaying `grow_node` from the current counter.
///
/// Every split decision is a pure function of the node's (canonical) member
/// set and the counter, so the walk terminates with exactly the structure a
/// bounded cold build produces; [`UvIndex::budget_bound`] is rewritten to
/// whether any denial occurred. Returns the number of collapses performed.
pub(crate) fn reconcile_budget(
    index: &mut UvIndex,
    ctx: &GridCtx<'_>,
    stats: &mut GrowStats,
) -> usize {
    enum Verdict {
        Descend([u32; 4]),
        Collapse(Vec<ObjectId>),
        Expand(Vec<ObjectId>),
        Deny,
        Keep,
    }
    let cap = index.config().max_nonleaf;
    let mut used = 0usize;
    let mut denied = false;
    let mut merges = 0usize;
    let mut stack: Vec<usize> = vec![0];
    while let Some(node) = stack.pop() {
        let verdict = match &index.nodes[node] {
            GridNode::Internal {
                children,
                object_ids,
            } => {
                if used + 1 > cap {
                    Verdict::Collapse(object_ids.clone())
                } else {
                    Verdict::Descend(*children)
                }
            }
            GridNode::Leaf { object_ids, .. } => {
                let region = index.node_regions[node];
                if split_members(index, ctx, &region, object_ids).is_none() {
                    Verdict::Keep
                } else if used + 1 > cap {
                    // The cold build denies this split too: the overflowing
                    // leaf stays exactly as it is.
                    Verdict::Deny
                } else {
                    Verdict::Expand(object_ids.clone())
                }
            }
            GridNode::Free => unreachable!("free nodes are unreachable from the root"),
        };
        match verdict {
            Verdict::Descend(children) => {
                used += 1;
                // Reversed so SW pops first — the cold build's child order.
                for k in (0..4).rev() {
                    stack.push(children[k] as usize);
                }
            }
            Verdict::Collapse(members) => {
                denied = true;
                index.free_children(node);
                index.nonleaf_count -= 1;
                merges += 1;
                make_leaf(index, node, members, ctx, stats);
            }
            Verdict::Expand(members) => {
                let mut budget = NodeBudget {
                    cap,
                    used,
                    denied: false,
                };
                grow_node(index, node, members, ctx, stats, &mut budget);
                used = budget.used;
                denied |= budget.denied;
            }
            Verdict::Deny => denied = true,
            Verdict::Keep => {}
        }
    }
    index.budget_bound = denied;
    merges
}

/// Writes slot `node` as a leaf: one `<ID, MBC, pointer>` entry per member,
/// packed into a sealed page list.
pub(crate) fn make_leaf(
    index: &mut UvIndex,
    node: usize,
    members: Vec<ObjectId>,
    ctx: &GridCtx<'_>,
    stats: &mut GrowStats,
) {
    let mut list = PagedList::new(Arc::clone(&index.store));
    for id in &members {
        list.push(ctx.entries[id]);
    }
    list.seal();
    index.nodes[node] = GridNode::Leaf {
        list,
        object_ids: members,
    };
    stats.leaves_built += 1;
    stats.leaf_rects.push(index.node_regions[node]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use uv_data::{Dataset, GeneratorConfig};
    use uv_rtree::pnn::brute_force_candidates;

    struct Fixture {
        ds: Dataset,
        objects: ObjectStore,
        rtree: RTree,
    }

    fn fixture(n: usize) -> Fixture {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(n));
        let pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&pages), &ds.objects);
        let rtree = RTree::build(&ds.objects, &objects, pages);
        Fixture { ds, objects, rtree }
    }

    fn build(f: &Fixture, method: Method, config: UvConfig) -> (UvIndex, ConstructionStats) {
        build_uv_index(
            &f.ds.objects,
            &f.objects,
            &f.rtree,
            f.ds.domain,
            Arc::new(PageStore::new()),
            method,
            config,
        )
        .unwrap()
    }

    fn answers_match_brute_force(f: &Fixture, index: &UvIndex, queries: usize, seed: u64) {
        for q in f.ds.query_points(queries, seed) {
            let answer = index.pnn(&f.objects, q, 60);
            let expected = brute_force_candidates(&f.ds.objects, q);
            let got = answer.answer_ids();
            // Every returned object must be a legitimate candidate and the
            // most probable candidates must not be missed: the verification
            // step guarantees set equality up to probability filtering.
            for id in &got {
                assert!(expected.contains(id), "spurious answer {id} at {q:?}");
            }
            // No candidate with non-negligible probability may be missing:
            // recompute probabilities on the brute-force set and compare.
            let refs: Vec<_> = expected
                .iter()
                .map(|id| &f.ds.objects[*id as usize])
                .collect();
            let brute_probs = uv_data::qualification_probabilities(q, &refs, 60);
            for (id, p) in brute_probs {
                if p > 1e-3 {
                    assert!(
                        got.contains(&id),
                        "object {id} with probability {p} missing at {q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn ic_index_answers_match_brute_force() {
        let f = fixture(300);
        let (index, stats) = build(&f, Method::IC, UvConfig::default());
        assert_eq!(stats.objects, 300);
        assert!(stats.avg_c_ratio > 0.5);
        answers_match_brute_force(&f, &index, 25, 17);
    }

    #[test]
    fn basic_and_ic_agree_on_queries() {
        let f = fixture(120);
        let config = UvConfig {
            parallel: false,
            ..UvConfig::default()
        };
        let (basic, _) = build(&f, Method::Basic, config);
        let (ic, _) = build(&f, Method::IC, config);
        for q in f.ds.query_points(15, 3) {
            let a = basic.pnn(&f.objects, q, 60).answer_ids();
            let b = ic.pnn(&f.objects, q, 60).answer_ids();
            assert_eq!(a, b, "Basic and IC disagree at {q:?}");
        }
    }

    #[test]
    fn icr_index_answers_match_brute_force() {
        let f = fixture(200);
        let (index, stats) = build(
            &f,
            Method::ICR,
            UvConfig {
                parallel: false,
                ..UvConfig::default()
            },
        );
        assert!(stats.refinement_time > Duration::ZERO);
        answers_match_brute_force(&f, &index, 15, 23);
    }

    #[test]
    fn icr_id_map_resolution_matches_linear_scan_on_1k_objects() {
        // Regression for the O(n) `objects.iter().find(...)` per cr-id that
        // made ICR refinement quadratic: the id -> object map must resolve
        // exactly the objects the linear scan resolved, and refinement over
        // the map-resolved set must produce identical reference ids.
        use crate::cell::build_exact_cell;
        use crate::crobjects::derive_cr_objects;

        let f = fixture(1_000);
        let config = UvConfig {
            parallel: false,
            ..UvConfig::default()
        };
        let by_id: HashMap<ObjectId, &UncertainObject> =
            f.ds.objects.iter().map(|o| (o.id, o)).collect();
        for subject in f.ds.objects.iter().step_by(53) {
            let cr = derive_cr_objects(subject, &f.rtree, &f.ds.objects, &f.ds.domain, &config);
            let via_map: Vec<&UncertainObject> = cr
                .cr_ids
                .iter()
                .filter_map(|id| by_id.get(id).copied())
                .collect();
            let via_scan: Vec<&UncertainObject> = cr
                .cr_ids
                .iter()
                .filter_map(|id| f.ds.objects.iter().find(|o| o.id == *id))
                .collect();
            let map_ids: Vec<ObjectId> = via_map.iter().map(|o| o.id).collect();
            let scan_ids: Vec<ObjectId> = via_scan.iter().map(|o| o.id).collect();
            assert_eq!(map_ids, scan_ids, "object {}", subject.id);
            let map_cell = build_exact_cell(subject, via_map, &f.ds.domain, &config);
            let scan_cell = build_exact_cell(subject, via_scan, &f.ds.domain, &config);
            assert_eq!(
                map_cell.r_objects, scan_cell.r_objects,
                "refined reference ids diverged for object {}",
                subject.id
            );
        }
    }

    #[test]
    fn ic_is_faster_to_build_than_basic() {
        let f = fixture(250);
        let config = UvConfig {
            parallel: false,
            ..UvConfig::default()
        };
        let (_, basic_stats) = build(&f, Method::Basic, config);
        let (_, ic_stats) = build(&f, Method::IC, config);
        assert!(
            ic_stats.total < basic_stats.total,
            "IC ({:?}) should be faster than Basic ({:?})",
            ic_stats.total,
            basic_stats.total
        );
    }

    #[test]
    fn split_threshold_zero_never_splits() {
        let f = fixture(400);
        let config = UvConfig::default().with_split_threshold(0.0);
        let (index, stats) = build(&f, Method::IC, config);
        assert_eq!(index.num_nonleaf_nodes(), 0);
        assert_eq!(index.num_leaf_nodes(), 1);
        assert_eq!(stats.leaf_nodes, 1);
        // The single leaf degenerates into a long page list.
        assert!(index.num_leaf_pages() >= 400 / 102);
        // Queries still work.
        answers_match_brute_force(&f, &index, 5, 31);
    }

    #[test]
    fn default_threshold_splits_and_respects_memory_cap() {
        let f = fixture(600);
        let (index, _) = build(&f, Method::IC, UvConfig::default());
        assert!(index.num_nonleaf_nodes() > 0);
        assert!(index.num_leaf_nodes() > 1);
        assert!(index.height() > 1);

        let capped = UvConfig::default().with_max_nonleaf(2);
        let (small_index, _) = build(&f, Method::IC, capped);
        assert!(small_index.num_nonleaf_nodes() <= 2);
        answers_match_brute_force(&f, &small_index, 5, 41);
    }

    #[test]
    fn custom_leaf_split_capacity_makes_smaller_leaves() {
        let f = fixture(400);
        let (default_index, _) = build(&f, Method::IC, UvConfig::default());
        let (fine_index, _) = build(
            &f,
            Method::IC,
            UvConfig::default().with_leaf_split_capacity(16),
        );
        assert!(fine_index.num_leaf_nodes() > default_index.num_leaf_nodes());
        for (_, ids) in fine_index.leaves() {
            // A leaf either respects the capacity or could not be split
            // further (theta >= T_theta keeps co-overlapping members
            // together).
            assert!(ids.len() <= 400);
        }
        answers_match_brute_force(&f, &fine_index, 5, 59);
    }

    #[test]
    fn construction_stats_are_consistent() {
        let f = fixture(300);
        let (index, stats) = build(&f, Method::IC, UvConfig::default());
        assert_eq!(stats.leaf_nodes, index.num_leaf_nodes());
        assert_eq!(stats.nonleaf_nodes, index.num_nonleaf_nodes());
        assert_eq!(stats.leaf_pages, index.num_leaf_pages());
        assert!(stats.avg_reference_objects > 0.0);
        assert!(stats.total >= stats.indexing_time);
        let fractions =
            stats.pruning_fraction() + stats.refinement_fraction() + stats.indexing_fraction();
        assert!((fractions - 1.0).abs() < 1e-9);
        // IC performs no refinement.
        assert_eq!(stats.refinement_time, Duration::ZERO);
    }

    #[test]
    fn every_leaf_object_actually_may_overlap_its_region() {
        // No false negatives by construction; spot-check that the leaf lists
        // only contain objects whose overlap test passes for that region
        // (false positives allowed, Figure 5(b)).
        let f = fixture(300);
        let (index, _) = build(&f, Method::IC, UvConfig::default());
        for (region, ids) in index.leaves() {
            for id in ids {
                let o = &f.ds.objects[*id as usize];
                // The object's own centre region must not be "behind" every
                // cr-object for all corners simultaneously; re-run the same
                // test the builder used.
                assert!(region.area() > 0.0);
                assert!(f.ds.domain.contains_rect(region));
                assert!(o.radius() > 0.0);
            }
        }
        // Every object appears in at least one leaf (its UV-cell is
        // non-empty).
        let mut seen = vec![false; f.ds.len()];
        for (_, ids) in index.leaves() {
            for id in ids {
                seen[*id as usize] = true;
            }
        }
        assert!(seen.iter().all(|s| *s), "some object is in no leaf");
    }

    #[test]
    fn leaf_member_lists_are_id_sorted() {
        // The canonical build keeps every member list in ascending id order —
        // what makes delete-then-reinsert land an object back in exactly the
        // slot a full rebuild would give it.
        let f = fixture(500);
        let (index, _) = build(&f, Method::IC, UvConfig::default());
        for (_, ids) in index.leaves() {
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "unsorted leaf list");
        }
    }

    #[test]
    fn parallel_and_sequential_builds_agree() {
        let f = fixture(200);
        let (seq, _) = build(
            &f,
            Method::IC,
            UvConfig {
                parallel: false,
                ..UvConfig::default()
            },
        );
        let (par, _) = build(
            &f,
            Method::IC,
            UvConfig {
                parallel: true,
                ..UvConfig::default()
            },
        );
        for q in f.ds.query_points(10, 77) {
            assert_eq!(
                seq.pnn(&f.objects, q, 60).answer_ids(),
                par.pnn(&f.objects, q, 60).answer_ids()
            );
        }
        assert_eq!(seq.num_leaf_nodes(), par.num_leaf_nodes());
    }
}
