//! Concurrent batched PNN serving over a shared, read-only [`UvIndex`].
//!
//! Section V-A of the paper evaluates PNN queries one point at a time; a
//! deployment serving heavy traffic instead sees *batches* of query points —
//! the natural workload being streams of positions along trajectories, as in
//! the probabilistic moving-NN setting of Ali et al. [`QueryEngine`] is that
//! serving layer:
//!
//! * **Batched execution** — [`QueryEngine::pnn_batch`] fans a batch out over
//!   a scoped worker pool. The storage layer is already thread-safe
//!   ([`uv_store::PageStore`] uses a reader-writer lock, its I/O counters are
//!   atomic), so workers share the index and object store without copying.
//! * **Per-leaf memoization** — queries landing in the same leaf reuse the
//!   leaf page read *and* a region-level `d_minmax` candidate screen (see
//!   `prescreen_entries`); both are computed once per leaf and are sound,
//!   so answers stay bit-identical to the sequential path.
//! * **Trajectory workloads** — [`QueryEngine::pnn_trajectory`] answers a
//!   sequence of query points and reports per-step answer deltas
//!   ([`uv_data::AnswerDelta`]): which objects entered/left the answer set as
//!   the query moved.
//!
//! Per-query I/O attribution stays exact under concurrency: every answer's
//! [`uv_data::QueryBreakdown`] counts the page reads *this* query performed
//! (cache hits report zero index I/O), so summing breakdowns over a batch
//! reproduces the store counters' delta.
//!
//! *The paper-to-code map for the whole workspace — every definition, lemma,
//! algorithm and experiment of the paper, with its module and key functions —
//! lives in `docs/PAPER_MAP.md` at the repository root.*

use crate::index::UvIndex;
use std::collections::HashSet;
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use uv_data::{
    AnswerDelta, EntryArena, KernelArena, ObjectEntry, ObjectStore, PnnAnswer, QuadratureScratch,
    QueryBreakdown, UncertainObject,
};
use uv_geom::{Point, Rect, EPS};

/// One step of a moving-PNN (trajectory) workload: the query position, its
/// full answer and the delta against the previous step's answer set.
#[derive(Debug, Clone)]
pub struct TrajectoryStep {
    /// The query point of this step.
    pub position: Point,
    /// The full PNN answer at this position.
    pub answer: PnnAnswer,
    /// Change of the answer set relative to the previous step (for the first
    /// step, relative to the empty answer: everything `entered`).
    pub delta: AnswerDelta,
    /// `true` when the step was answered from the previous step's safe
    /// region (cached candidate set, zero index/object I/O) rather than a
    /// full index descent. The answer is bit-identical either way.
    pub reused: bool,
}

/// Leaf payload memoized by the engine: the leaf's entries after the sound
/// region-level candidate screen, flattened onto an [`EntryArena`] (the
/// leaf's clearance geometry — every query and subscription miss landing in
/// this leaf shares the one arena), plus the page reads the fill cost.
#[derive(Debug)]
struct CachedLeaf {
    arena: EntryArena,
    io_pages: u64,
}

/// Screened entry arena of one leaf: borrowed from the per-leaf cache when
/// enabled, otherwise built on the spot from a direct page read.
enum LeafArenaRef<'c> {
    Cached(&'c EntryArena),
    Owned(EntryArena),
}

impl LeafArenaRef<'_> {
    fn get(&self) -> &EntryArena {
        match self {
            LeafArenaRef::Cached(a) => a,
            LeafArenaRef::Owned(a) => a,
        }
    }
}

/// Per-worker scratch threaded through the batched kernels: screen
/// distances, candidate indices, the object I/O page set, the candidate
/// [`KernelArena`] and its quadrature buffers. One instance serves a whole
/// chunk of queries; nothing in it survives a query except its allocations.
#[derive(Debug, Default)]
pub(crate) struct EngineScratch {
    screen: uv_data::ScreenScratch,
    candidates: Vec<usize>,
    touched: HashSet<u32>,
    kernel: KernelArena,
    quad: QuadratureScratch,
}

/// The batched tail of PNN query processing, bit-identical to
/// [`crate::index::verify_and_refine_full`] over the same (screened)
/// entries: the fused `d_minmax` screen of the entry arena, pdf retrieval
/// for the surviving candidates, and the arena quadrature. Additionally
/// returns the signed clearance of the screen decision — the candidate
/// stability radius [`crate::subscribe`] previously re-derived in a second
/// scalar pass over the same entries.
fn verify_and_refine_arena(
    objects: &ObjectStore,
    q: Point,
    integration_steps: usize,
    arena: &EntryArena,
    scratch: &mut EngineScratch,
    index_io: u64,
    t_traversal: Instant,
) -> (PnnAnswer, Vec<UncertainObject>, f64) {
    let mut breakdown = QueryBreakdown::default();

    let screen = arena.screen(q, &mut scratch.screen, &mut scratch.candidates);
    breakdown.traversal = t_traversal.elapsed();
    breakdown.index_io = index_io;

    let t_retrieval = Instant::now();
    scratch.touched.clear();
    let ids = arena.ids();
    let fetched: Vec<UncertainObject> = scratch
        .candidates
        .iter()
        .filter_map(|&i| objects.fetch(ids[i], &mut scratch.touched))
        .collect();
    breakdown.retrieval = t_retrieval.elapsed();
    // `fetch` charges exactly one page read per page newly inserted into
    // the touched set, so the set size is this query's object I/O.
    breakdown.object_io = scratch.touched.len() as u64;

    let t_prob = Instant::now();
    scratch.kernel.assign(fetched.iter());
    let mut probabilities =
        scratch
            .kernel
            .qualification_probabilities(q, integration_steps, &mut scratch.quad);
    probabilities.retain(|(_, p)| *p > 0.0);
    breakdown.probability = t_prob.elapsed();

    (
        PnnAnswer {
            probabilities,
            candidates_examined: scratch.candidates.len(),
            breakdown,
        },
        fetched,
        screen.clearance,
    )
}

/// Lazily filled per-leaf cache, indexed by grid-node id. `OnceLock` makes
/// concurrent fills race-free: exactly one worker reads the pages, everyone
/// else blocks briefly and reuses the result.
///
/// The cache is tagged with the index [`UvIndex::epoch`] it was created for.
/// Dynamic maintenance ([`crate::update`]) bumps the epoch on every applied
/// batch; a cache whose epoch no longer matches is bypassed entirely, so a
/// reader can never be served leaf pages from before an update. (While an
/// engine borrows the index the borrow checker already forbids mutation —
/// the epoch tag keeps the invariant explicit and robust under future shared
/// ownership.)
#[derive(Debug)]
struct LeafCache {
    epoch: u64,
    slots: Vec<OnceLock<CachedLeaf>>,
}

impl LeafCache {
    fn new(epoch: u64, nodes: usize) -> Self {
        let mut slots = Vec::with_capacity(nodes);
        slots.resize_with(nodes, OnceLock::new);
        Self { epoch, slots }
    }

    /// Number of leaves whose pages have been read and memoized so far.
    fn filled(&self) -> usize {
        self.slots.iter().filter(|s| s.get().is_some()).count()
    }
}

/// Reuse state threaded through a trajectory walk: the last fully derived
/// step's leaf, a disk around its position inside which the candidate set is
/// provably unchanged, and the candidate [`KernelArena`] (ids, geometry and
/// ring tables of the fetched candidates, in candidate order).
///
/// While the next path point stays strictly inside the disk *and* in the
/// same leaf, the answer is recomputed from the cached arena alone — same
/// candidate ids in the same order, same integration — so it is
/// bit-identical to a full derivation, at zero index and object I/O. Only
/// the three per-candidate distance terms are recomputed per step; the ring
/// tables were built once at derivation time.
#[derive(Debug)]
pub(crate) struct StepReuse {
    leaf: usize,
    anchor: Point,
    radius: f64,
    examined: usize,
    kernel: KernelArena,
    quad: QuadratureScratch,
}

/// Everything a full single-point derivation produces: the leaf, the answer,
/// the fetched candidate objects (candidate order), the signed clearance of
/// the candidate screen (the fused stability term) and whether the leaf's
/// cached clearance geometry was reused rather than built by this
/// derivation. [`crate::subscribe`] consumes all of it to build a safe
/// region.
pub(crate) struct DeriveResult {
    pub(crate) leaf: usize,
    pub(crate) answer: PnnAnswer,
    pub(crate) candidates: Vec<UncertainObject>,
    pub(crate) clearance: f64,
    pub(crate) arena_reused: bool,
}

/// Drops entries that can never survive the per-query `d_minmax` screen for
/// *any* query point inside `region` (the leaf's rectangle).
///
/// Soundness: for every `q` in the region, `d_minmax(q) = min_e dist_max(e,
/// q)` is at most `D = min_e max_{p in region} dist_max(e, p)`, while an
/// entry's `dist_min(e, q)` is at least `L_e = min_{p in region} dist_min(e,
/// p)`. An entry with `L_e > D` therefore fails `dist_min(e, q) <=
/// d_minmax(q)` everywhere in the region — it can neither be a candidate nor
/// (being non-minimal everywhere) shift the `d_minmax` value itself, so the
/// surviving candidate set and probabilities are bit-identical to screening
/// the full entry list.
pub(crate) fn prescreen_entries(mut entries: Vec<ObjectEntry>, region: &Rect) -> Vec<ObjectEntry> {
    let d = entries
        .iter()
        .map(|e| region.dist_max(e.mbc.center) + e.mbc.radius)
        .fold(f64::INFINITY, f64::min);
    entries.retain(|e| (region.dist_min(e.mbc.center) - e.mbc.radius).max(0.0) <= d + EPS);
    entries
}

/// A concurrent batched PNN query engine over a shared read-only
/// [`UvIndex`] — the serving layer the `docs/PAPER_MAP.md` Section V-A row
/// describes alongside the paper's single-point lookup.
///
/// The engine borrows the index and object store, so building one is free;
/// keep it alive across batches to retain the leaf cache.
///
/// ```
/// use std::sync::Arc;
/// use uv_core::{engine::QueryEngine, UvSystem};
/// use uv_data::{Dataset, GeneratorConfig};
///
/// let ds = Dataset::generate(GeneratorConfig::paper_uniform(120));
/// let system = UvSystem::with_defaults(ds.objects.clone(), ds.domain);
/// let engine = QueryEngine::new(system.index(), system.object_store());
/// let queries = ds.query_points(16, 42);
/// let answers = engine.pnn_batch(&queries);
/// // Identical to the sequential Section V-A path, computed concurrently.
/// for (q, a) in queries.iter().zip(&answers) {
///     assert_eq!(a.probabilities, system.pnn(*q).probabilities);
/// }
/// ```
#[derive(Debug)]
pub struct QueryEngine<'a> {
    index: &'a UvIndex,
    objects: &'a ObjectStore,
    workers: usize,
    integration_steps: usize,
    cache: Option<LeafCache>,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine over `index` and `objects`, taking the worker count,
    /// cache toggle and integration steps from the index's [`crate::UvConfig`].
    pub fn new(index: &'a UvIndex, objects: &'a ObjectStore) -> Self {
        let config = index.config();
        let cache = config
            .leaf_cache
            .then(|| LeafCache::new(index.epoch(), index.nodes.len()));
        Self {
            index,
            objects,
            workers: config.resolved_query_workers().max(1),
            integration_steps: config.integration_steps,
            cache,
        }
    }

    /// Overrides the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Enables or disables the per-leaf cache (dropping any cached leaves).
    pub fn with_cache(mut self, enabled: bool) -> Self {
        self.cache = enabled.then(|| LeafCache::new(self.index.epoch(), self.index.nodes.len()));
        self
    }

    /// Number of worker threads `pnn_batch` fans out over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// `true` when the per-leaf cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// Number of leaves currently memoized (0 when the cache is disabled).
    pub fn cached_leaves(&self) -> usize {
        self.cache.as_ref().map_or(0, LeafCache::filled)
    }

    /// The index epoch the leaf cache was created for, if caching is
    /// enabled. A cache is only ever consulted while this matches
    /// [`UvIndex::epoch`].
    pub fn cache_epoch(&self) -> Option<u64> {
        self.cache.as_ref().map(|c| c.epoch)
    }

    /// Answers a single PNN query through the engine (leaf cache, if
    /// enabled, but no fan-out). Bit-identical to [`UvIndex::pnn`].
    pub fn pnn(&self, q: Point) -> PnnAnswer {
        self.pnn_with(q, &mut EngineScratch::default())
    }

    /// [`QueryEngine::pnn`] with caller-provided kernel scratch, so a worker
    /// serving a chunk of queries reuses its buffers across the whole chunk.
    pub(crate) fn pnn_with(&self, q: Point, scratch: &mut EngineScratch) -> PnnAnswer {
        let t_traversal = Instant::now();
        let Some(leaf) = self.index.locate_leaf(q) else {
            return PnnAnswer::default();
        };
        let (arena, io, _) = self.leaf_arena(leaf);
        verify_and_refine_arena(
            self.objects,
            q,
            self.integration_steps,
            arena.get(),
            scratch,
            io,
            t_traversal,
        )
        .0
    }

    /// The index this engine serves.
    pub(crate) fn index(&self) -> &'a UvIndex {
        self.index
    }

    /// Screened entry arena of leaf node `leaf`, plus the leaf pages this
    /// call actually read and whether an already-built cached arena was
    /// reused. Goes through the per-leaf cache when enabled (a hit reads
    /// zero pages and reuses the leaf's clearance geometry), otherwise reads
    /// and screens the pages directly. Either way the arena holds the sound
    /// `d_minmax` prescreen of the full page list, so candidate sets derived
    /// from it are bit-identical to the unscreened path for every query
    /// point inside the leaf.
    fn leaf_arena(&self, leaf: usize) -> (LeafArenaRef<'_>, u64, bool) {
        // The cache is only usable while its epoch matches the index (and
        // its slot table still covers the node id): anything else falls back
        // to a direct leaf read, so stale pages are unreachable.
        let cache = self
            .cache
            .as_ref()
            .filter(|c| c.epoch == self.index.epoch() && leaf < c.slots.len());
        let Some(cache) = cache else {
            let (entries, io) = self.index.leaf_entries(leaf);
            let entries = prescreen_entries(entries, &self.index.node_regions[leaf]);
            let mut arena = EntryArena::default();
            arena.assign(&entries);
            return (LeafArenaRef::Owned(arena), io, false);
        };
        let mut filled_here = false;
        let cached = cache.slots[leaf].get_or_init(|| {
            filled_here = true;
            let (entries, io_pages) = self.index.leaf_entries(leaf);
            let entries = prescreen_entries(entries, &self.index.node_regions[leaf]);
            let mut arena = EntryArena::default();
            arena.assign(&entries);
            CachedLeaf { arena, io_pages }
        });
        // Only the worker that actually read the pages is charged the I/O;
        // cache hits cost none, keeping per-query attribution exact.
        let io = if filled_here { cached.io_pages } else { 0 };
        (LeafArenaRef::Cached(&cached.arena), io, !filled_here)
    }

    /// Fully derives the answer at `q` — leaf descent, screened entry
    /// arena, fused `d_minmax` verification, arena quadrature — returning
    /// the derivation context alongside the answer. `None` when `q` lies
    /// outside the domain. The answer is bit-identical to
    /// [`QueryEngine::pnn`].
    pub(crate) fn derive_at(&self, q: Point) -> Option<DeriveResult> {
        let t_traversal = Instant::now();
        let leaf = self.index.locate_leaf(q)?;
        let (arena, io, arena_reused) = self.leaf_arena(leaf);
        let mut scratch = EngineScratch::default();
        let (answer, candidates, clearance) = verify_and_refine_arena(
            self.objects,
            q,
            self.integration_steps,
            arena.get(),
            &mut scratch,
            io,
            t_traversal,
        );
        Some(DeriveResult {
            leaf,
            answer,
            candidates,
            clearance,
            arena_reused,
        })
    }

    /// Answers one trajectory point, reusing `reuse` when the point stays
    /// strictly inside the previous full derivation's stability disk (and
    /// leaf). Returns the answer and whether it was served from the cached
    /// candidate arena. On a miss the reuse state is re-derived (or cleared,
    /// outside the domain / when no useful stability radius exists).
    pub(crate) fn pnn_step(&self, q: Point, reuse: &mut Option<StepReuse>) -> (PnnAnswer, bool) {
        if let Some(r) = reuse.as_mut() {
            if q.dist(r.anchor) < r.radius && self.index.locate_leaf(q) == Some(r.leaf) {
                // The tail of the full pipeline over the cached candidate
                // arena (quadrature + positive-probability filter), at zero
                // index and object I/O. Bit-identical to a full derivation
                // because the candidate list is provably frozen inside the
                // disk.
                let t = Instant::now();
                let mut probabilities =
                    r.kernel
                        .qualification_probabilities(q, self.integration_steps, &mut r.quad);
                probabilities.retain(|(_, p)| *p > 0.0);
                let answer = PnnAnswer {
                    probabilities,
                    candidates_examined: r.examined,
                    breakdown: QueryBreakdown {
                        probability: t.elapsed(),
                        ..QueryBreakdown::default()
                    },
                };
                return (answer, true);
            }
        }
        let Some(d) = self.derive_at(q) else {
            *reuse = None;
            return (PnnAnswer::default(), false);
        };
        let radius = self
            .index
            .config()
            .apply_safe_region_floor(d.clearance, self.index.domain());
        *reuse = (radius > 0.0).then(|| {
            let mut kernel = KernelArena::new();
            kernel.assign(d.candidates.iter());
            StepReuse {
                leaf: d.leaf,
                anchor: q,
                radius,
                examined: d.answer.candidates_examined,
                kernel,
                quad: QuadratureScratch::default(),
            }
        });
        (d.answer, false)
    }

    /// Answers a batch of PNN queries, fanned out over the worker pool.
    ///
    /// Answers come back in query order and are bit-identical (probabilities
    /// and candidate counts) to running [`UvIndex::pnn`] in a sequential
    /// loop; only the timing/I/O breakdowns differ (cache hits read no
    /// pages).
    pub fn pnn_batch(&self, queries: &[Point]) -> Vec<PnnAnswer> {
        if self.workers <= 1 || queries.len() <= 1 {
            let mut scratch = EngineScratch::default();
            return queries
                .iter()
                .map(|q| self.pnn_with(*q, &mut scratch))
                .collect();
        }
        let chunk_size = queries.len().div_ceil(self.workers);
        let mut answers = Vec::with_capacity(queries.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut scratch = EngineScratch::default();
                        chunk
                            .iter()
                            .map(|q| self.pnn_with(*q, &mut scratch))
                            .collect()
                    })
                })
                .collect();
            for handle in handles {
                let chunk_answers: Vec<PnnAnswer> = handle.join().expect("query worker panicked");
                answers.extend(chunk_answers);
            }
        });
        answers
    }

    /// Like [`QueryEngine::pnn_batch`], additionally returning the wall-clock
    /// time of the whole batch (what a throughput measurement wants).
    pub fn pnn_batch_timed(&self, queries: &[Point]) -> (Vec<PnnAnswer>, Duration) {
        let start = Instant::now();
        let answers = self.pnn_batch(queries);
        (answers, start.elapsed())
    }

    /// Answers a moving-PNN workload: `path` is a sequence of query points
    /// along a trajectory; each step carries the full answer plus the delta
    /// against the previous step's answer set.
    ///
    /// With [`crate::UvConfig::safe_region`] enabled (the default) the walk
    /// carries a stability disk: consecutive points inside the previous full
    /// derivation's disk skip the index descent and recompute from the
    /// cached candidate set ([`TrajectoryStep::reused`] is `true`), with
    /// answers bit-identical to a full evaluation. When disabled, every
    /// point is answered through [`QueryEngine::pnn_batch`] as before.
    pub fn pnn_trajectory(&self, path: &[Point]) -> Vec<TrajectoryStep> {
        if !self.index.config().safe_region {
            let answers = self.pnn_batch(path).into_iter().map(|a| (a, false));
            return trajectory_steps(path, answers.collect());
        }
        let mut reuse = None;
        let answers: Vec<(PnnAnswer, bool)> =
            path.iter().map(|q| self.pnn_step(*q, &mut reuse)).collect();
        trajectory_steps(path, answers)
    }
}

/// Folds per-point answers (and their reuse flags) into [`TrajectoryStep`]s
/// with answer-set deltas, in path order. Shared by
/// [`QueryEngine::pnn_trajectory`] and the domain-sharded serving layer
/// ([`crate::shard::ShardedUvSystem`]), whose trajectory queries re-route to
/// a different shard at every shard-boundary crossing while the delta chain
/// stays one unbroken sequence.
pub(crate) fn trajectory_steps(
    path: &[Point],
    answers: Vec<(PnnAnswer, bool)>,
) -> Vec<TrajectoryStep> {
    let mut steps = Vec::with_capacity(answers.len());
    let mut prev = PnnAnswer::default();
    for (position, (answer, reused)) in path.iter().zip(answers) {
        let delta = AnswerDelta::between(&prev, &answer);
        prev = answer.clone();
        steps.push(TrajectoryStep {
            position: *position,
            answer,
            delta,
            reused,
        });
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::UvSystem;
    use crate::{Method, UvConfig};
    use uv_data::{Dataset, GeneratorConfig, QueryBreakdown};

    fn fixture(n: usize) -> (Dataset, UvSystem) {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(n));
        let system = UvSystem::build(
            ds.objects.clone(),
            ds.domain,
            Method::IC,
            UvConfig::default(),
        )
        .unwrap();
        (ds, system)
    }

    fn assert_identical(a: &PnnAnswer, b: &PnnAnswer) {
        assert_eq!(a.probabilities, b.probabilities);
        assert_eq!(a.candidates_examined, b.candidates_examined);
    }

    #[test]
    fn batch_matches_sequential_loop_cached_and_uncached() {
        let (ds, system) = fixture(400);
        let queries = ds.query_points(40, 11);
        let sequential: Vec<PnnAnswer> = queries.iter().map(|q| system.pnn(*q)).collect();
        for cache in [true, false] {
            for workers in [1, 4] {
                let engine = QueryEngine::new(system.index(), system.object_store())
                    .with_workers(workers)
                    .with_cache(cache);
                let batch = engine.pnn_batch(&queries);
                assert_eq!(batch.len(), sequential.len());
                for (b, s) in batch.iter().zip(&sequential) {
                    assert_identical(b, s);
                }
            }
        }
    }

    #[test]
    fn cache_elides_repeat_page_reads() {
        let (ds, system) = fixture(300);
        let engine = QueryEngine::new(system.index(), system.object_store()).with_workers(1);
        assert!(engine.cache_enabled());
        assert_eq!(engine.cached_leaves(), 0);
        let q = ds.query_points(1, 3)[0];

        system.index().store().reset_io();
        let first = engine.pnn(q);
        assert!(first.breakdown.index_io >= 1, "first query reads the leaf");
        assert_eq!(engine.cached_leaves(), 1);
        let reads_after_first = system.index().store().io().reads;

        let second = engine.pnn(q);
        assert_identical(&first, &second);
        assert_eq!(second.breakdown.index_io, 0, "cache hit reads no pages");
        assert_eq!(
            system.index().store().io().reads,
            reads_after_first,
            "no physical page reads on a cache hit"
        );
    }

    #[test]
    fn per_query_io_sums_to_store_counters() {
        let (ds, system) = fixture(350);
        let queries = ds.query_points(60, 23);
        for cache in [true, false] {
            let engine = QueryEngine::new(system.index(), system.object_store())
                .with_workers(4)
                .with_cache(cache);
            system.index().store().reset_io();
            system.object_store().store().reset_io();
            let answers = engine.pnn_batch(&queries);
            let total = QueryBreakdown::sum(answers.iter().map(|a| &a.breakdown));
            assert_eq!(
                total.index_io,
                system.index().store().io().reads,
                "index I/O attribution must be exact (cache={cache})"
            );
            assert_eq!(
                total.object_io,
                system.object_store().store().io().reads,
                "object I/O attribution must be exact (cache={cache})"
            );
        }
    }

    #[test]
    fn out_of_domain_queries_return_empty_answers() {
        let (_, system) = fixture(80);
        let engine = QueryEngine::new(system.index(), system.object_store());
        let outside = Point::new(-50.0, 5_000.0);
        let answer = engine.pnn(outside);
        assert!(answer.probabilities.is_empty());
        let batch = engine.pnn_batch(&[outside, Point::new(5_000.0, 5_000.0)]);
        assert!(batch[0].probabilities.is_empty());
        assert!(!batch[1].probabilities.is_empty());
    }

    #[test]
    fn trajectory_deltas_are_consistent_with_answers() {
        let (_ds, system) = fixture(300);
        let engine = QueryEngine::new(system.index(), system.object_store());
        // A straight path across the domain, dense enough to see handovers.
        let path: Vec<Point> = (0..50)
            .map(|i| {
                let t = i as f64 / 49.0;
                Point::new(500.0 + 9_000.0 * t, 2_000.0 + 6_000.0 * t)
            })
            .collect();
        let steps = engine.pnn_trajectory(&path);
        assert_eq!(steps.len(), path.len());
        // First step: everything entered.
        assert_eq!(steps[0].delta.entered, steps[0].answer.answer_ids());
        assert!(steps[0].delta.left.is_empty());
        // Every later delta must match recomputing it from the answers, and
        // every answer must match the sequential path.
        for w in steps.windows(2) {
            assert_eq!(w[1].delta, AnswerDelta::between(&w[0].answer, &w[1].answer));
        }
        let mut handovers = 0usize;
        for step in &steps {
            assert_identical(&step.answer, &system.pnn(step.position));
            handovers += step.delta.churn();
        }
        assert!(
            handovers > steps[0].answer.answer_ids().len(),
            "a path across the domain must change its neighbourhood"
        );
        // The moving query visits many leaves; the cache should have filled.
        assert!(engine.cached_leaves() > 1);
    }

    #[test]
    fn safe_region_trajectory_is_bit_identical_to_the_disabled_walk() {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(250));
        let on = UvSystem::build(
            ds.objects.clone(),
            ds.domain,
            Method::IC,
            UvConfig::default(),
        )
        .unwrap();
        let off = UvSystem::build(
            ds.objects.clone(),
            ds.domain,
            Method::IC,
            UvConfig::default().with_safe_region(false),
        )
        .unwrap();
        // A slow drift: steps short enough that most land inside the
        // previous derivation's stability disk.
        let path: Vec<Point> = (0..120)
            .map(|i| {
                let t = i as f64;
                Point::new(4_000.0 + 6.0 * t, 5_200.0 + 2.5 * t)
            })
            .collect();
        let engine_on = QueryEngine::new(on.index(), on.object_store());
        let engine_off = QueryEngine::new(off.index(), off.object_store());
        let steps_on = engine_on.pnn_trajectory(&path);
        let steps_off = engine_off.pnn_trajectory(&path);

        // The disabled walk never reuses; the enabled one must, and its
        // first step is always a full derivation.
        assert!(steps_off.iter().all(|s| !s.reused));
        assert!(!steps_on[0].reused);
        let reused = steps_on.iter().filter(|s| s.reused).count();
        assert!(
            reused * 2 > steps_on.len(),
            "a slow drift should mostly stay inside its safe regions \
             ({reused}/{} reused)",
            steps_on.len()
        );

        // Bit-identical answers and deltas, step by step.
        for (a, b) in steps_on.iter().zip(&steps_off) {
            assert_eq!(a.position, b.position);
            assert_identical(&a.answer, &b.answer);
            for ((ia, pa), (ib, pb)) in a.answer.probabilities.iter().zip(&b.answer.probabilities) {
                assert_eq!(ia, ib);
                assert_eq!(pa.to_bits(), pb.to_bits(), "probability bits diverged");
            }
            assert_eq!(a.delta, b.delta);
        }
    }

    #[test]
    fn prescreen_never_drops_a_possible_candidate() {
        let (_ds, system) = fixture(250);
        // For every leaf, dense-sample query points and check the screened
        // entry set yields the same candidates as the full set.
        for (region, _) in system.index().leaves().take(12) {
            let leaf = system
                .index()
                .locate_leaf(region.center())
                .expect("leaf centre is in the domain");
            let (entries, _) = system.index().leaf_entries(leaf);
            let screened = prescreen_entries(entries.clone(), region);
            assert!(screened.len() <= entries.len());
            for sx in 0..4 {
                for sy in 0..4 {
                    let q = Point::new(
                        region.min_x + region.width() * (sx as f64 + 0.5) / 4.0,
                        region.min_y + region.height() * (sy as f64 + 0.5) / 4.0,
                    );
                    let dminmax = |es: &[ObjectEntry]| {
                        es.iter()
                            .map(|e| e.dist_max(q))
                            .fold(f64::INFINITY, f64::min)
                    };
                    let candidates = |es: &[ObjectEntry]| {
                        let d = dminmax(es);
                        es.iter()
                            .filter(|e| e.dist_min(q) <= d + EPS)
                            .map(|e| e.id)
                            .collect::<Vec<_>>()
                    };
                    assert_eq!(
                        candidates(&entries),
                        candidates(&screened),
                        "prescreen changed the candidate set at {q:?}"
                    );
                }
            }
        }
    }
}
