//! Snapshot persistence: save a whole [`UvSystem`] to a versioned binary
//! stream and load it back query-ready, with **zero re-derivation**.
//!
//! The UV-diagram's cost model is *build once, query many* (Sections IV–VI
//! of the paper): deriving reference sets and the adaptive grid is the
//! expensive part, PNN queries are cheap index probes. A deployment that
//! pays the construction cost on every process start throws that asymmetry
//! away — warm restarts, replicas and crash recovery all want the derived
//! state on disk. This module persists it:
//!
//! * the [`uv_data::ObjectStore`] pages, directory and tombstones;
//! * the packed [`uv_rtree::RTree`];
//! * the [`UvIndex`] grid — nodes, member lists, epoch, free slots and the
//!   budget flag, plus its leaf page store;
//! * the per-object [`crate::update::ObjectState`] (reference ids and
//!   [`crate::UpdateSensitivity`]) that dynamic maintenance needs — the
//!   C-pruning d-bounds as bare hull vertices, their radii recomputed
//!   bit-identically from the persisted object centres on load (so snapshot
//!   size no longer grows by a redundant 8 bytes per hull vertex);
//! * the [`UvConfig`], method, domain, object set and construction stats.
//!
//! Runtime-only state — I/O counters, the query engine's per-leaf
//! `OnceLock` cache — is *not* persisted; counters restart at zero and
//! caches refill lazily, exactly as after a cold build.
//!
//! # Format
//!
//! Everything is little-endian, written through [`uv_store::codec`] (not the
//! vendored `serde` shim — the layout is an explicit stability contract):
//!
//! ```text
//! magic   b"UVDSNAP\0"                      8 bytes
//! version u32 (= FORMAT_VERSION)            4 bytes
//! config  u64 FNV-1a fingerprint            8 bytes
//! then, in fixed order, framed sections     tag u8 | len u64 | payload | fnv64
//!   1 CONFIG   2 META      3 OBJECTS   4 OBJECT_PAGES  5 OBJECT_STORE
//!   6 RTREE_PAGES  7 RTREE  8 INDEX_PAGES  9 INDEX  10 REF_TABLE  11 STATS
//!   12 SUBSCRIPTIONS
//! ```
//!
//! Every malformation maps to a typed [`UvError`], never a panic: a wrong
//! magic, flipped byte, truncated stream or invariant-violating payload is
//! [`UvError::SnapshotCorrupt`]; an unknown `version` is
//! [`UvError::SnapshotVersionMismatch`]; a header fingerprint that
//! disagrees with the persisted configuration is [`UvError::ConfigMismatch`];
//! environmental failures are [`UvError::Io`].
//!
//! # Correctness contract
//!
//! A loaded system is *bit-identical* to the saved one: leaf structure and
//! member lists, PNN answers (probabilities, candidate counts, per-query
//! I/O), `cell_area`, epoch — and updates applied after a load equal updates
//! applied without the round-trip (property-tested in
//! `tests/proptest_snapshot.rs`). Loading is `O(bytes)`.

use crate::builder::Method;
use crate::config::UvConfig;
use crate::crobjects::UpdateSensitivity;
use crate::index::{GridNode, UvIndex};
use crate::stats::ConstructionStats;
use crate::subscribe::SubscriptionTable;
use crate::system::UvSystem;
use crate::update::{ObjectState, RefTable};
use crate::UvError;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;
use uv_data::{ObjectStore, UncertainObject};
use uv_geom::{Circle, Point, Rect};
use uv_rtree::RTree;
use uv_store::codec::{corrupt, fnv64, read_section, to_bytes, write_section, Decode, Encode};
use uv_store::{PageStore, PagedList};

/// Magic bytes every snapshot starts with.
pub const MAGIC: [u8; 8] = *b"UVDSNAP\0";

/// The snapshot format version this build reads and writes.
///
/// Version history:
/// * **1** — the PR-4 format: `UpdateSensitivity::d_bounds` persisted as
///   full circles (centre + radius).
/// * **2** — `UvConfig` gained `num_shards`, and the C-pruning d-bounds are
///   persisted as their hull *vertices* only; the radius (the vertex's
///   distance from the subject centre — exactly how the derivation computed
///   it) is recomputed bit-identically on load. Snapshot size no longer
///   carries 8 redundant bytes per hull vertex.
/// * **3** — the *sharded* container's META section now carries the exact
///   shard-axis boundaries (in-place domain growth keeps interior split
///   lines pinned, so the boundaries are no longer derivable from the
///   domain). The unsharded stream layout is unchanged from v2; the
///   persisted budget flag is still read and written bit-faithfully but is
///   now recomputed after every repair and never forces a rebuild.
/// * **4** — `UvConfig` gained `safe_region` and
///   `safe_region_min_radius_fraction`, and every snapshot ends with a
///   SUBSCRIPTIONS section persisting the continuous-query subscription
///   table (client id, position, answer id set; empty for
///   [`UvSystem::save_snapshot`]). Restored clients carry no safe region,
///   so their first tick re-derives and the pushed delta chain continues
///   unbroken.
/// * **5** — `UvConfig` gained the elastic-resharding thresholds
///   `reshard_split_load` and `reshard_merge_load`. The *sharded*
///   container's ROUTER section now persists the slim
///   [`crate::DerivationRouter`] state (config, method, domain, epoch,
///   objects, reference table — the R-tree is rebuilt deterministically on
///   load) instead of a full [`UvSystem`] snapshot, and its META section
///   carries the two grid dimensions `nx × ny` plus both axis boundary
///   vectors, because elastic split/merge makes the layout non-square and
///   non-uniform. The unsharded stream layout is unchanged beyond the two
///   appended config fields.
pub const FORMAT_VERSION: u32 = 5;

mod tag {
    pub const CONFIG: u8 = 1;
    pub const META: u8 = 2;
    pub const OBJECTS: u8 = 3;
    pub const OBJECT_PAGES: u8 = 4;
    pub const OBJECT_STORE: u8 = 5;
    pub const RTREE_PAGES: u8 = 6;
    pub const RTREE: u8 = 7;
    pub const INDEX_PAGES: u8 = 8;
    pub const INDEX: u8 = 9;
    pub const REF_TABLE: u8 = 10;
    pub const STATS: u8 = 11;
    pub const SUBSCRIPTIONS: u8 = 12;
}

// ---------------------------------------------------------------------------
// Codec impls for the core types (field order is part of the format).
// ---------------------------------------------------------------------------

impl Encode for UvConfig {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.curve_samples.write_to(w)?;
        self.max_edge_len_fraction.write_to(w)?;
        self.seed_knn.write_to(w)?;
        self.num_seeds.write_to(w)?;
        self.max_nonleaf.write_to(w)?;
        self.split_threshold.write_to(w)?;
        self.integration_steps.write_to(w)?;
        self.parallel.write_to(w)?;
        self.query_workers.write_to(w)?;
        self.leaf_cache.write_to(w)?;
        self.leaf_split_capacity.write_to(w)?;
        self.num_shards.write_to(w)?;
        self.safe_region.write_to(w)?;
        self.safe_region_min_radius_fraction.write_to(w)?;
        self.reshard_split_load.write_to(w)?;
        self.reshard_merge_load.write_to(w)
    }
}

impl Decode for UvConfig {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        Ok(Self {
            curve_samples: usize::read_from(r)?,
            max_edge_len_fraction: f64::read_from(r)?,
            seed_knn: usize::read_from(r)?,
            num_seeds: usize::read_from(r)?,
            max_nonleaf: usize::read_from(r)?,
            split_threshold: f64::read_from(r)?,
            integration_steps: usize::read_from(r)?,
            parallel: bool::read_from(r)?,
            query_workers: usize::read_from(r)?,
            leaf_cache: bool::read_from(r)?,
            leaf_split_capacity: usize::read_from(r)?,
            num_shards: usize::read_from(r)?,
            safe_region: bool::read_from(r)?,
            safe_region_min_radius_fraction: f64::read_from(r)?,
            reshard_split_load: u64::read_from(r)?,
            reshard_merge_load: u64::read_from(r)?,
        })
    }
}

impl Encode for Method {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        let tag: u8 = match self {
            Method::Basic => 0,
            Method::ICR => 1,
            Method::IC => 2,
        };
        tag.write_to(w)
    }
}

impl Decode for Method {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        match u8::read_from(r)? {
            0 => Ok(Method::Basic),
            1 => Ok(Method::ICR),
            2 => Ok(Method::IC),
            other => Err(corrupt(format!("invalid construction method {other}"))),
        }
    }
}

/// Persists one [`ObjectState`]. The C-pruning d-bounds are written as their
/// hull *vertices* only: each d-bound is the circle through the subject
/// centre around one hull vertex of the possible region, so its radius is
/// `vertex.dist(centre)` — derivable, and therefore not stored (format
/// version 2; version 1 spent 8 extra bytes per vertex on it, which made
/// snapshots grow with region complexity). Shared with the slim router's
/// persistence ([`crate::router`]), which writes the same per-object state.
pub(crate) fn write_object_state<W: Write + ?Sized>(
    state: &ObjectState,
    w: &mut W,
) -> io::Result<()> {
    state.reference_ids.write_to(w)?;
    let s = &state.sensitivity;
    s.knn_dist.write_to(w)?;
    s.prune_radius.write_to(w)?;
    s.seed_dists.write_to(w)?;
    let hull: Vec<Point> = s.d_bounds.iter().map(|b| b.center).collect();
    hull.write_to(w)
}

/// Inverse of [`write_object_state`]: `center` is the subject's centre, from
/// which the d-bound radii are recomputed exactly as the derivation computed
/// them (`Circle::new(v, v.dist(center))`), keeping loaded ≡ saved bit-exact.
pub(crate) fn read_object_state<R: Read + ?Sized>(
    center: Point,
    r: &mut R,
) -> io::Result<ObjectState> {
    let reference_ids = Vec::read_from(r)?;
    let knn_dist = f64::read_from(r)?;
    let prune_radius = f64::read_from(r)?;
    let seed_dists = Vec::read_from(r)?;
    let hull: Vec<Point> = Vec::read_from(r)?;
    let d_bounds = hull
        .into_iter()
        .map(|v| Circle::new(v, v.dist(center)))
        .collect();
    Ok(ObjectState {
        reference_ids,
        sensitivity: UpdateSensitivity {
            knn_dist,
            prune_radius,
            seed_dists,
            d_bounds,
        },
    })
}

fn write_duration<W: Write + ?Sized>(d: Duration, w: &mut W) -> io::Result<()> {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).write_to(w)
}

fn read_duration<R: Read + ?Sized>(r: &mut R) -> io::Result<Duration> {
    Ok(Duration::from_nanos(u64::read_from(r)?))
}

impl Encode for ConstructionStats {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.objects.write_to(w)?;
        write_duration(self.total, w)?;
        write_duration(self.seed_time, w)?;
        write_duration(self.pruning_time, w)?;
        write_duration(self.refinement_time, w)?;
        write_duration(self.indexing_time, w)?;
        self.avg_i_ratio.write_to(w)?;
        self.avg_c_ratio.write_to(w)?;
        self.avg_reference_objects.write_to(w)?;
        self.nonleaf_nodes.write_to(w)?;
        self.leaf_nodes.write_to(w)?;
        self.leaf_pages.write_to(w)
    }
}

impl Decode for ConstructionStats {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        Ok(Self {
            objects: usize::read_from(r)?,
            total: read_duration(r)?,
            seed_time: read_duration(r)?,
            pruning_time: read_duration(r)?,
            refinement_time: read_duration(r)?,
            indexing_time: read_duration(r)?,
            avg_i_ratio: f64::read_from(r)?,
            avg_c_ratio: f64::read_from(r)?,
            avg_reference_objects: f64::read_from(r)?,
            nonleaf_nodes: usize::read_from(r)?,
            leaf_nodes: usize::read_from(r)?,
            leaf_pages: usize::read_from(r)?,
        })
    }
}

// ---------------------------------------------------------------------------
// UvIndex persistence
// ---------------------------------------------------------------------------

/// Writes the persistent state of the grid. The leaf page *contents* belong
/// to the index page store (its own section); here go the node table with
/// per-leaf page-list states, node regions, epoch, free slots and the
/// budget flag. The non-leaf count is derivable and recomputed on load.
fn write_index<W: Write + ?Sized>(index: &UvIndex, w: &mut W) -> io::Result<()> {
    index.epoch.write_to(w)?;
    index.budget_bound.write_to(w)?;
    index.free_slots.write_to(w)?;
    index.nodes.len().write_to(w)?;
    for (node, region) in index.nodes.iter().zip(&index.node_regions) {
        region.write_to(w)?;
        match node {
            GridNode::Internal {
                children,
                object_ids,
            } => {
                0u8.write_to(w)?;
                for child in children {
                    child.write_to(w)?;
                }
                object_ids.write_to(w)?;
            }
            GridNode::Leaf { list, object_ids } => {
                1u8.write_to(w)?;
                list.write_state(w)?;
                object_ids.write_to(w)?;
            }
            GridNode::Free => 2u8.write_to(w)?,
        }
    }
    Ok(())
}

/// Reconstructs the grid over an already-loaded page `store`. Child and
/// free-slot references are validated so corrupt input errors out instead
/// of panicking in a later `locate_leaf`.
fn read_index<R: Read + ?Sized>(
    store: Arc<PageStore>,
    domain: Rect,
    config: UvConfig,
    r: &mut R,
) -> io::Result<UvIndex> {
    let epoch = u64::read_from(r)?;
    let budget_bound = bool::read_from(r)?;
    let free_slots: Vec<u32> = Vec::read_from(r)?;
    let num_nodes = usize::read_from(r)?;
    if num_nodes == 0 {
        return Err(corrupt("grid without a root node"));
    }
    let mut nodes = Vec::with_capacity(num_nodes.min(4_096));
    let mut node_regions = Vec::with_capacity(num_nodes.min(4_096));
    for _ in 0..num_nodes {
        node_regions.push(Rect::read_from(r)?);
        let node = match u8::read_from(r)? {
            0 => {
                let mut children = [0u32; 4];
                for child in &mut children {
                    *child = u32::read_from(r)?;
                }
                GridNode::Internal {
                    children,
                    object_ids: Vec::read_from(r)?,
                }
            }
            1 => GridNode::Leaf {
                list: PagedList::read_state(Arc::clone(&store), r)?,
                object_ids: Vec::read_from(r)?,
            },
            2 => GridNode::Free,
            other => Err(corrupt(format!("invalid grid-node tag {other}")))?,
        };
        nodes.push(node);
    }
    for node in &nodes {
        if let GridNode::Internal { children, .. } = node {
            for child in children {
                if (*child as usize) >= nodes.len() {
                    return Err(corrupt(format!("grid child {child} out of range")));
                }
            }
        }
    }
    for slot in &free_slots {
        if (*slot as usize) >= nodes.len() {
            return Err(corrupt(format!("free slot {slot} out of range")));
        }
        if !matches!(nodes[*slot as usize], GridNode::Free) {
            return Err(corrupt(format!("free slot {slot} names a live node")));
        }
    }
    if matches!(nodes[0], GridNode::Free) {
        return Err(corrupt("the root node is free"));
    }
    let nonleaf_count = nodes
        .iter()
        .filter(|n| matches!(n, GridNode::Internal { .. }))
        .count();
    Ok(UvIndex {
        config,
        domain,
        nodes,
        node_regions,
        nonleaf_count,
        store,
        epoch,
        free_slots,
        budget_bound,
    })
}

// ---------------------------------------------------------------------------
// Save / load
// ---------------------------------------------------------------------------

/// Bytes one framed section adds on top of its payload: tag (1) +
/// length (8) + checksum (8). Shared with the sharded snapshot container
/// ([`crate::shard`]), which frames whole per-shard snapshots as sections.
pub(crate) const SECTION_OVERHEAD: u64 = 17;

impl UvSystem {
    /// Serialises the whole system — object store, R-tree, UV-index,
    /// per-object maintenance state, configuration and construction
    /// statistics — to `w`. Returns the number of bytes written.
    ///
    /// Sections are built and written one at a time, so transient memory
    /// peaks at the largest single section (a page store), not the whole
    /// snapshot. The inverse is [`UvSystem::load_snapshot`]; see the
    /// [module docs](crate::snapshot) for the format and the correctness
    /// contract.
    pub fn save_snapshot<W: Write>(&self, w: &mut W) -> Result<u64, UvError> {
        self.save_snapshot_with_subscriptions(w, &SubscriptionTable::new())
    }

    /// Like [`UvSystem::save_snapshot`], additionally persisting a
    /// continuous-query subscription table
    /// ([`crate::subscribe::SubscriptionEngine::into_table`]) in the
    /// snapshot's SUBSCRIPTIONS section: client ids, positions and answer
    /// id sets. Safe regions and epoch tags are runtime state and are *not*
    /// persisted — a restored client re-derives on its first tick, which
    /// keeps its pushed delta chain unbroken across the restart.
    pub fn save_snapshot_with_subscriptions<W: Write>(
        &self,
        w: &mut W,
        subscriptions: &SubscriptionTable,
    ) -> Result<u64, UvError> {
        let config_payload = to_bytes(&self.config);

        w.write_all(&MAGIC)?;
        FORMAT_VERSION.write_to(w)?;
        fnv64(&config_payload).write_to(w)?;
        let mut written: u64 = MAGIC.len() as u64 + 4 + 8;
        let emit = |w: &mut W, tag: u8, payload: Vec<u8>| -> io::Result<u64> {
            write_section(w, tag, &payload)?;
            Ok(SECTION_OVERHEAD + payload.len() as u64)
        };

        written += emit(w, tag::CONFIG, config_payload)?;

        let mut meta = Vec::new();
        self.domain.write_to(&mut meta)?;
        self.method.write_to(&mut meta)?;
        written += emit(w, tag::META, meta)?;

        written += emit(w, tag::OBJECTS, to_bytes(&self.objects))?;
        written += emit(w, tag::OBJECT_PAGES, to_bytes(&**self.object_store.store()))?;

        let mut object_store_state = Vec::new();
        self.object_store.write_state(&mut object_store_state)?;
        written += emit(w, tag::OBJECT_STORE, object_store_state)?;

        written += emit(w, tag::RTREE_PAGES, to_bytes(&**self.rtree.store()))?;
        let mut rtree_state = Vec::new();
        self.rtree.write_state(&mut rtree_state)?;
        written += emit(w, tag::RTREE, rtree_state)?;

        written += emit(w, tag::INDEX_PAGES, to_bytes(&**self.index.store()))?;
        let mut index_state = Vec::new();
        write_index(&self.index, &mut index_state)?;
        written += emit(w, tag::INDEX, index_state)?;

        let mut ref_table: Vec<(u32, &ObjectState)> =
            self.ref_table.iter().map(|(id, s)| (*id, s)).collect();
        ref_table.sort_unstable_by_key(|(id, _)| *id);
        let mut ref_payload = Vec::new();
        ref_table.len().write_to(&mut ref_payload)?;
        for (id, state) in &ref_table {
            id.write_to(&mut ref_payload)?;
            write_object_state(state, &mut ref_payload)?;
        }
        written += emit(w, tag::REF_TABLE, ref_payload)?;

        written += emit(w, tag::STATS, to_bytes(&self.construction))?;

        let mut subs_payload = Vec::new();
        subscriptions.len().write_to(&mut subs_payload)?;
        for (id, client) in subscriptions.iter() {
            id.write_to(&mut subs_payload)?;
            client.position().write_to(&mut subs_payload)?;
            client.answer_ids().to_vec().write_to(&mut subs_payload)?;
        }
        written += emit(w, tag::SUBSCRIPTIONS, subs_payload)?;
        w.flush()?;
        Ok(written)
    }

    /// Saves a snapshot to a file (created or truncated), returning the
    /// number of bytes written.
    pub fn save_snapshot_to_path<P: AsRef<Path>>(&self, path: P) -> Result<u64, UvError> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        self.save_snapshot(&mut w)
    }

    /// Loads a snapshot written by [`UvSystem::save_snapshot`],
    /// reconstructing a query-ready system in `O(bytes)` with zero
    /// re-derivation. I/O counters start at zero; query-engine caches
    /// refill lazily.
    pub fn load_snapshot<R: Read>(r: &mut R) -> Result<UvSystem, UvError> {
        Ok(Self::load_snapshot_inner(r, None)?.0)
    }

    /// Like [`UvSystem::load_snapshot`], additionally restoring the
    /// persisted subscription table. Restored clients carry their saved
    /// position and answer id set but no safe region; resume serving with
    /// [`crate::subscribe::SubscriptionEngine::with_table`].
    pub fn load_snapshot_with_subscriptions<R: Read>(
        r: &mut R,
    ) -> Result<(UvSystem, SubscriptionTable), UvError> {
        Self::load_snapshot_inner(r, None)
    }

    fn load_snapshot_inner<R: Read>(
        r: &mut R,
        expected: Option<&UvConfig>,
    ) -> Result<(UvSystem, SubscriptionTable), UvError> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(UvError::SnapshotCorrupt(format!("bad magic {magic:02x?}")));
        }
        let version = u32::read_from(r)?;
        if version != FORMAT_VERSION {
            return Err(UvError::SnapshotVersionMismatch {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let fingerprint = u64::read_from(r)?;
        if let Some(expected) = expected {
            // Reject a wrong tuning from the header alone — before paying
            // the O(bytes) reconstruction (the decoded config is compared
            // again below, so a fingerprint collision cannot slip through).
            if fnv64(&to_bytes(expected)) != fingerprint {
                return Err(UvError::ConfigMismatch);
            }
        }

        let config_payload = read_section(r, tag::CONFIG)?;
        if fnv64(&config_payload) != fingerprint {
            return Err(UvError::ConfigMismatch);
        }
        let config: UvConfig = uv_store::codec::from_bytes(&config_payload)?;
        config
            .validate()
            .map_err(|e| UvError::SnapshotCorrupt(format!("persisted configuration: {e}")))?;

        let meta = read_section(r, tag::META)?;
        let mut meta_r: &[u8] = &meta;
        let domain = Rect::read_from(&mut meta_r)?;
        let method = Method::read_from(&mut meta_r)?;

        let objects: Vec<UncertainObject> =
            uv_store::codec::from_bytes(&read_section(r, tag::OBJECTS)?)?;

        let object_pages: PageStore =
            uv_store::codec::from_bytes(&read_section(r, tag::OBJECT_PAGES)?)?;
        let object_pages = Arc::new(object_pages);
        let store_state = read_section(r, tag::OBJECT_STORE)?;
        let object_store =
            ObjectStore::read_state(object_pages, &objects, &mut store_state.as_slice())?;

        let rtree_pages: PageStore =
            uv_store::codec::from_bytes(&read_section(r, tag::RTREE_PAGES)?)?;
        let rtree_state = read_section(r, tag::RTREE)?;
        let rtree = RTree::read_state(Arc::new(rtree_pages), &mut rtree_state.as_slice())?;
        if rtree.len() != objects.len() {
            return Err(UvError::SnapshotCorrupt(format!(
                "R-tree indexes {} objects, dataset holds {}",
                rtree.len(),
                objects.len()
            )));
        }

        let index_pages: PageStore =
            uv_store::codec::from_bytes(&read_section(r, tag::INDEX_PAGES)?)?;
        let index_state = read_section(r, tag::INDEX)?;
        let index = read_index(
            Arc::new(index_pages),
            domain,
            config,
            &mut index_state.as_slice(),
        )?;

        let ref_payload = read_section(r, tag::REF_TABLE)?;
        let mut ref_r: &[u8] = &ref_payload;
        let entries = usize::read_from(&mut ref_r)?;
        let centers: std::collections::HashMap<u32, Point> =
            objects.iter().map(|o| (o.id, o.center())).collect();
        let mut ref_table = RefTable::with_capacity(entries.min(4_096));
        for _ in 0..entries {
            let id = u32::read_from(&mut ref_r)?;
            // The subject centre anchors the d-bound radius recomputation,
            // so an entry for an unknown object is unreadable corruption.
            let Some(center) = centers.get(&id) else {
                return Err(UvError::SnapshotCorrupt(format!(
                    "reference table names unknown object {id}"
                )));
            };
            let state = read_object_state(*center, &mut ref_r)?;
            if ref_table.insert(id, state).is_some() {
                return Err(UvError::SnapshotCorrupt(format!(
                    "object {id} appears twice in the reference table"
                )));
            }
        }
        if ref_table.len() != objects.len()
            || objects.iter().any(|o| !ref_table.contains_key(&o.id))
        {
            return Err(UvError::SnapshotCorrupt(
                "reference table does not cover the live object set".into(),
            ));
        }

        let construction: ConstructionStats =
            uv_store::codec::from_bytes(&read_section(r, tag::STATS)?)?;

        let subs_payload = read_section(r, tag::SUBSCRIPTIONS)?;
        let mut subs_r: &[u8] = &subs_payload;
        let num_clients = usize::read_from(&mut subs_r)?;
        let live: std::collections::HashSet<u32> = objects.iter().map(|o| o.id).collect();
        let mut subscriptions = SubscriptionTable::new();
        let mut prev_id: Option<u64> = None;
        for _ in 0..num_clients {
            let id = u64::read_from(&mut subs_r)?;
            if prev_id.is_some_and(|p| p >= id) {
                return Err(UvError::SnapshotCorrupt(format!(
                    "subscription client ids not strictly ascending at {id}"
                )));
            }
            prev_id = Some(id);
            let position = Point::read_from(&mut subs_r)?;
            if !position.x.is_finite() || !position.y.is_finite() {
                return Err(UvError::SnapshotCorrupt(format!(
                    "subscription client {id} has a non-finite position"
                )));
            }
            let answer_ids: Vec<u32> = Vec::read_from(&mut subs_r)?;
            if answer_ids.windows(2).any(|w| w[0] >= w[1]) {
                return Err(UvError::SnapshotCorrupt(format!(
                    "subscription client {id} answer ids not strictly ascending"
                )));
            }
            if let Some(dead) = answer_ids.iter().find(|a| !live.contains(a)) {
                return Err(UvError::SnapshotCorrupt(format!(
                    "subscription client {id} answers with unknown object {dead}"
                )));
            }
            // The restored answer set is exactly the saved system's answer
            // at this position, so tag the client with the loaded epoch:
            // it is current until the next update.
            subscriptions.insert_persisted(id, position, answer_ids, index.epoch);
        }
        if !subs_r.is_empty() {
            return Err(UvError::SnapshotCorrupt(
                "subscription section has trailing bytes".into(),
            ));
        }

        // The subscriptions section is the last one: anything after it (a
        // second snapshot concatenated on, a partially overwritten longer
        // file) is corruption, not data to ignore.
        let mut probe = [0u8; 1];
        if r.read(&mut probe)? != 0 {
            return Err(UvError::SnapshotCorrupt(
                "trailing bytes after the final section".into(),
            ));
        }

        Ok((
            UvSystem {
                objects,
                domain,
                object_store,
                rtree,
                index,
                construction,
                config,
                method,
                ref_table,
            },
            subscriptions,
        ))
    }

    /// Loads a snapshot from a file.
    pub fn load_snapshot_from_path<P: AsRef<Path>>(path: P) -> Result<UvSystem, UvError> {
        let file = std::fs::File::open(path)?;
        let mut r = std::io::BufReader::new(file);
        Self::load_snapshot(&mut r)
    }

    /// Like [`UvSystem::load_snapshot`], but additionally requires the
    /// persisted configuration to equal `expected` — the replica-fleet
    /// use case where every process is compiled against one known tuning.
    /// Returns [`UvError::ConfigMismatch`] otherwise; a wrong tuning is
    /// rejected from the header fingerprint alone, before any section is
    /// reconstructed.
    pub fn load_snapshot_expecting<R: Read>(
        r: &mut R,
        expected: &UvConfig,
    ) -> Result<UvSystem, UvError> {
        let (system, _) = Self::load_snapshot_inner(r, Some(expected))?;
        if system.config() != expected {
            return Err(UvError::ConfigMismatch);
        }
        Ok(system)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateBatch;
    use uv_data::{Dataset, GeneratorConfig};
    use uv_geom::Point;

    fn fixture(n: usize) -> (Dataset, UvSystem) {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(n));
        let config = UvConfig::default()
            .with_seed_knn(24)
            .with_leaf_split_capacity(16);
        let sys = UvSystem::build(ds.objects.clone(), ds.domain, Method::IC, config).unwrap();
        (ds, sys)
    }

    fn snapshot_bytes(sys: &UvSystem) -> Vec<u8> {
        let mut bytes = Vec::new();
        let written = sys.save_snapshot(&mut bytes).expect("save must succeed");
        assert_eq!(written, bytes.len() as u64);
        bytes
    }

    fn assert_bit_identical(ds: &Dataset, a: &UvSystem, b: &UvSystem) {
        assert_eq!(a.epoch(), b.epoch());
        assert_eq!(a.domain(), b.domain());
        assert_eq!(a.objects(), b.objects());
        assert_eq!(a.index().num_leaf_nodes(), b.index().num_leaf_nodes());
        assert_eq!(a.index().num_nonleaf_nodes(), b.index().num_nonleaf_nodes());
        assert_eq!(a.index().num_leaf_pages(), b.index().num_leaf_pages());
        let leaves = |s: &UvSystem| {
            s.index()
                .leaves()
                .map(|(r, ids)| (*r, ids.to_vec()))
                .collect::<Vec<_>>()
        };
        assert_eq!(leaves(a), leaves(b));
        for o in a.objects() {
            assert_eq!(a.cell_area(o.id).to_bits(), b.cell_area(o.id).to_bits());
            assert_eq!(
                a.object_state(o.id).map(|s| s.reference_ids().to_vec()),
                b.object_state(o.id).map(|s| s.reference_ids().to_vec())
            );
            // The whole sensitivity — including the d-bound radii that the
            // loader recomputes from the persisted hull vertices — must be
            // bit-identical, or maintenance after a load would diverge.
            assert_eq!(
                a.object_state(o.id).map(|s| s.sensitivity()),
                b.object_state(o.id).map(|s| s.sensitivity()),
                "sensitivity of object {} diverged through the round-trip",
                o.id
            );
        }
        a.reset_io();
        b.reset_io();
        for q in ds.query_points(20, 41) {
            let pa = a.pnn(q);
            let pb = b.pnn(q);
            assert_eq!(
                pa.probabilities, pb.probabilities,
                "answers differ at {q:?}"
            );
            assert_eq!(pa.candidates_examined, pb.candidates_examined);
            assert_eq!(pa.breakdown.index_io, pb.breakdown.index_io);
            assert_eq!(pa.breakdown.object_io, pb.breakdown.object_io);
        }
    }

    #[test]
    fn roundtrip_is_bit_identical_and_updatable() {
        let (ds, mut sys) = fixture(150);
        // Exercise a non-zero epoch, tombstones and free slots before saving.
        sys.updater()
            .delete(3)
            .move_to(7, Point::new(4_321.0, 1_234.0))
            .insert(UncertainObject::with_gaussian(
                900,
                Point::new(2_500.0, 2_500.0),
                20.0,
            ))
            .commit()
            .unwrap();
        let bytes = snapshot_bytes(&sys);
        let mut loaded = UvSystem::load_snapshot(&mut bytes.as_slice()).unwrap();
        assert_bit_identical(&ds, &sys, &loaded);

        // Updates after the round-trip equal updates without it.
        let batch = UpdateBatch::new()
            .insert(UncertainObject::with_uniform(
                901,
                Point::new(6_000.0, 3_000.0),
                15.0,
            ))
            .delete(11)
            .move_to(42, Point::new(1_111.0, 8_888.0));
        let sa = sys.apply(batch.clone()).unwrap();
        let sb = loaded.apply(batch).unwrap();
        assert_eq!(sa.leaves_refined, sb.leaves_refined);
        assert_eq!(sa.objects_rederived, sb.objects_rederived);
        assert_eq!(sa.epoch, sb.epoch);
        assert_bit_identical(&ds, &sys, &loaded);
    }

    #[test]
    fn empty_and_tiny_systems_roundtrip() {
        let domain = Rect::square(1_000.0);
        let sys = UvSystem::with_defaults(Vec::new(), domain);
        let bytes = snapshot_bytes(&sys);
        let mut loaded = UvSystem::load_snapshot(&mut bytes.as_slice()).unwrap();
        assert!(loaded.objects().is_empty());
        assert!(loaded
            .pnn(Point::new(500.0, 500.0))
            .probabilities
            .is_empty());
        // The loaded empty system accepts inserts.
        loaded
            .insert_object(UncertainObject::with_uniform(
                0,
                Point::new(400.0, 400.0),
                10.0,
            ))
            .unwrap();
        assert_eq!(loaded.objects().len(), 1);

        let one = UvSystem::with_defaults(
            vec![UncertainObject::with_gaussian(5, Point::new(1.0, 2.0), 3.0)],
            domain,
        );
        let bytes = snapshot_bytes(&one);
        let loaded = UvSystem::load_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.objects(), one.objects());
    }

    #[test]
    fn construction_stats_and_config_survive() {
        let (_, sys) = fixture(120);
        let bytes = snapshot_bytes(&sys);
        let loaded = UvSystem::load_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(loaded.config(), sys.config());
        assert_eq!(loaded.method(), sys.method());
        let (a, b) = (loaded.construction_stats(), sys.construction_stats());
        assert_eq!(a.objects, b.objects);
        assert_eq!(a.leaf_nodes, b.leaf_nodes);
        assert_eq!(a.nonleaf_nodes, b.nonleaf_nodes);
        assert_eq!(a.leaf_pages, b.leaf_pages);
        assert_eq!(a.avg_c_ratio.to_bits(), b.avg_c_ratio.to_bits());
        assert_eq!(a.total, b.total);
    }

    #[test]
    fn header_corruption_yields_typed_errors() {
        let (_, sys) = fixture(60);
        let bytes = snapshot_bytes(&sys);

        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            UvSystem::load_snapshot(&mut bad.as_slice()),
            Err(UvError::SnapshotCorrupt(_))
        ));

        // Unsupported version.
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&(FORMAT_VERSION + 7).to_le_bytes());
        assert_eq!(
            UvSystem::load_snapshot(&mut bad.as_slice()).unwrap_err(),
            UvError::SnapshotVersionMismatch {
                found: FORMAT_VERSION + 7,
                supported: FORMAT_VERSION,
            }
        );

        // Fingerprint/config disagreement.
        let mut bad = bytes.clone();
        bad[12] ^= 0xA5;
        assert_eq!(
            UvSystem::load_snapshot(&mut bad.as_slice()).unwrap_err(),
            UvError::ConfigMismatch
        );

        // Truncation at every boundary class: header, mid-section, checksum.
        for cut in [3, 15, 40, bytes.len() / 2, bytes.len() - 1] {
            let err = UvSystem::load_snapshot(&mut &bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, UvError::SnapshotCorrupt(_)),
                "truncation at {cut} gave {err:?}"
            );
        }

        // Trailing garbage — e.g. two snapshots concatenated — is rejected,
        // not silently half-loaded.
        let mut doubled = bytes.clone();
        doubled.extend_from_slice(&bytes);
        assert!(matches!(
            UvSystem::load_snapshot(&mut doubled.as_slice()),
            Err(UvError::SnapshotCorrupt(_))
        ));
    }

    #[test]
    fn ref_table_section_persists_d_bounds_as_bare_vertices() {
        // Format-2 size regression, checked against the *actual bytes*: the
        // REF_TABLE section must be exactly as long as the hull-vertex
        // encoding predicts — 16 bytes per d-bound vertex, not the 24 the
        // PR-4 format spent (vertex + redundant radius). An accidental
        // re-persist of the radius (or any new field) fails this.
        let (_, sys) = fixture(100);
        let bytes = snapshot_bytes(&sys);

        // Walk the framing: magic(8) + version(4) + fingerprint(8), then
        // sections of tag(1) + len(8) + payload + fnv64(8).
        let mut at = 8 + 4 + 8;
        let mut ref_payload_len = None;
        while at < bytes.len() {
            let tag = bytes[at];
            let len = u64::from_le_bytes(bytes[at + 1..at + 9].try_into().unwrap()) as usize;
            if tag == tag::REF_TABLE {
                ref_payload_len = Some(len);
            }
            at += 1 + 8 + len + 8;
        }
        let actual = ref_payload_len.expect("snapshot contains a REF_TABLE section");

        let expected: usize = 8 // entry count
            + sys
                .objects()
                .iter()
                .map(|o| {
                    let state = sys.object_state(o.id).expect("live object has state");
                    let s = state.sensitivity();
                    4 // id
                        + 8 + 4 * state.reference_ids().len() // Vec<u32>
                        + 8 // knn_dist
                        + 8 // prune_radius
                        + 8 + 8 * s.seed_dists().map_or(0, <[f64]>::len) // Vec<f64>
                        + 8 + 16 * s.d_bounds().len() // Vec<Point>: vertices only
                })
                .sum::<usize>();
        assert_eq!(
            actual, expected,
            "REF_TABLE section size diverged from the hull-vertex encoding"
        );
        // The fixture exercises the regression for real: d-bounds exist.
        assert!(sys.objects().iter().any(|o| !sys
            .object_state(o.id)
            .unwrap()
            .sensitivity()
            .d_bounds()
            .is_empty()));
    }

    #[test]
    fn expecting_variant_rejects_other_configs() {
        let (_, sys) = fixture(60);
        let bytes = snapshot_bytes(&sys);
        let loaded =
            UvSystem::load_snapshot_expecting(&mut bytes.as_slice(), sys.config()).unwrap();
        assert_eq!(loaded.config(), sys.config());
        let other = UvConfig::default().with_seed_knn(99);
        assert_eq!(
            UvSystem::load_snapshot_expecting(&mut bytes.as_slice(), &other).unwrap_err(),
            UvError::ConfigMismatch
        );
    }

    #[test]
    fn save_to_path_and_load_from_path() {
        let (ds, sys) = fixture(80);
        let path = std::env::temp_dir().join(format!(
            "uv-snapshot-test-{}-{:?}.bin",
            std::process::id(),
            std::thread::current().id()
        ));
        let written = sys.save_snapshot_to_path(&path).unwrap();
        assert_eq!(written, std::fs::metadata(&path).unwrap().len());
        let loaded = UvSystem::load_snapshot_from_path(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_bit_identical(&ds, &sys, &loaded);
        // A missing file is an I/O error, not corruption.
        assert!(matches!(
            UvSystem::load_snapshot_from_path(&path),
            Err(UvError::Io(_))
        ));
    }

    #[test]
    fn subscription_table_roundtrips_and_resumes_the_delta_chain() {
        use crate::subscribe::SubscriptionEngine;

        let (ds, sys) = fixture(120);
        let queries = ds.query_points(6, 77);
        let mut engine = SubscriptionEngine::new(&sys);
        for (i, q) in queries.iter().enumerate() {
            engine.subscribe(i as u64 * 10, *q).unwrap();
        }
        let table = engine.into_table();

        let mut bytes = Vec::new();
        sys.save_snapshot_with_subscriptions(&mut bytes, &table)
            .unwrap();
        let (loaded, restored) =
            UvSystem::load_snapshot_with_subscriptions(&mut bytes.as_slice()).unwrap();

        assert_eq!(restored.len(), table.len());
        for (id, client) in table.iter() {
            let r = restored.client(id).expect("client survives the roundtrip");
            assert_eq!(r.position(), client.position());
            assert_eq!(r.answer_ids(), client.answer_ids());
            // Safe regions are runtime-only state: rebuilt on first miss.
            assert!(r.safe_region().is_none());
        }

        // Resuming from the restored table must continue the delta chain:
        // each pushed delta applied to the *persisted* answer set yields the
        // oracle answer at the new position.
        let mut resumed = SubscriptionEngine::with_table(&loaded, restored);
        let moves: Vec<(u64, Point)> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| (i as u64 * 10, Point::new(q.x + 3.0, q.y - 2.0)))
            .collect();
        let deltas = resumed.tick(&moves);
        let after = resumed.into_table();
        for (id, p) in &moves {
            let oracle: Vec<u32> = loaded
                .pnn(*p)
                .probabilities
                .iter()
                .map(|(id, _)| *id)
                .collect();
            assert_eq!(
                after.client(*id).unwrap().answer_ids(),
                oracle.as_slice(),
                "client {id} diverged from the oracle after resume"
            );
        }
        for (id, delta) in &deltas {
            let before = table.client(*id).unwrap().answer_ids();
            assert!(delta.entered.iter().all(|e| !before.contains(e)));
            assert!(delta.left.iter().all(|l| before.contains(l)));
        }
    }

    #[test]
    fn plain_save_persists_an_empty_subscription_table() {
        let (_, sys) = fixture(60);
        let bytes = snapshot_bytes(&sys);
        let (_, restored) =
            UvSystem::load_snapshot_with_subscriptions(&mut bytes.as_slice()).unwrap();
        assert!(restored.is_empty());
    }

    /// Re-frames the final (SUBSCRIPTIONS) section of a valid snapshot with
    /// a crafted payload, keeping the checksum consistent so the *semantic*
    /// validation — not the framing — is what rejects it.
    fn with_subscription_payload(sys: &UvSystem, payload: &[u8]) -> Vec<u8> {
        let mut bytes = snapshot_bytes(sys);
        // The empty table's section is SECTION_OVERHEAD + 8 bytes (count 0).
        bytes.truncate(bytes.len() - (SECTION_OVERHEAD as usize + 8));
        write_section(&mut bytes, tag::SUBSCRIPTIONS, payload).unwrap();
        bytes
    }

    #[test]
    fn subscription_corruption_yields_typed_errors() {
        let (_, sys) = fixture(60);
        let live = sys.objects()[0].id;

        let encode = |clients: &[(u64, Point, Vec<u32>)]| {
            let mut p = Vec::new();
            clients.len().write_to(&mut p).unwrap();
            for (id, pos, ids) in clients {
                id.write_to(&mut p).unwrap();
                pos.write_to(&mut p).unwrap();
                ids.write_to(&mut p).unwrap();
            }
            p
        };
        let expect_corrupt = |payload: Vec<u8>, what: &str| {
            let bytes = with_subscription_payload(&sys, &payload);
            match UvSystem::load_snapshot_with_subscriptions(&mut bytes.as_slice()) {
                Err(UvError::SnapshotCorrupt(msg)) => assert!(
                    msg.contains(what),
                    "expected {what:?} in the error, got {msg:?}"
                ),
                other => panic!("expected SnapshotCorrupt for {what}, got {other:?}"),
            }
        };

        let p = Point::new(10.0, 10.0);
        expect_corrupt(
            encode(&[(5, p, vec![live]), (5, p, vec![live])]),
            "not strictly ascending",
        );
        expect_corrupt(
            encode(&[(1, Point::new(f64::NAN, 0.0), vec![live])]),
            "non-finite position",
        );
        expect_corrupt(
            encode(&[(1, p, vec![live, live])]),
            "answer ids not strictly ascending",
        );
        expect_corrupt(encode(&[(1, p, vec![u32::MAX])]), "unknown object");
        let mut trailing = encode(&[(1, p, vec![live])]);
        trailing.push(0xAB);
        expect_corrupt(trailing, "trailing bytes");

        // A valid payload through the same framing still loads.
        let ok = with_subscription_payload(&sys, &encode(&[(1, p, vec![live])]));
        let (_, restored) = UvSystem::load_snapshot_with_subscriptions(&mut ok.as_slice()).unwrap();
        assert_eq!(restored.len(), 1);
    }
}
