//! Exact UV-cell construction (Algorithm 1) and r-object extraction.
//!
//! The UV-cell `U_i` of an object (Definition 1) is obtained by starting from
//! the whole domain and subtracting the outside region of every other object.
//! Objects whose UV-edge actually bounds the final cell are the *r-objects*
//! `F_i` of `O_i`; they are what the ICR construction method indexes, and a
//! subset of the cr-objects produced by pruning.

use crate::config::UvConfig;
use crate::region::PossibleRegion;
use uv_data::{ObjectId, UncertainObject};
use uv_geom::{ClipScratch, OutsideRegion, Rect};

/// A UV-cell together with the objects that define its boundary.
#[derive(Debug, Clone)]
pub struct UvCell {
    /// The object this cell belongs to.
    pub object_id: ObjectId,
    /// Polygonal approximation of the cell (exact sign predicate, polyline
    /// boundary).
    pub region: PossibleRegion,
    /// Objects whose UV-edges bound the final cell (`F_i`).
    pub r_objects: Vec<ObjectId>,
    /// Objects whose outside regions changed the region at some point during
    /// construction (a superset of `r_objects`).
    pub contributors: Vec<ObjectId>,
}

impl UvCell {
    /// Area of the cell.
    pub fn area(&self) -> f64 {
        self.region.area()
    }

    /// `true` when `q` has the cell's object as a possible nearest neighbour.
    pub fn contains(&self, q: uv_geom::Point) -> bool {
        self.region.contains(q)
    }
}

/// Relative tolerance used to decide whether a boundary vertex lies on an
/// object's UV-edge when extracting r-objects.
const EDGE_TOLERANCE: f64 = 1e-6;

/// Builds the exact (polyline-approximated) UV-cell of `subject` by clipping
/// against every object yielded by `others` (Algorithm 1 specialised to one
/// object).
///
/// `others` may be the full dataset (the "Basic" method) or a pruned
/// candidate set (the refinement step of ICR); correctness only requires that
/// it contains every true r-object of `subject`.
pub fn build_exact_cell<'a>(
    subject: &UncertainObject,
    others: impl IntoIterator<Item = &'a UncertainObject> + 'a,
    domain: &Rect,
    config: &UvConfig,
) -> UvCell {
    let max_edge_len = config.max_edge_len(domain.width().max(domain.height()));
    let mut region = PossibleRegion::full(subject.mbc(), domain);
    let mut contributors = Vec::new();
    let mut contributor_circles = Vec::new();
    let mut clip_scratch = ClipScratch::default();
    for other in others {
        if other.id == subject.id {
            continue;
        }
        if region.clip_with(
            other.mbc(),
            config.curve_samples,
            max_edge_len,
            &mut clip_scratch,
        ) {
            contributors.push(other.id);
            contributor_circles.push(other.mbc());
        }
    }

    // A contributor clipped the region at some stage, but a later clip may
    // have removed its edge from the final boundary. Keep as r-objects only
    // the contributors whose UV-edge still touches the final boundary.
    let scale = domain.width().max(domain.height());
    let tol = EDGE_TOLERANCE * scale;
    let vertices = region.polygon().vertices().to_vec();
    let r_objects = contributors
        .iter()
        .zip(&contributor_circles)
        .filter(|(_, circle)| {
            let outside = OutsideRegion::new(subject.mbc(), **circle);
            vertices.iter().any(|v| outside.signed(*v).abs() <= tol)
        })
        .map(|(id, _)| *id)
        .collect();

    UvCell {
        object_id: subject.id,
        region,
        r_objects,
        contributors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uv_data::{Dataset, GeneratorConfig};
    use uv_geom::Point;

    fn obj(id: u32, x: f64, y: f64, r: f64) -> UncertainObject {
        UncertainObject::with_uniform(id, Point::new(x, y), r)
    }

    fn small_config() -> UvConfig {
        UvConfig {
            parallel: false,
            ..UvConfig::default()
        }
    }

    #[test]
    fn single_object_cell_is_the_domain() {
        let domain = Rect::square(1000.0);
        let o = obj(0, 500.0, 500.0, 20.0);
        let cell = build_exact_cell(&o, [], &domain, &small_config());
        assert!((cell.area() - 1_000_000.0).abs() < 1e-6);
        assert!(cell.r_objects.is_empty());
        assert!(cell.contains(Point::new(999.0, 1.0)));
    }

    #[test]
    fn two_point_objects_split_space_like_voronoi() {
        // Zero-radius objects: the UV-diagram degenerates to the classical
        // Voronoi diagram (Section I).
        let domain = Rect::square(100.0);
        let a = obj(0, 25.0, 50.0, 0.0);
        let b = obj(1, 75.0, 50.0, 0.0);
        let config = small_config();
        let cell_a = build_exact_cell(&a, [&b], &domain, &config);
        let cell_b = build_exact_cell(&b, [&a], &domain, &config);
        // Each cell is (approximately) half of the domain.
        assert!(
            (cell_a.area() - 5000.0).abs() < 50.0,
            "area {}",
            cell_a.area()
        );
        assert!((cell_b.area() - 5000.0).abs() < 50.0);
        assert_eq!(cell_a.r_objects, vec![1]);
        assert_eq!(cell_b.r_objects, vec![0]);
        // Points on each side belong to the right cell.
        assert!(cell_a.contains(Point::new(10.0, 50.0)));
        assert!(!cell_a.contains(Point::new(90.0, 50.0)));
        assert!(cell_b.contains(Point::new(90.0, 50.0)));
    }

    #[test]
    fn uncertain_cells_overlap_around_the_bisector() {
        // With non-zero radii the two cells overlap in a band between the two
        // UV-edges: query points there have BOTH objects as answers.
        let domain = Rect::square(100.0);
        let a = obj(0, 25.0, 50.0, 5.0);
        let b = obj(1, 75.0, 50.0, 5.0);
        let config = small_config();
        let cell_a = build_exact_cell(&a, [&b], &domain, &config);
        let cell_b = build_exact_cell(&b, [&a], &domain, &config);
        let mid = Point::new(50.0, 50.0);
        assert!(cell_a.contains(mid));
        assert!(cell_b.contains(mid));
        assert!(cell_a.area() + cell_b.area() > 10_000.0);
        // Far on B's side, A is no longer possible.
        assert!(!cell_a.contains(Point::new(95.0, 50.0)));
    }

    #[test]
    fn cell_membership_matches_distance_semantics() {
        // For any point in O_i's cell, distmin(O_i) <= min_j distmax(O_j);
        // outside the cell the opposite strict inequality holds for some j.
        let domain = Rect::square(500.0);
        let objects: Vec<UncertainObject> = vec![
            obj(0, 100.0, 100.0, 10.0),
            obj(1, 400.0, 120.0, 15.0),
            obj(2, 250.0, 400.0, 8.0),
            obj(3, 260.0, 240.0, 12.0),
        ];
        let config = small_config();
        for subject in &objects {
            let others: Vec<&UncertainObject> =
                objects.iter().filter(|o| o.id != subject.id).collect();
            let cell = build_exact_cell(subject, others.iter().copied(), &domain, &config);
            // Probe a grid of points and compare with the definition.
            let mut checked = 0;
            for gx in 0..20 {
                for gy in 0..20 {
                    let q = Point::new(12.5 + 25.0 * gx as f64, 12.5 + 25.0 * gy as f64);
                    let in_cell = cell.contains(q);
                    let dmin_subject = subject.dist_min(q);
                    let dominated = others.iter().any(|o| o.dist_max(q) < dmin_subject - 1e-9);
                    // `dominated` means the subject cannot be the NN at q.
                    if dominated && in_cell {
                        // Allow a thin tolerance band around the boundary for
                        // the polyline approximation.
                        let margin = others
                            .iter()
                            .map(|o| dmin_subject - o.dist_max(q))
                            .fold(f64::NEG_INFINITY, f64::max);
                        assert!(
                            margin < 1.0,
                            "point {q:?} is {margin} inside the outside region yet in the cell of {}",
                            subject.id
                        );
                    }
                    if !dominated {
                        assert!(
                            in_cell,
                            "point {q:?} should be in the cell of {}",
                            subject.id
                        );
                    }
                    checked += 1;
                }
            }
            assert_eq!(checked, 400);
        }
    }

    #[test]
    fn r_objects_are_a_subset_of_contributors() {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(60));
        let config = small_config();
        let subject = &ds.objects[0];
        let cell = build_exact_cell(subject, ds.objects.iter().skip(1), &ds.domain, &config);
        for r in &cell.r_objects {
            assert!(cell.contributors.contains(r));
        }
        assert!(!cell.r_objects.is_empty());
        // The cell is never empty and always contains its own centre.
        assert!(cell.area() > 0.0);
        assert!(cell.contains(subject.center()));
    }

    #[test]
    fn subsumed_objects_are_not_r_objects() {
        // Object 2's outside region is strictly contained in object 1's
        // (dist(c_1, c_2) <= r_2 - r_1), so its UV-edge can never bound the
        // final cell even though it might be processed first.
        let domain = Rect::square(1000.0);
        let subject = obj(0, 500.0, 500.0, 10.0);
        let near = obj(1, 550.0, 500.0, 10.0);
        let subsumed = obj(2, 552.0, 500.0, 15.0);
        let cell = build_exact_cell(&subject, [&subsumed, &near], &domain, &small_config());
        assert!(cell.r_objects.contains(&1));
        assert!(!cell.r_objects.contains(&2));
    }

    #[test]
    fn overlapping_object_is_not_an_r_object() {
        let domain = Rect::square(200.0);
        let subject = obj(0, 100.0, 100.0, 20.0);
        let overlapping = obj(1, 110.0, 100.0, 20.0);
        let cell = build_exact_cell(&subject, [&overlapping], &domain, &small_config());
        assert!(cell.r_objects.is_empty());
        assert!((cell.area() - 40_000.0).abs() < 1e-6);
    }
}
