//! The UV-index: an adaptive quad-tree grid over UV-partitions
//! (Section V-A) and its PNN query processing.
//!
//! Non-leaf nodes are memory resident (at most `M` of them); every leaf node
//! carries a linked list of disk pages holding `<ID, MBC, pointer>` tuples of
//! the objects whose UV-cells (may) overlap the leaf's region. A PNN query is
//! a point lookup: descend to the leaf containing the query point, read its
//! page list, verify the candidates with the `d_minmax` test of \[14\] and
//! compute qualification probabilities for the survivors.
//!
//! The whole grid — nodes, member lists, epoch, free slots and the budget
//! flag — has an explicit persistent representation in [`crate::snapshot`];
//! only the I/O counters of the backing store are runtime state.

use crate::config::UvConfig;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;
use uv_data::{
    qualification_probabilities, ObjectEntry, ObjectId, ObjectStore, PnnAnswer, QueryBreakdown,
};
use uv_geom::{Circle, OutsideRegion, Point, Rect, EPS};
use uv_store::{PageStore, PagedList, Record};

/// A node of the adaptive grid.
#[derive(Debug)]
pub(crate) enum GridNode {
    /// Internal node with exactly four children (one per quadrant, in
    /// `[SW, SE, NE, NW]` order). `object_ids` is the node's canonical member
    /// set — the objects whose overlap test (Algorithm 5) passes for the
    /// node's region, id-sorted. It is what a collapse (leaf merge) under
    /// dynamic maintenance turns back into a leaf list: an object can be a
    /// member of an internal node while failing the test for all four
    /// children, so the set is *not* recoverable from the descendants.
    Internal {
        children: [u32; 4],
        object_ids: Vec<ObjectId>,
    },
    /// Leaf node: a page list of object entries plus the memory-resident
    /// object-id summary used by offline pattern analysis (Section V-C keeps
    /// an offline counter per leaf; we keep the ids, which subsumes it).
    Leaf {
        list: PagedList<ObjectEntry>,
        object_ids: Vec<ObjectId>,
    },
    /// A recycled slot: the node was freed by a leaf merge (dynamic
    /// maintenance) and its index is available for reuse. Never reachable
    /// from the root.
    Free,
}

/// One leaf of [`UvIndex::canonical_leaves`]: the region's corner
/// coordinates as raw `f64` bits plus the id-sorted member list.
pub type CanonicalLeaf = ((u64, u64, u64, u64), Vec<ObjectId>);

/// The UV-index.
#[derive(Debug)]
pub struct UvIndex {
    pub(crate) config: UvConfig,
    pub(crate) domain: Rect,
    pub(crate) nodes: Vec<GridNode>,
    pub(crate) node_regions: Vec<Rect>,
    pub(crate) nonleaf_count: usize,
    pub(crate) store: Arc<PageStore>,
    /// Version counter: bumped once per applied update batch (and per full
    /// rebuild). Query-side caches tag themselves with the epoch they were
    /// filled at and are bypassed on mismatch, so a reader can never be
    /// served leaf pages from before an update.
    pub(crate) epoch: u64,
    /// Node slots freed by leaf merges, available for reuse by splits.
    pub(crate) free_slots: Vec<u32>,
    /// `true` when construction (or the most recent budget reconciliation)
    /// wanted to split a leaf but the non-leaf memory budget `M` denied it.
    /// Budget allocation is order-dependent once it binds, so incremental
    /// maintenance repairs *unbounded* first and then replays the cold
    /// build's preorder allocation (`crate::builder::reconcile_budget`) —
    /// this flag records whether that replay (or the build) denied anything,
    /// and tells the next update that a reconciliation pass is needed even
    /// if the repaired tree happens to fit the cap.
    pub(crate) budget_bound: bool,
}

impl UvIndex {
    /// Creates an empty index whose root is a single leaf covering `domain`.
    pub(crate) fn new(domain: Rect, store: Arc<PageStore>, config: UvConfig) -> Self {
        let root = GridNode::Leaf {
            list: PagedList::new(Arc::clone(&store)),
            object_ids: Vec::new(),
        };
        Self {
            config,
            domain,
            nodes: vec![root],
            node_regions: vec![domain],
            nonleaf_count: 0,
            store,
            epoch: 0,
            free_slots: Vec::new(),
            budget_bound: false,
        }
    }

    /// Current index epoch. Starts at 0 and is bumped once per applied
    /// update batch; see [`crate::update`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Member count above which a leaf is considered for splitting:
    /// [`UvConfig::leaf_split_capacity`], with `0` resolved to the number of
    /// `<ID, MBC, pointer>` tuples that fit one disk page.
    pub(crate) fn split_capacity(&self) -> usize {
        if self.config.leaf_split_capacity > 0 {
            self.config.leaf_split_capacity
        } else {
            (self.store.page_size() / ObjectEntry::SIZE).max(1)
        }
    }

    /// Allocates a node slot (reusing freed ones first).
    pub(crate) fn alloc_node(&mut self, node: GridNode, region: Rect) -> u32 {
        if let Some(slot) = self.free_slots.pop() {
            self.nodes[slot as usize] = node;
            self.node_regions[slot as usize] = region;
            slot
        } else {
            let slot = self.nodes.len() as u32;
            self.nodes.push(node);
            self.node_regions.push(region);
            slot
        }
    }

    /// Frees the descendants of `node` (not `node` itself), returning their
    /// slots to the free list and decrementing the non-leaf count for every
    /// freed internal node.
    pub(crate) fn free_children(&mut self, node: usize) {
        let GridNode::Internal { children, .. } = &self.nodes[node] else {
            return;
        };
        let children = *children;
        for child in children {
            self.free_children(child as usize);
            if matches!(self.nodes[child as usize], GridNode::Internal { .. }) {
                self.nonleaf_count -= 1;
            }
            self.nodes[child as usize] = GridNode::Free;
            self.free_slots.push(child);
        }
    }

    /// The indexed domain `D`.
    pub fn domain(&self) -> Rect {
        self.domain
    }

    /// Configuration the index was built with.
    pub fn config(&self) -> &UvConfig {
        &self.config
    }

    /// Backing page store of the leaf page lists.
    pub fn store(&self) -> &Arc<PageStore> {
        &self.store
    }

    /// Number of memory-resident non-leaf nodes.
    pub fn num_nonleaf_nodes(&self) -> usize {
        self.nonleaf_count
    }

    /// Number of leaf nodes.
    pub fn num_leaf_nodes(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, GridNode::Leaf { .. }))
            .count()
    }

    /// Total number of disk pages used by leaf page lists.
    pub fn num_leaf_pages(&self) -> usize {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                GridNode::Leaf { list, .. } => Some(list.num_pages()),
                _ => None,
            })
            .sum()
    }

    /// Height of the grid (1 for a single-leaf index).
    pub fn height(&self) -> usize {
        fn depth(index: &UvIndex, node: usize) -> usize {
            match &index.nodes[node] {
                GridNode::Leaf { .. } => 1,
                GridNode::Internal { children, .. } => {
                    1 + children
                        .iter()
                        .map(|c| depth(index, *c as usize))
                        .max()
                        .unwrap_or(0)
                }
                GridNode::Free => unreachable!("free nodes are unreachable from the root"),
            }
        }
        depth(self, 0)
    }

    /// The grid's canonical, bit-exact leaf view: every leaf's region
    /// corners as raw `f64` bits plus its id-sorted member list, ordered by
    /// region. Two indexes are structurally identical iff their canonical
    /// views are equal — the oracle the dynamic-maintenance and snapshot
    /// test suites (and the churn/snapshot experiments) compare against a
    /// cold rebuild.
    pub fn canonical_leaves(&self) -> Vec<CanonicalLeaf> {
        let mut out: Vec<_> = self
            .leaves()
            .map(|(r, ids)| {
                (
                    (
                        r.min_x.to_bits(),
                        r.min_y.to_bits(),
                        r.max_x.to_bits(),
                        r.max_y.to_bits(),
                    ),
                    ids.to_vec(),
                )
            })
            .collect();
        out.sort();
        out
    }

    /// Iterates over the leaves as `(region, object ids)` pairs, using only
    /// memory-resident information (no I/O). This is the "offline" summary
    /// the paper attaches to leaf nodes for pattern analysis.
    pub fn leaves(&self) -> impl Iterator<Item = (&Rect, &[ObjectId])> {
        self.nodes
            .iter()
            .zip(&self.node_regions)
            .filter_map(|(node, region)| match node {
                GridNode::Leaf { object_ids, .. } => Some((region, object_ids.as_slice())),
                _ => None,
            })
    }

    /// Index of the leaf node whose region contains `q`, or `None` when `q`
    /// lies outside the domain.
    ///
    /// Tie-break: a query point exactly on an internal split line descends
    /// into the SW/SE side (`q.x <= c.x` goes west, `q.y <= c.y` goes south).
    /// Because [`Rect::quadrants`] produces *closed* child rectangles that
    /// share their boundary and [`Rect::contains`] treats the boundary as
    /// inside, either side of the tie yields a leaf whose `node_regions`
    /// rectangle contains `q`; the fixed `<=` choice merely makes the descent
    /// deterministic (see the boundary regression test below).
    pub(crate) fn locate_leaf(&self, q: Point) -> Option<usize> {
        if !self.domain.contains(q) {
            return None;
        }
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                GridNode::Leaf { .. } => return Some(node),
                GridNode::Free => unreachable!("free nodes are unreachable from the root"),
                GridNode::Internal { children, .. } => {
                    let region = self.node_regions[node];
                    let c = region.center();
                    // Quadrant order matches Rect::quadrants(): SW, SE, NE, NW.
                    let idx = match (q.x <= c.x, q.y <= c.y) {
                        (true, true) => 0,
                        (false, true) => 1,
                        (false, false) => 2,
                        (true, false) => 3,
                    };
                    node = children[idx] as usize;
                }
            }
        }
    }

    /// Reads the page list of leaf node `leaf`, returning the entries
    /// together with the number of leaf pages read (charged to the I/O
    /// counters by the underlying [`PagedList::read_all`]).
    pub(crate) fn leaf_entries(&self, leaf: usize) -> (Vec<ObjectEntry>, u64) {
        match &self.nodes[leaf] {
            GridNode::Leaf { list, .. } => (list.read_all(), list.num_pages() as u64),
            _ => unreachable!("leaf_entries is only called on leaves"),
        }
    }

    /// Reads the page list of the leaf containing `q`, returning the entries
    /// together with the number of leaf pages read. Returns `None` when `q`
    /// lies outside the domain.
    pub(crate) fn read_leaf_entries(&self, q: Point) -> Option<(usize, Vec<ObjectEntry>, u64)> {
        let leaf = self.locate_leaf(q)?;
        let (entries, io) = self.leaf_entries(leaf);
        Some((leaf, entries, io))
    }

    /// Evaluates a PNN query at `q` (Section V-A): descend to the leaf
    /// containing `q`, read its page list, verify candidates by the
    /// `d_minmax` criterion, fetch the survivors' pdfs and compute their
    /// qualification probabilities.
    ///
    /// For batched / concurrent execution over a shared index see
    /// [`crate::engine::QueryEngine`], which reuses leaf page reads across
    /// queries and fans a batch out over a worker pool while returning
    /// bit-identical answers.
    pub fn pnn(&self, objects: &ObjectStore, q: Point, integration_steps: usize) -> PnnAnswer {
        let t_traversal = Instant::now();
        let Some((_, entries, index_io)) = self.read_leaf_entries(q) else {
            return PnnAnswer::default();
        };
        verify_and_refine(
            objects,
            q,
            integration_steps,
            &entries,
            index_io,
            t_traversal,
        )
    }
}

/// Shared tail of PNN query processing: the `d_minmax` verification of \[14\]
/// over the leaf `entries`, pdf retrieval for the survivors and the
/// qualification-probability computation.
///
/// `index_io` is the number of leaf pages the caller actually read for this
/// query and `t_traversal` the instant the traversal started; both are
/// supplied by the caller so that per-query I/O attribution stays exact under
/// concurrent readers (a global counter delta would absorb the reads of other
/// threads).
pub(crate) fn verify_and_refine(
    objects: &ObjectStore,
    q: Point,
    integration_steps: usize,
    entries: &[ObjectEntry],
    index_io: u64,
    t_traversal: Instant,
) -> PnnAnswer {
    verify_and_refine_full(
        objects,
        q,
        integration_steps,
        entries,
        index_io,
        t_traversal,
    )
    .0
}

/// Like [`verify_and_refine`], additionally returning the fetched candidate
/// objects (in candidate order). The safe-region machinery
/// ([`crate::subscribe`], trajectory reuse) caches these so later query
/// points inside a stable region can recompute the qualification
/// probabilities without touching the index or object store.
pub(crate) fn verify_and_refine_full(
    objects: &ObjectStore,
    q: Point,
    integration_steps: usize,
    entries: &[ObjectEntry],
    index_io: u64,
    t_traversal: Instant,
) -> (PnnAnswer, Vec<uv_data::UncertainObject>) {
    let mut breakdown = QueryBreakdown::default();

    // Verification of [14]: no object whose minimum distance exceeds the
    // smallest maximum distance can be an answer.
    let dminmax = entries
        .iter()
        .map(|e| e.dist_max(q))
        .fold(f64::INFINITY, f64::min);
    let candidates: Vec<&ObjectEntry> = entries
        .iter()
        .filter(|e| e.dist_min(q) <= dminmax + EPS)
        .collect();
    breakdown.traversal = t_traversal.elapsed();
    breakdown.index_io = index_io;

    let t_retrieval = Instant::now();
    let mut touched = HashSet::new();
    let fetched: Vec<_> = candidates
        .iter()
        .filter_map(|e| objects.fetch(e.id, &mut touched))
        .collect();
    breakdown.retrieval = t_retrieval.elapsed();
    // `fetch` charges exactly one page read per page newly inserted into
    // `touched`, so the set size is this query's object I/O.
    breakdown.object_io = touched.len() as u64;

    let t_prob = Instant::now();
    let refs: Vec<_> = fetched.iter().collect();
    let mut probabilities = qualification_probabilities(q, &refs, integration_steps);
    probabilities.retain(|(_, p)| *p > 0.0);
    breakdown.probability = t_prob.elapsed();

    (
        PnnAnswer {
            probabilities,
            candidates_examined: candidates.len(),
            breakdown,
        },
        fetched,
    )
}

/// Algorithm 5 (`CheckOverlap`): decides whether the UV-cell of an object —
/// represented by its cr-objects — can overlap a grid region.
///
/// For every cr-object `O_k`, if the whole region lies inside the outside
/// region `X_i(k)` then the UV-cell cannot overlap the region (Lemma 4); the
/// containment test is the 4-point test on the region corners, which is exact
/// because outside regions are convex.
pub fn check_overlap(subject: Circle, cr_objects: &[Circle], region: &Rect) -> bool {
    let corners = region.corners();
    for other in cr_objects {
        let outside = OutsideRegion::new(subject, *other);
        if outside.is_empty() {
            continue;
        }
        if corners.iter().all(|c| outside.contains(*c)) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_overlap_prunes_regions_fully_behind_an_edge() {
        let subject = Circle::new(Point::new(100.0, 500.0), 20.0);
        let other = Circle::new(Point::new(300.0, 500.0), 20.0);
        // A region far on the other object's side: every corner is closer to
        // `other` than `subject` can ever be.
        let far_region = Rect::new(800.0, 400.0, 900.0, 600.0);
        assert!(!check_overlap(subject, &[other], &far_region));
        // A region around the subject itself must overlap.
        let near_region = Rect::new(50.0, 450.0, 150.0, 550.0);
        assert!(check_overlap(subject, &[other], &near_region));
        // A region straddling the UV-edge overlaps (some corner is on the
        // subject's side).
        let straddling = Rect::new(150.0, 400.0, 260.0, 600.0);
        assert!(check_overlap(subject, &[other], &straddling));
    }

    #[test]
    fn check_overlap_with_no_cr_objects_is_always_true() {
        let subject = Circle::new(Point::new(10.0, 10.0), 1.0);
        assert!(check_overlap(subject, &[], &Rect::square(100.0)));
    }

    #[test]
    fn check_overlap_ignores_overlapping_objects() {
        let subject = Circle::new(Point::new(100.0, 100.0), 30.0);
        let overlapping = Circle::new(Point::new(120.0, 100.0), 30.0);
        // The outside region of an overlapping object is empty, so it can
        // never prune.
        assert!(check_overlap(
            subject,
            &[overlapping],
            &Rect::new(900.0, 900.0, 950.0, 950.0)
        ));
    }

    #[test]
    fn check_overlap_may_keep_false_positives_but_never_false_negatives() {
        // The paper accepts false positives (Figure 5(b)); verify on a brute
        // force grid that a region judged "no overlap" truly has no point
        // where the subject can be the nearest neighbour among the cr set.
        let subject = Circle::new(Point::new(200.0, 200.0), 10.0);
        let crs = vec![
            Circle::new(Point::new(400.0, 200.0), 10.0),
            Circle::new(Point::new(200.0, 420.0), 10.0),
            Circle::new(Point::new(50.0, 60.0), 10.0),
        ];
        for gx in 0..10 {
            for gy in 0..10 {
                let region = Rect::new(
                    gx as f64 * 100.0,
                    gy as f64 * 100.0,
                    (gx + 1) as f64 * 100.0,
                    (gy + 1) as f64 * 100.0,
                );
                if !check_overlap(subject, &crs, &region) {
                    // Sample the region densely: no sampled point may have the
                    // subject as a possible NN with respect to the cr set.
                    for sx in 0..5 {
                        for sy in 0..5 {
                            let p = Point::new(
                                region.min_x + region.width() * (sx as f64 + 0.5) / 5.0,
                                region.min_y + region.height() * (sy as f64 + 0.5) / 5.0,
                            );
                            let dominated = crs
                                .iter()
                                .any(|c| c.dist_max(p) < subject.dist_min(p) - 1e-9);
                            assert!(dominated, "false negative at {p:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn locate_leaf_on_split_lines_reaches_a_containing_leaf() {
        // Regression for the `q.x <= c.x` / `q.y <= c.y` tie-break: a query
        // point lying exactly on an internal split line must always reach a
        // leaf whose `node_regions` rectangle contains it, consistently with
        // the closed-rectangle semantics of `Rect::quadrants`/`Rect::contains`.
        use crate::builder::{build_uv_index, Method};
        use uv_data::{Dataset, GeneratorConfig};

        let ds = Dataset::generate(GeneratorConfig::paper_uniform(600));
        let pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&pages), &ds.objects);
        let rtree = uv_rtree::RTree::build(&ds.objects, &objects, pages);
        let (index, _) = build_uv_index(
            &ds.objects,
            &objects,
            &rtree,
            ds.domain,
            Arc::new(PageStore::new()),
            Method::IC,
            UvConfig::default(),
        )
        .unwrap();
        assert!(
            index.num_nonleaf_nodes() > 0,
            "fixture must actually split so there are internal split lines"
        );

        let mut boundary_points = Vec::new();
        for (node, region) in index.nodes.iter().zip(&index.node_regions) {
            if matches!(node, GridNode::Internal { .. }) {
                let c = region.center();
                // The split-line crossing plus a point on each of the four
                // split-line arms.
                boundary_points.push(c);
                boundary_points.push(Point::new(c.x, (region.min_y + c.y) * 0.5));
                boundary_points.push(Point::new(c.x, (c.y + region.max_y) * 0.5));
                boundary_points.push(Point::new((region.min_x + c.x) * 0.5, c.y));
                boundary_points.push(Point::new((c.x + region.max_x) * 0.5, c.y));
            }
        }
        // Domain corners and edges are boundary cases of the same kind.
        boundary_points.extend(index.domain().corners());

        for q in boundary_points {
            let leaf = index
                .locate_leaf(q)
                .unwrap_or_else(|| panic!("no leaf found for boundary point {q:?}"));
            assert!(
                matches!(index.nodes[leaf], GridNode::Leaf { .. }),
                "locate_leaf returned a non-leaf for {q:?}"
            );
            assert!(
                index.node_regions[leaf].contains(q),
                "leaf region {:?} does not contain boundary point {q:?}",
                index.node_regions[leaf]
            );
        }
    }

    #[test]
    fn empty_index_basics() {
        let store = Arc::new(PageStore::new());
        let index = UvIndex::new(Rect::square(1000.0), store, UvConfig::default());
        assert_eq!(index.num_leaf_nodes(), 1);
        assert_eq!(index.num_nonleaf_nodes(), 0);
        assert_eq!(index.height(), 1);
        assert_eq!(index.num_leaf_pages(), 0);
        assert_eq!(index.locate_leaf(Point::new(500.0, 500.0)), Some(0));
        assert_eq!(index.locate_leaf(Point::new(-1.0, 500.0)), None);
        let objects = ObjectStore::build(Arc::new(PageStore::new()), &[]);
        let ans = index.pnn(&objects, Point::new(500.0, 500.0), 50);
        assert!(ans.probabilities.is_empty());
    }
}
