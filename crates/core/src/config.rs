//! Tunable parameters of UV-diagram construction and indexing.

use serde::{Deserialize, Serialize};

/// Parameters controlling UV-cell approximation, cr-object derivation and the
/// adaptive grid. The defaults follow the experimental setup of Section VI-A
/// of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UvConfig {
    /// Number of extra vertices inserted along a UV-edge for every clipped
    /// chord of a possible region (boundary fidelity of the polygonal
    /// approximation).
    pub curve_samples: usize,
    /// Edge-subdivision granularity of clipping, expressed as a fraction of
    /// the domain side: polygon edges longer than
    /// `domain_side * max_edge_len_fraction` are subdivided before sign
    /// evaluation so mid-edge incursions are not missed.
    pub max_edge_len_fraction: f64,
    /// `k` of the seed-selection k-NN query (the paper uses 300).
    pub seed_knn: usize,
    /// Number of sectors / seeds (`k_s`, the paper uses 8).
    pub num_seeds: usize,
    /// Maximum number of memory-resident non-leaf grid nodes (`M`, the paper
    /// uses 4000).
    pub max_nonleaf: usize,
    /// Split threshold `T_theta` in `[0, 1]`; the paper uses 1.0.
    pub split_threshold: f64,
    /// Number of integration steps of qualification-probability computation.
    pub integration_steps: usize,
    /// Derive cr-objects for different objects on multiple threads.
    pub parallel: bool,
    /// Worker threads used by [`crate::engine::QueryEngine::pnn_batch`];
    /// `0` means one worker per available CPU.
    pub query_workers: usize,
    /// Enable the per-leaf memoization cache of the query engine: queries
    /// landing in the same leaf reuse the page read and the region-level
    /// `d_minmax` candidate screen.
    pub leaf_cache: bool,
    /// Member count above which a leaf is considered for splitting. `0`
    /// (the default) uses the number of `<ID, MBC, pointer>` tuples that fit
    /// one disk page, which is the paper's trigger; smaller values produce
    /// more, smaller leaves, which localises incremental updates (see
    /// [`crate::update`]) at the cost of more non-leaf nodes.
    pub leaf_split_capacity: usize,
    /// Side length `S` of the shard grid used by
    /// [`crate::shard::ShardedUvSystem`]: the domain is split into `S × S`
    /// shard rectangles. `1` (the default) means a single shard. Ignored by
    /// the unsharded [`crate::UvSystem`].
    pub num_shards: usize,
    /// Enable safe regions for continuous queries: the subscription engine
    /// ([`crate::subscribe`]) answers ticks inside a client's safe region
    /// with zero leaf page reads, and trajectory evaluation reuses the
    /// cached candidate set for path points inside a stable region. `false`
    /// re-derives every tick / path point from the index (the PR-5
    /// behaviour); answers are bit-identical either way.
    pub safe_region: bool,
    /// Minimum useful safe-region radius as a fraction of the domain side,
    /// in `[0, 1]`. Radii below `domain_side * fraction` are discarded (the
    /// client re-derives every tick) — a floor that avoids tracking regions
    /// too small to ever absorb a movement step. `0.0` (the default) keeps
    /// every positive radius.
    pub safe_region_min_radius_fraction: f64,
    /// Elastic-resharding *split* threshold: when
    /// [`crate::shard::ShardedUvSystem::maybe_reshard`] finds a shard whose
    /// accumulated query + update tally reaches this count, it splits that
    /// shard's slab along its longer axis. `0` (the default) disables
    /// policy-driven splitting; explicit
    /// [`crate::shard::ShardedUvSystem::split_shard`] calls always work.
    pub reshard_split_load: u64,
    /// Elastic-resharding *merge* threshold: when `maybe_reshard` finds two
    /// adjacent slabs whose combined tally is at or below this count (and no
    /// shard is hot enough to split), it merges them. `0` (the default)
    /// disables policy-driven merging. When both thresholds are non-zero the
    /// merge threshold must be strictly below the split threshold, or a
    /// merge could immediately re-trigger a split.
    pub reshard_merge_load: u64,
}

impl Default for UvConfig {
    fn default() -> Self {
        Self {
            curve_samples: 8,
            max_edge_len_fraction: 1.0 / 64.0,
            seed_knn: 300,
            num_seeds: 8,
            max_nonleaf: 4000,
            split_threshold: 1.0,
            integration_steps: 100,
            parallel: true,
            query_workers: 0,
            leaf_cache: true,
            leaf_split_capacity: 0,
            num_shards: 1,
            safe_region: true,
            safe_region_min_radius_fraction: 0.0,
            reshard_split_load: 0,
            reshard_merge_load: 0,
        }
    }
}

impl UvConfig {
    /// Maximum clip-edge length for a domain of the given side length.
    pub fn max_edge_len(&self, domain_side: f64) -> f64 {
        if self.max_edge_len_fraction <= 0.0 {
            f64::INFINITY
        } else {
            domain_side * self.max_edge_len_fraction
        }
    }

    /// Validates parameter ranges, returning a description of the first
    /// violation found.
    pub fn validate(&self) -> Result<(), crate::error::UvError> {
        use crate::error::UvError;
        if self.num_seeds == 0 {
            return Err(UvError::InvalidConfig("num_seeds must be positive"));
        }
        if self.seed_knn == 0 {
            return Err(UvError::InvalidConfig("seed_knn must be positive"));
        }
        if !(0.0..=1.0).contains(&self.split_threshold) {
            return Err(UvError::InvalidConfig("split_threshold must lie in [0, 1]"));
        }
        if self.max_nonleaf == 0 {
            return Err(UvError::InvalidConfig("max_nonleaf must be positive"));
        }
        if self.integration_steps < 2 {
            return Err(UvError::InvalidConfig(
                "integration_steps must be at least 2",
            ));
        }
        if self.curve_samples == 0 {
            return Err(UvError::InvalidConfig("curve_samples must be positive"));
        }
        if self.num_shards == 0 {
            return Err(UvError::InvalidConfig("num_shards must be positive"));
        }
        if !self.safe_region_min_radius_fraction.is_finite()
            || !(0.0..=1.0).contains(&self.safe_region_min_radius_fraction)
        {
            return Err(UvError::InvalidConfig(
                "safe_region_min_radius_fraction must lie in [0, 1]",
            ));
        }
        if self.reshard_split_load > 0
            && self.reshard_merge_load > 0
            && self.reshard_merge_load >= self.reshard_split_load
        {
            return Err(UvError::InvalidConfig(
                "reshard_merge_load must be strictly below reshard_split_load",
            ));
        }
        Ok(())
    }

    /// Builder-style setter for the seed-selection k-NN size (`k`, the paper
    /// uses 300).
    pub fn with_seed_knn(mut self, k: usize) -> Self {
        self.seed_knn = k;
        self
    }

    /// Builder-style setter for the number of sectors / seeds (`k_s`, the
    /// paper uses 8).
    pub fn with_num_seeds(mut self, seeds: usize) -> Self {
        self.num_seeds = seeds;
        self
    }

    /// Builder-style setter for the number of integration steps of
    /// qualification-probability computation.
    pub fn with_integration_steps(mut self, steps: usize) -> Self {
        self.integration_steps = steps;
        self
    }

    /// Builder-style setter for the number of extra vertices per clipped
    /// UV-edge chord.
    pub fn with_curve_samples(mut self, samples: usize) -> Self {
        self.curve_samples = samples;
        self
    }

    /// Builder-style setter for the leaf split capacity (`0` = one full disk
    /// page of entries, the paper's trigger).
    pub fn with_leaf_split_capacity(mut self, capacity: usize) -> Self {
        self.leaf_split_capacity = capacity;
        self
    }

    /// Builder-style setter for the split threshold `T_theta`.
    pub fn with_split_threshold(mut self, t: f64) -> Self {
        self.split_threshold = t;
        self
    }

    /// Builder-style setter for the memory cap `M` on non-leaf nodes.
    pub fn with_max_nonleaf(mut self, m: usize) -> Self {
        self.max_nonleaf = m;
        self
    }

    /// Builder-style setter for sequential/parallel construction.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Builder-style setter for the query-engine worker count (`0` = one
    /// worker per available CPU).
    pub fn with_query_workers(mut self, workers: usize) -> Self {
        self.query_workers = workers;
        self
    }

    /// Builder-style setter for the query-engine leaf cache.
    pub fn with_leaf_cache(mut self, enabled: bool) -> Self {
        self.leaf_cache = enabled;
        self
    }

    /// Builder-style setter for the shard-grid side `S` of
    /// [`crate::shard::ShardedUvSystem`] (`S × S` shard rectangles; `1` =
    /// a single shard).
    pub fn with_num_shards(mut self, shards: usize) -> Self {
        self.num_shards = shards;
        self
    }

    /// Builder-style setter for safe-region maintenance (subscriptions and
    /// trajectory reuse).
    pub fn with_safe_region(mut self, enabled: bool) -> Self {
        self.safe_region = enabled;
        self
    }

    /// Builder-style setter for the minimum useful safe-region radius, as a
    /// fraction of the domain side.
    pub fn with_safe_region_min_radius_fraction(mut self, fraction: f64) -> Self {
        self.safe_region_min_radius_fraction = fraction;
        self
    }

    /// Builder-style setter for the elastic-resharding split threshold
    /// (`0` disables policy-driven splits).
    pub fn with_reshard_split_load(mut self, load: u64) -> Self {
        self.reshard_split_load = load;
        self
    }

    /// Builder-style setter for the elastic-resharding merge threshold
    /// (`0` disables policy-driven merges).
    pub fn with_reshard_merge_load(mut self, load: u64) -> Self {
        self.reshard_merge_load = load;
        self
    }

    /// Applies the safe-region policy to a raw stability radius: `0.0` when
    /// safe regions are disabled or the radius falls below the configured
    /// floor (`safe_region_min_radius_fraction` of the longer domain side),
    /// the radius itself otherwise. A zero radius simply means "re-derive
    /// every tick", so the policy only trades work for work — never
    /// correctness.
    pub(crate) fn apply_safe_region_floor(&self, radius: f64, domain: uv_geom::Rect) -> f64 {
        if !self.safe_region {
            return 0.0;
        }
        let floor = self.safe_region_min_radius_fraction * domain.width().max(domain.height());
        if radius < floor {
            0.0
        } else {
            radius
        }
    }

    /// The effective query-engine worker count: `query_workers`, with `0`
    /// resolved to the number of available CPUs.
    pub fn resolved_query_workers(&self) -> usize {
        if self.query_workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            self.query_workers
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = UvConfig::default();
        assert_eq!(c.seed_knn, 300);
        assert_eq!(c.num_seeds, 8);
        assert_eq!(c.max_nonleaf, 4000);
        assert_eq!(c.split_threshold, 1.0);
        assert!(c.safe_region);
        assert_eq!(c.safe_region_min_radius_fraction, 0.0);
        assert_eq!(c.reshard_split_load, 0);
        assert_eq!(c.reshard_merge_load, 0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn max_edge_len_scales_with_domain() {
        let c = UvConfig::default();
        assert_eq!(c.max_edge_len(6400.0), 100.0);
        let no_subdiv = UvConfig {
            max_edge_len_fraction: 0.0,
            ..c
        };
        assert!(no_subdiv.max_edge_len(6400.0).is_infinite());
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        let base = UvConfig::default();
        assert!(UvConfig {
            num_seeds: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(UvConfig {
            split_threshold: 1.5,
            ..base
        }
        .validate()
        .is_err());
        assert!(UvConfig {
            max_nonleaf: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(UvConfig {
            integration_steps: 1,
            ..base
        }
        .validate()
        .is_err());
        assert!(UvConfig {
            seed_knn: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(UvConfig {
            curve_samples: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(UvConfig {
            num_shards: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(UvConfig {
            safe_region_min_radius_fraction: -0.1,
            ..base
        }
        .validate()
        .is_err());
        assert!(UvConfig {
            safe_region_min_radius_fraction: 1.5,
            ..base
        }
        .validate()
        .is_err());
        assert!(UvConfig {
            safe_region_min_radius_fraction: f64::NAN,
            ..base
        }
        .validate()
        .is_err());
        // Merge threshold at or above the split threshold would oscillate.
        assert!(UvConfig {
            reshard_split_load: 100,
            reshard_merge_load: 100,
            ..base
        }
        .validate()
        .is_err());
        assert!(UvConfig {
            reshard_split_load: 100,
            reshard_merge_load: 200,
            ..base
        }
        .validate()
        .is_err());
        // Either threshold alone (or merge < split) is fine.
        assert!(UvConfig {
            reshard_split_load: 100,
            reshard_merge_load: 0,
            ..base
        }
        .validate()
        .is_ok());
        assert!(UvConfig {
            reshard_split_load: 0,
            reshard_merge_load: 100,
            ..base
        }
        .validate()
        .is_ok());
        assert!(UvConfig {
            reshard_split_load: 100,
            reshard_merge_load: 10,
            ..base
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn builder_setters() {
        let c = UvConfig::default()
            .with_split_threshold(0.5)
            .with_max_nonleaf(128)
            .with_parallel(false)
            .with_query_workers(3)
            .with_leaf_cache(false)
            .with_seed_knn(50)
            .with_num_seeds(6)
            .with_integration_steps(40)
            .with_curve_samples(4)
            .with_leaf_split_capacity(16)
            .with_num_shards(3)
            .with_safe_region(false)
            .with_safe_region_min_radius_fraction(0.01)
            .with_reshard_split_load(5_000)
            .with_reshard_merge_load(500);
        assert_eq!(c.split_threshold, 0.5);
        assert_eq!(c.max_nonleaf, 128);
        assert!(!c.parallel);
        assert_eq!(c.query_workers, 3);
        assert!(!c.leaf_cache);
        assert_eq!(c.seed_knn, 50);
        assert_eq!(c.num_seeds, 6);
        assert_eq!(c.integration_steps, 40);
        assert_eq!(c.curve_samples, 4);
        assert_eq!(c.leaf_split_capacity, 16);
        assert_eq!(c.num_shards, 3);
        assert!(!c.safe_region);
        assert_eq!(c.safe_region_min_radius_fraction, 0.01);
        assert_eq!(c.reshard_split_load, 5_000);
        assert_eq!(c.reshard_merge_load, 500);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn query_workers_resolve_to_cpus_when_zero() {
        let auto = UvConfig::default();
        assert_eq!(auto.query_workers, 0);
        assert!(auto.leaf_cache);
        assert!(auto.resolved_query_workers() >= 1);
        let fixed = UvConfig::default().with_query_workers(5);
        assert_eq!(fixed.resolved_query_workers(), 5);
    }
}
