//! Error type of the UV-diagram crate.

use std::fmt;

/// Errors reported by UV-diagram construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UvError {
    /// A configuration parameter is outside its valid range.
    InvalidConfig(&'static str),
    /// An object id was not found in the dataset / index.
    UnknownObject(u32),
    /// An insert used an object id that is already live.
    DuplicateObject(u32),
    /// An object has non-finite coordinates or a negative radius.
    InvalidObject(u32),
    /// The query point lies outside the indexed domain.
    OutOfDomain,
    /// The index was built over an empty dataset.
    EmptyIndex,
}

impl fmt::Display for UvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UvError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            UvError::UnknownObject(id) => write!(f, "unknown object id {id}"),
            UvError::DuplicateObject(id) => write!(f, "object id {id} is already live"),
            UvError::InvalidObject(id) => {
                write!(
                    f,
                    "object {id} has a non-finite position or negative radius"
                )
            }
            UvError::OutOfDomain => write!(f, "query point lies outside the indexed domain"),
            UvError::EmptyIndex => write!(f, "the index contains no objects"),
        }
    }
}

impl std::error::Error for UvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            UvError::InvalidConfig("x").to_string(),
            "invalid configuration: x"
        );
        assert_eq!(UvError::UnknownObject(3).to_string(), "unknown object id 3");
        assert_eq!(
            UvError::DuplicateObject(4).to_string(),
            "object id 4 is already live"
        );
        assert!(UvError::InvalidObject(5).to_string().contains("object 5"));
        assert!(UvError::OutOfDomain.to_string().contains("outside"));
        assert!(UvError::EmptyIndex.to_string().contains("no objects"));
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(UvError::EmptyIndex);
        assert!(e.source().is_none());
    }
}
