//! Error type of the UV-diagram crate.

use std::fmt;

/// Errors reported by UV-diagram construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UvError {
    /// A configuration parameter is outside its valid range.
    InvalidConfig(&'static str),
    /// An object id was not found in the dataset / index.
    UnknownObject(u32),
    /// An insert used an object id that is already live.
    DuplicateObject(u32),
    /// An object has non-finite coordinates or a negative radius.
    InvalidObject(u32),
    /// A subscription client id was not found in the subscription table.
    UnknownClient(u64),
    /// A subscribe used a client id that is already registered.
    DuplicateClient(u64),
    /// The query point lies outside the indexed domain.
    OutOfDomain,
    /// The index was built over an empty dataset.
    EmptyIndex,
    /// An underlying I/O operation failed (snapshot file access).
    Io(String),
    /// A snapshot failed structural validation: bad magic, a checksum or
    /// section-framing mismatch, a truncated stream, or decoded state that
    /// violates an invariant. The payload describes the first violation.
    SnapshotCorrupt(String),
    /// The snapshot was written by an unsupported format version.
    SnapshotVersionMismatch {
        /// Version found in the snapshot header.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// The snapshot's configuration fingerprint does not match its persisted
    /// configuration (or, via [`crate::UvSystem::load_snapshot_expecting`],
    /// the configuration the caller requires).
    ConfigMismatch,
}

impl fmt::Display for UvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UvError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            UvError::UnknownObject(id) => write!(f, "unknown object id {id}"),
            UvError::DuplicateObject(id) => write!(f, "object id {id} is already live"),
            UvError::InvalidObject(id) => {
                write!(
                    f,
                    "object {id} has a non-finite position or negative radius"
                )
            }
            UvError::UnknownClient(id) => write!(f, "unknown subscription client id {id}"),
            UvError::DuplicateClient(id) => {
                write!(f, "subscription client id {id} is already registered")
            }
            UvError::OutOfDomain => write!(f, "query point lies outside the indexed domain"),
            UvError::EmptyIndex => write!(f, "the index contains no objects"),
            UvError::Io(msg) => write!(f, "snapshot I/O failed: {msg}"),
            UvError::SnapshotCorrupt(msg) => write!(f, "snapshot corrupt: {msg}"),
            UvError::SnapshotVersionMismatch { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads {supported})"
            ),
            UvError::ConfigMismatch => {
                write!(f, "snapshot configuration does not match the expected one")
            }
        }
    }
}

impl From<std::io::Error> for UvError {
    /// Decoder-reported malformation (`InvalidData`) and premature
    /// end-of-input both mean the snapshot bytes cannot be trusted; anything
    /// else is an environmental I/O failure.
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::InvalidData | std::io::ErrorKind::UnexpectedEof => {
                UvError::SnapshotCorrupt(e.to_string())
            }
            _ => UvError::Io(e.to_string()),
        }
    }
}

impl std::error::Error for UvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            UvError::InvalidConfig("x").to_string(),
            "invalid configuration: x"
        );
        assert_eq!(UvError::UnknownObject(3).to_string(), "unknown object id 3");
        assert_eq!(
            UvError::DuplicateObject(4).to_string(),
            "object id 4 is already live"
        );
        assert!(UvError::InvalidObject(5).to_string().contains("object 5"));
        assert_eq!(
            UvError::UnknownClient(6).to_string(),
            "unknown subscription client id 6"
        );
        assert_eq!(
            UvError::DuplicateClient(7).to_string(),
            "subscription client id 7 is already registered"
        );
        assert!(UvError::OutOfDomain.to_string().contains("outside"));
        assert!(UvError::EmptyIndex.to_string().contains("no objects"));
        assert!(UvError::Io("disk on fire".into())
            .to_string()
            .contains("disk on fire"));
        assert!(UvError::SnapshotCorrupt("bad magic".into())
            .to_string()
            .contains("bad magic"));
        let v = UvError::SnapshotVersionMismatch {
            found: 9,
            supported: 1,
        };
        assert!(v.to_string().contains('9') && v.to_string().contains('1'));
        assert!(UvError::ConfigMismatch
            .to_string()
            .contains("configuration"));
    }

    #[test]
    fn io_errors_map_by_kind() {
        use std::io::{Error, ErrorKind};
        assert!(matches!(
            UvError::from(Error::new(ErrorKind::InvalidData, "bad byte")),
            UvError::SnapshotCorrupt(_)
        ));
        assert!(matches!(
            UvError::from(Error::new(ErrorKind::UnexpectedEof, "short read")),
            UvError::SnapshotCorrupt(_)
        ));
        assert!(matches!(
            UvError::from(Error::new(ErrorKind::PermissionDenied, "nope")),
            UvError::Io(_)
        ));
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(UvError::EmptyIndex);
        assert!(e.source().is_none());
    }
}
