//! Property-based tests of the continuous-PNN subscription engine: across
//! {IC, ICR} × {Uniform, GaussianSkew}, a fleet of randomly walking clients
//! served by a [`SubscriptionEngine`] — safe-region hits, cache-assisted
//! misses, epoch invalidation after random [`UpdateBatch`]es — must hold a
//! pushed delta stream *bit-identical* to re-answering every client's
//! position with a fresh [`UvSystem::pnn`] (or the sharded fan-out) on
//! every tick. Replaying the deltas over each client's previous answer set
//! must reproduce the oracle exactly; clients that received *no* delta must
//! already agree with it — a wrong safe region that silently serves a stale
//! answer fails here, not just a missed push.
//!
//! A deterministic regression corpus pins the boundary scenarios: a
//! migration crossing a shard boundary mid-tick, safe regions invalidated
//! by a domain-growth batch, unsubscribe-then-resubscribe epoch coherence,
//! and a client parked exactly on a leaf split line.

use proptest::prelude::*;
use std::collections::BTreeMap;
use uv_core::{
    Method, ShardedUvSystem, SubscriptionEngine, SubscriptionTable, UpdateBatch, UvConfig, UvSystem,
};
use uv_data::{Dataset, GeneratorConfig, UncertainObject};
use uv_geom::Point;

/// The dynamic-serving tuning of the update proptests; sharded cases add a
/// 2×2 grid on top.
fn test_config(num_shards: usize) -> UvConfig {
    UvConfig::default()
        .with_seed_knn(24)
        .with_leaf_split_capacity(16)
        .with_num_shards(num_shards)
}

fn generate(n: usize, kind_pick: u8, sigma: f64, seed: u64) -> Dataset {
    let generator = if kind_pick == 0 {
        GeneratorConfig::paper_uniform(n)
    } else {
        GeneratorConfig::paper_skewed(n, sigma)
    }
    .with_seed(seed);
    Dataset::generate(generator)
}

fn method(method_pick: u8) -> Method {
    if method_pick == 0 {
        Method::IC
    } else {
        Method::ICR
    }
}

/// One raw walk step drawn by proptest: client pick, unit offsets, and a
/// jump discriminant (most steps are small enough to stay inside a safe
/// region; jumps force misses and — sharded — migrations).
type RawStep = (u16, f64, f64, u8);

/// One raw update op: discriminant, target pick, position.
type RawOp = (u8, u16, f64, f64);

/// Either backend, so the walk/verify driver is written once.
enum System<'a> {
    Single(&'a UvSystem),
    Sharded(&'a ShardedUvSystem),
}

impl System<'_> {
    fn oracle_ids(&self, p: Point) -> Vec<u32> {
        let answer = match self {
            System::Single(s) => s.pnn(p),
            System::Sharded(s) => s.pnn(p),
        };
        answer.probabilities.iter().map(|(id, _)| *id).collect()
    }

    fn engine(&self, table: SubscriptionTable) -> SubscriptionEngine<'_> {
        match self {
            System::Single(s) => SubscriptionEngine::with_table(s, table),
            System::Sharded(s) => SubscriptionEngine::sharded_with_table(s, table),
        }
    }
}

/// Replay state: each client's position and its answer set as reconstructed
/// purely from the pushed delta stream.
type Replay = BTreeMap<u64, (Point, Vec<u32>)>;

/// Applies one pushed delta to the replayed answer set.
fn replay_delta(replay: &mut Replay, id: u64, delta: &uv_data::AnswerDelta) {
    let (_, ids) = replay.get_mut(&id).expect("delta for unknown client");
    ids.retain(|x| !delta.left.contains(x));
    ids.extend(delta.entered.iter().copied());
    ids.sort_unstable();
}

/// The bit-identity check: every client's replayed answer set — including
/// clients that received no delta this round — must equal re-answering its
/// current position from scratch, and must equal the engine's own table.
fn assert_stream_matches_oracle(system: &System<'_>, table: &SubscriptionTable, replay: &Replay) {
    assert_eq!(table.len(), replay.len());
    for (id, (p, replayed)) in replay {
        let client = table.client(*id).expect("client table lost a client");
        assert_eq!(client.position(), *p, "client {id} position diverged");
        assert_eq!(
            client.answer_ids(),
            replayed.as_slice(),
            "client {id}: delta replay diverged from the engine table"
        );
        let oracle = system.oracle_ids(*p);
        assert_eq!(
            replayed, &oracle,
            "client {id} at {p:?}: pushed stream diverged from per-tick pnn"
        );
    }
}

/// Runs one engine session over `steps` ticks, updating `replay` from the
/// pushed deltas, and returns the table for the next update batch.
fn run_ticks(
    system: &System<'_>,
    table: SubscriptionTable,
    replay: &mut Replay,
    steps: &[Vec<RawStep>],
    domain: uv_geom::Rect,
) -> SubscriptionTable {
    let mut engine = system.engine(table);
    let ids: Vec<u64> = replay.keys().copied().collect();
    for tick_steps in steps {
        let mut moves: Vec<(u64, Point)> = Vec::new();
        for (pick, dx, dy, jump) in tick_steps {
            let id = ids[*pick as usize % ids.len()];
            if moves.iter().any(|(m, _)| *m == id) {
                continue;
            }
            let scale = if jump % 4 == 0 { 2_500.0 } else { 18.0 };
            let (p, _) = replay[&id];
            let np = Point::new(
                (p.x + (dx - 0.5) * scale).clamp(domain.min_x, domain.max_x),
                (p.y + (dy - 0.5) * scale).clamp(domain.min_y, domain.max_y),
            );
            moves.push((id, np));
        }
        for (id, np) in &moves {
            replay.get_mut(id).expect("known client").0 = *np;
        }
        for (id, delta) in engine.tick(&moves) {
            replay_delta(replay, id, &delta);
        }
        assert_stream_matches_oracle(system, engine.table(), replay);
    }
    engine.into_table()
}

/// Applies the pushed refresh deltas after an update batch and re-checks
/// the whole fleet against the post-update oracle.
fn run_refresh(
    system: &System<'_>,
    table: SubscriptionTable,
    replay: &mut Replay,
    refresh: impl FnOnce(&mut SubscriptionEngine<'_>) -> Vec<(u64, uv_data::AnswerDelta)>,
) -> SubscriptionTable {
    let mut engine = system.engine(table);
    for (id, delta) in refresh(&mut engine) {
        replay_delta(replay, id, &delta);
    }
    assert_stream_matches_oracle(system, engine.table(), replay);
    engine.into_table()
}

/// Translates raw ops into one collision-free [`UpdateBatch`] (the
/// `proptest_shard.rs` scheme) against the live object set.
fn translate_batch(live: &mut Vec<u32>, raw_ops: &[RawOp], next_id: &mut u32) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    for (op_pick, id_pick, x, y) in raw_ops {
        let target = live.get(*id_pick as usize % live.len().max(1)).copied();
        match op_pick % 3 {
            0 => {
                batch = batch.insert(UncertainObject::with_gaussian(
                    *next_id,
                    Point::new(*x, *y),
                    20.0,
                ));
                *next_id += 1;
            }
            1 if live.len() > 10 => {
                let target = target.expect("live set is non-empty");
                batch = batch.delete(target);
                live.retain(|id| *id != target);
            }
            _ => {
                let Some(target) = target else { continue };
                batch = batch.move_to(target, Point::new(*x, *y));
            }
        }
    }
    batch
}

/// Seeds the fleet: subscribe every client, check the initial answers, and
/// initialize the replay state.
fn seed_fleet(system: &System<'_>, positions: &[Point]) -> (SubscriptionTable, Replay) {
    let mut engine = system.engine(SubscriptionTable::new());
    let mut replay = Replay::new();
    for (i, p) in positions.iter().enumerate() {
        let id = i as u64;
        let answer = engine.subscribe(id, *p).expect("fresh id");
        let ids: Vec<u32> = answer.probabilities.iter().map(|(o, _)| *o).collect();
        assert_eq!(ids, system.oracle_ids(*p));
        replay.insert(id, (*p, ids));
    }
    (engine.into_table(), replay)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 2, ..ProptestConfig::default() })]

    /// The tentpole property, unsharded: random walks interleaved with
    /// random update batches; the pushed delta stream stays bit-identical
    /// to per-tick re-answering through safe-region hits, misses and
    /// epoch invalidation.
    #[test]
    fn delta_stream_matches_per_tick_pnn(
        case in (60..110usize, 0..2u8, 0..2u8, 900.0..2_500.0f64, 0..10_000u64),
        walks in prop::collection::vec(
            prop::collection::vec((0..u16::MAX, 0.0..1.0f64, 0.0..1.0f64, 0..8u8), 4..10),
            6..10,
        ),
        raw_ops in prop::collection::vec(
            (0..6u8, 0..u16::MAX, 1_000.0..9_000.0f64, 1_000.0..9_000.0f64),
            8..14,
        ),
    ) {
        let (n, method_pick, kind_pick, sigma, seed) = case;
        let ds = generate(n, kind_pick, sigma, seed);
        let mut sys = UvSystem::build(
            ds.objects.clone(), ds.domain, method(method_pick), test_config(1),
        ).unwrap();
        let positions = ds.query_points(12, seed ^ 0x5afe);
        let (mut table, mut replay) = {
            let system = System::Single(&sys);
            seed_fleet(&system, &positions)
        };
        let mut live: Vec<u32> = sys.objects().iter().map(|o| o.id).collect();
        let mut next_id = 10_000;
        let phases = walks.len().div_ceil(2);
        for (i, chunk) in walks.chunks(2).enumerate() {
            {
                let system = System::Single(&sys);
                table = run_ticks(&system, table, &mut replay, chunk, ds.domain);
            }
            if i + 1 < phases {
                let ops = &raw_ops[i * 4 % raw_ops.len()..];
                let batch = translate_batch(&mut live, &ops[..ops.len().min(5)], &mut next_id);
                let stats = sys.apply(batch).expect("collision-free batch");
                let system = System::Single(&sys);
                table = run_refresh(&system, table, &mut replay, |e| e.refresh_after(&stats));
            }
        }
    }

    /// The same property served by the 2×2 domain-sharded system, with
    /// jump steps crossing shard boundaries (subscription migration) and
    /// per-shard epoch invalidation after each batch.
    #[test]
    fn sharded_delta_stream_matches_per_tick_pnn(
        case in (60..100usize, 0..2u8, 0..2u8, 900.0..2_500.0f64, 0..10_000u64),
        walks in prop::collection::vec(
            prop::collection::vec((0..u16::MAX, 0.0..1.0f64, 0.0..1.0f64, 0..4u8), 4..10),
            4..8,
        ),
        raw_ops in prop::collection::vec(
            (0..6u8, 0..u16::MAX, 1_000.0..9_000.0f64, 1_000.0..9_000.0f64),
            8..14,
        ),
    ) {
        let (n, method_pick, kind_pick, sigma, seed) = case;
        let ds = generate(n, kind_pick, sigma, seed);
        let mut sys = ShardedUvSystem::build(
            ds.objects.clone(), ds.domain, method(method_pick), test_config(2),
        ).unwrap();
        let positions = ds.query_points(10, seed ^ 0x5afe);
        let (mut table, mut replay) = {
            let system = System::Sharded(&sys);
            seed_fleet(&system, &positions)
        };
        let mut live: Vec<u32> = sys.objects().to_vec().iter().map(|o| o.id).collect();
        let mut next_id = 10_000;
        let phases = walks.len().div_ceil(2);
        for (i, chunk) in walks.chunks(2).enumerate() {
            {
                let system = System::Sharded(&sys);
                table = run_ticks(&system, table, &mut replay, chunk, ds.domain);
            }
            if i + 1 < phases {
                let ops = &raw_ops[i * 4 % raw_ops.len()..];
                let batch = translate_batch(&mut live, &ops[..ops.len().min(5)], &mut next_id);
                let stats = sys.apply(batch).expect("collision-free batch");
                let system = System::Sharded(&sys);
                table = run_refresh(&system, table, &mut replay, |e| {
                    e.refresh_after_sharded(&stats)
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic regression corpus: the boundary scenarios, at full strength
// even when `PROPTEST_CASES` is dialed down.
// ---------------------------------------------------------------------------

/// A tick whose path crosses a shard boundary must migrate the subscription
/// to the new owner — mid-tick, among other moving clients — and keep the
/// delta chain unbroken.
#[test]
fn migration_crosses_a_shard_boundary_mid_tick() {
    let ds = Dataset::generate(GeneratorConfig::paper_uniform(150).with_seed(7));
    let sys =
        ShardedUvSystem::build(ds.objects.clone(), ds.domain, Method::IC, test_config(2)).unwrap();
    let system = System::Sharded(&sys);
    // The 2×2 grid splits at the domain centre; walk client 0 straight
    // through the vertical boundary while two bystanders jitter in place.
    let start = Point::new(4_200.0, 3_000.0);
    let positions = vec![
        start,
        Point::new(2_000.0, 8_000.0),
        Point::new(8_000.0, 8_000.0),
    ];
    let (table, mut replay) = seed_fleet(&system, &positions);
    let before = table.client(0).expect("subscribed").shard();

    let mut engine = system.engine(table);
    for step in 1..=20 {
        let x = 4_200.0 + 80.0 * step as f64; // crosses mid-domain at step 10
        let moves = vec![
            (0u64, Point::new(x, 3_000.0)),
            (1u64, Point::new(2_000.0 + step as f64, 8_000.0)),
            (2u64, Point::new(8_000.0, 8_000.0 - step as f64)),
        ];
        for (id, np) in &moves {
            replay.get_mut(id).expect("known client").0 = *np;
        }
        for (id, delta) in engine.tick(&moves) {
            replay_delta(&mut replay, id, &delta);
        }
        assert_stream_matches_oracle(&system, engine.table(), &replay);
    }
    let after = engine.table().client(0).expect("still subscribed").shard();
    assert_ne!(before, after, "the walk must change the owning shard");
    assert_eq!(sys.owner_of(replay[&0].0), after);
    assert!(
        engine.stats().migrations >= 1,
        "a boundary crossing must be accounted as a migration"
    );
    assert!(
        engine.stats().hits > 0,
        "the jittering bystanders should mostly hit their safe regions"
    );
}

/// Domain growth rewrites the whole grid geometry: every in-domain safe
/// region must be invalidated, and the refreshed fleet must agree with the
/// post-growth oracle.
#[test]
fn domain_growth_invalidates_every_safe_region() {
    let ds = Dataset::generate(GeneratorConfig::paper_uniform(120).with_seed(11));
    let mut sys =
        UvSystem::build(ds.objects.clone(), ds.domain, Method::IC, test_config(1)).unwrap();
    let positions = ds.query_points(8, 23);
    let (mut table, mut replay) = {
        let system = System::Single(&sys);
        let (table, replay) = seed_fleet(&system, &positions);
        // A stationary tick builds a safe region for every client.
        let moves: Vec<(u64, Point)> = replay.iter().map(|(id, (p, _))| (*id, *p)).collect();
        let mut engine = system.engine(table);
        engine.tick(&moves);
        (engine.into_table(), replay)
    };
    for (id, _) in replay.iter() {
        assert!(table.client(*id).unwrap().safe_region().is_some());
    }

    // An insert far outside the domain forces in-place domain growth.
    let grow = UpdateBatch::new().insert(UncertainObject::with_gaussian(
        9_999,
        Point::new(14_000.0, 14_000.0),
        20.0,
    ));
    let stats = sys.apply(grow).expect("growth batch");
    assert!(!stats.repaired_regions().is_empty());

    let system = System::Single(&sys);
    let mut engine = system.engine(table);
    let pushed = engine.refresh_after(&stats);
    for (id, delta) in pushed {
        replay_delta(&mut replay, id, &delta);
    }
    assert_eq!(
        engine.stats().invalidated,
        replay.len() as u64,
        "growth rewrites the grid: every client must re-derive"
    );
    assert_stream_matches_oracle(&system, engine.table(), &replay);
    // The refreshed safe regions serve the next stationary tick as hits.
    engine.reset_stats();
    let moves: Vec<(u64, Point)> = replay.iter().map(|(id, (p, _))| (*id, *p)).collect();
    let deltas = engine.tick(&moves);
    assert!(deltas.is_empty());
    assert_eq!(engine.stats().hits, replay.len() as u64);
    table = engine.into_table();
    assert_eq!(table.len(), replay.len());
}

/// Unsubscribing, updating the system, then resubscribing the same id must
/// serve the new epoch — no resurrected answer set, no stale epoch tag.
#[test]
fn unsubscribe_then_resubscribe_is_epoch_coherent() {
    let ds = Dataset::generate(GeneratorConfig::paper_uniform(100).with_seed(3));
    let mut sys =
        UvSystem::build(ds.objects.clone(), ds.domain, Method::IC, test_config(1)).unwrap();
    let p = ds.query_points(1, 9)[0];

    let mut engine = SubscriptionEngine::new(&sys);
    engine.subscribe(42, p).unwrap();
    engine.tick(&[(42, p)]); // builds the safe region at the old epoch
    engine.unsubscribe(42).unwrap();
    assert!(!engine.table().contains(42));
    let table = engine.into_table();

    // Delete the nearest candidates so the answer at `p` actually changes.
    let old_ids = sys
        .pnn(p)
        .probabilities
        .iter()
        .map(|(id, _)| *id)
        .collect::<Vec<_>>();
    let mut batch = UpdateBatch::new();
    for id in old_ids.iter().take(2) {
        batch = batch.delete(*id);
    }
    sys.apply(batch).expect("delete batch");

    let mut engine = SubscriptionEngine::with_table(&sys, table);
    let answer = engine.subscribe(42, p).expect("id was released");
    let ids: Vec<u32> = answer.probabilities.iter().map(|(id, _)| *id).collect();
    let oracle: Vec<u32> = sys.pnn(p).probabilities.iter().map(|(id, _)| *id).collect();
    assert_eq!(ids, oracle, "resubscription must serve the current epoch");
    assert!(old_ids.iter().take(2).all(|d| !ids.contains(d)));

    // Resubscription built a *current-epoch* safe region, so stationary
    // ticks hit it — no residue of the unsubscribed incarnation.
    engine.reset_stats();
    engine.tick(&[(42, p)]);
    engine.tick(&[(42, p)]);
    assert_eq!(engine.stats().hits, 2);
    assert_eq!(engine.stats().derivations, 0);
}

/// A client parked exactly on a leaf split line: `locate_leaf` resolves the
/// tie deterministically, so stationary ticks hit one pinned leaf and the
/// answers stay bit-identical to the oracle on both sides of the line.
#[test]
fn client_parked_exactly_on_a_leaf_split_line() {
    let ds = Dataset::generate(GeneratorConfig::paper_uniform(200).with_seed(5));
    let sys = UvSystem::build(ds.objects.clone(), ds.domain, Method::IC, test_config(1)).unwrap();
    // An interior leaf edge is a genuine split line shared with a sibling.
    let (rect, _) = sys
        .index()
        .leaves()
        .find(|(r, _)| r.min_x > ds.domain.min_x + 1.0)
        .expect("a split index has interior leaf edges");
    let on_line = Point::new(rect.min_x, rect.center().y);

    let system = System::Single(&sys);
    let (table, mut replay) = seed_fleet(&system, &[on_line]);
    let mut engine = system.engine(table);
    engine.reset_stats();
    // Stationary ticks on the line: the subscription's safe region is
    // pinned to whichever leaf `locate_leaf` resolved the tie to, so every
    // tick hits it.
    for _ in 0..5 {
        for (id, delta) in engine.tick(&[(0, on_line)]) {
            replay_delta(&mut replay, id, &delta);
        }
        assert_stream_matches_oracle(&system, engine.table(), &replay);
    }
    assert_eq!(engine.stats().hits, 5);
    assert_eq!(engine.stats().derivations, 0);
    // Nudging across the line stays bit-identical (the hit test re-locates
    // the leaf, so a crossing can never serve the wrong side's cache).
    for dx in [-0.5, 0.5, -0.25, 0.25, 0.0] {
        let np = Point::new(rect.min_x + dx, rect.center().y);
        replay.get_mut(&0).expect("known client").0 = np;
        for (id, delta) in engine.tick(&[(0, np)]) {
            replay_delta(&mut replay, id, &delta);
        }
        assert_stream_matches_oracle(&system, engine.table(), &replay);
    }
}
