//! Property-based tests of the dynamic maintenance subsystem: for random
//! update sequences (inserts, deletes, moves — applied in batches) across
//! {IC, ICR} × {Uniform, GaussianSkew}, the incrementally maintained system
//! must be *bit-identical* to a cold full rebuild over the same object set —
//! grid structure, leaf member lists, PNN probabilities, candidate counts —
//! and the query engine's leaf cache must never serve a pre-update epoch.

use proptest::prelude::*;
use uv_core::{Method, UpdateBatch, UvConfig, UvSystem};
use uv_data::{Dataset, GeneratorConfig, QueryBreakdown, UncertainObject};
use uv_geom::Point;

/// A configuration that keeps sensitivity bounds *local* at test-sized
/// datasets (the paper's `k = 300` exceeds every test cardinality, which
/// would make every object affected by every change and bypass the
/// affected-set logic entirely) and produces enough leaves for splits and
/// merges to actually happen.
fn test_config() -> UvConfig {
    UvConfig::default()
        .with_seed_knn(24)
        .with_leaf_split_capacity(16)
}

fn build_case(n: usize, method_pick: u8, kind_pick: u8, sigma: f64, seed: u64) -> UvSystem {
    let method = if method_pick == 0 {
        Method::IC
    } else {
        Method::ICR
    };
    let generator = if kind_pick == 0 {
        GeneratorConfig::paper_uniform(n)
    } else {
        GeneratorConfig::paper_skewed(n, sigma)
    }
    .with_seed(seed);
    let dataset = Dataset::generate(generator);
    UvSystem::build(
        dataset.objects.clone(),
        dataset.domain,
        method,
        test_config(),
    )
    .unwrap()
}

/// Canonical view of the grid (the shared `UvIndex::canonical_leaves`
/// oracle): every leaf's region (bit-exact) with its id-sorted member list,
/// ordered by region.
fn canonical_leaves(sys: &UvSystem) -> Vec<uv_core::index::CanonicalLeaf> {
    sys.index().canonical_leaves()
}

/// One raw op drawn by proptest: discriminant, target pick and a position.
type RawOp = (u8, u16, f64, f64);

/// Applies `raw_ops` in batches of `batch_size` ops, translating picks to
/// live ids (avoiding intra-batch collisions on deleted ids so every batch
/// validates). Returns the number of applied operations.
fn churn(sys: &mut UvSystem, raw_ops: &[RawOp], batch_size: usize, mut next_id: u32) -> usize {
    let mut applied = 0usize;
    for chunk in raw_ops.chunks(batch_size.max(1)) {
        let mut live: Vec<u32> = sys.objects().iter().map(|o| o.id).collect();
        let mut batch = UpdateBatch::new();
        for (op_pick, id_pick, x, y) in chunk {
            let target = live.get(*id_pick as usize % live.len().max(1)).copied();
            match op_pick % 3 {
                0 => {
                    batch = batch.insert(UncertainObject::with_gaussian(
                        next_id,
                        Point::new(*x, *y),
                        20.0,
                    ));
                    next_id += 1;
                    applied += 1;
                }
                1 if live.len() > 10 => {
                    let target = target.expect("live set is non-empty");
                    batch = batch.delete(target);
                    live.retain(|id| *id != target);
                    applied += 1;
                }
                _ => {
                    let Some(target) = target else { continue };
                    batch = batch.move_to(target, Point::new(*x, *y));
                    applied += 1;
                }
            }
        }
        sys.apply(batch)
            .expect("collision-free batch must validate");
    }
    applied
}

fn op_strategy() -> impl Strategy<Value = Vec<RawOp>> {
    // Positions keep a margin so the 20-unit radius stays inside the domain
    // (sequences biased to *leave* the domain — staircase growth, budget
    // overflow — live in `proptest_adversarial.rs`; here we exercise the
    // steady-state localized-repair path).
    prop::collection::vec(
        (0..3u8, 0..u16::MAX, 50.0..9_950.0f64, 50.0..9_950.0f64),
        50..70,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// The tentpole oracle: after >= 50 random mixed update operations the
    /// maintained system equals a cold rebuild of its final object set —
    /// structurally (leaf regions and member lists, bit-exact) and on every
    /// PNN answer (probabilities and candidate counts, bit-exact), through
    /// both the sequential path and the batched engine; and the fresh
    /// engine's leaf cache carries the post-update epoch.
    #[test]
    fn random_update_sequences_match_cold_rebuild(
        case in (60..110usize, 0..2u8, 0..2u8, 900.0..2_500.0f64, 0..10_000u64),
        raw_ops in op_strategy(),
        batch_size in 1..8usize,
    ) {
        let (n, method_pick, kind_pick, sigma, seed) = case;
        let mut sys = build_case(n, method_pick, kind_pick, sigma, seed);
        let applied = churn(&mut sys, &raw_ops, batch_size, 100_000);
        prop_assert!(applied >= 50, "sequence must mix at least 50 ops");
        prop_assert!(sys.epoch() > 0, "churn must bump the epoch");

        let rebuilt = UvSystem::build(
            sys.objects().to_vec(),
            sys.domain(),
            sys.method(),
            *sys.config(),
        ).unwrap();
        prop_assert_eq!(canonical_leaves(&sys), canonical_leaves(&rebuilt));

        let queries = Dataset::generate(GeneratorConfig::paper_uniform(10))
            .query_points(24, seed ^ 0xd15c);
        let maintained_batch = sys.pnn_batch(&queries);
        for (q, batched) in queries.iter().zip(&maintained_batch) {
            let a = sys.pnn(*q);
            let b = rebuilt.pnn(*q);
            prop_assert_eq!(&a.probabilities, &b.probabilities);
            prop_assert_eq!(a.candidates_examined, b.candidates_examined);
            // The engine path over the maintained index agrees bit-exactly
            // with the rebuilt sequential path too.
            prop_assert_eq!(&batched.probabilities, &b.probabilities);
            prop_assert_eq!(batched.candidates_examined, b.candidates_examined);
        }

        // The leaf cache of any engine created now is tagged with the
        // current epoch — a cache from before any update (epoch 0) is
        // unreachable by construction, and the engine bypasses caches whose
        // epoch mismatches the index.
        let engine = sys.engine();
        prop_assert_eq!(engine.cache_epoch(), Some(sys.epoch()));
        prop_assert!(sys.epoch() > 0);
    }

    /// Satellite: delete-then-reinsert of the same object is a perfect
    /// round-trip — PNN answers (sequential and batched engine path) and the
    /// object's `cell_area` are bit-identical to the untouched system.
    #[test]
    fn delete_then_reinsert_is_bit_identical(
        case in (60..110usize, 0..2u8, 0..2u8, 900.0..2_500.0f64, 0..10_000u64),
        victim_pick in 0..60usize,
    ) {
        let (n, method_pick, kind_pick, sigma, seed) = case;
        let mut sys = build_case(n, method_pick, kind_pick, sigma, seed);
        let victim = sys.objects()[victim_pick % sys.objects().len()].clone();

        let queries = Dataset::generate(GeneratorConfig::paper_uniform(10))
            .query_points(20, seed ^ 0xbeef);
        let before_answers: Vec<_> = queries.iter().map(|q| sys.pnn(*q)).collect();
        let before_batch = sys.pnn_batch(&queries);
        let before_area = sys.cell_area(victim.id);
        let before_leaves = canonical_leaves(&sys);

        let del = sys.delete_object(victim.id).unwrap();
        prop_assert_eq!(del.deleted, 1);
        prop_assert!(sys.cell_area(victim.id) == 0.0 || del.full_rebuild);
        let ins = sys.insert_object(victim.clone()).unwrap();
        prop_assert_eq!(ins.inserted, 1);

        prop_assert_eq!(canonical_leaves(&sys), before_leaves);
        prop_assert_eq!(sys.cell_area(victim.id).to_bits(), before_area.to_bits());
        let after_batch = sys.pnn_batch(&queries);
        for ((q, before), (before_b, after_b)) in queries
            .iter()
            .zip(&before_answers)
            .zip(before_batch.iter().zip(&after_batch))
        {
            let after = sys.pnn(*q);
            prop_assert_eq!(&after.probabilities, &before.probabilities, "at {:?}", q);
            prop_assert_eq!(after.candidates_examined, before.candidates_examined);
            prop_assert_eq!(&after_b.probabilities, &before_b.probabilities);
        }
        prop_assert_eq!(sys.epoch(), 2);
    }

    /// Satellite: per-query I/O attribution stays exact on a churned system —
    /// summing every answer's breakdown reproduces the atomic store counters,
    /// tombstones and append pages included.
    #[test]
    fn io_attribution_stays_exact_after_churn(
        case in (60..110usize, 0..2u8, 0..2u8, 900.0..2_500.0f64, 0..10_000u64),
        raw_ops in prop::collection::vec(
            (0..3u8, 0..u16::MAX, 50.0..9_950.0f64, 50.0..9_950.0f64),
            20..30,
        ),
    ) {
        let (n, method_pick, kind_pick, sigma, seed) = case;
        let mut sys = build_case(n, method_pick, kind_pick, sigma, seed);
        churn(&mut sys, &raw_ops, 4, 200_000);
        prop_assert!(sys.object_store().tombstones() > 0 || sys.epoch() == 0);

        let queries = Dataset::generate(GeneratorConfig::paper_uniform(10))
            .query_points(32, seed ^ 0x10aa);
        for cache in [true, false] {
            let engine = sys.engine().with_workers(4).with_cache(cache);
            sys.index().store().reset_io();
            sys.object_store().store().reset_io();
            let answers = engine.pnn_batch(&queries);
            let total = QueryBreakdown::sum(answers.iter().map(|a| &a.breakdown));
            prop_assert_eq!(total.index_io, sys.index().store().io().reads);
            prop_assert_eq!(total.object_io, sys.object_store().store().io().reads);
        }
    }
}
