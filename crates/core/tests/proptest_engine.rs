//! Property-based tests of the concurrent batched query engine: across
//! construction methods and dataset shapes, `pnn_batch` must return answers
//! identical to a sequential loop of `UvIndex::pnn` (probabilities and
//! candidate counts), and the per-query I/O attribution must stay consistent
//! with the shared atomic counters under parallel readers.

use proptest::prelude::*;
use uv_core::{Method, QueryEngine, UvConfig, UvSystem};
use uv_data::{Dataset, GeneratorConfig, QueryBreakdown};

fn build_case(
    n: usize,
    method_pick: u8,
    kind_pick: u8,
    sigma: f64,
    seed: u64,
) -> (Dataset, UvSystem) {
    let method = if method_pick == 0 {
        Method::IC
    } else {
        Method::ICR
    };
    let generator = if kind_pick == 0 {
        GeneratorConfig::paper_uniform(n)
    } else {
        GeneratorConfig::paper_skewed(n, sigma)
    }
    .with_seed(seed);
    let dataset = Dataset::generate(generator);
    let system = UvSystem::build(
        dataset.objects.clone(),
        dataset.domain,
        method,
        UvConfig::default(),
    )
    .unwrap();
    (dataset, system)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// `pnn_batch` answers are identical to the sequential Section V-A path
    /// for every combination of method {IC, ICR}, dataset {Uniform,
    /// GaussianSkew}, cache toggle and worker count.
    #[test]
    fn batch_answers_equal_sequential_answers(
        case in (60..140usize, 0..2u8, 0..2u8, 800.0..2_500.0f64, 0..10_000u64)
    ) {
        let (n, method_pick, kind_pick, sigma, seed) = case;
        let (dataset, system) = build_case(n, method_pick, kind_pick, sigma, seed);
        let queries = dataset.query_points(24, seed ^ 0x5eed);
        let sequential: Vec<_> = queries
            .iter()
            .map(|q| system.index().pnn(system.object_store(), *q, system.index().config().integration_steps))
            .collect();
        for cache in [true, false] {
            for workers in [1usize, 4] {
                let engine = QueryEngine::new(system.index(), system.object_store())
                    .with_workers(workers)
                    .with_cache(cache);
                let batch = engine.pnn_batch(&queries);
                prop_assert_eq!(batch.len(), sequential.len());
                for (b, s) in batch.iter().zip(&sequential) {
                    prop_assert_eq!(&b.probabilities, &s.probabilities);
                    prop_assert_eq!(b.candidates_examined, s.candidates_examined);
                }
            }
        }
    }

    /// Under parallel readers the atomic I/O counters and the per-answer
    /// breakdowns tell the same story: summing every answer's I/O reproduces
    /// the store counters' deltas exactly.
    #[test]
    fn io_counters_are_consistent_under_parallel_readers(
        case in (60..140usize, 0..2u8, 0..2u8, 800.0..2_500.0f64, 0..10_000u64)
    ) {
        let (n, method_pick, kind_pick, sigma, seed) = case;
        let (dataset, system) = build_case(n, method_pick, kind_pick, sigma, seed);
        let queries = dataset.query_points(32, seed ^ 0xcafe);
        for cache in [true, false] {
            let engine = QueryEngine::new(system.index(), system.object_store())
                .with_workers(4)
                .with_cache(cache);
            system.index().store().reset_io();
            system.object_store().store().reset_io();
            let answers = engine.pnn_batch(&queries);
            let total = QueryBreakdown::sum(answers.iter().map(|a| &a.breakdown));
            prop_assert_eq!(total.index_io, system.index().store().io().reads);
            prop_assert_eq!(total.object_io, system.object_store().store().io().reads);
            // No query writes pages.
            prop_assert_eq!(system.index().store().io().writes, 0);
            prop_assert_eq!(system.object_store().store().io().writes, 0);
        }
    }
}
