//! Adversarial churn suite: op sequences *biased to provoke the retired
//! full-rebuild fallbacks* — staircase growth (repeated inserts just beyond
//! the current domain), hotspot mass-inserts that overflow the non-leaf
//! node budget, and interleaved deletes/moves — across
//! {IC, ICR} × {Uniform, GaussianSkew}.
//!
//! The invariant under attack: [`uv_core::update::UpdateStats::full_rebuild`]
//! is structurally unreachable. Domain growth extends the grid in place
//! (exponentially, so staircases amortize to `O(log)` growth events) and
//! budget overflow is repaired locally (unbounded split + a replay of the
//! cold build's preorder budget allocation). Throughout, the maintained
//! system must stay *bit-identical* to a cold rebuild over the same objects
//! at the same (grown) domain — leaf regions, member lists, PNN answers,
//! `cell_area` — and the epoch must advance exactly once per effective
//! batch so the query engine's per-leaf cache can never serve stale
//! entries.
//!
//! The vendored proptest shim honours `PROPTEST_CASES` globally: the CI PR
//! gate keeps the configured (small) count, a scheduled deep run dials it
//! up with one environment variable.

use proptest::prelude::*;
use uv_core::{Method, UpdateBatch, UvConfig, UvSystem};
use uv_data::{Dataset, GeneratorConfig, UncertainObject};
use uv_geom::Point;

/// Local sensitivity bounds + small leaves (the `proptest_update.rs`
/// tuning), with an optionally *tiny* non-leaf budget so the budget-replay
/// path runs under pressure on every batch.
fn test_config(budget_pick: u8) -> UvConfig {
    let config = UvConfig::default()
        .with_seed_knn(24)
        .with_leaf_split_capacity(16);
    match budget_pick {
        0 => config,
        _ => config.with_max_nonleaf(12),
    }
}

fn build_case(
    n: usize,
    method_pick: u8,
    kind_pick: u8,
    sigma: f64,
    seed: u64,
    budget_pick: u8,
) -> UvSystem {
    let method = if method_pick == 0 {
        Method::IC
    } else {
        Method::ICR
    };
    let generator = if kind_pick == 0 {
        GeneratorConfig::paper_uniform(n)
    } else {
        GeneratorConfig::paper_skewed(n, sigma)
    }
    .with_seed(seed);
    let dataset = Dataset::generate(generator);
    UvSystem::build(
        dataset.objects.clone(),
        dataset.domain,
        method,
        test_config(budget_pick),
    )
    .unwrap()
}

fn canonical_leaves(sys: &UvSystem) -> Vec<uv_core::index::CanonicalLeaf> {
    sys.index().canonical_leaves()
}

/// One raw adversarial op: discriminant, target pick and two unit-interval
/// fractions resolved against the *current* domain at application time (the
/// domain grows mid-sequence, so absolute positions would stop provoking).
type RawOp = (u8, u16, f64, f64);

/// Outcome counters of one adversarial churn run.
struct ChurnOutcome {
    applied: usize,
    batches: usize,
    growths: usize,
}

/// Applies `raw_ops` in batches, translating each op against the live id
/// set and current domain. Asserts per batch: no full rebuild ever, and the
/// epoch advances exactly once per batch with a net effect.
fn churn(
    sys: &mut UvSystem,
    raw_ops: &[RawOp],
    batch_size: usize,
    mut next_id: u32,
) -> ChurnOutcome {
    let mut out = ChurnOutcome {
        applied: 0,
        batches: 0,
        growths: 0,
    };
    for chunk in raw_ops.chunks(batch_size.max(1)) {
        let domain = sys.domain();
        let w = domain.width();
        let h = domain.height();
        let live: Vec<u32> = sys.objects().iter().map(|o| o.id).collect();
        let mut batch = UpdateBatch::new();
        let mut used: Vec<u32> = Vec::new();
        let mut ops_in_batch = 0usize;
        for (op_pick, id_pick, fx, fy) in chunk {
            let target = live
                .get(*id_pick as usize % live.len().max(1))
                .copied()
                .filter(|id| !used.contains(id));
            match op_pick {
                0 => {
                    // Staircase growth: just beyond the NE corner, at an
                    // offset proportional to the current domain so the
                    // provocation survives every expansion.
                    batch = batch.insert(UncertainObject::with_gaussian(
                        next_id,
                        Point::new(
                            domain.max_x + 25.0 + fx * 0.05 * w,
                            domain.max_y + 25.0 + fy * 0.05 * h,
                        ),
                        10.0,
                    ));
                    next_id += 1;
                    ops_in_batch += 1;
                }
                1 => {
                    // Growth on the opposite (SW) flank.
                    batch = batch.insert(UncertainObject::with_gaussian(
                        next_id,
                        Point::new(domain.min_x - 25.0 - fx * 0.04 * w, domain.min_y + fy * h),
                        10.0,
                    ));
                    next_id += 1;
                    ops_in_batch += 1;
                }
                2 | 3 => {
                    // Hotspot mass-insert: a narrow box in one quadrant, so
                    // leaves there overflow their split capacity and press
                    // against the non-leaf budget.
                    batch = batch.insert(UncertainObject::with_gaussian(
                        next_id,
                        Point::new(
                            domain.min_x + (0.72 + fx * 0.06) * w,
                            domain.min_y + (0.72 + fy * 0.06) * h,
                        ),
                        8.0,
                    ));
                    next_id += 1;
                    ops_in_batch += 1;
                }
                4 if live.len() > used.len() + 10 => {
                    if let Some(target) = target {
                        batch = batch.delete(target);
                        used.push(target);
                        ops_in_batch += 1;
                    }
                }
                _ => {
                    if let Some(target) = target {
                        // Move into the hotspot: churns the overflowing
                        // subtree from the other direction.
                        batch = batch.move_to(
                            target,
                            Point::new(
                                domain.min_x + (0.70 + fx * 0.10) * w,
                                domain.min_y + (0.70 + fy * 0.10) * h,
                            ),
                        );
                        used.push(target);
                        ops_in_batch += 1;
                    }
                }
            }
        }
        let epoch_before = sys.epoch();
        let stats = sys.apply(batch).expect("adversarial batch must validate");
        assert!(
            !stats.full_rebuild,
            "full_rebuild must be structurally unreachable"
        );
        if ops_in_batch > 0 {
            assert_eq!(
                sys.epoch(),
                epoch_before + 1,
                "the epoch must advance exactly once per effective batch"
            );
        }
        out.applied += ops_in_batch;
        out.batches += 1;
        out.growths += usize::from(stats.domain_grown);
    }
    out
}

/// The non-negotiable oracle: bit-identical to a cold rebuild of the final
/// object set at the final (grown) domain — leaves and member lists,
/// per-object `cell_area` bits, and PNN answers through both the sequential
/// path and the batched engine.
fn assert_matches_cold_rebuild(sys: &UvSystem, query_seed: u64) {
    let rebuilt = UvSystem::build(
        sys.objects().to_vec(),
        sys.domain(),
        sys.method(),
        *sys.config(),
    )
    .unwrap();
    assert_eq!(
        canonical_leaves(sys),
        canonical_leaves(&rebuilt),
        "maintained grid diverged from a cold rebuild"
    );
    for o in sys.objects().iter().step_by(7) {
        assert_eq!(
            sys.cell_area(o.id).to_bits(),
            rebuilt.cell_area(o.id).to_bits(),
            "cell_area diverged for {}",
            o.id
        );
    }
    // Queries over the *grown* domain, rim included.
    let domain = sys.domain();
    let queries: Vec<Point> = Dataset::generate(GeneratorConfig::paper_uniform(10))
        .query_points(24, query_seed)
        .into_iter()
        .map(|q| {
            Point::new(
                domain.min_x + (q.x / 10_000.0) * domain.width(),
                domain.min_y + (q.y / 10_000.0) * domain.height(),
            )
        })
        .collect();
    let batched = sys.pnn_batch(&queries);
    for (q, batched) in queries.iter().zip(&batched) {
        let a = sys.pnn(*q);
        let b = rebuilt.pnn(*q);
        assert_eq!(a.probabilities, b.probabilities, "answers differ at {q:?}");
        assert_eq!(a.candidates_examined, b.candidates_examined);
        assert_eq!(batched.probabilities, b.probabilities);
        assert_eq!(batched.candidates_examined, b.candidates_examined);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// The tentpole property: ≥50 adversarial ops — staircase growth on two
    /// flanks, hotspot mass-inserts, interleaved deletes/moves — across
    /// {IC, ICR} × {Uniform, GaussianSkew} × {default budget, tiny budget},
    /// with zero full rebuilds, at least one in-place domain growth, and
    /// the final state bit-identical to a cold rebuild.
    #[test]
    fn adversarial_sequences_never_full_rebuild(
        case in (50..80usize, 0..2u8, 0..2u8, 900.0..2_500.0f64, 0..10_000u64, 0..2u8),
        raw_ops in prop::collection::vec(
            (0..6u8, 0..u16::MAX, 0.0..1.0f64, 0.0..1.0f64),
            52..62,
        ),
        batch_size in 3..9usize,
    ) {
        let (n, method_pick, kind_pick, sigma, seed, budget_pick) = case;
        let mut sys = build_case(n, method_pick, kind_pick, sigma, seed, budget_pick);
        let out = churn(&mut sys, &raw_ops, batch_size, 100_000);
        prop_assert!(out.applied >= 50, "sequence must mix at least 50 ops");
        prop_assert!(out.growths >= 1, "the biased sequence must grow the domain");
        prop_assert_eq!(sys.engine().cache_epoch(), Some(sys.epoch()));
        assert_matches_cold_rebuild(&sys, seed ^ 0xadf5);
    }
}

// ---------------------------------------------------------------------------
// Deterministic regression corpus: the fixed sequences that exercised the
// two retired fallback paths (extracted from the former unit tests
// `domain_growth_triggers_full_rebuild` and
// `budget_bound_index_falls_back_to_full_rebuild`, polarity flipped), plus
// the staircase-amortization and epoch-coherence guards. These run at full
// strength even when `PROPTEST_CASES` is dialed down.
// ---------------------------------------------------------------------------

fn fixed_system(n: usize, config: UvConfig) -> (Dataset, UvSystem) {
    let ds = Dataset::generate(GeneratorConfig::paper_uniform(n));
    let sys = UvSystem::build(ds.objects.clone(), ds.domain, Method::IC, config).unwrap();
    (ds, sys)
}

/// The former domain-growth fallback sequence: one insert beyond the NE
/// corner. Now it must grow in place — no rebuild, one epoch bump, and the
/// cold-rebuild oracle at the grown domain.
#[test]
fn growth_corpus_insert_beyond_the_corner() {
    let (ds, mut sys) = fixed_system(80, test_config(0));
    let outside = UncertainObject::with_uniform(
        800,
        Point::new(ds.domain.max_x + 500.0, ds.domain.max_y + 500.0),
        10.0,
    );
    let stats = sys.insert_object(outside).unwrap();
    assert!(!stats.full_rebuild);
    assert!(stats.domain_grown);
    assert_eq!(stats.epoch, 1);
    assert_eq!(sys.epoch(), 1);
    assert!(sys.domain().max_x >= ds.domain.max_x + 510.0);
    assert_matches_cold_rebuild(&sys, 0x9e3779b9);
}

/// A 6-step staircase marching east: exponential expansion must absorb the
/// whole staircase in a single growth event.
#[test]
fn growth_corpus_staircase_amortizes() {
    let (ds, mut sys) = fixed_system(80, test_config(0));
    let mut growths = 0usize;
    for k in 1..=6u32 {
        let stats = sys
            .insert_object(UncertainObject::with_uniform(
                800 + k,
                Point::new(ds.domain.max_x + f64::from(k) * 60.0, 4_800.0),
                5.0,
            ))
            .unwrap();
        assert!(!stats.full_rebuild);
        growths += usize::from(stats.domain_grown);
    }
    assert_eq!(growths, 1, "one doubling must swallow the staircase");
    assert_matches_cold_rebuild(&sys, 0x51caffe);
}

/// The former budget-bound fallback sequence: a `max_nonleaf = 1` system
/// where any local split decision is order-dependent. The updater now
/// repairs unbounded and replays the preorder budget instead of rebuilding.
#[test]
fn budget_corpus_tiny_budget_move() {
    let (_, mut sys) = fixed_system(
        400,
        UvConfig::default()
            .with_max_nonleaf(1)
            .with_leaf_split_capacity(16),
    );
    assert!(sys.index().num_nonleaf_nodes() <= 1);
    let stats = sys.move_object(0, Point::new(5_001.0, 5_002.0)).unwrap();
    assert!(!stats.full_rebuild);
    assert!(!stats.domain_grown);
    assert_matches_cold_rebuild(&sys, 0xb0d6e7);
}

/// Budget pressure from mass-insertion: a hotspot burst against a small
/// budget must deny splits exactly like the cold build would, batch after
/// batch, without ever rebuilding.
#[test]
fn budget_corpus_hotspot_mass_insert() {
    let (_, mut sys) = fixed_system(120, test_config(1));
    for wave in 0..4u32 {
        let mut batch = UpdateBatch::new();
        for i in 0..12u32 {
            let id = 10_000 + wave * 100 + i;
            batch = batch.insert(UncertainObject::with_gaussian(
                id,
                Point::new(
                    7_200.0 + f64::from(i % 4) * 90.0,
                    7_200.0 + f64::from(i / 4) * 90.0,
                ),
                8.0,
            ));
        }
        let stats = sys.apply(batch).unwrap();
        assert!(!stats.full_rebuild);
    }
    assert_matches_cold_rebuild(&sys, 0xca11ab1e);
}

/// Epoch/cache coherence across an in-place domain extension: the epoch
/// bumps exactly once for the growth batch, a fresh engine is tagged with
/// the new epoch, and batched answers (the cached engine path) equal a
/// fresh cold-built system's answers — no stale per-leaf cache entry can
/// survive the growth.
#[test]
fn growth_preserves_query_cache_coherence() {
    let (ds, mut sys) = fixed_system(90, test_config(0));
    // Warm a batch through the engine path at epoch 0.
    let warm: Vec<Point> = ds.query_points(16, 5);
    let _ = sys.pnn_batch(&warm);

    let stats = sys
        .insert_object(UncertainObject::with_uniform(
            900,
            Point::new(ds.domain.max_x + 333.0, ds.domain.max_y + 111.0),
            12.0,
        ))
        .unwrap();
    assert!(stats.domain_grown);
    assert_eq!(sys.epoch(), 1);
    assert_eq!(sys.engine().cache_epoch(), Some(1));

    // A second, non-growing batch bumps exactly once more.
    let stats = sys.move_object(3, Point::new(4_100.0, 4_200.0)).unwrap();
    assert!(!stats.domain_grown);
    assert_eq!(sys.epoch(), 2);
    assert_eq!(sys.engine().cache_epoch(), Some(2));

    // Batched (cache-backed) answers equal a fresh build's everywhere,
    // including inside the annexed ring the old cache never indexed.
    let fresh = UvSystem::build(
        sys.objects().to_vec(),
        sys.domain(),
        sys.method(),
        *sys.config(),
    )
    .unwrap();
    let mut queries = warm;
    queries.push(Point::new(ds.domain.max_x + 300.0, ds.domain.max_y + 100.0));
    queries.push(Point::new(ds.domain.max_x + 5.0, 50.0));
    let cached = sys.pnn_batch(&queries);
    let oracle = fresh.pnn_batch(&queries);
    for ((q, a), b) in queries.iter().zip(&cached).zip(&oracle) {
        assert_eq!(a.probabilities, b.probabilities, "stale answer at {q:?}");
        assert_eq!(a.candidates_examined, b.candidates_examined);
    }
}

/// Growth is a pure function of (domain, violating rectangle): the same
/// sequence applied in one batch or op-by-op lands on the same domain, and
/// both match the cold rebuild (batching must not change the grown
/// geometry).
#[test]
fn growth_corpus_batching_invariance() {
    let objects: Vec<UncertainObject> = (1..=3u32)
        .map(|k| {
            UncertainObject::with_uniform(
                800 + k,
                Point::new(10_000.0 + f64::from(k) * 210.0, f64::from(k) * 900.0),
                6.0,
            )
        })
        .collect();
    let (_, mut one_batch) = fixed_system(70, test_config(0));
    let (_, mut op_by_op) = fixed_system(70, test_config(0));

    let mut batch = UpdateBatch::new();
    for o in &objects {
        batch = batch.insert(o.clone());
    }
    let stats = one_batch.apply(batch).unwrap();
    assert!(stats.domain_grown && !stats.full_rebuild);

    for o in &objects {
        let stats = op_by_op.insert_object(o.clone()).unwrap();
        assert!(!stats.full_rebuild);
    }
    assert_eq!(one_batch.domain(), op_by_op.domain());
    assert_eq!(canonical_leaves(&one_batch), canonical_leaves(&op_by_op));
    assert_matches_cold_rebuild(&one_batch, 0x0ddba11);
}
