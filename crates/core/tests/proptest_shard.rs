//! Property-based tests of the domain-sharded serving layer: across
//! {IC, ICR} × {Uniform, GaussianSkew}, a [`ShardedUvSystem`] must answer
//! every PNN query — point, batch and trajectory — *bit-identically*
//! (probabilities and candidate counts) to one unsharded [`UvSystem`] over
//! the same objects, before and after random ≥50-op update batches; and the
//! per-query I/O breakdowns returned by the shard fan-out must attribute
//! every physical page read exactly (per-query I/O *values* legitimately
//! differ from the unsharded system, whose leaves have a different physical
//! page layout — what must hold is that summing the breakdowns reproduces
//! the shard stores' atomic counters). Adversarial sequences biased to
//! provoke the retired full-rebuild triggers additionally assert that
//! [`ShardedUpdateStats::resharded`] stays `false` forever — domain growth
//! extends the shard geometry in place.
//!
//! Elastic resharding is covered by a churn-interleaved property: random
//! [`ShardedUvSystem::split_shard`] / [`ShardedUvSystem::merge_shards`]
//! operations alternate with update batches and live subscription ticks;
//! routed answers and the client-visible delta streams must stay
//! bit-identical to the unsharded oracle throughout, a reshard itself must
//! push no deltas, and the final (generally non-uniform) layout must
//! survive a snapshot round-trip. A deterministic corpus case additionally
//! fuses a 2×2 grid down to a single shard and splits it back up into a
//! non-uniform 3×2.

use proptest::prelude::*;
use uv_core::{
    ClientId, Method, ShardedUvSystem, SubscriptionEngine, SubscriptionTable, UpdateBatch,
    UvConfig, UvSystem,
};
use uv_data::{Dataset, GeneratorConfig, QueryBreakdown, UncertainObject};
use uv_geom::Point;

/// The dynamic-serving tuning of the update proptests (local sensitivity
/// bounds, enough leaves for splits/merges), sharded 2×2.
fn test_config() -> UvConfig {
    UvConfig::default()
        .with_seed_knn(24)
        .with_leaf_split_capacity(16)
        .with_num_shards(2)
}

fn build_case(
    n: usize,
    method_pick: u8,
    kind_pick: u8,
    sigma: f64,
    seed: u64,
) -> (Dataset, ShardedUvSystem, UvSystem) {
    let method = if method_pick == 0 {
        Method::IC
    } else {
        Method::ICR
    };
    let generator = if kind_pick == 0 {
        GeneratorConfig::paper_uniform(n)
    } else {
        GeneratorConfig::paper_skewed(n, sigma)
    }
    .with_seed(seed);
    let dataset = Dataset::generate(generator);
    let sharded = ShardedUvSystem::build(
        dataset.objects.clone(),
        dataset.domain,
        method,
        test_config(),
    )
    .unwrap();
    let unsharded = UvSystem::build(
        dataset.objects.clone(),
        dataset.domain,
        method,
        test_config(),
    )
    .unwrap();
    (dataset, sharded, unsharded)
}

/// One raw op drawn by proptest: discriminant, target pick and a position.
type RawOp = (u8, u16, f64, f64);

/// Applies `raw_ops` to both systems in identical batches (the same
/// batch-translation scheme as `proptest_update.rs`). Returns applied ops.
fn churn(
    sharded: &mut ShardedUvSystem,
    unsharded: &mut UvSystem,
    raw_ops: &[RawOp],
    batch_size: usize,
    mut next_id: u32,
) -> usize {
    let mut applied = 0usize;
    for chunk in raw_ops.chunks(batch_size.max(1)) {
        let mut live: Vec<u32> = unsharded.objects().iter().map(|o| o.id).collect();
        let mut batch = UpdateBatch::new();
        for (op_pick, id_pick, x, y) in chunk {
            let target = live.get(*id_pick as usize % live.len().max(1)).copied();
            match op_pick % 3 {
                0 => {
                    batch = batch.insert(UncertainObject::with_gaussian(
                        next_id,
                        Point::new(*x, *y),
                        20.0,
                    ));
                    next_id += 1;
                    applied += 1;
                }
                1 if live.len() > 10 => {
                    let target = target.expect("live set is non-empty");
                    batch = batch.delete(target);
                    live.retain(|id| *id != target);
                    applied += 1;
                }
                _ => {
                    let Some(target) = target else { continue };
                    batch = batch.move_to(target, Point::new(*x, *y));
                    applied += 1;
                }
            }
        }
        sharded
            .apply(batch.clone())
            .expect("collision-free batch must validate on the sharded path");
        unsharded
            .apply(batch)
            .expect("collision-free batch must validate on the unsharded path");
    }
    applied
}

/// Builds one collision-free mixed batch from `raw_ops` (at most one op per
/// live id, like `churn`, but returning the batch so the caller can thread
/// its stats into the subscription refresh). Returns the batch and the next
/// fresh insert id.
fn one_batch(unsharded: &UvSystem, raw_ops: &[RawOp], mut next_id: u32) -> (UpdateBatch, u32) {
    let live: Vec<u32> = unsharded.objects().iter().map(|o| o.id).collect();
    let mut batch = UpdateBatch::new();
    let mut used: Vec<u32> = Vec::new();
    for (op_pick, id_pick, x, y) in raw_ops {
        let target = live
            .get(*id_pick as usize % live.len().max(1))
            .copied()
            .filter(|id| !used.contains(id));
        match op_pick % 3 {
            0 => {
                batch = batch.insert(UncertainObject::with_gaussian(
                    next_id,
                    Point::new(*x, *y),
                    20.0,
                ));
                next_id += 1;
            }
            1 if live.len() > used.len() + 10 => {
                if let Some(target) = target {
                    batch = batch.delete(target);
                    used.push(target);
                }
            }
            _ => {
                if let Some(target) = target {
                    batch = batch.move_to(target, Point::new(*x, *y));
                    used.push(target);
                }
            }
        }
    }
    (batch, next_id)
}

/// The `pick`-th axis-adjacent shard pair of an `nx × ny` grid (column
/// pairs first, then row pairs), or `None` on a single-shard layout.
fn adjacent_pair(nx: usize, ny: usize, pick: usize) -> Option<(usize, usize)> {
    let x_pairs = (nx - 1) * ny;
    let y_pairs = nx * (ny - 1);
    if x_pairs + y_pairs == 0 {
        return None;
    }
    let k = pick % (x_pairs + y_pairs);
    if k < x_pairs {
        let a = (k / (nx - 1)) * nx + k % (nx - 1);
        Some((a, a + 1))
    } else {
        let k = k - x_pairs;
        Some((k, k + nx))
    }
}

fn assert_bit_identical(sharded: &ShardedUvSystem, unsharded: &UvSystem, queries: &[Point]) {
    let batch = sharded.pnn_batch(queries);
    for (q, batched) in queries.iter().zip(&batch) {
        let point = sharded.pnn(*q);
        let oracle = unsharded.pnn(*q);
        prop_assert_eq!(&point.probabilities, &oracle.probabilities, "at {:?}", q);
        prop_assert_eq!(point.candidates_examined, oracle.candidates_examined);
        prop_assert_eq!(&batched.probabilities, &oracle.probabilities);
        prop_assert_eq!(batched.candidates_examined, oracle.candidates_examined);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// The tentpole oracle, static half: routed answers equal the unsharded
    /// system on fresh builds, including trajectory steps (whose deltas
    /// chain across shard-boundary re-routes) and exact I/O attribution
    /// across the shard fan-out.
    #[test]
    fn sharded_answers_equal_unsharded_answers(
        case in (60..120usize, 0..2u8, 0..2u8, 900.0..2_500.0f64, 0..10_000u64)
    ) {
        let (n, method_pick, kind_pick, sigma, seed) = case;
        let (dataset, sharded, unsharded) = build_case(n, method_pick, kind_pick, sigma, seed);
        let queries = dataset.query_points(24, seed ^ 0x5a4d);
        assert_bit_identical(&sharded, &unsharded, &queries);

        // Trajectory: same steps, same deltas, across shard crossings.
        let steps_sharded = sharded.pnn_trajectory(&queries);
        let steps_unsharded = unsharded.pnn_trajectory(&queries);
        prop_assert_eq!(steps_sharded.len(), steps_unsharded.len());
        for (a, b) in steps_sharded.iter().zip(&steps_unsharded) {
            prop_assert_eq!(&a.answer.probabilities, &b.answer.probabilities);
            prop_assert_eq!(&a.delta, &b.delta);
        }

        // I/O attribution: the breakdown sum equals the shard stores' atomic
        // counters exactly.
        sharded.reset_io();
        let answers = sharded.pnn_batch(&queries);
        let total = QueryBreakdown::sum(answers.iter().map(|a| &a.breakdown));
        let index_reads: u64 = (0..sharded.shard_count())
            .map(|s| sharded.shard(s).index().store().io().reads)
            .sum();
        let object_reads: u64 = (0..sharded.shard_count())
            .map(|s| sharded.shard(s).object_store().store().io().reads)
            .sum();
        prop_assert_eq!(total.index_io, index_reads);
        prop_assert_eq!(total.object_io, object_reads);
    }

    /// The tentpole oracle, dynamic half: after ≥50 random mixed update
    /// operations applied in identical batches to both systems, routed
    /// answers still equal the unsharded system bit-exactly, and every live
    /// object is still replicated into at least one shard.
    #[test]
    fn sharded_answers_survive_random_update_batches(
        case in (60..110usize, 0..2u8, 0..2u8, 900.0..2_500.0f64, 0..10_000u64),
        raw_ops in prop::collection::vec(
            (0..3u8, 0..u16::MAX, 50.0..9_950.0f64, 50.0..9_950.0f64),
            50..65,
        ),
        batch_size in 2..10usize,
    ) {
        let (n, method_pick, kind_pick, sigma, seed) = case;
        let (dataset, mut sharded, mut unsharded) =
            build_case(n, method_pick, kind_pick, sigma, seed);
        let applied = churn(&mut sharded, &mut unsharded, &raw_ops, batch_size, 100_000);
        prop_assert!(applied >= 50, "sequence must mix at least 50 ops");
        prop_assert_eq!(sharded.objects().len(), unsharded.objects().len());

        // Every live object has at least one replica, and every replica is
        // live.
        let live: std::collections::HashSet<u32> =
            unsharded.objects().iter().map(|o| o.id).collect();
        let mut covered = std::collections::HashSet::new();
        for s in 0..sharded.shard_count() {
            for o in sharded.shard(s).objects() {
                prop_assert!(live.contains(&o.id), "stale replica {}", o.id);
                covered.insert(o.id);
            }
        }
        prop_assert_eq!(covered.len(), live.len(), "some live object lost all replicas");

        let queries = dataset.query_points(24, seed ^ 0xd1ce);
        assert_bit_identical(&sharded, &unsharded, &queries);
    }

    /// Adversarial half (the `proptest_adversarial.rs` sequences routed
    /// through the sharded layer): op sequences biased to provoke the old
    /// full-rebuild triggers — staircase inserts beyond the domain and
    /// hotspot mass-inserts — must never reshard the layout, must grow the
    /// domain at least once, and must keep routed answers bit-identical to
    /// the unsharded oracle, including in the newly annexed territory.
    #[test]
    fn adversarial_growth_sequences_never_reshard(
        case in (60..100usize, 0..2u8, 0..2u8, 900.0..2_500.0f64, 0..10_000u64),
        raw_ops in prop::collection::vec(
            (0..6u8, 0..u16::MAX, 0.0..1.0f64, 0.0..1.0f64),
            30..45,
        ),
        batch_size in 2..8usize,
    ) {
        let (n, method_pick, kind_pick, sigma, seed) = case;
        let (dataset, mut sharded, mut unsharded) =
            build_case(n, method_pick, kind_pick, sigma, seed);
        let mut next_id = 300_000u32;
        let mut growths = 0usize;
        for chunk in raw_ops.chunks(batch_size) {
            let domain = unsharded.domain();
            let live: Vec<u32> = unsharded.objects().iter().map(|o| o.id).collect();
            let mut batch = UpdateBatch::new();
            let mut deleted: Vec<u32> = Vec::new();
            for (op_pick, id_pick, fx, fy) in chunk {
                let target = live.get(*id_pick as usize % live.len().max(1))
                    .copied()
                    .filter(|id| !deleted.contains(id));
                // Positions are *relative to the current domain*, so the
                // strategy keeps provoking growth as the domain expands.
                let w = domain.width();
                let h = domain.height();
                match op_pick {
                    0 => {
                        // Staircase: insert just beyond the NE corner.
                        batch = batch.insert(UncertainObject::with_gaussian(
                            next_id,
                            Point::new(
                                domain.max_x + 30.0 + fx * 0.06 * w,
                                domain.max_y + 30.0 + fy * 0.06 * h,
                            ),
                            10.0,
                        ));
                        next_id += 1;
                    }
                    1 => {
                        // Growth on the opposite side.
                        batch = batch.insert(UncertainObject::with_gaussian(
                            next_id,
                            Point::new(
                                domain.min_x - 30.0 - fx * 0.04 * w,
                                domain.min_y + fy * h,
                            ),
                            10.0,
                        ));
                        next_id += 1;
                    }
                    2 | 3 => {
                        // Hotspot mass-insert into one quadrant.
                        batch = batch.insert(UncertainObject::with_gaussian(
                            next_id,
                            Point::new(
                                domain.min_x + (0.70 + fx * 0.08) * w,
                                domain.min_y + (0.70 + fy * 0.08) * h,
                            ),
                            8.0,
                        ));
                        next_id += 1;
                    }
                    4 if live.len() > deleted.len() + 10 => {
                        if let Some(target) = target {
                            batch = batch.delete(target);
                            deleted.push(target);
                        }
                    }
                    _ => {
                        if let Some(target) = target {
                            batch = batch.move_to(
                                target,
                                Point::new(
                                    domain.min_x + (0.2 + fx * 0.6) * w,
                                    domain.min_y + (0.2 + fy * 0.6) * h,
                                ),
                            );
                            deleted.push(target); // at most one op per id
                        }
                    }
                }
            }
            let stats = sharded.apply(batch.clone())
                .expect("adversarial batch must validate on the sharded path");
            unsharded.apply(batch)
                .expect("adversarial batch must validate on the unsharded path");
            prop_assert!(!stats.resharded, "the layout must never be rebuilt");
            prop_assert!(!stats.router.full_rebuild);
            growths += usize::from(stats.domain_grown);
            prop_assert_eq!(sharded.domain(), unsharded.domain());
        }
        prop_assert!(growths >= 1, "the biased sequence must grow the domain");

        // Bit-identical everywhere, including the annexed ring beyond the
        // original domain.
        let mut queries = dataset.query_points(20, seed ^ 0x60ee);
        let old = dataset.domain;
        queries.push(Point::new(old.max_x + 40.0, old.max_y + 40.0));
        queries.push(Point::new(old.min_x - 40.0, old.min_y + 10.0));
        assert_bit_identical(&sharded, &unsharded, &queries);
    }

    /// The ISSUE 10 tentpole, elastic half: random splits and merges
    /// interleaved with update batches and live subscription ticks. Routed
    /// answers and the client-visible delta streams stay bit-identical to
    /// the unsharded oracle throughout, a reshard itself pushes no deltas
    /// (its answers are unchanged by construction), and the final —
    /// generally non-uniform — layout survives a snapshot round-trip.
    #[test]
    fn resharding_under_churn_stays_bit_identical(
        case in (60..100usize, 0..2u8, 0..2u8, 900.0..2_500.0f64, 0..10_000u64),
        raw_ops in prop::collection::vec(
            (0..3u8, 0..u16::MAX, 50.0..9_950.0f64, 50.0..9_950.0f64),
            24..33,
        ),
        reshard_picks in prop::collection::vec((0..2u8, 0..4_096usize), 3..5),
    ) {
        let (n, method_pick, kind_pick, sigma, seed) = case;
        let (dataset, mut sharded, mut unsharded) =
            build_case(n, method_pick, kind_pick, sigma, seed);
        let queries = dataset.query_points(16, seed ^ 0xe1a5);

        // The same clients subscribed on both deployments, ticked in
        // lock-step; their delta streams must match op for op.
        let client_points = dataset.query_points(6, seed ^ 0x51b5);
        let mut positions: Vec<Point> = client_points.clone();
        let mut table_s = SubscriptionTable::new();
        let mut table_u = SubscriptionTable::new();
        {
            let mut sub_s = SubscriptionEngine::sharded_with_table(&sharded, table_s);
            let mut sub_u = SubscriptionEngine::with_table(&unsharded, table_u);
            for (i, q) in client_points.iter().enumerate() {
                let a = sub_s.subscribe(i as ClientId, *q).unwrap();
                let b = sub_u.subscribe(i as ClientId, *q).unwrap();
                prop_assert_eq!(a.answer_ids(), b.answer_ids());
            }
            table_s = sub_s.into_table();
            table_u = sub_u.into_table();
        }

        let rounds = reshard_picks.len();
        let mut next_id = 500_000u32;
        for (round, (kind, pick)) in reshard_picks.iter().enumerate() {
            // One mixed update batch applied to both systems, subscriptions
            // refreshed and ticked in lock-step.
            let lo = raw_ops.len() * round / rounds;
            let hi = raw_ops.len() * (round + 1) / rounds;
            let (batch, fresh) = one_batch(&unsharded, &raw_ops[lo..hi], next_id);
            next_id = fresh;
            let stats_s = sharded.apply(batch.clone())
                .expect("churn batch must validate on the sharded path");
            let stats_u = unsharded.apply(batch)
                .expect("churn batch must validate on the unsharded path");
            {
                let mut sub_s = SubscriptionEngine::sharded_with_table(&sharded, table_s);
                let mut sub_u = SubscriptionEngine::with_table(&unsharded, table_u);
                prop_assert_eq!(
                    sub_s.refresh_after_sharded(&stats_s),
                    sub_u.refresh_after(&stats_u),
                    "refresh delta streams diverged in round {}", round
                );
                let domain = unsharded.domain();
                for p in positions.iter_mut() {
                    *p = Point::new(
                        (p.x + 137.0 * ((round % 3) as f64 - 1.0) + 61.0)
                            .clamp(domain.min_x, domain.max_x),
                        (p.y - 89.0 * ((round % 2) as f64) + 43.0)
                            .clamp(domain.min_y, domain.max_y),
                    );
                }
                let moves: Vec<(ClientId, Point)> = positions
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i as ClientId, *p))
                    .collect();
                prop_assert_eq!(
                    sub_s.tick(&moves),
                    sub_u.tick(&moves),
                    "tick delta streams diverged in round {}", round
                );
                table_s = sub_s.into_table();
                table_u = sub_u.into_table();
            }

            // A random reshard: split anywhere, or merge any adjacent pair.
            let (nx, ny) = sharded.grid_dims();
            let stats = if *kind == 0 || adjacent_pair(nx, ny, *pick).is_none() {
                sharded.split_shard(pick % (nx * ny)).expect("split applies")
            } else {
                let (a, b) = adjacent_pair(nx, ny, *pick).expect("grid has >1 shard");
                sharded.merge_shards(a, b).expect("merge applies")
            };
            {
                let mut sub_s = SubscriptionEngine::sharded_with_table(&sharded, table_s);
                let pushed = sub_s.refresh_after_reshard(&stats);
                prop_assert!(
                    pushed.is_empty(),
                    "a reshard must not change any answer: {:?}", pushed
                );
                table_s = sub_s.into_table();
            }
            assert_bit_identical(&sharded, &unsharded, &queries);
        }

        // One more lock-step tick on the final layout, then verify every
        // tracked answer against the oracle.
        {
            let mut sub_s = SubscriptionEngine::sharded_with_table(&sharded, table_s);
            let mut sub_u = SubscriptionEngine::with_table(&unsharded, table_u);
            let moves: Vec<(ClientId, Point)> = positions
                .iter()
                .enumerate()
                .map(|(i, p)| (i as ClientId, *p))
                .collect();
            prop_assert_eq!(sub_s.tick(&moves), sub_u.tick(&moves));
            for (id, client) in sub_s.table().iter() {
                prop_assert_eq!(
                    client.answer_ids(),
                    unsharded.pnn(positions[id as usize]).answer_ids(),
                    "client {} diverged on the final layout", id
                );
            }
        }

        // The non-uniform layout round-trips through snapshot v5.
        let mut bytes = Vec::new();
        sharded.save_snapshot(&mut bytes).expect("snapshot saves");
        let loaded = ShardedUvSystem::load_snapshot(&mut bytes.as_slice())
            .expect("snapshot loads");
        prop_assert_eq!(loaded.grid_dims(), sharded.grid_dims());
        prop_assert_eq!(loaded.shard_rects(), sharded.shard_rects());
        assert_bit_identical(&loaded, &unsharded, &queries);
    }
}

/// Deterministic corpus case for the elastic half: fuse a 2×2 grid down to
/// a single shard (merge the two columns, then the two remaining rows),
/// churn, then split back up into a non-uniform 3×2 — every intermediate
/// layout answers bit-identically to the unsharded oracle and the final
/// non-uniform layout round-trips through snapshot v5.
#[test]
fn merge_to_single_shard_then_split_back() {
    let (dataset, mut sharded, mut unsharded) = build_case(80, 0, 0, 1_200.0, 42);
    let queries = dataset.query_points(16, 99);

    sharded.merge_shards(0, 1).unwrap(); // 2x2 -> 1x2 (fuse the columns)
    assert_eq!(sharded.grid_dims(), (1, 2));
    sharded.merge_shards(0, 1).unwrap(); // 1x2 -> 1x1 (fuse the rows)
    assert_eq!(sharded.grid_dims(), (1, 1));
    assert_bit_identical(&sharded, &unsharded, &queries);

    // Churn on the single-shard layout.
    let ops: Vec<RawOp> = (0..12u8)
        .map(|i| {
            (
                i % 3,
                i as u16 * 37,
                400.0 + 700.0 * i as f64,
                9_300.0 - 650.0 * i as f64,
            )
        })
        .collect();
    let (batch, _) = one_batch(&unsharded, &ops, 700_000);
    sharded.apply(batch.clone()).unwrap();
    unsharded.apply(batch).unwrap();
    assert_bit_identical(&sharded, &unsharded, &queries);

    // Split back up: 1x1 -> 2x1 -> 2x2 -> non-uniform 3x2.
    sharded.split_shard(0).unwrap();
    assert_eq!(sharded.grid_dims(), (2, 1));
    sharded.split_shard(0).unwrap();
    assert_eq!(sharded.grid_dims(), (2, 2));
    let stats = sharded.split_shard(0).unwrap();
    assert_eq!((stats.nx, stats.ny), (3, 2));
    let widths: Vec<f64> = sharded.shard_rects()[..3]
        .iter()
        .map(|r| r.width())
        .collect();
    assert!(
        widths[0] < widths[2],
        "the third split must leave a non-uniform column layout: {widths:?}"
    );
    assert_bit_identical(&sharded, &unsharded, &queries);

    let mut bytes = Vec::new();
    sharded.save_snapshot(&mut bytes).unwrap();
    let loaded = ShardedUvSystem::load_snapshot(&mut bytes.as_slice()).unwrap();
    assert_eq!(loaded.grid_dims(), (3, 2));
    assert_eq!(loaded.shard_rects(), sharded.shard_rects());
    assert_bit_identical(&loaded, &unsharded, &queries);
}
