//! Property-based tests of the snapshot subsystem (ISSUE 4):
//!
//! * **Round-trip**: `build → save → load → {pnn_batch, apply(UpdateBatch)}`
//!   equals the never-persisted system — leaf structure, member lists,
//!   epoch, `cell_area` and every PNN answer, bit-exact — across
//!   {IC, ICR} × {Uniform, GaussianSkew}; the update step ends with a
//!   domain-growing insert, so in-place growth and a post-growth snapshot
//!   round-trip are covered too.
//! * **Corruption**: truncated streams, flipped bytes and unsupported
//!   format versions surface as the right typed [`UvError`], never a panic.

use proptest::prelude::*;
use uv_core::{Method, UpdateBatch, UvConfig, UvError, UvSystem};
use uv_data::{Dataset, GeneratorConfig, UncertainObject};
use uv_geom::Point;

/// The dynamic-serving tuning of the update proptests: local sensitivity
/// bounds and enough leaves for splits/merges (see `proptest_update.rs`).
fn test_config() -> UvConfig {
    UvConfig::default()
        .with_seed_knn(24)
        .with_leaf_split_capacity(16)
}

fn build_case(n: usize, method_pick: u8, kind_pick: u8, sigma: f64, seed: u64) -> UvSystem {
    let method = if method_pick == 0 {
        Method::IC
    } else {
        Method::ICR
    };
    let generator = if kind_pick == 0 {
        GeneratorConfig::paper_uniform(n)
    } else {
        GeneratorConfig::paper_skewed(n, sigma)
    }
    .with_seed(seed);
    let dataset = Dataset::generate(generator);
    UvSystem::build(
        dataset.objects.clone(),
        dataset.domain,
        method,
        test_config(),
    )
    .unwrap()
}

/// Canonical view of the grid (the shared `UvIndex::canonical_leaves`
/// oracle): bit-exact region corners plus id-sorted member lists.
fn canonical_leaves(sys: &UvSystem) -> Vec<uv_core::index::CanonicalLeaf> {
    sys.index().canonical_leaves()
}

fn snapshot_bytes(sys: &UvSystem) -> Vec<u8> {
    let mut bytes = Vec::new();
    sys.save_snapshot(&mut bytes).expect("save must succeed");
    bytes
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    /// The tentpole oracle: a loaded system is indistinguishable from the
    /// saved one — structurally and behaviourally, through queries *and*
    /// through a subsequent update batch.
    #[test]
    fn save_load_roundtrip_is_bit_identical(
        case in (60..110usize, 0..2u8, 0..2u8, 900.0..2_500.0f64, 0..10_000u64),
        ops in prop::collection::vec(
            (0..3u8, 0..u16::MAX, 50.0..9_950.0f64, 50.0..9_950.0f64),
            6..14,
        ),
    ) {
        let (n, method_pick, kind_pick, sigma, seed) = case;
        let mut sys = build_case(n, method_pick, kind_pick, sigma, seed);

        let bytes = snapshot_bytes(&sys);
        let mut loaded = UvSystem::load_snapshot(&mut bytes.as_slice()).unwrap();

        prop_assert_eq!(loaded.epoch(), sys.epoch());
        prop_assert_eq!(canonical_leaves(&loaded), canonical_leaves(&sys));
        for o in sys.objects() {
            prop_assert_eq!(
                loaded.cell_area(o.id).to_bits(),
                sys.cell_area(o.id).to_bits()
            );
        }
        let queries = Dataset::generate(GeneratorConfig::paper_uniform(10))
            .query_points(20, seed ^ 0x54AA);
        let a = sys.pnn_batch(&queries);
        let b = loaded.pnn_batch(&queries);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&x.probabilities, &y.probabilities);
            prop_assert_eq!(x.candidates_examined, y.candidates_examined);
        }

        // The same update batch applied to both systems converges to the
        // same state: persistence must not disturb dynamic maintenance.
        let mut batch = UpdateBatch::new();
        let mut next_id = 500_000u32;
        let live: Vec<u32> = sys.objects().iter().map(|o| o.id).collect();
        let mut used: Vec<u32> = Vec::new();
        for (op, pick, x, y) in ops {
            let target = live[pick as usize % live.len()];
            match op % 3 {
                0 => {
                    batch = batch.insert(UncertainObject::with_gaussian(
                        next_id,
                        Point::new(x, y),
                        20.0,
                    ));
                    next_id += 1;
                }
                1 if !used.contains(&target) => {
                    batch = batch.delete(target);
                    used.push(target);
                }
                _ if !used.contains(&target) => {
                    batch = batch.move_to(target, Point::new(x, y));
                    used.push(target);
                }
                _ => {}
            }
        }
        let sa = sys.apply(batch.clone()).unwrap();
        let sb = loaded.apply(batch).unwrap();
        prop_assert_eq!(sa.objects_rederived, sb.objects_rederived);
        prop_assert_eq!(sa.objects_in_knn_radius, sb.objects_in_knn_radius);
        prop_assert_eq!(sa.leaves_refined, sb.leaves_refined);
        prop_assert_eq!(sa.epoch, sb.epoch);
        prop_assert_eq!(canonical_leaves(&loaded), canonical_leaves(&sys));
        prop_assert_eq!(loaded.epoch(), sys.epoch());
        for q in &queries {
            let x = sys.pnn(*q);
            let y = loaded.pnn(*q);
            prop_assert_eq!(&x.probabilities, &y.probabilities);
            prop_assert_eq!(x.candidates_examined, y.candidates_examined);
        }

        // Growth step: an insert beyond the domain extends the grid in
        // place on both sides of the round-trip, the states stay equal, and
        // a post-growth system snapshots and reloads bit-identically.
        let far = sys.domain().max_x + 321.0;
        let grow = UpdateBatch::new().insert(UncertainObject::with_gaussian(
            900_000,
            Point::new(far, far),
            15.0,
        ));
        let ga = sys.apply(grow.clone()).unwrap();
        let gb = loaded.apply(grow).unwrap();
        prop_assert!(ga.domain_grown && gb.domain_grown);
        prop_assert!(!ga.full_rebuild && !gb.full_rebuild);
        prop_assert_eq!(sys.domain(), loaded.domain());
        prop_assert_eq!(canonical_leaves(&loaded), canonical_leaves(&sys));
        let bytes = snapshot_bytes(&sys);
        let reloaded = UvSystem::load_snapshot(&mut bytes.as_slice()).unwrap();
        prop_assert_eq!(reloaded.epoch(), sys.epoch());
        prop_assert_eq!(reloaded.domain(), sys.domain());
        prop_assert_eq!(canonical_leaves(&reloaded), canonical_leaves(&sys));
    }

    /// Corruption never panics and always yields the right typed error:
    /// a flipped byte anywhere in the stream, or a truncation at any
    /// length, is reported as a snapshot error — and the specific header
    /// fields map to their specific variants.
    #[test]
    fn corruption_surfaces_as_typed_errors(
        seed in 0..10_000u64,
        flips in prop::collection::vec((0.0..1.0f64, 1..255u8), 12..20),
        cuts in prop::collection::vec(0.0..1.0f64, 6..10),
    ) {
        let sys = build_case(60, 0, 0, 1_000.0, seed);
        let bytes = snapshot_bytes(&sys);

        for (pos, mask) in flips {
            let at = ((pos * bytes.len() as f64) as usize).min(bytes.len() - 1);
            let mut bad = bytes.clone();
            bad[at] ^= mask;
            match UvSystem::load_snapshot(&mut bad.as_slice()) {
                Err(
                    UvError::SnapshotCorrupt(_)
                    | UvError::SnapshotVersionMismatch { .. }
                    | UvError::ConfigMismatch,
                ) => {}
                Err(other) => prop_assert!(false, "flip at {} gave {:?}", at, other),
                Ok(_) => prop_assert!(false, "flip at {} went undetected", at),
            }
        }

        for cut in cuts {
            let len = (cut * bytes.len() as f64) as usize;
            let err = UvSystem::load_snapshot(&mut &bytes[..len.min(bytes.len() - 1)])
                .unwrap_err();
            prop_assert!(
                matches!(err, UvError::SnapshotCorrupt(_)),
                "truncation to {} gave {:?}",
                len,
                err
            );
        }

        // The version field maps to its dedicated variant.
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        prop_assert_eq!(
            UvSystem::load_snapshot(&mut bad.as_slice()).unwrap_err(),
            UvError::SnapshotVersionMismatch {
                found: 99,
                supported: uv_core::snapshot::FORMAT_VERSION,
            }
        );
        // The config fingerprint maps to ConfigMismatch.
        let mut bad = bytes.clone();
        bad[15] ^= 0x40;
        prop_assert_eq!(
            UvSystem::load_snapshot(&mut bad.as_slice()).unwrap_err(),
            UvError::ConfigMismatch
        );
    }
}
