//! Property-based bit-identity proofs for the batched SoA kernels: across
//! construction methods {IC, ICR} and dataset shapes {Uniform, GaussianSkew},
//! the arena-backed engine path must produce the *same bits* as the retained
//! scalar references (`UvIndex::pnn`, `uv_data::qualification_probabilities`
//! and the documented scalar screen), including on degenerate inputs —
//! co-located seeds, zero-radius circles — and with NaN-free outputs.

use proptest::prelude::*;
use uv_core::{Method, QueryEngine, UvConfig, UvSystem};
use uv_data::{
    qualification_probabilities, Dataset, EntryArena, GeneratorConfig, KernelArena, ObjectEntry,
    QuadratureScratch, ScreenScratch, UncertainObject,
};
use uv_geom::{Point, EPS};

fn build_case(
    n: usize,
    method_pick: u8,
    kind_pick: u8,
    sigma: f64,
    seed: u64,
) -> (Dataset, UvSystem) {
    let method = if method_pick == 0 {
        Method::IC
    } else {
        Method::ICR
    };
    let generator = if kind_pick == 0 {
        GeneratorConfig::paper_uniform(n)
    } else {
        GeneratorConfig::paper_skewed(n, sigma)
    }
    .with_seed(seed);
    let dataset = Dataset::generate(generator);
    let system = UvSystem::build(
        dataset.objects.clone(),
        dataset.domain,
        method,
        UvConfig::default(),
    )
    .unwrap();
    (dataset, system)
}

/// Degenerate-friendly candidate sets: centres snap to a coarse grid (forcing
/// co-located objects), radii include exact zeros, pdfs mix uniform and
/// Gaussian histograms.
fn candidate_set() -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec(
        (
            -4i32..4,
            -4i32..4,
            0.1..30.0f64,
            prop::bool::ANY,
            prop::bool::ANY,
        ),
        1..9,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (gx, gy, r, zero_radius, gaussian))| {
                let c = Point::new(25.0 * gx as f64, 25.0 * gy as f64);
                let r = if zero_radius { 0.0 } else { r };
                if gaussian {
                    UncertainObject::with_gaussian(i as u32, c, r)
                } else {
                    UncertainObject::with_uniform(i as u32, c, r)
                }
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// End-to-end: the arena-backed engine answers carry the same probability
    /// bits and candidate counts as the scalar `UvIndex::pnn` reference, for
    /// every {IC, ICR} × {Uniform, GaussianSkew} combination.
    #[test]
    fn engine_kernels_are_bit_identical_to_the_scalar_index_path(
        case in (60..140usize, 0..2u8, 0..2u8, 800.0..2_500.0f64, 0..10_000u64)
    ) {
        let (n, method_pick, kind_pick, sigma, seed) = case;
        let (dataset, system) = build_case(n, method_pick, kind_pick, sigma, seed);
        let steps = system.index().config().integration_steps;
        let queries = dataset.query_points(24, seed ^ 0xbeef);
        for cache in [true, false] {
            let engine = QueryEngine::new(system.index(), system.object_store())
                .with_cache(cache);
            for q in &queries {
                let scalar = system.index().pnn(system.object_store(), *q, steps);
                let batched = engine.pnn(*q);
                prop_assert_eq!(batched.candidates_examined, scalar.candidates_examined);
                prop_assert_eq!(batched.probabilities.len(), scalar.probabilities.len());
                for ((bi, bp), (si, sp)) in
                    batched.probabilities.iter().zip(&scalar.probabilities)
                {
                    prop_assert_eq!(bi, si);
                    prop_assert!(!bp.is_nan());
                    prop_assert_eq!(bp.to_bits(), sp.to_bits(),
                        "probability bits diverged for object {} at {:?}", bi, q);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The arena quadrature reproduces the scalar
    /// `qualification_probabilities` bit-for-bit on degenerate candidate
    /// sets, and one arena reused across queries stays identical to a fresh
    /// scalar evaluation per query.
    #[test]
    fn arena_quadrature_matches_scalar_on_degenerate_sets(
        objects in candidate_set(),
        qx in -120.0..120.0f64,
        qy in -120.0..120.0f64,
        steps in 2usize..80,
    ) {
        let refs: Vec<&UncertainObject> = objects.iter().collect();
        let mut arena = KernelArena::new();
        arena.assign(objects.iter());
        let mut scratch = QuadratureScratch::default();
        // Several probes through the same arena + scratch: reuse must not
        // leak state between evaluations.
        for (dx, dy) in [(0.0, 0.0), (13.0, -7.0), (-2.5, 40.0)] {
            let q = Point::new(qx + dx, qy + dy);
            let scalar = qualification_probabilities(q, &refs, steps);
            let batched = arena.qualification_probabilities(q, steps, &mut scratch);
            prop_assert_eq!(batched.len(), scalar.len());
            for ((bi, bp), (si, sp)) in batched.iter().zip(&scalar) {
                prop_assert_eq!(bi, si);
                prop_assert!(!bp.is_nan());
                prop_assert_eq!(bp.to_bits(), sp.to_bits(),
                    "bits diverged for object {} at {:?} ({} steps)", bi, q, steps);
            }
        }
    }

    /// The fused screen reproduces the documented scalar passes bit-for-bit:
    /// the `d_minmax` fold, the candidate filter and the stability clearance,
    /// with NaN-free outputs even for zero-radius and co-located entries.
    #[test]
    fn fused_screen_matches_the_scalar_passes(
        objects in candidate_set(),
        qx in -120.0..120.0f64,
        qy in -120.0..120.0f64,
    ) {
        let q = Point::new(qx, qy);
        let entries: Vec<ObjectEntry> =
            objects.iter().map(|o| ObjectEntry::new(o, 0)).collect();
        let mut arena = EntryArena::default();
        arena.assign(&entries);
        let mut scratch = ScreenScratch::default();
        let mut candidates = Vec::new();
        let screen = arena.screen(q, &mut scratch, &mut candidates);

        // Scalar reference: the three separate passes of
        // `UvIndex::pnn` / `candidate_stability_radius`.
        let dminmax = entries
            .iter()
            .map(|e| e.dist_max(q))
            .fold(f64::INFINITY, f64::min);
        let threshold = dminmax + EPS;
        let scalar_candidates: Vec<usize> = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.dist_min(q) <= threshold)
            .map(|(i, _)| i)
            .collect();
        let scalar_clearance = entries
            .iter()
            .map(|e| (e.dist_min(q) - threshold).abs() / 2.0)
            .fold(f64::INFINITY, f64::min);

        prop_assert!(!screen.dminmax.is_nan() && !screen.clearance.is_nan());
        prop_assert_eq!(screen.dminmax.to_bits(), dminmax.to_bits());
        prop_assert_eq!(screen.clearance.to_bits(), scalar_clearance.to_bits());
        prop_assert_eq!(candidates, scalar_candidates);
    }
}
