//! Property-based tests of the UV-diagram core: cell semantics, pruning
//! soundness and overlap-check safety on arbitrary small inputs.

use proptest::prelude::*;
use std::sync::Arc;
use uv_core::cell::build_exact_cell;
use uv_core::crobjects::{cr_objects_cover_r_objects, derive_cr_objects};
use uv_core::index::check_overlap;
use uv_core::{PossibleRegion, UvConfig};
use uv_data::{ObjectStore, UncertainObject};
use uv_geom::{Circle, Point, Rect};
use uv_rtree::RTree;
use uv_store::PageStore;

const DOMAIN_SIDE: f64 = 1_000.0;

fn objects_strategy(min: usize, max: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec((50.0..950.0f64, 50.0..950.0f64, 0.0..30.0f64), min..max).prop_map(
        |specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (x, y, r))| UncertainObject::with_uniform(i as u32, Point::new(x, y), r))
                .collect()
        },
    )
}

fn config() -> UvConfig {
    UvConfig {
        parallel: false,
        ..UvConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// The possible region only shrinks under clipping and always contains
    /// the subject centre.
    #[test]
    fn possible_region_shrinks_monotonically(objects in objects_strategy(2, 12)) {
        let domain = Rect::square(DOMAIN_SIDE);
        let subject = objects[0].mbc();
        let mut region = PossibleRegion::full(subject, &domain);
        let mut prev_area = region.area();
        for other in &objects[1..] {
            region.clip(other.mbc(), 8, DOMAIN_SIDE / 64.0);
            prop_assert!(region.area() <= prev_area + 1e-6);
            prop_assert!(region.contains(subject.center));
            prev_area = region.area();
        }
    }

    /// Exact-cell semantics: a point strictly dominated by some other object
    /// is (essentially) never inside the cell; a clearly non-dominated point
    /// always is.
    #[test]
    fn exact_cell_respects_domination(
        objects in objects_strategy(2, 8),
        qx in 0.0..DOMAIN_SIDE,
        qy in 0.0..DOMAIN_SIDE,
    ) {
        let domain = Rect::square(DOMAIN_SIDE);
        let subject = &objects[0];
        let cell = build_exact_cell(subject, objects.iter().skip(1), &domain, &config());
        let q = Point::new(qx, qy);
        let margin = objects[1..]
            .iter()
            .map(|o| subject.dist_min(q) - o.dist_max(q))
            .fold(f64::NEG_INFINITY, f64::max);
        // Allow a slack band around the boundary for the polyline
        // approximation (a fraction of the domain size).
        let slack = DOMAIN_SIDE / 200.0;
        if margin > slack {
            prop_assert!(!cell.contains(q), "dominated point (margin {margin}) inside the cell");
        }
        if margin < -slack {
            prop_assert!(cell.contains(q), "possible point (margin {margin}) outside the cell");
        }
    }

    /// Pruning soundness (Lemmas 2 and 3): cr-objects cover the r-objects of
    /// the exact cell built against the full dataset.
    #[test]
    fn cr_objects_cover_exact_r_objects(objects in objects_strategy(3, 20)) {
        let domain = Rect::square(DOMAIN_SIDE);
        let pages = Arc::new(PageStore::new());
        let store = ObjectStore::build(Arc::clone(&pages), &objects);
        let rtree = RTree::build(&objects, &store, pages);
        let cfg = config();
        for subject in objects.iter().take(4) {
            let cr = derive_cr_objects(subject, &rtree, &objects, &domain, &cfg);
            let cell = build_exact_cell(
                subject,
                objects.iter().filter(|o| o.id != subject.id),
                &domain,
                &cfg,
            );
            prop_assert!(
                cr_objects_cover_r_objects(&cr, &cell.r_objects),
                "object {}: r-objects {:?} not covered by {:?}",
                subject.id,
                cell.r_objects,
                cr.cr_ids
            );
        }
    }

    /// Overlap-check safety (Lemma 4): whenever the 4-point test declares "no
    /// overlap", no sampled point of the region can have the subject as a
    /// possible nearest neighbour with respect to the tested objects.
    #[test]
    fn check_overlap_never_reports_false_negatives(
        subject in (50.0..950.0f64, 50.0..950.0f64, 0.0..30.0f64),
        others in prop::collection::vec((50.0..950.0f64, 50.0..950.0f64, 0.0..30.0f64), 1..8),
        rx in 0.0..900.0f64,
        ry in 0.0..900.0f64,
        side in 10.0..300.0f64,
    ) {
        let subject = Circle::new(Point::new(subject.0, subject.1), subject.2);
        let crs: Vec<Circle> = others
            .into_iter()
            .map(|(x, y, r)| Circle::new(Point::new(x, y), r))
            .collect();
        let region = Rect::new(rx, ry, rx + side, ry + side);
        if !check_overlap(subject, &crs, &region) {
            for i in 0..5 {
                for j in 0..5 {
                    let p = Point::new(
                        region.min_x + region.width() * (i as f64 + 0.5) / 5.0,
                        region.min_y + region.height() * (j as f64 + 0.5) / 5.0,
                    );
                    let dominated = crs.iter().any(|c| c.dist_max(p) < subject.dist_min(p));
                    prop_assert!(dominated, "false negative of the 4-point test at {p:?}");
                }
            }
        }
    }
}
