//! Property-based tests of the geometry kernel.

use proptest::prelude::*;
use uv_geom::{
    clip_keep, convex_hull, hull_contains, Circle, Hyperbola, OutsideRegion, Point, Polygon, Rect,
};

fn point_strategy(range: f64) -> impl Strategy<Value = Point> {
    (-range..range, -range..range).prop_map(|(x, y)| Point::new(x, y))
}

fn circle_strategy(range: f64, max_r: f64) -> impl Strategy<Value = Circle> {
    (point_strategy(range), 0.0..max_r).prop_map(|(c, r)| Circle::new(c, r))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// distmin <= distmax, both non-negative, and distmax - distmin <= 2r.
    #[test]
    fn circle_distance_envelope(c in circle_strategy(1000.0, 50.0), q in point_strategy(1000.0)) {
        let dmin = c.dist_min(q);
        let dmax = c.dist_max(q);
        prop_assert!(dmin >= 0.0);
        prop_assert!(dmax >= dmin);
        prop_assert!(dmax - dmin <= 2.0 * c.radius + 1e-9);
        // Any point inside the region has distmin 0.
        if c.contains(q) {
            prop_assert!(dmin == 0.0);
        }
    }

    /// The convex hull contains every input point and is itself convex
    /// (every input point is inside the hull polygon).
    #[test]
    fn hull_contains_all_points(points in prop::collection::vec(point_strategy(500.0), 1..40)) {
        let hull = convex_hull(&points);
        prop_assert!(!hull.is_empty());
        prop_assert!(hull.len() <= points.len());
        for p in &points {
            prop_assert!(hull_contains(&hull, *p), "point {p:?} escaped its hull");
        }
    }

    /// The minimal bounding circle contains all points and has a radius no
    /// larger than the bounding-box diagonal.
    #[test]
    fn min_bounding_circle_covers(points in prop::collection::vec(point_strategy(500.0), 1..30)) {
        let mbc = Circle::min_bounding_circle(&points).unwrap();
        for p in &points {
            prop_assert!(mbc.contains(*p));
        }
        let bbox = Rect::bounding(&points).unwrap();
        let diag = (bbox.width().powi(2) + bbox.height().powi(2)).sqrt();
        prop_assert!(mbc.radius <= diag / 2.0 + 1e-6);
    }

    /// Clipping by any predicate never increases the polygon area, and every
    /// surviving original vertex satisfies the predicate.
    #[test]
    fn clip_is_monotone(center in point_strategy(400.0), radius in 10.0..300.0f64) {
        let square = Rect::new(-400.0, -400.0, 400.0, 400.0);
        let poly = square.corners().to_vec();
        let f = move |p: Point| p.dist(center) - radius; // keep outside the disk
        let clipped = clip_keep(&poly, &f, Point::new(1_000.0, 1_000.0), 8, 50.0);
        let before = Polygon::new(poly);
        let after = Polygon::new(clipped);
        prop_assert!(after.area() <= before.area() + 1e-6);
        for v in after.vertices() {
            prop_assert!(f(*v) >= -1e-6, "vertex {v:?} violates the predicate");
        }
    }

    /// UV-edge invariants (Equation (5)): points on the edge satisfy the
    /// distance-difference equation and separate the two objects' sides.
    #[test]
    fn uv_edge_separates_objects(
        ci in point_strategy(500.0),
        cj in point_strategy(500.0),
        ri in 0.0..40.0f64,
        rj in 0.0..40.0f64,
    ) {
        let oi = Circle::new(ci, ri);
        let oj = Circle::new(cj, rj);
        let outside = OutsideRegion::new(oi, oj);
        match Hyperbola::uv_edge(&oi, &oj) {
            None => prop_assert!(outside.is_empty()),
            Some(edge) => {
                prop_assert!(!outside.is_empty());
                prop_assert!(edge.eccentricity() >= 1.0);
                for p in edge.sample(9, 1.5) {
                    prop_assert!(edge.residual(p).abs() < 1e-6);
                    prop_assert!(outside.signed(p).abs() < 1e-6);
                }
                // The subject centre is never in its own outside region; the
                // other centre always is (when the edge exists).
                prop_assert!(!outside.contains(ci));
                prop_assert!(outside.contains(cj));
            }
        }
    }

    /// Rectangle distance bounds bracket the distance to any corner and to
    /// the centre.
    #[test]
    fn rect_distance_bounds(
        r in (point_strategy(400.0), point_strategy(400.0)).prop_map(|(a, b)| Rect::from_corners(a, b)),
        q in point_strategy(600.0),
    ) {
        let dmin = r.dist_min(q);
        let dmax = r.dist_max(q);
        prop_assert!(dmin <= dmax + 1e-9);
        for c in r.corners() {
            let d = c.dist(q);
            prop_assert!(d + 1e-9 >= dmin);
            prop_assert!(d <= dmax + 1e-9);
        }
        prop_assert!(r.center().dist(q) <= dmax + 1e-9);
        if r.contains(q) {
            prop_assert!(dmin == 0.0);
        }
    }

    /// Quadrants partition a rectangle: areas sum to the parent's and every
    /// point of the parent lies in at least one quadrant.
    #[test]
    fn quadrants_partition(
        r in (point_strategy(400.0), point_strategy(400.0)).prop_map(|(a, b)| Rect::from_corners(a, b)),
        q in point_strategy(400.0),
    ) {
        let quadrants = r.quadrants();
        let total: f64 = quadrants.iter().map(Rect::area).sum();
        prop_assert!((total - r.area()).abs() <= 1e-6 * (1.0 + r.area()));
        if r.contains(q) {
            prop_assert!(quadrants.iter().any(|quad| quad.contains(q)));
        }
    }
}
