//! Axis-aligned rectangles: the domain `D`, quad-tree node regions and R-tree
//! MBRs.

use crate::{Point, EPS};
use serde::{Deserialize, Serialize};

/// A closed axis-aligned rectangle `[min_x, max_x] x [min_y, max_y]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle; the corners are reordered so that `min <= max` on
    /// both axes.
    #[inline]
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Self {
            min_x: min_x.min(max_x),
            min_y: min_y.min(max_y),
            max_x: min_x.max(max_x),
            max_y: min_y.max(max_y),
        }
    }

    /// Square domain `[0, side] x [0, side]` — the shape the paper assumes for
    /// the data space `D`.
    #[inline]
    pub fn square(side: f64) -> Self {
        Self::new(0.0, 0.0, side, side)
    }

    /// Rectangle spanning two corner points.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Self::new(a.x, a.y, b.x, b.y)
    }

    /// Smallest rectangle containing every point of `points`; `None` for an
    /// empty slice.
    pub fn bounding(points: &[Point]) -> Option<Self> {
        let first = points.first()?;
        let mut r = Rect::new(first.x, first.y, first.x, first.y);
        for p in &points[1..] {
            r.expand_to(*p);
        }
        Some(r)
    }

    /// An "empty" rectangle that absorbs any point/rect it is merged with.
    #[inline]
    pub fn empty() -> Self {
        Self {
            min_x: f64::INFINITY,
            min_y: f64::INFINITY,
            max_x: f64::NEG_INFINITY,
            max_y: f64::NEG_INFINITY,
        }
    }

    /// `true` for the sentinel produced by [`Rect::empty`] (or any rectangle
    /// that has been built from no points).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    #[inline]
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    #[inline]
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// The four corners in counter-clockwise order starting at the lower-left.
    /// These are the probe points of the 4-point test of Algorithm 5.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.min_x, self.min_y),
            Point::new(self.max_x, self.min_y),
            Point::new(self.max_x, self.max_y),
            Point::new(self.min_x, self.max_y),
        ]
    }

    /// `true` when `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x - EPS
            && p.x <= self.max_x + EPS
            && p.y >= self.min_y - EPS
            && p.y <= self.max_y + EPS
    }

    /// `true` when `other` is completely inside `self`.
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.min_x >= self.min_x - EPS
            && other.max_x <= self.max_x + EPS
            && other.min_y >= self.min_y - EPS
            && other.max_y <= self.max_y + EPS
    }

    /// `true` when the two closed rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !(self.is_empty() || other.is_empty())
            && self.min_x <= other.max_x + EPS
            && other.min_x <= self.max_x + EPS
            && self.min_y <= other.max_y + EPS
            && other.min_y <= self.max_y + EPS
    }

    /// Intersection of two rectangles, or `None` if they are disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        })
    }

    /// Smallest rectangle containing both inputs.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Grows the rectangle in place so that it contains `p`.
    #[inline]
    pub fn expand_to(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Minimum distance from `q` to any point of the rectangle (zero inside).
    pub fn dist_min(&self, q: Point) -> f64 {
        let dx = (self.min_x - q.x).max(0.0).max(q.x - self.max_x);
        let dy = (self.min_y - q.y).max(0.0).max(q.y - self.max_y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum distance from `q` to any point of the rectangle.
    pub fn dist_max(&self, q: Point) -> f64 {
        self.corners()
            .iter()
            .map(|c| c.dist(q))
            .fold(0.0_f64, f64::max)
    }

    /// Splits the rectangle into its four quadrants in the order
    /// `[SW, SE, NE, NW]` — the child regions `h_1..h_4` of a quad-tree node
    /// in Algorithms 3 and 4.
    pub fn quadrants(&self) -> [Rect; 4] {
        let c = self.center();
        [
            Rect::new(self.min_x, self.min_y, c.x, c.y),
            Rect::new(c.x, self.min_y, self.max_x, c.y),
            Rect::new(c.x, c.y, self.max_x, self.max_y),
            Rect::new(self.min_x, c.y, c.x, self.max_y),
        ]
    }

    /// `true` when the rectangle and the disk `circle(center, radius)` share a
    /// point.
    pub fn intersects_circle(&self, center: Point, radius: f64) -> bool {
        self.dist_min(center) <= radius + EPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn constructor_normalises_corners() {
        let r = Rect::new(5.0, 6.0, 1.0, 2.0);
        assert_eq!(r, Rect::new(1.0, 2.0, 5.0, 6.0));
        assert!(approx_eq(r.width(), 4.0));
        assert!(approx_eq(r.height(), 4.0));
        assert!(approx_eq(r.area(), 16.0));
    }

    #[test]
    fn containment_and_intersection() {
        let d = Rect::square(10.0);
        let inner = Rect::new(2.0, 2.0, 3.0, 3.0);
        let overlapping = Rect::new(9.0, 9.0, 12.0, 12.0);
        let outside = Rect::new(20.0, 20.0, 21.0, 21.0);
        assert!(d.contains_rect(&inner));
        assert!(!d.contains_rect(&overlapping));
        assert!(d.intersects(&overlapping));
        assert!(!d.intersects(&outside));
        assert!(d.contains(Point::new(10.0, 10.0)));
        assert!(!d.contains(Point::new(10.1, 10.0)));
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::new(0.0, 0.0, 4.0, 4.0);
        let b = Rect::new(2.0, 2.0, 6.0, 6.0);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Rect::new(2.0, 2.0, 4.0, 4.0));
        let u = a.union(&b);
        assert_eq!(u, Rect::new(0.0, 0.0, 6.0, 6.0));
        let far = Rect::new(10.0, 10.0, 11.0, 11.0);
        assert!(a.intersection(&far).is_none());
    }

    #[test]
    fn empty_rect_behaviour() {
        let e = Rect::empty();
        assert!(e.is_empty());
        assert!(approx_eq(e.area(), 0.0));
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(e.union(&a), a);
        assert!(!e.intersects(&a));
    }

    #[test]
    fn distances() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert!(approx_eq(r.dist_min(Point::new(1.0, 1.0)), 0.0));
        assert!(approx_eq(r.dist_min(Point::new(5.0, 1.0)), 3.0));
        assert!(approx_eq(r.dist_min(Point::new(5.0, 6.0)), 5.0));
        assert!(approx_eq(r.dist_max(Point::new(0.0, 0.0)), 8.0_f64.sqrt()));
    }

    #[test]
    fn quadrants_cover_parent_exactly() {
        let r = Rect::new(0.0, 0.0, 8.0, 8.0);
        let qs = r.quadrants();
        let total: f64 = qs.iter().map(Rect::area).sum();
        assert!(approx_eq(total, r.area()));
        for q in &qs {
            assert!(r.contains_rect(q));
            assert!(approx_eq(q.area(), 16.0));
        }
        // Quadrants only overlap on their shared edges.
        assert!(approx_eq(qs[0].intersection(&qs[2]).unwrap().area(), 0.0));
    }

    #[test]
    fn circle_rect_intersection() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert!(r.intersects_circle(Point::new(1.0, 1.0), 0.1));
        assert!(r.intersects_circle(Point::new(4.0, 1.0), 2.0));
        assert!(!r.intersects_circle(Point::new(4.0, 1.0), 1.5));
    }

    #[test]
    fn bounding_points() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(4.0, -1.0),
        ];
        let r = Rect::bounding(&pts).unwrap();
        assert_eq!(r, Rect::new(-2.0, -1.0, 4.0, 5.0));
        assert!(Rect::bounding(&[]).is_none());
    }
}
