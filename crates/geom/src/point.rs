//! 2-D points and the small amount of vector arithmetic the kernel needs.

use serde::{Deserialize, Serialize};
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or vector) in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    #[inline]
    pub const fn origin() -> Self {
        Self { x: 0.0, y: 0.0 }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when only
    /// comparisons are needed).
    #[inline]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Vector length when the point is interpreted as a vector from the
    /// origin.
    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Dot product with `other`.
    #[inline]
    pub fn dot(&self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z component of the 3-D cross product).
    #[inline]
    pub fn cross(&self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Midpoint between `self` and `other`.
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Returns the point rotated by `angle` radians around the origin.
    #[inline]
    pub fn rotated(&self, angle: f64) -> Point {
        let (s, c) = angle.sin_cos();
        Point::new(self.x * c - self.y * s, self.x * s + self.y * c)
    }

    /// Returns the unit vector pointing from `self` towards `other`, or `None`
    /// when the two points coincide.
    pub fn direction_to(&self, other: Point) -> Option<Point> {
        let d = other - *self;
        let n = d.norm();
        if n <= f64::EPSILON {
            None
        } else {
            Some(d / n)
        }
    }

    /// `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Orientation of the ordered triple `(a, b, c)`:
    /// positive for counter-clockwise, negative for clockwise, ~0 for
    /// collinear.
    #[inline]
    pub fn orient(a: Point, b: Point, c: Point) -> f64 {
        (b - a).cross(c - a)
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert!(approx_eq(a.dist(b), 5.0));
        assert!(approx_eq(a.dist(b), b.dist(a)));
        assert!(approx_eq(a.dist_sq(b), 25.0));
    }

    #[test]
    fn vector_ops() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
        assert!(approx_eq(a.dot(b), 1.0));
        assert!(approx_eq(a.cross(b), -7.0));
    }

    #[test]
    fn midpoint_and_lerp() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.midpoint(b), Point::new(5.0, 10.0));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.25), Point::new(2.5, 5.0));
    }

    #[test]
    fn rotation_quarter_turn() {
        let p = Point::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!(approx_eq(p.x, 0.0));
        assert!(approx_eq(p.y, 1.0));
    }

    #[test]
    fn direction_to_unit_and_degenerate() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(0.0, 5.0);
        let d = a.direction_to(b).unwrap();
        assert!(approx_eq(d.norm(), 1.0));
        assert!(approx_eq(d.y, 1.0));
        assert!(a.direction_to(a).is_none());
    }

    #[test]
    fn orientation_sign() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        let ccw = Point::new(1.0, 1.0);
        let cw = Point::new(1.0, -1.0);
        assert!(Point::orient(a, b, ccw) > 0.0);
        assert!(Point::orient(a, b, cw) < 0.0);
        assert!(approx_eq(Point::orient(a, b, b * 2.0), 0.0));
    }
}
