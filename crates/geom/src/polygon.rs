//! Simple polygons and predicate-based clipping.
//!
//! Possible regions (`P_i` in the paper) are stored as polygons whose
//! boundary approximates the true region bounded by hyperbolic UV-edges.
//! Clipping a possible region by the *outside region* of a UV-edge
//! (Algorithm 1, Step 6) is performed with [`clip_keep`]: the exact sign
//! predicate decides which side a point is on, boundary crossings are refined
//! by bisection and extra vertices are inserted along the curved boundary so
//! that the stored polygon follows the hyperbola to a configurable density.

use crate::{Point, Rect, EPS, REFINE_EPS};
use serde::{Deserialize, Serialize};

/// A simple polygon with vertices in counter-clockwise order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon from a vertex list (assumed simple; orientation is
    /// normalised to counter-clockwise).
    pub fn new(mut vertices: Vec<Point>) -> Self {
        if signed_area2(&vertices) < 0.0 {
            vertices.reverse();
        }
        Self { vertices }
    }

    /// Polygon covering a rectangle.
    pub fn from_rect(r: &Rect) -> Self {
        Self {
            vertices: r.corners().to_vec(),
        }
    }

    /// An empty polygon (zero area, no vertices).
    pub fn empty() -> Self {
        Self {
            vertices: Vec::new(),
        }
    }

    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.len() < 3
    }

    /// Unsigned area (shoelace formula).
    pub fn area(&self) -> f64 {
        signed_area2(&self.vertices).abs() * 0.5
    }

    /// Axis-aligned bounding rectangle, or an empty sentinel for an empty
    /// polygon.
    pub fn mbr(&self) -> Rect {
        Rect::bounding(&self.vertices).unwrap_or_else(Rect::empty)
    }

    /// Point-in-polygon test (ray casting; boundary points count as inside).
    pub fn contains(&self, q: Point) -> bool {
        if self.is_empty() {
            return false;
        }
        let n = self.vertices.len();
        let mut inside = false;
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            // Boundary check: q on segment ab.
            if on_segment(a, b, q) {
                return true;
            }
            let intersects = (a.y > q.y) != (b.y > q.y);
            if intersects {
                let t = (q.y - a.y) / (b.y - a.y);
                let x = a.x + t * (b.x - a.x);
                if x > q.x {
                    inside = !inside;
                }
            }
        }
        inside
    }

    /// Maximum distance from `c` to any vertex of the polygon. For regions
    /// whose true boundary is concave (as every UV-cell boundary is —
    /// Section III-C) the maximum over the region is attained on the
    /// boundary, which the vertex set approximates.
    pub fn max_dist_from(&self, c: Point) -> f64 {
        self.vertices
            .iter()
            .map(|v| v.dist(c))
            .fold(0.0_f64, f64::max)
    }

    /// Centroid of the polygon (area-weighted); falls back to the vertex mean
    /// for degenerate polygons.
    pub fn centroid(&self) -> Option<Point> {
        if self.vertices.is_empty() {
            return None;
        }
        let a2 = signed_area2(&self.vertices);
        if a2.abs() < EPS {
            let n = self.vertices.len() as f64;
            let sum = self
                .vertices
                .iter()
                .fold(Point::origin(), |acc, p| acc + *p);
            return Some(sum / n);
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        let n = self.vertices.len();
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Some(Point::new(cx / (3.0 * a2), cy / (3.0 * a2)))
    }
}

/// Twice the signed area of the vertex loop (positive for counter-clockwise).
fn signed_area2(vertices: &[Point]) -> f64 {
    let n = vertices.len();
    if n < 3 {
        return 0.0;
    }
    let mut acc = 0.0;
    for i in 0..n {
        acc += vertices[i].cross(vertices[(i + 1) % n]);
    }
    acc
}

fn on_segment(a: Point, b: Point, q: Point) -> bool {
    let cross = Point::orient(a, b, q);
    if cross.abs() > EPS * (1.0 + a.dist(b)) {
        return false;
    }
    q.x >= a.x.min(b.x) - EPS
        && q.x <= a.x.max(b.x) + EPS
        && q.y >= a.y.min(b.y) - EPS
        && q.y <= a.y.max(b.y) + EPS
}

/// Finds a point on the zero level set of `f` on the segment `[keep, drop]`
/// where `f(keep) >= 0 > f(drop)`, by bisection.
fn refine_crossing<F: Fn(Point) -> f64>(f: &F, mut keep: Point, mut drop: Point) -> Point {
    for _ in 0..60 {
        let mid = keep.midpoint(drop);
        if keep.dist(drop) < REFINE_EPS {
            return mid;
        }
        if f(mid) >= 0.0 {
            keep = mid;
        } else {
            drop = mid;
        }
    }
    keep.midpoint(drop)
}

/// Clips a polygon against the sign predicate `f`, keeping the part where
/// `f(p) >= 0`.
///
/// * `f` must be continuous along the polygon boundary; in the UV-diagram it
///   is `distmin(O_i, p) - distmax(O_j, p)` negated appropriately — i.e. the
///   exact outside-region membership test, so clipping never misclassifies a
///   vertex even though the stored boundary is piecewise linear.
/// * `anchor` must be a point with `f(anchor) > 0` (for UV-edges the centre
///   `c_i` of the clipped object always qualifies). It is used to project
///   chord points back onto the curve `f = 0` so the clipped boundary follows
///   the curve instead of cutting straight across.
/// * `curve_samples` controls how many extra vertices are inserted per
///   clipped chord (0 keeps straight chords).
/// * `max_edge_len` subdivides polygon edges longer than this length (for the
///   purpose of sign evaluation only), so that a clip region "biting" into
///   the middle of a long edge without swallowing either endpoint is still
///   detected. Pass `f64::INFINITY` to disable subdivision. When nothing is
///   clipped the original (undensified) polygon is returned, so repeated
///   clipping does not inflate the vertex count.
///
/// Returns the clipped vertex loop. The result is empty when no vertex
/// satisfies the predicate, and equals the input when every vertex does.
pub fn clip_keep<F>(
    poly: &[Point],
    f: &F,
    anchor: Point,
    curve_samples: usize,
    max_edge_len: f64,
) -> Vec<Point>
where
    F: Fn(Point) -> f64,
{
    clip_keep_traced(poly, f, f, anchor, curve_samples, max_edge_len)
}

/// Reusable buffers for [`clip_keep_traced_with`]: the densified vertex loop
/// and its predicate values. Threading one scratch through a clip loop (one
/// per region build, repair pass or worker) drops the two per-clip heap
/// allocations of [`clip_keep_traced`] without changing a single output bit.
#[derive(Debug, Clone, Default)]
pub struct ClipScratch {
    dense: Vec<Point>,
    vals: Vec<f64>,
}

/// Like [`clip_keep`], but the curved boundary between an exit and an entry
/// crossing is traced along the zero set of `f_trace` instead of `f`.
///
/// This is what possible-region clipping uses: `f` is the keep predicate of
/// the *new* UV-edge (which decides which vertices survive and where the
/// boundary crossings are), while `f_trace` is the minimum of the keep
/// predicates of *every* UV-edge applied so far — so the inserted boundary
/// vertices stay on the boundary of the intersection of all constraints and
/// never re-introduce area that an earlier clip removed.
pub fn clip_keep_traced<F, G>(
    poly: &[Point],
    f: &F,
    f_trace: &G,
    anchor: Point,
    curve_samples: usize,
    max_edge_len: f64,
) -> Vec<Point>
where
    F: Fn(Point) -> f64,
    G: Fn(Point) -> f64,
{
    let original_polygon = Polygon::new(poly.to_vec());
    clip_keep_traced_with(
        poly,
        &original_polygon,
        f,
        f_trace,
        anchor,
        curve_samples,
        max_edge_len,
        &mut ClipScratch::default(),
    )
}

/// [`clip_keep_traced`] with caller-provided containment polygon and scratch
/// buffers, for hot clip loops.
///
/// `original_polygon` must be the polygon whose vertex loop is `poly` (the
/// clip's containment test runs against it); callers that already hold a
/// [`Polygon`] pass it directly instead of having every clip rebuild one.
/// Output is bit-identical to [`clip_keep_traced`] for any `poly` in
/// counter-clockwise order (the [`Polygon`] invariant).
#[allow(clippy::too_many_arguments)]
pub fn clip_keep_traced_with<F, G>(
    poly: &[Point],
    original_polygon: &Polygon,
    f: &F,
    f_trace: &G,
    anchor: Point,
    curve_samples: usize,
    max_edge_len: f64,
    scratch: &mut ClipScratch,
) -> Vec<Point>
where
    F: Fn(Point) -> f64,
    G: Fn(Point) -> f64,
{
    if poly.is_empty() {
        return Vec::new();
    }
    let original = poly;
    // Densify long edges so mid-edge incursions of the clip region are seen.
    const MAX_PIECES: usize = 64;
    scratch.dense.clear();
    if max_edge_len <= 0.0 || max_edge_len.is_nan() || max_edge_len.is_infinite() {
        scratch.dense.extend_from_slice(poly);
    } else {
        for i in 0..poly.len() {
            let a = poly[i];
            let b = poly[(i + 1) % poly.len()];
            let pieces = ((a.dist(b) / max_edge_len).ceil() as usize).clamp(1, MAX_PIECES);
            for s in 0..pieces {
                scratch.dense.push(a.lerp(b, s as f64 / pieces as f64));
            }
        }
    }
    let poly = &scratch.dense[..];
    let n = poly.len();
    scratch.vals.clear();
    scratch.vals.extend(poly.iter().map(|p| f(*p)));
    let vals = &scratch.vals[..];
    if vals.iter().all(|v| *v >= 0.0) {
        return original.to_vec();
    }
    if vals.iter().all(|v| *v < 0.0) {
        return Vec::new();
    }

    // Traced curve points must stay inside the polygon being clipped (the
    // zero set of the predicate can have components far away from it, e.g.
    // the second branch of a conic or a constraint's boundary on the other
    // side of the domain).
    let valid = |p: Point| original_polygon.contains(p);

    // Start the boundary walk at a kept vertex so that every entry crossing
    // is preceded by its matching exit crossing (otherwise the exit/entry
    // pair that wraps around the start of the loop would be connected by a
    // straight chord instead of the traced curve).
    let start = vals.iter().position(|v| *v >= 0.0).unwrap_or(0);
    let mut out: Vec<Point> = Vec::with_capacity(n + 8);
    for offset in 0..n {
        let i = (start + offset) % n;
        let j = (i + 1) % n;
        let (a, fa) = (poly[i], vals[i]);
        let (b, fb) = (poly[j], vals[j]);
        if fa >= 0.0 {
            out.push(a);
        }
        if (fa >= 0.0) != (fb >= 0.0) {
            // Boundary crossing between a and b.
            let crossing = if fa >= 0.0 {
                refine_crossing(f, a, b)
            } else {
                refine_crossing(f, b, a)
            };
            if fa >= 0.0 {
                // Leaving the kept region: remember the exit point; curve
                // points are added when we re-enter.
                out.push(crossing);
            } else {
                // Re-entering: connect the previous exit point to this entry
                // point along the boundary of the kept region.
                if curve_samples > 0 {
                    if let Some(&exit) = out.last() {
                        // The recursion is bounded both by the target chord
                        // length and by a hard depth cap (2^10 - 1 points).
                        let target = if max_edge_len.is_finite() {
                            max_edge_len
                        } else {
                            exit.dist(crossing) / (curve_samples + 1) as f64
                        };
                        trace_curve(
                            f_trace, &valid, anchor, exit, crossing, 10, target, &mut out,
                        );
                    }
                }
                out.push(crossing);
            }
        }
    }
    dedup_loop(out)
}

/// Recursively subdivides the curve `f = 0` between two points already on it,
/// appending the interior points (exclusive of the endpoints) to `out` in
/// order from `a` to `b`.
///
/// The midpoint of every chord is pushed onto the curve along the chord's
/// normal (falling back to the direction towards `anchor` when the normal
/// search fails), which keeps the inserted vertices evenly spread along the
/// curve instead of clustering around a single projection centre. Candidate
/// points are only accepted when `valid` holds (callers pass containment in
/// the pre-clip polygon, so the trace never wanders onto a far-away part of
/// the zero set). Recursion stops once a chord is shorter than `target_len`
/// (or `depth` is exhausted).
#[allow(clippy::too_many_arguments)]
fn trace_curve<F: Fn(Point) -> f64, V: Fn(Point) -> bool>(
    f: &F,
    valid: &V,
    anchor: Point,
    a: Point,
    b: Point,
    depth: usize,
    target_len: f64,
    out: &mut Vec<Point>,
) {
    if depth == 0 {
        return;
    }
    let chord = b - a;
    let len = chord.norm();
    if len < REFINE_EPS || len <= target_len {
        return;
    }
    let mid = a.midpoint(b);
    let projected = project_to_curve(
        f,
        valid,
        mid,
        Point::new(-chord.y / len, chord.x / len),
        len,
    )
    .or_else(|| {
        // Fall back to projecting towards the anchor (which has f > 0).
        if f(mid) < 0.0 {
            Some(refine_crossing(f, anchor, mid)).filter(|p| valid(*p))
        } else if valid(mid) {
            Some(mid)
        } else {
            None
        }
    });
    let Some(p) = projected else {
        // No acceptable curve point between a and b: keep the straight chord.
        return;
    };
    trace_curve(f, valid, anchor, a, p, depth - 1, target_len, out);
    out.push(p);
    trace_curve(f, valid, anchor, p, b, depth - 1, target_len, out);
}

/// Finds a point with `f = 0` near `start` by searching along `+/- normal`
/// with an expanding step, then refining by bisection. Only crossings whose
/// refined point satisfies `valid` are accepted (the zero set may have other,
/// far-away components that must not be picked up).
fn project_to_curve<F: Fn(Point) -> f64, V: Fn(Point) -> bool>(
    f: &F,
    valid: &V,
    start: Point,
    normal: Point,
    scale: f64,
) -> Option<Point> {
    let f0 = f(start);
    if f0.abs() <= 0.0 && valid(start) {
        return Some(start);
    }
    let mut step = scale * 0.25;
    for _ in 0..6 {
        for dir in [1.0, -1.0] {
            let probe = start + normal * (step * dir);
            let fp = f(probe);
            if (fp >= 0.0) != (f0 >= 0.0) {
                // Sign change between start and probe: bisect.
                let candidate = if f0 >= 0.0 {
                    refine_crossing(f, start, probe)
                } else {
                    refine_crossing(f, probe, start)
                };
                if valid(candidate) {
                    return Some(candidate);
                }
            }
        }
        step *= 2.0;
    }
    None
}

/// Removes consecutive (and wrap-around) duplicate vertices.
fn dedup_loop(mut pts: Vec<Point>) -> Vec<Point> {
    pts.dedup_by(|a, b| a.dist(*b) <= REFINE_EPS);
    while pts.len() > 1 && pts[0].dist(*pts.last().unwrap()) <= REFINE_EPS {
        pts.pop();
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn unit_square() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ]
    }

    #[test]
    fn area_and_orientation() {
        let p = Polygon::new(unit_square());
        assert!(approx_eq(p.area(), 16.0));
        // Clockwise input is normalised.
        let mut rev = unit_square();
        rev.reverse();
        let p2 = Polygon::new(rev);
        assert!(approx_eq(p2.area(), 16.0));
        assert!(signed_area2(p2.vertices()) > 0.0);
    }

    #[test]
    fn contains_interior_boundary_exterior() {
        let p = Polygon::new(unit_square());
        assert!(p.contains(Point::new(2.0, 2.0)));
        assert!(p.contains(Point::new(0.0, 2.0)));
        assert!(p.contains(Point::new(4.0, 4.0)));
        assert!(!p.contains(Point::new(4.5, 2.0)));
        assert!(!p.contains(Point::new(-0.5, -0.5)));
        assert!(!Polygon::empty().contains(Point::origin()));
    }

    #[test]
    fn centroid_and_max_dist() {
        let p = Polygon::new(unit_square());
        let c = p.centroid().unwrap();
        assert!(approx_eq(c.x, 2.0));
        assert!(approx_eq(c.y, 2.0));
        assert!(approx_eq(p.max_dist_from(c), 8.0_f64.sqrt()));
        assert!(Polygon::empty().centroid().is_none());
    }

    #[test]
    fn clip_by_halfplane_keeps_expected_area() {
        // Keep the half-plane x <= 2 of the 4x4 square.
        let f = |p: Point| 2.0 - p.x;
        let clipped = clip_keep(&unit_square(), &f, Point::new(0.0, 2.0), 0, f64::INFINITY);
        let poly = Polygon::new(clipped);
        assert!((poly.area() - 8.0).abs() < 1e-5);
        for v in poly.vertices() {
            assert!(v.x <= 2.0 + 1e-6);
        }
    }

    #[test]
    fn clip_all_kept_or_all_dropped() {
        let square = unit_square();
        let keep_all = clip_keep(&square, &|_p| 1.0, Point::origin(), 4, f64::INFINITY);
        assert_eq!(keep_all.len(), 4);
        let drop_all = clip_keep(&square, &|_p| -1.0, Point::origin(), 4, f64::INFINITY);
        assert!(drop_all.is_empty());
        // Subdivision never inflates a fully-kept polygon.
        let dense = clip_keep(&square, &|_p| 1.0, Point::origin(), 4, 0.5);
        assert_eq!(dense.len(), 4);
    }

    #[test]
    fn clip_by_circle_follows_curve() {
        // Remove the disk of radius 2 centred at (5, 2) (keep f >= 0 with
        // f = dist - 2). The removed part of the square is the half-disk
        // poking through the right edge. The clipped boundary should bend
        // around the circle rather than cut straight across when curve
        // samples are requested.
        let center = Point::new(5.0, 2.0);
        let f = |p: Point| p.dist(center) - 2.0;
        let anchor = Point::new(0.0, 2.0);
        let straight = Polygon::new(clip_keep(&unit_square(), &f, anchor, 0, 0.5));
        let curved = Polygon::new(clip_keep(&unit_square(), &f, anchor, 16, 0.5));
        // Exact remaining area = 16 - area of the disk part with x <= 4.
        // Circular segment cut by the chord at distance 1 from the centre:
        // r^2 * acos(d/r) - d * sqrt(r^2 - d^2) with r = 2, d = 1.
        let segment = 4.0 * (0.5_f64).acos() - 3.0_f64.sqrt();
        let exact = 16.0 - segment;
        assert!(
            (curved.area() - exact).abs() < 0.05,
            "curved area {} vs exact {exact}",
            curved.area()
        );
        // The curved approximation should be at least as good as the straight
        // chord version.
        assert!((curved.area() - exact).abs() <= (straight.area() - exact).abs() + 1e-9);
        // Every inserted vertex stays in the kept region (up to tolerance).
        for v in curved.vertices() {
            assert!(f(*v) >= -1e-6);
        }
    }

    #[test]
    fn clip_detects_mid_edge_incursion() {
        // A disk biting into the middle of the right edge without containing
        // any original vertex: only edge subdivision can detect it.
        let center = Point::new(4.0, 2.0);
        let f = |p: Point| p.dist(center) - 1.0;
        let anchor = Point::new(0.0, 2.0);
        let blind = Polygon::new(clip_keep(&unit_square(), &f, anchor, 16, f64::INFINITY));
        let aware = Polygon::new(clip_keep(&unit_square(), &f, anchor, 16, 0.5));
        // Without subdivision the bite is missed entirely.
        assert!(approx_eq(blind.area(), 16.0));
        let exact = 16.0 - std::f64::consts::PI / 2.0;
        assert!(
            (aware.area() - exact).abs() < 0.05,
            "aware area {}",
            aware.area()
        );
    }

    #[test]
    fn dedup_loop_removes_duplicates() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 0.0),
        ];
        let out = dedup_loop(pts);
        assert_eq!(out.len(), 3);
    }
}
