//! Convex hulls (Andrew's monotone chain).
//!
//! C-pruning (Lemma 3 of the paper) operates on the convex hull `CH(P_i)` of
//! an object's possible region: the d-bounds constructed at the hull vertices
//! cover the d-bounds of every boundary point, so only hull vertices need to
//! be checked.

use crate::{Point, EPS};

/// Computes the convex hull of `points` in counter-clockwise order.
///
/// Collinear points on the hull boundary are dropped. Duplicate input points
/// are tolerated. For fewer than three distinct points the distinct points are
/// returned as-is (a segment or single point).
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.x.total_cmp(&b.x).then(a.y.total_cmp(&b.y)));
    pts.dedup_by(|a, b| (a.x - b.x).abs() <= EPS && (a.y - b.y).abs() <= EPS);

    if pts.len() < 3 {
        return pts;
    }

    let mut hull: Vec<Point> = Vec::with_capacity(pts.len() * 2);
    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && Point::orient(hull[hull.len() - 2], hull[hull.len() - 1], p) <= EPS
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && Point::orient(hull[hull.len() - 2], hull[hull.len() - 1], p) <= EPS
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop();
    hull
}

/// `true` when `q` lies inside or on the convex polygon `hull`
/// (counter-clockwise vertex order, as produced by [`convex_hull`]).
pub fn hull_contains(hull: &[Point], q: Point) -> bool {
    match hull.len() {
        0 => false,
        1 => hull[0].dist(q) <= EPS,
        2 => {
            // Degenerate hull: a segment.
            let (a, b) = (hull[0], hull[1]);
            Point::orient(a, b, q).abs() <= EPS * (1.0 + a.dist(b))
                && q.x >= a.x.min(b.x) - EPS
                && q.x <= a.x.max(b.x) + EPS
                && q.y >= a.y.min(b.y) - EPS
                && q.y <= a.y.max(b.y) + EPS
        }
        _ => {
            for i in 0..hull.len() {
                let a = hull[i];
                let b = hull[(i + 1) % hull.len()];
                if Point::orient(a, b, q) < -EPS * (1.0 + a.dist(b)) {
                    return false;
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 3.0),
            Point::new(2.0, 0.0), // collinear with the bottom edge
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        for corner in [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ] {
            assert!(hull.iter().any(|p| p.dist(corner) < 1e-9));
        }
    }

    #[test]
    fn hull_is_counter_clockwise() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(2.0, 4.0),
            Point::new(-1.0, 2.0),
        ];
        let hull = convex_hull(&pts);
        assert!(hull.len() >= 3);
        // Signed area must be positive for CCW order.
        let mut area2 = 0.0;
        for i in 0..hull.len() {
            let a = hull[i];
            let b = hull[(i + 1) % hull.len()];
            area2 += a.cross(b);
        }
        assert!(area2 > 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        let single = convex_hull(&[Point::new(1.0, 1.0), Point::new(1.0, 1.0)]);
        assert_eq!(single.len(), 1);
        let segment = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ]);
        assert_eq!(segment.len(), 3 - 1); // collinear points collapse to endpoints
    }

    #[test]
    fn containment() {
        let hull = convex_hull(&[
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        assert!(hull_contains(&hull, Point::new(2.0, 2.0)));
        assert!(hull_contains(&hull, Point::new(0.0, 0.0)));
        assert!(hull_contains(&hull, Point::new(4.0, 2.0)));
        assert!(!hull_contains(&hull, Point::new(4.1, 2.0)));
        assert!(!hull_contains(&hull, Point::new(-0.1, -0.1)));
    }

    #[test]
    fn containment_degenerate_hulls() {
        assert!(!hull_contains(&[], Point::origin()));
        let single = [Point::new(1.0, 1.0)];
        assert!(hull_contains(&single, Point::new(1.0, 1.0)));
        assert!(!hull_contains(&single, Point::new(1.0, 1.5)));
        let seg = [Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        assert!(hull_contains(&seg, Point::new(1.0, 0.0)));
        assert!(!hull_contains(&seg, Point::new(1.0, 0.5)));
        assert!(!hull_contains(&seg, Point::new(3.0, 0.0)));
    }
}
