//! The UV-edge of the paper: a branch of a hyperbola (Equation (5)) together
//! with the *outside region* predicate of Definition 3.
//!
//! For two uncertain objects `O_i = Cir(c_i, r_i)` and `O_j = Cir(c_j, r_j)`
//! the UV-edge `E_i(j)` is the locus of points `p` with
//! `distmin(O_i, p) = distmax(O_j, p)`, i.e.
//! `dist(p, c_i) - dist(p, c_j) = r_i + r_j` — a hyperbola branch with foci
//! `c_i`, `c_j`, bent around `O_j`. The outside region `X_i(j)` is the convex
//! side of the branch containing `c_j`: any query point there is always
//! closer to `O_j` than to `O_i`, so `O_i` can be pruned.
//!
//! The UV-diagram algorithms only ever need the *sign* of
//! `distmin(O_i, p) - distmax(O_j, p)`, which is exact; the closed-form
//! parameters are exposed for inspection, visualisation and tests.

use crate::{Circle, Point, EPS};
use serde::{Deserialize, Serialize};

/// The outside region `X_i(j)` of Definition 3, represented by its exact
/// membership predicate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutsideRegion {
    /// The object whose UV-cell is being shaped (`O_i`).
    pub subject: Circle,
    /// The other object (`O_j`).
    pub other: Circle,
}

impl OutsideRegion {
    /// Builds the outside region of `subject` with respect to `other`.
    #[inline]
    pub fn new(subject: Circle, other: Circle) -> Self {
        Self { subject, other }
    }

    /// Signed membership value: positive inside the outside region (where
    /// `other` is strictly closer than `subject` can ever be), zero on the
    /// UV-edge, negative on the side where `subject` may still be the nearest
    /// neighbour.
    #[inline]
    pub fn signed(&self, p: Point) -> f64 {
        self.subject.dist_min(p) - self.other.dist_max(p)
    }

    /// `true` when `p` lies strictly inside the outside region, i.e. `subject`
    /// cannot be the nearest neighbour of `p` because of `other`.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.signed(p) > 0.0
    }

    /// `true` when the outside region has zero area: the two uncertainty
    /// regions overlap (`dist(c_i, c_j) < r_i + r_j`), in which case the
    /// UV-edge does not exist (Section III-C).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.subject.center.dist(self.other.center) <= self.subject.radius + self.other.radius + EPS
    }

    /// The "keep" predicate used when clipping a possible region by this
    /// outside region: non-negative exactly where the point must be kept.
    /// The anchor for curve refinement is [`OutsideRegion::keep_anchor`].
    #[inline]
    pub fn keep_signed(&self, p: Point) -> f64 {
        -self.signed(p)
    }

    /// A point guaranteed to satisfy `keep_signed > 0`: the centre of the
    /// subject object (its minimum distance from itself is zero while its
    /// maximum distance from `other` is positive).
    #[inline]
    pub fn keep_anchor(&self) -> Point {
        self.subject.center
    }

    /// Closed-form hyperbola of the UV-edge, if it exists.
    pub fn edge(&self) -> Option<Hyperbola> {
        Hyperbola::uv_edge(&self.subject, &self.other)
    }
}

/// The closed-form UV-edge: a rotated hyperbola in the notation of
/// Equation (5) of the paper, restricted to the branch that constitutes
/// `E_i(j)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hyperbola {
    /// Centre of the conic: the midpoint of `c_i c_j` (`(f_x, f_y)`).
    pub center: Point,
    /// Semi-major axis `a = (r_i + r_j) / 2`.
    pub a: f64,
    /// Semi-minor axis `b = sqrt(c^2 - a^2)`.
    pub b: f64,
    /// Half focal distance `c = dist(c_i, c_j) / 2`.
    pub c: f64,
    /// Rotation angle `theta` (direction from `c_i` towards `c_j`).
    pub theta: f64,
    /// Focus on the subject side (`c_i`).
    pub focus_subject: Point,
    /// Focus on the other side (`c_j`).
    pub focus_other: Point,
    /// Constant `r_i + r_j` (the distance difference on the branch).
    pub dist_diff: f64,
}

impl Hyperbola {
    /// Builds the UV-edge `E_i(j)` for objects `subject = O_i`, `other = O_j`.
    ///
    /// Returns `None` when the uncertainty regions overlap, in which case `b`
    /// would not be real and the edge does not exist (the outside region is
    /// treated as empty by the callers, exactly as in the paper).
    pub fn uv_edge(subject: &Circle, other: &Circle) -> Option<Self> {
        let d = subject.center.dist(other.center);
        let a = (subject.radius + other.radius) * 0.5;
        let c = d * 0.5;
        if c <= a + EPS {
            return None;
        }
        let b = (c * c - a * a).sqrt();
        let theta = (other.center.y - subject.center.y).atan2(other.center.x - subject.center.x);
        Some(Self {
            center: subject.center.midpoint(other.center),
            a,
            b,
            c,
            theta,
            focus_subject: subject.center,
            focus_other: other.center,
            dist_diff: subject.radius + other.radius,
        })
    }

    /// Point on the UV-edge branch at hyperbolic parameter `t`
    /// (`t = 0` gives the vertex between the foci; `|t|` grows towards the
    /// asymptotes).
    pub fn point_at(&self, t: f64) -> Point {
        // Branch closer to the `other` focus: x_theta = +a cosh t.
        let local = Point::new(self.a * t.cosh(), self.b * t.sinh());
        self.center + local.rotated(self.theta)
    }

    /// Samples `n` points of the branch for `t` in `[-t_max, t_max]`.
    pub fn sample(&self, n: usize, t_max: f64) -> Vec<Point> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![self.point_at(0.0)];
        }
        (0..n)
            .map(|k| {
                let t = -t_max + 2.0 * t_max * (k as f64) / ((n - 1) as f64);
                self.point_at(t)
            })
            .collect()
    }

    /// Residual of the defining equation at `p`:
    /// `dist(p, c_i) - dist(p, c_j) - (r_i + r_j)`; ~0 on the branch.
    pub fn residual(&self, p: Point) -> f64 {
        p.dist(self.focus_subject) - p.dist(self.focus_other) - self.dist_diff
    }

    /// Eccentricity `c / a` of the conic.
    pub fn eccentricity(&self) -> f64 {
        self.c / self.a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn objects() -> (Circle, Circle) {
        (
            Circle::new(Point::new(0.0, 0.0), 2.0),
            Circle::new(Point::new(10.0, 0.0), 1.0),
        )
    }

    #[test]
    fn outside_region_sides() {
        let (oi, oj) = objects();
        let x = OutsideRegion::new(oi, oj);
        // A point right of Oj (far from Oi): Oj is always closer -> inside X.
        assert!(x.contains(Point::new(12.0, 0.0)));
        // A point near Oi: Oi can be the NN -> not inside X.
        assert!(!x.contains(Point::new(1.0, 0.0)));
        // Keep predicate is the negation and the anchor is kept.
        assert!(x.keep_signed(x.keep_anchor()) > 0.0);
        assert!(x.keep_signed(Point::new(12.0, 0.0)) < 0.0);
    }

    #[test]
    fn outside_region_empty_when_objects_overlap() {
        let oi = Circle::new(Point::new(0.0, 0.0), 2.0);
        let oj = Circle::new(Point::new(2.5, 0.0), 1.0);
        let x = OutsideRegion::new(oi, oj);
        assert!(x.is_empty());
        assert!(x.edge().is_none());
    }

    #[test]
    fn uv_edge_parameters_match_equation_5() {
        let (oi, oj) = objects();
        let h = Hyperbola::uv_edge(&oi, &oj).unwrap();
        assert!(approx_eq(h.a, 1.5)); // (2 + 1) / 2
        assert!(approx_eq(h.c, 5.0)); // dist / 2
        assert!(approx_eq(h.b, (25.0_f64 - 2.25).sqrt()));
        assert!(approx_eq(h.theta, 0.0));
        assert!(approx_eq(h.center.x, 5.0));
        assert!(h.eccentricity() > 1.0);
    }

    #[test]
    fn branch_points_satisfy_defining_equation() {
        let (oi, oj) = objects();
        let h = Hyperbola::uv_edge(&oi, &oj).unwrap();
        for p in h.sample(33, 2.5) {
            assert!(
                h.residual(p).abs() < 1e-9,
                "residual too large at {p:?}: {}",
                h.residual(p)
            );
            // Every point of the edge is on the boundary of the outside
            // region: the signed predicate is ~0.
            let x = OutsideRegion::new(oi, oj);
            assert!(x.signed(p).abs() < 1e-9);
        }
    }

    #[test]
    fn rotated_edge_still_valid() {
        let oi = Circle::new(Point::new(1.0, 2.0), 1.0);
        let oj = Circle::new(Point::new(7.0, 9.0), 0.5);
        let h = Hyperbola::uv_edge(&oi, &oj).unwrap();
        for p in h.sample(17, 2.0) {
            assert!(h.residual(p).abs() < 1e-9);
        }
        let expected_theta = (9.0_f64 - 2.0).atan2(7.0 - 1.0);
        assert!(approx_eq(h.theta, expected_theta));
    }

    #[test]
    fn vertex_lies_between_foci_closer_to_other() {
        let (oi, oj) = objects();
        let h = Hyperbola::uv_edge(&oi, &oj).unwrap();
        let v = h.point_at(0.0);
        // Vertex is at distance center + a towards Oj.
        assert!(approx_eq(v.x, 5.0 + 1.5));
        assert!(approx_eq(v.y, 0.0));
        assert!(v.dist(oj.center) < v.dist(oi.center));
    }

    #[test]
    fn sample_edge_cases() {
        let (oi, oj) = objects();
        let h = Hyperbola::uv_edge(&oi, &oj).unwrap();
        assert!(h.sample(0, 1.0).is_empty());
        assert_eq!(h.sample(1, 1.0).len(), 1);
        assert_eq!(h.sample(5, 1.0).len(), 5);
    }

    #[test]
    fn point_objects_give_perpendicular_bisector_limit() {
        // With zero radii the "hyperbola" degenerates towards the classical
        // Voronoi bisector: a = 0 and the branch passes through the midpoint.
        let oi = Circle::point(Point::new(0.0, 0.0));
        let oj = Circle::point(Point::new(4.0, 0.0));
        let h = Hyperbola::uv_edge(&oi, &oj).unwrap();
        assert!(approx_eq(h.a, 0.0));
        let p = h.point_at(0.0);
        assert!(approx_eq(p.x, 2.0));
        let x = OutsideRegion::new(oi, oj);
        // Points right of the bisector are closer to Oj.
        assert!(x.contains(Point::new(3.0, 5.0)));
        assert!(!x.contains(Point::new(1.0, -5.0)));
    }
}
