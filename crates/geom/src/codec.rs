//! Snapshot codec impls for the geometry primitives.
//!
//! Every persisted structure of the snapshot subsystem bottoms out in
//! [`Point`], [`Circle`] and [`Rect`] values; their binary representation is
//! the raw IEEE-754 bit pattern of each coordinate, so round-tripping is
//! bit-exact — including the inverted-infinity corners of [`Rect::empty`]
//! and zero radii. Decoding constructs the values field-by-field instead of
//! going through the normalising constructors (`Rect::new` reorders corners,
//! `Circle::new` clamps the radius): a snapshot must reproduce exactly the
//! bits that were saved, not a normalised variant of them.

use crate::{Circle, Point, Rect};
use std::io::{self, Read, Write};
use uv_store::codec::{Decode, Encode};

impl Encode for Point {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.x.write_to(w)?;
        self.y.write_to(w)
    }
}

impl Decode for Point {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        Ok(Point {
            x: f64::read_from(r)?,
            y: f64::read_from(r)?,
        })
    }
}

impl Encode for Circle {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.center.write_to(w)?;
        self.radius.write_to(w)
    }
}

impl Decode for Circle {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        Ok(Circle {
            center: Point::read_from(r)?,
            radius: f64::read_from(r)?,
        })
    }
}

impl Encode for Rect {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.min_x.write_to(w)?;
        self.min_y.write_to(w)?;
        self.max_x.write_to(w)?;
        self.max_y.write_to(w)
    }
}

impl Decode for Rect {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        Ok(Rect {
            min_x: f64::read_from(r)?,
            min_y: f64::read_from(r)?,
            max_x: f64::read_from(r)?,
            max_y: f64::read_from(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uv_store::codec::{from_bytes, to_bytes};

    #[test]
    fn geometry_roundtrips_bit_exactly() {
        let p = Point::new(-0.0, 1.0e-300);
        assert_eq!(
            from_bytes::<Point>(&to_bytes(&p)).unwrap().x.to_bits(),
            p.x.to_bits()
        );

        let c = Circle::new(Point::new(3.5, -7.25), 0.0);
        assert_eq!(from_bytes::<Circle>(&to_bytes(&c)).unwrap(), c);

        // Rect::empty has inverted infinite corners; the decode path must
        // not re-normalise them through Rect::new.
        let e = Rect::empty();
        let back: Rect = from_bytes(&to_bytes(&e)).unwrap();
        assert_eq!(back.min_x, f64::INFINITY);
        assert_eq!(back.max_x, f64::NEG_INFINITY);

        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(from_bytes::<Rect>(&to_bytes(&r)).unwrap(), r);
    }
}
