//! Circles: uncertainty regions, d-bounds (Lemma 3) and minimum bounding
//! circles of non-circular uncertainty regions.

use crate::{Point, Rect, EPS};
use serde::{Deserialize, Serialize};

/// A circle `Cir(c, r)` in the notation of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Circle {
    pub center: Point,
    pub radius: f64,
}

impl Circle {
    /// Creates a circle; the radius is clamped to be non-negative.
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        Self {
            center,
            radius: radius.max(0.0),
        }
    }

    /// A degenerate circle of radius zero (a point object — the Voronoi
    /// diagram special case discussed in Section I of the paper).
    #[inline]
    pub fn point(center: Point) -> Self {
        Self::new(center, 0.0)
    }

    /// Minimum distance from `q` to the region enclosed by the circle
    /// (Equation (2)): zero when `q` lies inside the region.
    #[inline]
    pub fn dist_min(&self, q: Point) -> f64 {
        (self.center.dist(q) - self.radius).max(0.0)
    }

    /// Maximum distance from `q` to the region enclosed by the circle
    /// (Equation (3)).
    #[inline]
    pub fn dist_max(&self, q: Point) -> f64 {
        self.center.dist(q) + self.radius
    }

    /// `true` when `q` lies inside or on the circle.
    #[inline]
    pub fn contains(&self, q: Point) -> bool {
        self.center.dist_sq(q) <= (self.radius + EPS) * (self.radius + EPS)
    }

    /// `true` when the two circular regions share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Circle) -> bool {
        let d = self.center.dist(other.center);
        d <= self.radius + other.radius + EPS
    }

    /// `true` when `other` lies completely inside `self`.
    #[inline]
    pub fn contains_circle(&self, other: &Circle) -> bool {
        self.center.dist(other.center) + other.radius <= self.radius + EPS
    }

    /// Axis-aligned bounding rectangle of the circle.
    #[inline]
    pub fn mbr(&self) -> Rect {
        Rect::new(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )
    }

    /// Area of the disk.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Minimal circle that contains every point of `points`.
    ///
    /// This is the conversion the paper uses to support non-circular
    /// uncertainty regions (Section III-C): replace the region by its minimal
    /// bounding circle, which can only enlarge the UV-cell and therefore never
    /// loses an answer object. Uses Welzl's algorithm in its simple
    /// move-to-front form, which is ample for the region sizes involved.
    pub fn min_bounding_circle(points: &[Point]) -> Option<Circle> {
        if points.is_empty() {
            return None;
        }
        let mut pts = points.to_vec();
        // Deterministic shuffle-free variant: the move-to-front heuristic with
        // incremental repair; O(n) expected on typical inputs, O(n^3) worst
        // case which is irrelevant at uncertainty-region vertex counts.
        let mut c = Circle::point(pts[0]);
        for i in 1..pts.len() {
            if c.contains(pts[i]) {
                continue;
            }
            c = Circle::point(pts[i]);
            for j in 0..i {
                if c.contains(pts[j]) {
                    continue;
                }
                c = Circle::from_diameter(pts[i], pts[j]);
                for k in 0..j {
                    if c.contains(pts[k]) {
                        continue;
                    }
                    c = Circle::circumscribed(pts[i], pts[j], pts[k])
                        .unwrap_or_else(|| Circle::from_diameter(pts[i], pts[k]));
                }
            }
            pts.swap(0, i);
        }
        Some(c)
    }

    /// Circle whose diameter is the segment `ab`.
    #[inline]
    pub fn from_diameter(a: Point, b: Point) -> Circle {
        Circle::new(a.midpoint(b), a.dist(b) * 0.5)
    }

    /// Circumscribed circle of the triangle `abc`, or `None` when the points
    /// are (close to) collinear.
    pub fn circumscribed(a: Point, b: Point, c: Point) -> Option<Circle> {
        let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
        if d.abs() < EPS {
            return None;
        }
        let a2 = a.x * a.x + a.y * a.y;
        let b2 = b.x * b.x + b.y * b.y;
        let c2 = c.x * c.x + c.y * c.y;
        let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
        let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
        let center = Point::new(ux, uy);
        Some(Circle::new(center, center.dist(a)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn dist_min_max_match_paper_equations() {
        let c = Circle::new(Point::new(0.0, 0.0), 2.0);
        let q = Point::new(5.0, 0.0);
        assert!(approx_eq(c.dist_min(q), 3.0));
        assert!(approx_eq(c.dist_max(q), 7.0));
        // Inside the region the minimum distance collapses to zero.
        let inside = Point::new(1.0, 0.0);
        assert!(approx_eq(c.dist_min(inside), 0.0));
        assert!(approx_eq(c.dist_max(inside), 3.0));
    }

    #[test]
    fn zero_radius_is_a_point_object() {
        let c = Circle::point(Point::new(3.0, 4.0));
        let q = Point::origin();
        assert!(approx_eq(c.dist_min(q), 5.0));
        assert!(approx_eq(c.dist_max(q), 5.0));
    }

    #[test]
    fn containment_and_intersection() {
        let a = Circle::new(Point::new(0.0, 0.0), 3.0);
        let b = Circle::new(Point::new(1.0, 0.0), 1.0);
        let c = Circle::new(Point::new(10.0, 0.0), 1.0);
        assert!(a.contains_circle(&b));
        assert!(!b.contains_circle(&a));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(a.contains(Point::new(0.0, 3.0)));
        assert!(!a.contains(Point::new(0.0, 3.1)));
    }

    #[test]
    fn mbr_is_tight() {
        let c = Circle::new(Point::new(2.0, -1.0), 1.5);
        let r = c.mbr();
        assert!(approx_eq(r.min_x, 0.5));
        assert!(approx_eq(r.max_x, 3.5));
        assert!(approx_eq(r.min_y, -2.5));
        assert!(approx_eq(r.max_y, 0.5));
    }

    #[test]
    fn min_bounding_circle_covers_all_points() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(2.0, 3.0),
            Point::new(1.0, 1.0),
            Point::new(3.0, 0.5),
        ];
        let c = Circle::min_bounding_circle(&pts).unwrap();
        for p in &pts {
            assert!(c.contains(*p), "{p:?} outside {c:?}");
        }
        // Minimality sanity check: the circle is not wildly larger than the
        // point spread.
        assert!(c.radius < 3.0);
    }

    #[test]
    fn min_bounding_circle_degenerate_inputs() {
        assert!(Circle::min_bounding_circle(&[]).is_none());
        let single = Circle::min_bounding_circle(&[Point::new(1.0, 1.0)]).unwrap();
        assert!(approx_eq(single.radius, 0.0));
        let pair =
            Circle::min_bounding_circle(&[Point::new(0.0, 0.0), Point::new(2.0, 0.0)]).unwrap();
        assert!(approx_eq(pair.radius, 1.0));
        assert!(approx_eq(pair.center.x, 1.0));
    }

    #[test]
    fn circumscribed_rejects_collinear() {
        assert!(Circle::circumscribed(
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0)
        )
        .is_none());
        let c = Circle::circumscribed(
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 1.0),
        )
        .unwrap();
        assert!(approx_eq(c.center.x, 1.0));
        assert!(approx_eq(c.center.y, 0.0));
        assert!(approx_eq(c.radius, 1.0));
    }
}
