//! 2-D geometry kernel used throughout the UV-diagram reproduction.
//!
//! The kernel provides the primitives the paper's constructions rely on:
//!
//! * [`Point`] / [`Circle`] / [`Rect`] — uncertainty regions, node regions and
//!   minimum bounding circles, together with the `distmin` / `distmax`
//!   distances of Equations (2) and (3) of the paper.
//! * [`Polygon`] and [`convex_hull`] — possible regions and their convex
//!   hulls, used by C-pruning (Lemma 3).
//! * [`Hyperbola`] — the UV-edge of Equation (5), exposed both in closed form
//!   (centre, semi-axes, rotation) and as the exact *outside-region* sign
//!   predicate used for clipping, pruning and the 4-point overlap test
//!   (Lemma 4).
//!
//! All computations are `f64`; tolerance-sensitive comparisons go through
//! [`EPS`] or an explicitly supplied epsilon.
//!
//! *The paper-to-code map for the whole workspace — every definition, lemma,
//! algorithm and experiment of the paper, with its module and key functions —
//! lives in `docs/PAPER_MAP.md` at the repository root.*

pub mod circle;
pub mod codec;
pub mod hull;
pub mod hyperbola;
pub mod point;
pub mod polygon;
pub mod rect;

pub use circle::Circle;
pub use hull::{convex_hull, hull_contains};
pub use hyperbola::{Hyperbola, OutsideRegion};
pub use point::Point;
pub use polygon::{clip_keep, clip_keep_traced, clip_keep_traced_with, ClipScratch, Polygon};
pub use rect::Rect;

/// Default absolute tolerance for geometric comparisons.
pub const EPS: f64 = 1e-9;

/// Relative/absolute tolerance used when refining curve/segment intersections
/// by bisection. Chosen so that boundary vertices of clipped possible regions
/// are accurate to well below the page-grid resolution used by the UV-index.
pub const REFINE_EPS: f64 = 1e-7;

/// Returns `true` when `a` and `b` are equal within [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS * (1.0 + a.abs().max(b.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-3));
        assert!(approx_eq(0.0, 0.0));
        assert!(approx_eq(1e9, 1e9 + 0.5e-1 * EPS * 1e9));
    }
}
