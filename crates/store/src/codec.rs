//! Hand-rolled little-endian binary codec for snapshot persistence.
//!
//! The snapshot subsystem (see `uv_core::snapshot`) persists every structure
//! of a UV-diagram deployment — page stores, page lists, the adaptive grid,
//! reference tables — to a versioned on-disk format. It deliberately does
//! *not* go through the vendored `serde` shim: the on-disk layout is a
//! stability contract (magic, format version, per-section checksums), so
//! every byte is written and read explicitly by the [`Encode`] / [`Decode`]
//! traits below.
//!
//! Conventions:
//!
//! * every integer is little-endian; `usize` travels as `u64`;
//! * `f64` travels as its IEEE-754 bit pattern (`to_bits`), so `NaN`
//!   payloads and signed infinities round-trip bit-exactly — the update
//!   sensitivity bounds persist `f64::INFINITY` routinely;
//! * variable-size containers ([`Vec`], [`Option`]) carry an explicit length
//!   / presence prefix;
//! * decoding never panics on malformed input: every length is materialised
//!   through [`Read::take`], so a corrupted length prefix hits end-of-input
//!   instead of a huge allocation, and every invariant violation surfaces as
//!   [`std::io::ErrorKind::InvalidData`].
//!
//! Sections ([`write_section`] / [`read_section`]) frame independently
//! checksummed byte ranges: `tag (u8) | payload length (u64) | payload |
//! FNV-1a 64 checksum (u64)`. A flipped payload byte is caught by the
//! checksum, a wrong section order by the tag, a truncated file by
//! end-of-input — all before any payload is interpreted.

use std::io::{self, Read, Write};

/// A type with an explicit, versioned binary representation.
///
/// The method is named `write_to` (not `encode`) so that types which also
/// implement the page-level [`crate::Record`] trait — fixed-size records
/// with `encode(&self, &mut Vec<u8>)` — keep both impls callable without
/// disambiguation (`Vec<u8>` is itself an [`io::Write`]).
pub trait Encode {
    /// Writes the binary representation of `self` to `w`.
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()>;
}

/// The inverse of [`Encode`].
pub trait Decode: Sized {
    /// Reads one value from `r`. Malformed input yields an
    /// [`io::ErrorKind::InvalidData`] or [`io::ErrorKind::UnexpectedEof`]
    /// error, never a panic.
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self>;
}

/// Builds the `InvalidData` error decoders report for violated invariants.
pub fn corrupt(what: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.into())
}

fn read_exact_array<const N: usize, R: Read + ?Sized>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

impl Encode for u8 {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&[*self])
    }
}

impl Decode for u8 {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        Ok(read_exact_array::<1, R>(r)?[0])
    }
}

impl Encode for u32 {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.to_le_bytes())
    }
}

impl Decode for u32 {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        Ok(u32::from_le_bytes(read_exact_array::<4, R>(r)?))
    }
}

impl Encode for u64 {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.to_le_bytes())
    }
}

impl Decode for u64 {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        Ok(u64::from_le_bytes(read_exact_array::<8, R>(r)?))
    }
}

impl Encode for usize {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        (*self as u64).write_to(w)
    }
}

impl Decode for usize {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        usize::try_from(u64::read_from(r)?).map_err(|_| corrupt("length exceeds usize"))
    }
}

impl Encode for f64 {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.to_bits().write_to(w)
    }
}

impl Decode for f64 {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        Ok(f64::from_bits(u64::read_from(r)?))
    }
}

impl Encode for bool {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        u8::from(*self).write_to(w)
    }
}

impl Decode for bool {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        match u8::read_from(r)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(corrupt(format!("invalid bool byte {other}"))),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.len().write_to(w)?;
        for item in self {
            item.write_to(w)?;
        }
        Ok(())
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        let len = usize::read_from(r)?;
        // Cap the up-front allocation: a corrupted length prefix must run
        // into end-of-input, not an out-of-memory abort.
        let mut out = Vec::with_capacity(len.min(4_096));
        for _ in 0..len {
            out.push(T::read_from(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        match self {
            None => false.write_to(w),
            Some(v) => {
                true.write_to(w)?;
                v.write_to(w)
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        Ok(if bool::read_from(r)? {
            Some(T::read_from(r)?)
        } else {
            None
        })
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.0.write_to(w)?;
        self.1.write_to(w)
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        Ok((A::read_from(r)?, B::read_from(r)?))
    }
}

/// FNV-1a 64-bit hash — the per-section checksum and the config fingerprint
/// of the snapshot format. Not cryptographic; it detects the accidental
/// corruption (bit flips, truncation, concatenation mistakes) a persisted
/// index is exposed to.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Writes one framed section: `tag | payload length | payload | fnv64`.
pub fn write_section<W: Write + ?Sized>(w: &mut W, tag: u8, payload: &[u8]) -> io::Result<()> {
    tag.write_to(w)?;
    payload.len().write_to(w)?;
    w.write_all(payload)?;
    fnv64(payload).write_to(w)
}

/// Reads one framed section, requiring `expected_tag` and a matching
/// checksum. Returns the verified payload bytes.
pub fn read_section<R: Read + ?Sized>(r: &mut R, expected_tag: u8) -> io::Result<Vec<u8>> {
    let tag = u8::read_from(r)?;
    if tag != expected_tag {
        return Err(corrupt(format!(
            "section tag mismatch: expected {expected_tag}, found {tag}"
        )));
    }
    let len = u64::read_from(r)?;
    let mut payload = Vec::new();
    r.take(len).read_to_end(&mut payload)?;
    if payload.len() as u64 != len {
        return Err(corrupt(format!(
            "section {expected_tag} truncated: expected {len} bytes, found {}",
            payload.len()
        )));
    }
    let checksum = u64::read_from(r)?;
    if checksum != fnv64(&payload) {
        return Err(corrupt(format!("section {expected_tag} checksum mismatch")));
    }
    Ok(payload)
}

/// Encodes a value into a fresh byte buffer (the payload of one section).
pub fn to_bytes<T: Encode>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value
        .write_to(&mut buf)
        .expect("writing to a Vec<u8> cannot fail");
    buf
}

/// Decodes a value from a byte buffer, requiring every byte to be consumed.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> io::Result<T> {
    let mut cursor = bytes;
    let value = T::read_from(&mut cursor)?;
    if !cursor.is_empty() {
        return Err(corrupt(format!(
            "{} trailing bytes after a complete value",
            cursor.len()
        )));
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut buf = Vec::new();
        7u8.write_to(&mut buf).unwrap();
        0xDEAD_BEEFu32.write_to(&mut buf).unwrap();
        u64::MAX.write_to(&mut buf).unwrap();
        123_456usize.write_to(&mut buf).unwrap();
        f64::INFINITY.write_to(&mut buf).unwrap();
        (-0.0f64).write_to(&mut buf).unwrap();
        true.write_to(&mut buf).unwrap();
        let mut r: &[u8] = &buf;
        assert_eq!(u8::read_from(&mut r).unwrap(), 7);
        assert_eq!(u32::read_from(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::read_from(&mut r).unwrap(), u64::MAX);
        assert_eq!(usize::read_from(&mut r).unwrap(), 123_456);
        assert_eq!(f64::read_from(&mut r).unwrap(), f64::INFINITY);
        assert_eq!(
            f64::read_from(&mut r).unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert!(bool::read_from(&mut r).unwrap());
        assert!(r.is_empty());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, 2.5f64), (3u32, f64::NEG_INFINITY)];
        let bytes = to_bytes(&v);
        let back: Vec<(u32, f64)> = from_bytes(&bytes).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0], (1, 2.5));
        assert_eq!(back[1].1, f64::NEG_INFINITY);

        let some: Option<u64> = Some(9);
        let none: Option<u64> = None;
        assert_eq!(from_bytes::<Option<u64>>(&to_bytes(&some)).unwrap(), some);
        assert_eq!(from_bytes::<Option<u64>>(&to_bytes(&none)).unwrap(), none);
    }

    #[test]
    fn malformed_input_errors_without_panicking() {
        // Truncated integer.
        assert!(from_bytes::<u64>(&[1, 2, 3]).is_err());
        // Invalid bool discriminant.
        assert!(from_bytes::<bool>(&[7]).is_err());
        // Trailing garbage.
        let mut bytes = to_bytes(&5u32);
        bytes.push(0);
        assert!(from_bytes::<u32>(&bytes).is_err());
        // A huge vector length prefix must hit end-of-input, not allocate.
        let bytes = to_bytes(&u64::MAX);
        let err = from_bytes::<Vec<u8>>(&bytes).unwrap_err();
        assert!(matches!(
            err.kind(),
            io::ErrorKind::UnexpectedEof | io::ErrorKind::InvalidData
        ));
    }

    #[test]
    fn sections_verify_tag_and_checksum() {
        let payload = b"uv-diagram".to_vec();
        let mut buf = Vec::new();
        write_section(&mut buf, 3, &payload).unwrap();
        let mut r: &[u8] = &buf;
        assert_eq!(read_section(&mut r, 3).unwrap(), payload);

        // Wrong expected tag.
        let mut r: &[u8] = &buf;
        assert!(read_section(&mut r, 4).is_err());

        // Flipped payload byte -> checksum mismatch.
        let mut flipped = buf.clone();
        flipped[10] ^= 0xA5;
        let mut r: &[u8] = &flipped;
        assert!(read_section(&mut r, 3).is_err());

        // Truncated section.
        let mut r: &[u8] = &buf[..buf.len() - 4];
        assert!(read_section(&mut r, 3).is_err());
    }

    #[test]
    fn fnv64_is_stable() {
        // The checksum is part of the on-disk contract: pin known values so
        // an accidental algorithm change fails loudly.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
