//! The page store: fixed-size pages addressed by [`PageId`], every access
//! counted.

use crate::counter::{IoCounters, IoSnapshot};
use bytes::Bytes;
use parking_lot::RwLock;
use std::sync::Arc;

/// Default page size used by the experiments (the paper uses 4 KB pages).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Identifier of a page inside a [`PageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// A thread-safe simulated disk: pages of at most `page_size` bytes, with
/// every read and write recorded in shared [`IoCounters`].
#[derive(Debug)]
pub struct PageStore {
    pages: RwLock<Vec<Bytes>>,
    counters: Arc<IoCounters>,
    page_size: usize,
}

impl Default for PageStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore {
    /// Store with the default 4 KB page size.
    pub fn new() -> Self {
        Self::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// Store with a custom page size (must be positive).
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            pages: RwLock::new(Vec::new()),
            counters: Arc::new(IoCounters::new()),
            page_size,
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.pages.read().len()
    }

    /// Shared handle to the I/O counters (e.g. to hand to query statistics).
    pub fn counters(&self) -> Arc<IoCounters> {
        Arc::clone(&self.counters)
    }

    /// Current I/O totals.
    pub fn io(&self) -> IoSnapshot {
        self.counters.snapshot()
    }

    /// Resets the I/O counters (page contents are untouched).
    pub fn reset_io(&self) {
        self.counters.reset();
    }

    /// Allocates a new page holding `data`. Counts one write.
    ///
    /// # Panics
    /// Panics if `data` exceeds the page size — callers are expected to pack
    /// records into page-sized chunks (see [`crate::PagedList`]).
    pub fn allocate(&self, data: Bytes) -> PageId {
        assert!(
            data.len() <= self.page_size,
            "page overflow: {} > {}",
            data.len(),
            self.page_size
        );
        self.counters.record_write();
        let mut pages = self.pages.write();
        let id = PageId(pages.len() as u32);
        pages.push(data);
        id
    }

    /// Overwrites an existing page. Counts one write.
    pub fn write(&self, id: PageId, data: Bytes) {
        assert!(
            data.len() <= self.page_size,
            "page overflow: {} > {}",
            data.len(),
            self.page_size
        );
        self.counters.record_write();
        let mut pages = self.pages.write();
        pages[id.0 as usize] = data;
    }

    /// Reads a page. Counts one read.
    pub fn read(&self, id: PageId) -> Bytes {
        self.counters.record_read();
        let pages = self.pages.read();
        pages[id.0 as usize].clone()
    }

    /// Reads a page without counting I/O (used by construction-time packing
    /// where the paper does not charge query I/O).
    pub fn read_uncounted(&self, id: PageId) -> Bytes {
        let pages = self.pages.read();
        pages[id.0 as usize].clone()
    }

    /// Total bytes stored across all pages.
    pub fn stored_bytes(&self) -> usize {
        self.pages.read().iter().map(Bytes::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_roundtrip() {
        let store = PageStore::new();
        let id = store.allocate(Bytes::from_static(b"hello"));
        assert_eq!(store.num_pages(), 1);
        assert_eq!(store.read(id), Bytes::from_static(b"hello"));
        let io = store.io();
        assert_eq!(io.writes, 1);
        assert_eq!(io.reads, 1);
    }

    #[test]
    fn write_overwrites_and_counts() {
        let store = PageStore::new();
        let id = store.allocate(Bytes::from_static(b"a"));
        store.write(id, Bytes::from_static(b"bb"));
        assert_eq!(store.read_uncounted(id), Bytes::from_static(b"bb"));
        assert_eq!(store.io().writes, 2);
        assert_eq!(store.io().reads, 0);
        assert_eq!(store.stored_bytes(), 2);
    }

    #[test]
    fn reset_io_keeps_data() {
        let store = PageStore::new();
        let id = store.allocate(Bytes::from_static(b"abc"));
        store.reset_io();
        assert_eq!(store.io().total(), 0);
        assert_eq!(store.read(id), Bytes::from_static(b"abc"));
        assert_eq!(store.io().reads, 1);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn oversized_page_is_rejected() {
        let store = PageStore::with_page_size(4);
        store.allocate(Bytes::from_static(b"too long"));
    }

    #[test]
    fn custom_page_size() {
        let store = PageStore::with_page_size(128);
        assert_eq!(store.page_size(), 128);
        store.allocate(Bytes::from(vec![0u8; 128]));
        assert_eq!(store.num_pages(), 1);
    }
}
