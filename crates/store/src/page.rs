//! The page store: fixed-size pages addressed by [`PageId`], every access
//! counted.

use crate::codec::{corrupt, Decode, Encode};
use crate::counter::{IoCounters, IoSnapshot};
use bytes::Bytes;
use parking_lot::RwLock;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Default page size used by the experiments (the paper uses 4 KB pages).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Identifier of a page inside a [`PageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// A thread-safe simulated disk: pages of at most `page_size` bytes, with
/// every read and write recorded in shared [`IoCounters`].
#[derive(Debug)]
pub struct PageStore {
    pages: RwLock<Vec<Bytes>>,
    counters: Arc<IoCounters>,
    page_size: usize,
}

impl Default for PageStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PageStore {
    /// Store with the default 4 KB page size.
    pub fn new() -> Self {
        Self::with_page_size(DEFAULT_PAGE_SIZE)
    }

    /// Store with a custom page size (must be positive).
    pub fn with_page_size(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be positive");
        Self {
            pages: RwLock::new(Vec::new()),
            counters: Arc::new(IoCounters::new()),
            page_size,
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> usize {
        self.pages.read().len()
    }

    /// Shared handle to the I/O counters (e.g. to hand to query statistics).
    pub fn counters(&self) -> Arc<IoCounters> {
        Arc::clone(&self.counters)
    }

    /// Current I/O totals.
    pub fn io(&self) -> IoSnapshot {
        self.counters.snapshot()
    }

    /// Resets the I/O counters (page contents are untouched).
    pub fn reset_io(&self) {
        self.counters.reset();
    }

    /// Allocates a new page holding `data`. Counts one write.
    ///
    /// # Panics
    /// Panics if `data` exceeds the page size — callers are expected to pack
    /// records into page-sized chunks (see [`crate::PagedList`]).
    pub fn allocate(&self, data: Bytes) -> PageId {
        assert!(
            data.len() <= self.page_size,
            "page overflow: {} > {}",
            data.len(),
            self.page_size
        );
        self.counters.record_write();
        let mut pages = self.pages.write();
        let id = PageId(pages.len() as u32);
        pages.push(data);
        id
    }

    /// Overwrites an existing page. Counts one write.
    pub fn write(&self, id: PageId, data: Bytes) {
        assert!(
            data.len() <= self.page_size,
            "page overflow: {} > {}",
            data.len(),
            self.page_size
        );
        self.counters.record_write();
        let mut pages = self.pages.write();
        pages[id.0 as usize] = data;
    }

    /// Reads a page. Counts one read.
    pub fn read(&self, id: PageId) -> Bytes {
        self.counters.record_read();
        let pages = self.pages.read();
        pages[id.0 as usize].clone()
    }

    /// Reads a page without counting I/O (used by construction-time packing
    /// where the paper does not charge query I/O).
    pub fn read_uncounted(&self, id: PageId) -> Bytes {
        let pages = self.pages.read();
        pages[id.0 as usize].clone()
    }

    /// Total bytes stored across all pages.
    pub fn stored_bytes(&self) -> usize {
        self.pages.read().iter().map(Bytes::len).sum()
    }
}

/// Upper bound accepted for a persisted page size — far above any sane
/// configuration, low enough that a corrupted header cannot demand an
/// absurd allocation per page.
const MAX_PERSISTED_PAGE_SIZE: u64 = 1 << 24;

/// The persistent representation of a [`PageStore`] is its page size plus
/// the raw bytes of every page, in allocation order. The I/O counters are
/// runtime state: a loaded store starts with zeroed counters.
impl Encode for PageStore {
    fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.page_size.write_to(w)?;
        let pages = self.pages.read();
        pages.len().write_to(w)?;
        for page in pages.iter() {
            page.len().write_to(w)?;
            w.write_all(page)?;
        }
        Ok(())
    }
}

impl Decode for PageStore {
    fn read_from<R: Read + ?Sized>(r: &mut R) -> io::Result<Self> {
        let page_size = u64::read_from(r)?;
        if page_size == 0 || page_size > MAX_PERSISTED_PAGE_SIZE {
            return Err(corrupt(format!("implausible page size {page_size}")));
        }
        let page_size = page_size as usize;
        let num_pages = usize::read_from(r)?;
        let mut pages = Vec::with_capacity(num_pages.min(4_096));
        for i in 0..num_pages {
            let len = usize::read_from(r)?;
            if len > page_size {
                return Err(corrupt(format!(
                    "page {i} holds {len} bytes, exceeding the page size {page_size}"
                )));
            }
            let mut bytes = vec![0u8; len];
            r.read_exact(&mut bytes)?;
            pages.push(Bytes::from(bytes));
        }
        Ok(Self {
            pages: RwLock::new(pages),
            counters: Arc::new(IoCounters::new()),
            page_size,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_read_roundtrip() {
        let store = PageStore::new();
        let id = store.allocate(Bytes::from_static(b"hello"));
        assert_eq!(store.num_pages(), 1);
        assert_eq!(store.read(id), Bytes::from_static(b"hello"));
        let io = store.io();
        assert_eq!(io.writes, 1);
        assert_eq!(io.reads, 1);
    }

    #[test]
    fn write_overwrites_and_counts() {
        let store = PageStore::new();
        let id = store.allocate(Bytes::from_static(b"a"));
        store.write(id, Bytes::from_static(b"bb"));
        assert_eq!(store.read_uncounted(id), Bytes::from_static(b"bb"));
        assert_eq!(store.io().writes, 2);
        assert_eq!(store.io().reads, 0);
        assert_eq!(store.stored_bytes(), 2);
    }

    #[test]
    fn reset_io_keeps_data() {
        let store = PageStore::new();
        let id = store.allocate(Bytes::from_static(b"abc"));
        store.reset_io();
        assert_eq!(store.io().total(), 0);
        assert_eq!(store.read(id), Bytes::from_static(b"abc"));
        assert_eq!(store.io().reads, 1);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn oversized_page_is_rejected() {
        let store = PageStore::with_page_size(4);
        store.allocate(Bytes::from_static(b"too long"));
    }

    #[test]
    fn custom_page_size() {
        let store = PageStore::with_page_size(128);
        assert_eq!(store.page_size(), 128);
        store.allocate(Bytes::from(vec![0u8; 128]));
        assert_eq!(store.num_pages(), 1);
    }

    #[test]
    fn persisted_store_roundtrips_pages_and_resets_counters() {
        let store = PageStore::with_page_size(64);
        let a = store.allocate(Bytes::from_static(b"first page"));
        let b = store.allocate(Bytes::from(vec![0xAB; 64]));
        store.read(a);

        let bytes = crate::codec::to_bytes(&store);
        let back: PageStore = crate::codec::from_bytes(&bytes).unwrap();
        assert_eq!(back.page_size(), 64);
        assert_eq!(back.num_pages(), 2);
        assert_eq!(back.read_uncounted(a), Bytes::from_static(b"first page"));
        assert_eq!(back.read_uncounted(b), Bytes::from(vec![0xAB; 64]));
        // Counters are runtime-only: the loaded store starts from zero.
        assert_eq!(back.io().total(), 0);
        assert_eq!(back.stored_bytes(), store.stored_bytes());
    }

    #[test]
    fn persisted_store_rejects_implausible_layouts() {
        use crate::codec::{from_bytes, to_bytes, Encode};
        // Zero page size.
        let mut bytes = Vec::new();
        0u64.write_to(&mut bytes).unwrap();
        0usize.write_to(&mut bytes).unwrap();
        assert!(from_bytes::<PageStore>(&bytes).is_err());
        // A page longer than the page size.
        let store = PageStore::with_page_size(8);
        store.allocate(Bytes::from_static(b"12345678"));
        let mut bytes = to_bytes(&store);
        // Patch the first page's length prefix (page_size u64 + count u64
        // precede it) to exceed the page size.
        bytes[16..24].copy_from_slice(&9u64.to_le_bytes());
        assert!(from_bytes::<PageStore>(&bytes).is_err());
    }
}
