//! Append-only lists of fixed-size records packed into pages.
//!
//! Both index structures of the paper keep their leaf-level payload as lists
//! of `<ID, MBC, pointer>` tuples on disk pages: the R-tree leaf nodes and
//! the "linked list of disk pages" attached to every UV-index leaf
//! (Section V-A). [`PagedList`] is that structure; reading it back counts one
//! I/O per page, which is exactly what Figure 6(b) measures.

use crate::codec::{corrupt, Decode, Encode};
use crate::page::{PageId, PageStore};
use bytes::Bytes;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// A fixed-size record that can be stored in a [`PagedList`].
pub trait Record: Sized {
    /// Encoded size in bytes. Must be positive and no larger than the page
    /// size of the store the list lives in.
    const SIZE: usize;

    /// Appends exactly [`Record::SIZE`] bytes to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Decodes a record from exactly [`Record::SIZE`] bytes.
    fn decode(buf: &[u8]) -> Self;
}

/// An append-only, page-backed list of records.
#[derive(Debug, Clone)]
pub struct PagedList<T: Record> {
    store: Arc<PageStore>,
    pages: Vec<PageId>,
    /// Records not yet flushed to a full page.
    tail: Vec<T>,
    len: usize,
}

impl<T: Record + Clone> PagedList<T> {
    /// Creates an empty list backed by `store`.
    pub fn new(store: Arc<PageStore>) -> Self {
        assert!(T::SIZE > 0, "record size must be positive");
        assert!(
            T::SIZE <= store.page_size(),
            "record larger than a page ({} > {})",
            T::SIZE,
            store.page_size()
        );
        Self {
            store,
            pages: Vec::new(),
            tail: Vec::new(),
            len: 0,
        }
    }

    /// Number of records per full page.
    pub fn records_per_page(&self) -> usize {
        self.store.page_size() / T::SIZE
    }

    /// Number of records in the list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the list holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of disk pages the list occupies once flushed (the partially
    /// filled tail counts as one page, mirroring how the paper counts leaf
    /// pages).
    pub fn num_pages(&self) -> usize {
        self.pages.len() + usize::from(!self.tail.is_empty())
    }

    /// `true` when appending one more record would allocate a new page —
    /// the OVERFLOW condition of Algorithm 3.
    pub fn next_push_allocates(&self) -> bool {
        self.tail.len() == self.records_per_page() - 1 || self.records_per_page() == 1
    }

    /// Appends a record, flushing a page when the in-memory tail fills up.
    pub fn push(&mut self, record: T) {
        self.tail.push(record);
        self.len += 1;
        if self.tail.len() >= self.records_per_page() {
            self.flush_tail();
        }
    }

    fn flush_tail(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        let mut buf = Vec::with_capacity(self.tail.len() * T::SIZE);
        for r in &self.tail {
            r.encode(&mut buf);
        }
        let id = self.store.allocate(Bytes::from(buf));
        self.pages.push(id);
        self.tail.clear();
    }

    /// Forces any buffered records onto a page (done automatically by
    /// [`PagedList::read_all`] callers at build time via `seal`).
    pub fn seal(&mut self) {
        self.flush_tail();
    }

    /// Reads every record back, charging one read I/O per sealed page.
    /// Unsealed tail records (still in memory) are returned without I/O.
    pub fn read_all(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for page in &self.pages {
            let bytes = self.store.read(*page);
            for chunk in bytes.chunks_exact(T::SIZE) {
                out.push(T::decode(chunk));
            }
        }
        out.extend(self.tail.iter().cloned());
        out
    }

    /// Reads every record without charging I/O (construction-time use).
    pub fn read_all_uncounted(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for page in &self.pages {
            let bytes = self.store.read_uncounted(*page);
            for chunk in bytes.chunks_exact(T::SIZE) {
                out.push(T::decode(chunk));
            }
        }
        out.extend(self.tail.iter().cloned());
        out
    }

    /// Shared handle to the backing store.
    pub fn store(&self) -> &Arc<PageStore> {
        &self.store
    }

    /// Writes the persistent state of the list: the page ids it occupies and
    /// the unsealed tail records. The page *contents* belong to the backing
    /// [`PageStore`], which is persisted separately — a list state is only
    /// meaningful next to the store it indexes into.
    pub fn write_state<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        self.pages.len().write_to(w)?;
        for page in &self.pages {
            page.0.write_to(w)?;
        }
        self.tail.len().write_to(w)?;
        let mut buf = Vec::with_capacity(T::SIZE);
        for record in &self.tail {
            buf.clear();
            record.encode(&mut buf);
            w.write_all(&buf)?;
        }
        Ok(())
    }

    /// Reconstructs a list from its persisted state over an already-loaded
    /// `store`. Every page id is validated against the store so a corrupted
    /// snapshot cannot panic a later [`PagedList::read_all`].
    pub fn read_state<R: Read + ?Sized>(store: Arc<PageStore>, r: &mut R) -> io::Result<Self> {
        let num_pages = usize::read_from(r)?;
        let available = store.num_pages();
        let records_per_page = store.page_size() / T::SIZE;
        let mut pages = Vec::with_capacity(num_pages.min(4_096));
        for _ in 0..num_pages {
            let id = u32::read_from(r)?;
            if (id as usize) >= available {
                return Err(corrupt(format!(
                    "page list references page {id}, store holds {available}"
                )));
            }
            pages.push(PageId(id));
        }
        let tail_len = usize::read_from(r)?;
        if tail_len >= records_per_page.max(1) {
            return Err(corrupt(format!(
                "page-list tail holds {tail_len} records, a page holds {records_per_page}"
            )));
        }
        let mut tail = Vec::with_capacity(tail_len.min(4_096));
        let mut buf = vec![0u8; T::SIZE];
        for _ in 0..tail_len {
            r.read_exact(&mut buf)?;
            tail.push(T::decode(&buf));
        }
        let len = pages
            .iter()
            .map(|p| store.read_uncounted(*p).len() / T::SIZE)
            .sum::<usize>()
            + tail.len();
        Ok(Self {
            store,
            pages,
            tail,
            len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    struct Rec(u64);

    impl Record for Rec {
        const SIZE: usize = 8;
        fn encode(&self, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&self.0.to_le_bytes());
        }
        fn decode(buf: &[u8]) -> Self {
            Rec(u64::from_le_bytes(buf.try_into().unwrap()))
        }
    }

    fn small_store() -> Arc<PageStore> {
        // 32-byte pages -> 4 records per page.
        Arc::new(PageStore::with_page_size(32))
    }

    #[test]
    fn push_and_read_roundtrip() {
        let store = small_store();
        let mut list = PagedList::new(Arc::clone(&store));
        for i in 0..10u64 {
            list.push(Rec(i));
        }
        assert_eq!(list.len(), 10);
        assert_eq!(list.records_per_page(), 4);
        // 10 records -> 2 full pages + tail of 2.
        assert_eq!(list.num_pages(), 3);
        let all = list.read_all();
        assert_eq!(all, (0..10).map(Rec).collect::<Vec<_>>());
        // Reading charged one I/O per sealed page (2).
        assert_eq!(store.io().reads, 2);
    }

    #[test]
    fn seal_flushes_tail() {
        let store = small_store();
        let mut list = PagedList::new(Arc::clone(&store));
        list.push(Rec(7));
        assert_eq!(list.num_pages(), 1);
        list.seal();
        assert_eq!(list.num_pages(), 1);
        store.reset_io();
        let all = list.read_all();
        assert_eq!(all, vec![Rec(7)]);
        assert_eq!(store.io().reads, 1);
    }

    #[test]
    fn empty_list() {
        let store = small_store();
        let mut list: PagedList<Rec> = PagedList::new(store);
        assert!(list.is_empty());
        assert_eq!(list.num_pages(), 0);
        assert!(list.read_all().is_empty());
        list.seal();
        assert_eq!(list.num_pages(), 0);
    }

    #[test]
    fn next_push_allocates_signal() {
        let store = small_store();
        let mut list = PagedList::new(store);
        assert!(!list.next_push_allocates());
        list.push(Rec(0));
        list.push(Rec(1));
        list.push(Rec(2));
        // Tail has 3 of 4 slots filled: the next push completes a page.
        assert!(list.next_push_allocates());
        list.push(Rec(3));
        assert!(!list.next_push_allocates());
    }

    #[test]
    fn state_roundtrip_preserves_pages_tail_and_len() {
        let store = small_store();
        let mut list = PagedList::new(Arc::clone(&store));
        for i in 0..11u64 {
            list.push(Rec(i));
        }
        // 2 sealed pages + a tail of 3.
        let mut state = Vec::new();
        list.write_state(&mut state).unwrap();
        let back: PagedList<Rec> =
            PagedList::read_state(Arc::clone(&store), &mut state.as_slice()).unwrap();
        assert_eq!(back.len(), 11);
        assert_eq!(back.num_pages(), 3);
        assert_eq!(back.read_all_uncounted(), list.read_all_uncounted());
        // The restored tail keeps appending where the original left off.
        let mut back = back;
        back.push(Rec(11));
        assert_eq!(back.read_all_uncounted().len(), 12);
    }

    #[test]
    fn state_rejects_out_of_range_pages_and_overlong_tails() {
        let store = small_store();
        let mut list = PagedList::new(Arc::clone(&store));
        for i in 0..4u64 {
            list.push(Rec(i)); // exactly one sealed page
        }
        let mut state = Vec::new();
        list.write_state(&mut state).unwrap();
        // Patch the single page id (after the u64 page count) out of range.
        let mut bad = state.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(PagedList::<Rec>::read_state(Arc::clone(&store), &mut bad.as_slice()).is_err());
        // Patch the tail length to a full page's worth.
        let mut bad = state.clone();
        let tail_at = bad.len() - 8;
        bad[tail_at..].copy_from_slice(&4u64.to_le_bytes());
        assert!(PagedList::<Rec>::read_state(store, &mut bad.as_slice()).is_err());
    }

    #[test]
    fn uncounted_read_does_not_charge_io() {
        let store = small_store();
        let mut list = PagedList::new(Arc::clone(&store));
        for i in 0..8u64 {
            list.push(Rec(i));
        }
        store.reset_io();
        let all = list.read_all_uncounted();
        assert_eq!(all.len(), 8);
        assert_eq!(store.io().reads, 0);
    }
}
