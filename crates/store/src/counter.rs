//! Atomic I/O counters shared by every page-backed structure.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing counters of page reads and writes.
///
/// Counters are updated with relaxed atomics: the experiments only need
/// totals observed after the measured operation has completed on the same
/// thread (or after joining worker threads), never cross-thread ordering.
#[derive(Debug, Default)]
pub struct IoCounters {
    reads: AtomicU64,
    writes: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    pub reads: u64,
    pub writes: u64,
}

impl IoSnapshot {
    /// Difference `self - earlier`, saturating at zero (useful when the
    /// counters were reset in between).
    pub fn since(&self, earlier: IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
        }
    }

    /// Total number of I/O operations.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl IoCounters {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Current totals.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Resets both counters to zero (used between experiment repetitions).
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counts_reads_and_writes() {
        let c = IoCounters::new();
        c.record_read();
        c.record_read();
        c.record_write();
        let s = c.snapshot();
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        assert_eq!(s.total(), 3);
    }

    #[test]
    fn reset_clears_counts() {
        let c = IoCounters::new();
        c.record_read();
        c.reset();
        assert_eq!(c.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn since_computes_deltas() {
        let c = IoCounters::new();
        c.record_read();
        let before = c.snapshot();
        c.record_read();
        c.record_write();
        let after = c.snapshot();
        let delta = after.since(before);
        assert_eq!(delta.reads, 1);
        assert_eq!(delta.writes, 1);
        // Saturating behaviour after a reset.
        c.reset();
        let post_reset = c.snapshot().since(after);
        assert_eq!(post_reset, IoSnapshot::default());
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let c = Arc::new(IoCounters::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.record_read();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.snapshot().reads, 8000);
    }
}
