//! Simulated disk-page storage with explicit I/O accounting.
//!
//! The paper evaluates both the UV-index and the R-tree baseline by the
//! number of *leaf-page I/Os* a query incurs (Figure 6(b)): non-leaf nodes of
//! both indexes are memory resident while leaf nodes live on 4 KB disk pages.
//! This crate provides that substrate:
//!
//! * [`PageStore`] — a thread-safe collection of fixed-size pages whose every
//!   read and write is counted by [`IoCounters`].
//! * [`PagedList`] — an append-only list of fixed-size records spread across
//!   pages, the structure used both by R-tree leaf nodes and by the linked
//!   page lists attached to UV-index leaves (`<ID, MBC, pointer>` tuples).
//! * [`codec`] — the hand-rolled little-endian [`codec::Encode`] /
//!   [`codec::Decode`] layer of the snapshot subsystem: primitive and
//!   container codecs, FNV-1a checksums and framed sections. Both storage
//!   structures persist through it (`PageStore` as raw pages, `PagedList` via
//!   [`PagedList::write_state`] / [`PagedList::read_state`]); I/O counters
//!   are runtime-only and reset on load.
//!
//! Timings in the reproduction come from wall-clock measurement; I/O counts
//! come from here and are exact.
//!
//! *The paper-to-code map for the whole workspace — every definition, lemma,
//! algorithm and experiment of the paper, with its module and key functions —
//! lives in `docs/PAPER_MAP.md` at the repository root.*

pub mod codec;
pub mod counter;
pub mod list;
pub mod page;

pub use codec::{Decode, Encode};
pub use counter::{IoCounters, IoSnapshot};
pub use list::{PagedList, Record};
pub use page::{PageId, PageStore, DEFAULT_PAGE_SIZE};
