//! Packed R*-tree baseline over uncertain objects.
//!
//! The paper compares the UV-index against "an index like the R-tree": a
//! packed R*-tree \[38\] over the minimum bounding rectangles of the objects'
//! uncertainty regions, 4 KB pages, fanout 100, non-leaf nodes in memory and
//! leaf nodes on disk (Section VI-A). PNN queries are answered with the
//! branch-and-prune strategy of Cheng et al. \[14\], which needs multiple
//! traversals and therefore many leaf-page reads — the effect Figure 6(b)
//! quantifies.
//!
//! The same tree also serves as a substrate for UV-index construction: seed
//! selection issues k-NN queries on it and I-pruning issues circular range
//! queries (Section IV).
//!
//! *The paper-to-code map for the whole workspace — every definition, lemma,
//! algorithm and experiment of the paper, with its module and key functions —
//! lives in `docs/PAPER_MAP.md` at the repository root.*

pub mod pnn;
pub mod query;
pub mod tree;

pub use pnn::pnn_query;
pub use tree::{RTree, RTreeConfig};
