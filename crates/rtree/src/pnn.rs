//! Branch-and-prune PNN evaluation on the R-tree (the baseline of \[14\]).
//!
//! The query proceeds in two index traversals plus verification:
//!
//! 1. **Bounding pass** — best-first traversal ordered by `distmin` of the
//!    node MBRs to establish `d_minmax`, the smallest maximum distance of any
//!    object from the query point. Nodes whose `distmin` exceeds the current
//!    bound are pruned.
//! 2. **Collection pass** — a second traversal retrieves every object whose
//!    `distmin` does not exceed `d_minmax`; all of them are possible nearest
//!    neighbours.
//! 3. **Verification** — the candidates' pdfs are fetched from the object
//!    store and their qualification probabilities are computed by numerical
//!    integration.
//!
//! The two traversals read many leaf pages, which is exactly the I/O overhead
//! the UV-index avoids (Figures 6(a)–(c)).

use crate::tree::{NodeRef, RTree};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::time::Instant;
use uv_data::{qualification_probabilities, ObjectEntry, ObjectStore, PnnAnswer, QueryBreakdown};
use uv_geom::{Point, EPS};

struct NodeByDist {
    dist: f64,
    node: NodeRef,
}
impl PartialEq for NodeByDist {
    fn eq(&self, other: &Self) -> bool {
        self.dist.total_cmp(&other.dist).is_eq()
    }
}
impl Eq for NodeByDist {}
impl PartialOrd for NodeByDist {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for NodeByDist {
    // `total_cmp` (reversed: BinaryHeap is a max-heap, the smallest distance
    // must surface first) keeps the order *total* even when a degenerate
    // geometry produces a NaN distance: NaN sorts after every finite value
    // and infinity, so it can never shadow a real node at the top of the
    // heap and silently end pass 1 with a wrong `d_minmax`. The previous
    // `partial_cmp(..).unwrap_or(Equal)` made NaN compare equal to
    // *everything*, which violates Ord's transitivity and corrupts the heap
    // order of unrelated finite entries.
    fn cmp(&self, other: &Self) -> Ordering {
        other.dist.total_cmp(&self.dist)
    }
}

/// Evaluates a PNN query at `q` with the branch-and-prune strategy.
///
/// `integration_steps` controls the numerical integration of the final
/// probability computation (the paper uses the method of \[14\]).
pub fn pnn_query(
    tree: &RTree,
    objects: &ObjectStore,
    q: Point,
    integration_steps: usize,
) -> PnnAnswer {
    let mut breakdown = QueryBreakdown::default();
    let Some(root) = tree.root() else {
        return PnnAnswer::default();
    };

    let index_io_before = tree.store().io().reads;
    let t_traversal = Instant::now();

    // ---- Pass 1: establish d_minmax -----------------------------------------
    let mut dminmax = f64::INFINITY;
    let mut heap = BinaryHeap::new();
    heap.push(NodeByDist {
        dist: tree.node_mbr(root).dist_min(q),
        node: root,
    });
    while let Some(NodeByDist { dist, node }) = heap.pop() {
        if dist > dminmax + EPS {
            break;
        }
        match node {
            NodeRef::Internal(idx) => {
                for child in &tree.internal(idx).children {
                    let d = tree.node_mbr(*child).dist_min(q);
                    if d <= dminmax + EPS {
                        heap.push(NodeByDist {
                            dist: d,
                            node: *child,
                        });
                    }
                }
            }
            NodeRef::Leaf(idx) => {
                for e in tree.leaf(idx).entries.read_all() {
                    dminmax = dminmax.min(e.dist_max(q));
                }
            }
        }
    }

    // ---- Pass 2: collect all candidates with distmin <= dminmax -------------
    let mut candidates: Vec<ObjectEntry> = Vec::new();
    if dminmax.is_finite() {
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            match node {
                NodeRef::Internal(idx) => {
                    let n = tree.internal(idx);
                    if n.mbr.dist_min(q) <= dminmax + EPS {
                        stack.extend(n.children.iter().copied());
                    }
                }
                NodeRef::Leaf(idx) => {
                    let leaf = tree.leaf(idx);
                    if leaf.mbr.dist_min(q) > dminmax + EPS {
                        continue;
                    }
                    for e in leaf.entries.read_all() {
                        if e.dist_min(q) <= dminmax + EPS {
                            candidates.push(e);
                        }
                    }
                }
            }
        }
    }
    breakdown.traversal = t_traversal.elapsed();
    breakdown.index_io = tree.store().io().reads - index_io_before;

    // ---- Verification: fetch pdfs and compute probabilities -----------------
    let object_io_before = objects.store().io().reads;
    let t_retrieval = Instant::now();
    let mut touched = HashSet::new();
    let fetched: Vec<_> = candidates
        .iter()
        .filter_map(|e| objects.fetch(e.id, &mut touched))
        .collect();
    breakdown.retrieval = t_retrieval.elapsed();
    breakdown.object_io = objects.store().io().reads - object_io_before;

    let t_prob = Instant::now();
    let refs: Vec<_> = fetched.iter().collect();
    let mut probabilities = qualification_probabilities(q, &refs, integration_steps);
    probabilities.retain(|(_, p)| *p > 0.0);
    breakdown.probability = t_prob.elapsed();

    PnnAnswer {
        probabilities,
        candidates_examined: candidates.len(),
        breakdown,
    }
}

/// Brute-force reference implementation: the answer set computed directly
/// from the object list (used by tests and by the UV-index correctness
/// checks). Returns the ids of all objects whose minimum distance does not
/// exceed the smallest maximum distance.
pub fn brute_force_candidates(objects: &[uv_data::UncertainObject], q: Point) -> Vec<u32> {
    let dminmax = objects
        .iter()
        .map(|o| o.dist_max(q))
        .fold(f64::INFINITY, f64::min);
    let mut ids: Vec<u32> = objects
        .iter()
        .filter(|o| o.dist_min(q) <= dminmax + EPS)
        .map(|o| o.id)
        .collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeConfig;
    use std::sync::Arc;
    use uv_data::{Dataset, GeneratorConfig, ObjectStore};
    use uv_store::PageStore;

    fn setup(n: usize) -> (Dataset, ObjectStore, RTree) {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(n));
        let pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&pages), &ds.objects);
        let tree = RTree::bulk_load(
            &ds.objects,
            &objects,
            Arc::clone(&pages),
            RTreeConfig {
                fanout: 16,
                leaf_capacity: 25,
            },
        );
        (ds, objects, tree)
    }

    #[test]
    fn answer_set_matches_brute_force() {
        let (ds, objects, tree) = setup(700);
        for q in ds.query_points(20, 9) {
            let answer = pnn_query(&tree, &objects, q, 100);
            let expected = brute_force_candidates(&ds.objects, q);
            // Every answer object must be a brute-force candidate, and every
            // candidate with non-negligible probability must be found: the
            // candidate sets are identical by construction.
            let mut got: Vec<u32> = answer.probabilities.iter().map(|(id, _)| *id).collect();
            got.sort_unstable();
            for id in &got {
                assert!(expected.contains(id), "{id} not a candidate at {q:?}");
            }
            assert_eq!(answer.candidates_examined, expected.len());
        }
    }

    #[test]
    fn probabilities_are_normalised() {
        let (ds, objects, tree) = setup(400);
        for q in ds.query_points(10, 3) {
            let answer = pnn_query(&tree, &objects, q, 200);
            let total: f64 = answer.probabilities.iter().map(|(_, p)| p).sum();
            assert!(
                (total - 1.0).abs() < 0.05,
                "probabilities sum to {total} at {q:?}"
            );
            assert!(answer.best().is_some());
        }
    }

    #[test]
    fn io_is_charged_and_grows_with_dataset() {
        let (ds_small, objects_small, tree_small) = setup(200);
        let (ds_big, objects_big, tree_big) = setup(3200);
        let avg_io = |ds: &Dataset, objects: &ObjectStore, tree: &RTree| {
            let queries = ds.query_points(20, 11);
            let mut total = 0;
            for q in queries {
                let a = pnn_query(tree, objects, q, 50);
                total += a.breakdown.index_io;
                assert!(a.breakdown.index_io > 0, "leaf reads must be charged");
            }
            total as f64 / 20.0
        };
        let small = avg_io(&ds_small, &objects_small, &tree_small);
        let big = avg_io(&ds_big, &objects_big, &tree_big);
        assert!(
            big >= small,
            "R-tree I/O should not shrink with more objects (small {small}, big {big})"
        );
    }

    #[test]
    fn empty_tree_returns_empty_answer() {
        let pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&pages), &[]);
        let tree = RTree::build(&[], &objects, pages);
        let answer = pnn_query(&tree, &objects, Point::new(1.0, 1.0), 50);
        assert!(answer.probabilities.is_empty());
        assert_eq!(answer.candidates_examined, 0);
    }

    #[test]
    fn single_object_always_answers_with_probability_one() {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(1));
        let pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&pages), &ds.objects);
        let tree = RTree::build(&ds.objects, &objects, pages);
        let answer = pnn_query(&tree, &objects, Point::new(9000.0, 200.0), 50);
        assert_eq!(answer.probabilities, vec![(0, 1.0)]);
    }

    #[test]
    fn coincident_objects_keep_the_heap_order_total() {
        // Eight co-located objects produce exact distance ties on every heap
        // comparison; the totally-ordered comparator must keep both passes
        // deterministic and the candidate set complete.
        let pages = Arc::new(PageStore::new());
        let mut objs: Vec<uv_data::UncertainObject> = (0..8)
            .map(|i| uv_data::UncertainObject::with_uniform(i, Point::new(500.0, 500.0), 10.0))
            .collect();
        objs.push(uv_data::UncertainObject::with_uniform(
            8,
            Point::new(900.0, 500.0),
            10.0,
        ));
        let objects = ObjectStore::build(Arc::clone(&pages), &objs);
        let tree = RTree::build(&objs, &objects, pages);
        let q = Point::new(500.0, 480.0);
        let answer = pnn_query(&tree, &objects, q, 60);
        assert_eq!(
            answer.candidates_examined, 8,
            "all co-located are candidates"
        );
        assert_eq!(answer.answer_ids(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn nan_distances_order_deterministically_in_the_heap() {
        // Regression for `partial_cmp(..).unwrap_or(Equal)`: a NaN distance
        // compared *equal to everything*, which violates Ord's transitivity —
        // `BinaryHeap` then gives no ordering guarantee at all, so pass 1
        // could pop nodes out of distance order and terminate with a wrong
        // `d_minmax`. Under `total_cmp` the order is total: NaN sorts after
        // +∞ and the finite pop order is exact.
        let mut heap = BinaryHeap::new();
        for dist in [f64::NAN, 1.0, f64::INFINITY, 0.5, f64::NAN, 2.0] {
            heap.push(NodeByDist {
                dist,
                node: NodeRef::Leaf(0),
            });
        }
        let popped: Vec<f64> = std::iter::from_fn(|| heap.pop().map(|n| n.dist)).collect();
        assert_eq!(&popped[..4], &[0.5, 1.0, 2.0, f64::INFINITY]);
        assert!(popped[4].is_nan() && popped[5].is_nan());
    }

    #[test]
    fn degenerate_nan_object_no_longer_panics_build_or_queries() {
        // An object with a NaN coordinate used to panic the bulk-load
        // coordinate sorts (`partial_cmp().unwrap()`); it must now flow
        // through construction and both query passes without disturbing
        // the heap order of the finite objects.
        let pages = Arc::new(PageStore::new());
        let mut objs: Vec<uv_data::UncertainObject> = (0..6)
            .map(|i| {
                uv_data::UncertainObject::with_uniform(
                    i,
                    Point::new(100.0 + 150.0 * i as f64, 400.0),
                    10.0,
                )
            })
            .collect();
        objs.push(uv_data::UncertainObject::with_uniform(
            6,
            Point::new(f64::NAN, f64::NAN),
            10.0,
        ));
        let objects = ObjectStore::build(Arc::clone(&pages), &objs);
        let tree = RTree::build(&objs, &objects, pages); // used to panic here
        let q = Point::new(110.0, 400.0);

        // Both passes terminate; any probability that survives the positive
        // filter is finite.
        let answer = pnn_query(&tree, &objects, q, 60);
        assert!(answer
            .probabilities
            .iter()
            .all(|(_, p)| p.is_finite() && *p > 0.0));

        // knn with the degenerate object excluded orders the finite objects
        // exactly as brute force would.
        let got: Vec<u32> = tree.knn(q, 3, Some(6)).into_iter().map(|e| e.id).collect();
        assert_eq!(&got[..], &[0, 1, 2][..]);
    }

    #[test]
    fn breakdown_components_are_populated() {
        let (ds, objects, tree) = setup(500);
        let q = ds.query_points(1, 5)[0];
        let answer = pnn_query(&tree, &objects, q, 200);
        let b = answer.breakdown;
        assert!(b.total_io() >= 1);
        assert!(b.total_time() >= b.probability);
        // Object retrieval must have touched at least one object page.
        assert!(b.object_io >= 1);
    }
}
