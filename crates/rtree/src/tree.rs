//! The packed R-tree structure and its bulk-load construction.
//!
//! Construction uses Sort-Tile-Recursive (STR) packing: entries are sorted by
//! the x coordinate of their region centres, cut into vertical slices, sorted
//! by y within each slice and packed into full leaves. Leaves are written to
//! disk pages; the internal levels (fanout 100 by default) stay in memory,
//! matching the experimental setup of the paper.

use std::io::{self, Read, Write};
use std::sync::Arc;
use uv_data::{ObjectEntry, ObjectStore, UncertainObject};
use uv_geom::Rect;
use uv_store::codec::{corrupt, Decode, Encode};
use uv_store::{PageStore, PagedList};

/// Construction parameters of the R-tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeConfig {
    /// Maximum number of children of an internal node (the paper uses 100).
    pub fanout: usize,
    /// Maximum number of object entries per leaf page. Defaults to as many
    /// `<ID, MBC, pointer>` tuples as fit a 4 KB page, capped at `fanout`.
    pub leaf_capacity: usize,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self {
            fanout: 100,
            leaf_capacity: 100,
        }
    }
}

/// Reference to a child of an internal node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// Index into the internal-node table of the tree.
    Internal(u32),
    /// Index into the leaf table of the tree.
    Leaf(u32),
}

/// In-memory internal node.
#[derive(Debug, Clone)]
pub struct InternalNode {
    pub mbr: Rect,
    pub children: Vec<NodeRef>,
}

/// Metadata of a disk-resident leaf node.
#[derive(Debug, Clone)]
pub struct LeafNode {
    pub mbr: Rect,
    /// Entries of the leaf, stored on (exactly one, by construction) page.
    pub entries: PagedList<ObjectEntry>,
    pub count: usize,
}

/// A packed R-tree over uncertain objects.
#[derive(Debug)]
pub struct RTree {
    config: RTreeConfig,
    store: Arc<PageStore>,
    internal_nodes: Vec<InternalNode>,
    leaves: Vec<LeafNode>,
    root: Option<NodeRef>,
    height: usize,
    len: usize,
}

impl RTree {
    /// Bulk-loads an R-tree over `objects`, storing leaf pages in `store` and
    /// taking the object-record pointers from `object_store`.
    pub fn bulk_load(
        objects: &[UncertainObject],
        object_store: &ObjectStore,
        store: Arc<PageStore>,
        config: RTreeConfig,
    ) -> Self {
        let entries: Vec<ObjectEntry> = objects
            .iter()
            .map(|o| ObjectEntry::new(o, object_store.ptr_of(o.id)))
            .collect();
        Self::bulk_load_entries(entries, store, config)
    }

    /// Bulk-loads an *index-only* R-tree: leaf entries carry the null record
    /// pointer (`0`) instead of an [`ObjectStore`] offset, so the tree needs
    /// no object pages at all. Geometry queries (`knn`, range) are identical
    /// to [`RTree::bulk_load`] over the same objects — only record retrieval
    /// through the pointers is unavailable. Used by derivation-only services
    /// that never dereference leaf pointers.
    pub fn build_index_only(objects: &[UncertainObject], store: Arc<PageStore>) -> Self {
        let entries: Vec<ObjectEntry> = objects.iter().map(|o| ObjectEntry::new(o, 0)).collect();
        Self::bulk_load_entries(entries, store, RTreeConfig::default())
    }

    fn bulk_load_entries(
        mut entries: Vec<ObjectEntry>,
        store: Arc<PageStore>,
        config: RTreeConfig,
    ) -> Self {
        assert!(config.fanout >= 2, "fanout must be at least 2");
        assert!(config.leaf_capacity >= 1, "leaf capacity must be positive");

        let mut tree = Self {
            config,
            store: Arc::clone(&store),
            internal_nodes: Vec::new(),
            leaves: Vec::new(),
            root: None,
            height: 0,
            len: entries.len(),
        };
        if entries.is_empty() {
            return tree;
        }

        // --- STR leaf packing -------------------------------------------------
        let leaf_cap = config.leaf_capacity;
        let num_leaves = entries.len().div_ceil(leaf_cap);
        let slices = (num_leaves as f64).sqrt().ceil() as usize;
        let slice_size = entries.len().div_ceil(slices);

        entries.sort_by(|a, b| a.mbc.center.x.total_cmp(&b.mbc.center.x));
        let mut leaf_refs: Vec<NodeRef> = Vec::with_capacity(num_leaves);
        for slice in entries.chunks_mut(slice_size.max(1)) {
            slice.sort_by(|a, b| a.mbc.center.y.total_cmp(&b.mbc.center.y));
            for group in slice.chunks(leaf_cap) {
                let mut mbr = Rect::empty();
                let mut list = PagedList::new(Arc::clone(&store));
                for e in group {
                    mbr = mbr.union(&e.mbc.mbr());
                    list.push(*e);
                }
                list.seal();
                let idx = tree.leaves.len() as u32;
                tree.leaves.push(LeafNode {
                    mbr,
                    entries: list,
                    count: group.len(),
                });
                leaf_refs.push(NodeRef::Leaf(idx));
            }
        }

        // --- Pack upper levels ------------------------------------------------
        let mut level: Vec<NodeRef> = leaf_refs;
        let mut height = 1;
        while level.len() > 1 {
            let mut next: Vec<NodeRef> = Vec::with_capacity(level.len().div_ceil(config.fanout));
            for group in level.chunks(config.fanout) {
                let mbr = group
                    .iter()
                    .fold(Rect::empty(), |acc, r| acc.union(&tree.node_mbr(*r)));
                let idx = tree.internal_nodes.len() as u32;
                tree.internal_nodes.push(InternalNode {
                    mbr,
                    children: group.to_vec(),
                });
                next.push(NodeRef::Internal(idx));
            }
            level = next;
            height += 1;
        }
        tree.root = Some(level[0]);
        tree.height = height;
        tree
    }

    /// Convenience constructor with the default configuration.
    pub fn build(
        objects: &[UncertainObject],
        object_store: &ObjectStore,
        store: Arc<PageStore>,
    ) -> Self {
        Self::bulk_load(objects, object_store, store, RTreeConfig::default())
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the tree indexes no objects.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = a single leaf level).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of leaf nodes (each occupying one disk page).
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Number of memory-resident internal nodes.
    pub fn num_internal_nodes(&self) -> usize {
        self.internal_nodes.len()
    }

    /// The backing page store (for I/O accounting).
    pub fn store(&self) -> &Arc<PageStore> {
        &self.store
    }

    /// Root reference, if the tree is non-empty.
    pub(crate) fn root(&self) -> Option<NodeRef> {
        self.root
    }

    /// Construction configuration.
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    pub(crate) fn internal(&self, idx: u32) -> &InternalNode {
        &self.internal_nodes[idx as usize]
    }

    pub(crate) fn leaf(&self, idx: u32) -> &LeafNode {
        &self.leaves[idx as usize]
    }

    /// MBR of any node reference.
    pub(crate) fn node_mbr(&self, node: NodeRef) -> Rect {
        match node {
            NodeRef::Internal(i) => self.internal_nodes[i as usize].mbr,
            NodeRef::Leaf(i) => self.leaves[i as usize].mbr,
        }
    }

    /// Writes the persistent state of the packed tree: configuration, the
    /// memory-resident internal levels and the leaf metadata (MBR, count and
    /// the page-list state indexing into the backing [`PageStore`], which is
    /// persisted separately).
    pub fn write_state<W: Write + ?Sized>(&self, w: &mut W) -> io::Result<()> {
        (self.config.fanout as u64).write_to(w)?;
        (self.config.leaf_capacity as u64).write_to(w)?;
        (self.len as u64).write_to(w)?;
        (self.height as u64).write_to(w)?;
        self.root.map(encode_node_ref).write_to(w)?;
        self.internal_nodes.len().write_to(w)?;
        for node in &self.internal_nodes {
            node.mbr.write_to(w)?;
            let children: Vec<(u8, u32)> =
                node.children.iter().copied().map(encode_node_ref).collect();
            children.write_to(w)?;
        }
        self.leaves.len().write_to(w)?;
        for leaf in &self.leaves {
            leaf.mbr.write_to(w)?;
            (leaf.count as u64).write_to(w)?;
            leaf.entries.write_state(w)?;
        }
        Ok(())
    }

    /// Reconstructs a tree from its persisted state over an already-loaded
    /// page `store`. Every node reference is validated, so a corrupted
    /// snapshot surfaces as an error instead of an out-of-bounds panic
    /// during a later query.
    pub fn read_state<R: Read + ?Sized>(store: Arc<PageStore>, r: &mut R) -> io::Result<Self> {
        let fanout = u64::read_from(r)? as usize;
        let leaf_capacity = u64::read_from(r)? as usize;
        if fanout < 2 || leaf_capacity < 1 {
            return Err(corrupt(format!(
                "implausible R-tree configuration: fanout {fanout}, leaf capacity {leaf_capacity}"
            )));
        }
        let len = u64::read_from(r)? as usize;
        let height = u64::read_from(r)? as usize;
        let root = Option::<(u8, u32)>::read_from(r)?
            .map(decode_node_ref)
            .transpose()?;
        let num_internal = usize::read_from(r)?;
        let mut internal_nodes = Vec::with_capacity(num_internal.min(4_096));
        let mut raw_children: Vec<Vec<(u8, u32)>> = Vec::with_capacity(num_internal.min(4_096));
        for _ in 0..num_internal {
            let mbr = Rect::read_from(r)?;
            raw_children.push(Vec::read_from(r)?);
            internal_nodes.push(InternalNode {
                mbr,
                children: Vec::new(),
            });
        }
        let num_leaves = usize::read_from(r)?;
        let mut leaves = Vec::with_capacity(num_leaves.min(4_096));
        for _ in 0..num_leaves {
            let mbr = Rect::read_from(r)?;
            let count = u64::read_from(r)? as usize;
            let entries = PagedList::read_state(Arc::clone(&store), r)?;
            leaves.push(LeafNode {
                mbr,
                entries,
                count,
            });
        }
        let (n_internal, n_leaves) = (internal_nodes.len(), leaves.len());
        let check = move |node: NodeRef| match node {
            NodeRef::Internal(i) if (i as usize) < n_internal => Ok(node),
            NodeRef::Leaf(i) if (i as usize) < n_leaves => Ok(node),
            _ => Err(corrupt(format!("node reference {node:?} out of range"))),
        };
        for (node, raw) in internal_nodes.iter_mut().zip(raw_children) {
            node.children = raw
                .into_iter()
                .map(|raw| decode_node_ref(raw).and_then(check))
                .collect::<io::Result<Vec<_>>>()?;
        }
        let root = root.map(check).transpose()?;
        if root.is_none() && (len > 0 || !leaves.is_empty()) {
            return Err(corrupt("non-empty tree without a root"));
        }
        Ok(Self {
            config: RTreeConfig {
                fanout,
                leaf_capacity,
            },
            store,
            internal_nodes,
            leaves,
            root,
            height,
            len,
        })
    }
}

fn encode_node_ref(node: NodeRef) -> (u8, u32) {
    match node {
        NodeRef::Internal(i) => (0, i),
        NodeRef::Leaf(i) => (1, i),
    }
}

fn decode_node_ref((tag, idx): (u8, u32)) -> io::Result<NodeRef> {
    match tag {
        0 => Ok(NodeRef::Internal(idx)),
        1 => Ok(NodeRef::Leaf(idx)),
        other => Err(corrupt(format!("invalid node-reference tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uv_data::{Dataset, GeneratorConfig};
    use uv_geom::Point;

    fn build_tree(n: usize) -> (Dataset, ObjectStore, RTree) {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(n));
        let pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&pages), &ds.objects);
        let tree = RTree::build(&ds.objects, &objects, Arc::clone(&pages));
        (ds, objects, tree)
    }

    #[test]
    fn bulk_load_packs_all_objects() {
        let (ds, _, tree) = build_tree(537);
        assert_eq!(tree.len(), 537);
        assert!(!tree.is_empty());
        // 537 objects at 100 per leaf -> 6 leaves, one internal level.
        assert_eq!(tree.num_leaves(), 6);
        assert_eq!(tree.height(), 2);
        assert!(tree.num_internal_nodes() >= 1);
        // Every leaf MBR lies inside the root MBR and inside the domain.
        let root_mbr = tree.node_mbr(tree.root().unwrap());
        for leaf in &tree.leaves {
            assert!(root_mbr.contains_rect(&leaf.mbr));
            assert!(ds.domain.contains_rect(&leaf.mbr));
        }
    }

    #[test]
    fn empty_tree() {
        let pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&pages), &[]);
        let tree = RTree::build(&[], &objects, pages);
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        assert!(tree.root().is_none());
    }

    #[test]
    fn single_leaf_tree() {
        let (_, _, tree) = build_tree(40);
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.num_internal_nodes(), 0);
        assert!(matches!(tree.root(), Some(NodeRef::Leaf(0))));
    }

    #[test]
    fn leaf_mbrs_cover_their_entries() {
        let (_, _, tree) = build_tree(260);
        for leaf in &tree.leaves {
            assert_eq!(leaf.count, leaf.entries.len());
            for e in leaf.entries.read_all_uncounted() {
                assert!(leaf.mbr.contains_rect(&e.mbc.mbr()));
            }
        }
    }

    #[test]
    fn fanout_is_respected() {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(1000));
        let pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&pages), &ds.objects);
        let config = RTreeConfig {
            fanout: 4,
            leaf_capacity: 10,
        };
        let tree = RTree::bulk_load(&ds.objects, &objects, pages, config);
        assert_eq!(tree.num_leaves(), 100);
        for node in &tree.internal_nodes {
            assert!(node.children.len() <= 4);
            assert!(!node.children.is_empty());
            for child in &node.children {
                assert!(node.mbr.contains_rect(&tree.node_mbr(*child)));
            }
        }
        assert!(tree.height() >= 4); // 100 leaves with fanout 4 -> at least 4 levels
    }

    #[test]
    fn every_object_is_stored_exactly_once() {
        let (ds, _, tree) = build_tree(123);
        let mut seen = vec![0u32; ds.len()];
        for leaf in &tree.leaves {
            for e in leaf.entries.read_all_uncounted() {
                seen[e.id as usize] += 1;
            }
        }
        assert!(seen.iter().all(|c| *c == 1));
    }

    #[test]
    fn state_roundtrip_preserves_structure_and_queries() {
        let (ds, _, tree) = build_tree(537);
        // Round-trip the page store and the tree state.
        let pages: PageStore =
            uv_store::codec::from_bytes(&uv_store::codec::to_bytes(&**tree.store())).unwrap();
        let pages = Arc::new(pages);
        let mut state = Vec::new();
        tree.write_state(&mut state).unwrap();
        let back = RTree::read_state(Arc::clone(&pages), &mut state.as_slice()).unwrap();

        assert_eq!(back.len(), tree.len());
        assert_eq!(back.height(), tree.height());
        assert_eq!(back.num_leaves(), tree.num_leaves());
        assert_eq!(back.num_internal_nodes(), tree.num_internal_nodes());
        assert_eq!(back.config(), tree.config());
        // Canonical k-NN answers are bit-identical.
        for q in ds.query_points(10, 5) {
            let a: Vec<u32> = tree.knn(q, 12, None).into_iter().map(|e| e.id).collect();
            let b: Vec<u32> = back.knn(q, 12, None).into_iter().map(|e| e.id).collect();
            assert_eq!(a, b, "knn diverged at {q:?}");
        }

        // Corrupted node references are rejected, not panicked on.
        let mut bad = state.clone();
        // The root reference tag sits after fanout+capacity+len+height
        // (4 u64) and the Option presence byte.
        assert_eq!(bad[32], 1, "root Option must be present");
        bad[33] = 7; // invalid tag
        assert!(RTree::read_state(Arc::clone(&pages), &mut bad.as_slice()).is_err());

        // An empty tree round-trips too.
        let empty_pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&empty_pages), &[]);
        let empty = RTree::build(&[], &objects, Arc::clone(&empty_pages));
        let mut state = Vec::new();
        empty.write_state(&mut state).unwrap();
        let back = RTree::read_state(empty_pages, &mut state.as_slice()).unwrap();
        assert!(back.is_empty());
        assert!(back.root().is_none());
    }

    #[test]
    fn index_only_tree_answers_knn_identically_with_null_pointers() {
        let (ds, _, tree) = build_tree(537);
        let slim = RTree::build_index_only(&ds.objects, Arc::new(PageStore::new()));
        assert_eq!(slim.len(), tree.len());
        assert_eq!(slim.num_leaves(), tree.num_leaves());
        for leaf in &slim.leaves {
            for e in leaf.entries.read_all_uncounted() {
                assert_eq!(e.ptr, 0, "index-only entries must carry the null pointer");
            }
        }
        for q in ds.query_points(10, 11) {
            let a: Vec<u32> = tree.knn(q, 12, None).into_iter().map(|e| e.id).collect();
            let b: Vec<u32> = slim.knn(q, 12, None).into_iter().map(|e| e.id).collect();
            assert_eq!(a, b, "index-only knn diverged at {q:?}");
        }
    }

    #[test]
    fn entries_keep_object_geometry() {
        let (ds, _, tree) = build_tree(60);
        let q = Point::new(5000.0, 5000.0);
        for leaf in &tree.leaves {
            for e in leaf.entries.read_all_uncounted() {
                let o = &ds.objects[e.id as usize];
                assert_eq!(e.mbc, o.mbc());
                assert!((e.dist_min(q) - o.dist_min(q)).abs() < 1e-12);
                assert!((e.dist_max(q) - o.dist_max(q)).abs() < 1e-12);
            }
        }
    }
}
