//! Range and k-nearest-neighbour queries on the R-tree.
//!
//! These are both substrate operations for UV-index construction: seed
//! selection (Section IV-B) issues a k-NN query around the object centre,
//! and I-pruning (Section IV-C) issues a circular range query with radius
//! `2d - r_i`.

use crate::tree::{NodeRef, RTree};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use uv_data::ObjectEntry;
use uv_geom::{Point, EPS};

/// Min-heap entry ordered by a non-NaN distance.
struct HeapItem {
    dist: f64,
    payload: HeapPayload,
}

enum HeapPayload {
    Node(NodeRef),
    Entry(ObjectEntry),
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist.total_cmp(&other.dist).is_eq()
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse via `total_cmp`: BinaryHeap is a max-heap, we need the
        // smallest distance on top — and the order must stay total when a
        // degenerate geometry yields a NaN distance (NaN sorts last, so it
        // can never displace a finite candidate; `partial_cmp(..)
        // .unwrap_or(Equal)` made NaN equal to everything, breaking
        // transitivity and with it the heap invariant).
        other.dist.total_cmp(&self.dist)
    }
}

impl RTree {
    /// Returns every entry whose uncertainty region intersects the disk
    /// `Cir(center, radius)`. Leaf-page reads are charged to the store's I/O
    /// counters.
    pub fn range_circle(&self, center: Point, radius: f64) -> Vec<ObjectEntry> {
        let mut result = Vec::new();
        let Some(root) = self.root() else {
            return result;
        };
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            match node {
                NodeRef::Internal(idx) => {
                    let n = self.internal(idx);
                    if n.mbr.dist_min(center) <= radius + EPS {
                        stack.extend(n.children.iter().copied());
                    }
                }
                NodeRef::Leaf(idx) => {
                    let leaf = self.leaf(idx);
                    if leaf.mbr.dist_min(center) > radius + EPS {
                        continue;
                    }
                    for e in leaf.entries.read_all() {
                        if e.mbc.dist_min(center) <= radius + EPS {
                            result.push(e);
                        }
                    }
                }
            }
        }
        result
    }

    /// Returns every entry whose region *centre* lies inside the disk — the
    /// filter step used by I-pruning (Lemma 2 tests `c_j \notin C_out`).
    pub fn range_circle_centers(&self, center: Point, radius: f64) -> Vec<ObjectEntry> {
        self.range_circle(center, radius)
            .into_iter()
            .filter(|e| e.mbc.center.dist(center) <= radius + EPS)
            .collect()
    }

    /// Best-first k-nearest-neighbour query: the `k` entries whose
    /// uncertainty regions have the smallest minimum distance from `q`
    /// (Section IV-B seed selection). An optional `exclude` id is skipped
    /// (the query object itself).
    ///
    /// The result is *canonical*: entries come back sorted by
    /// `(dist_min, id)`, and ties at the k-th distance are resolved by the
    /// smaller id. This makes the answer a pure function of the object
    /// geometry, independent of how the tree happens to be packed — which the
    /// dynamic UV-index maintenance relies on (it rebuilds the packed tree on
    /// every update batch and must get bit-identical seed selections for
    /// unaffected objects).
    pub fn knn(&self, q: Point, k: usize, exclude: Option<u32>) -> Vec<ObjectEntry> {
        if k == 0 {
            return Vec::new();
        }
        let Some(root) = self.root() else {
            return Vec::new();
        };
        // Best-first traversal collecting every entry whose distance is at
        // most the k-th smallest seen so far (popped distances are
        // non-decreasing, so once `k` entries are collected the k-th of them
        // is the true k-th distance and anything strictly farther can stop
        // the search).
        let mut collected: Vec<(f64, ObjectEntry)> = Vec::with_capacity(k + 4);
        let mut kth = f64::INFINITY;
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        heap.push(HeapItem {
            dist: self.node_mbr(root).dist_min(q),
            payload: HeapPayload::Node(root),
        });
        while let Some(item) = heap.pop() {
            if item.dist > kth {
                break;
            }
            match item.payload {
                HeapPayload::Node(NodeRef::Internal(idx)) => {
                    for child in &self.internal(idx).children {
                        heap.push(HeapItem {
                            dist: self.node_mbr(*child).dist_min(q),
                            payload: HeapPayload::Node(*child),
                        });
                    }
                }
                HeapPayload::Node(NodeRef::Leaf(idx)) => {
                    for e in self.leaf(idx).entries.read_all() {
                        if Some(e.id) == exclude {
                            continue;
                        }
                        heap.push(HeapItem {
                            dist: e.dist_min(q),
                            payload: HeapPayload::Entry(e),
                        });
                    }
                }
                HeapPayload::Entry(e) => {
                    collected.push((item.dist, e));
                    if collected.len() == k {
                        kth = item.dist;
                    }
                }
            }
        }
        collected.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.id.cmp(&b.1.id)));
        collected.truncate(k);
        collected.into_iter().map(|(_, e)| e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeConfig;
    use std::sync::Arc;
    use uv_data::{Dataset, GeneratorConfig, ObjectStore, UncertainObject};
    use uv_store::PageStore;

    fn build(n: usize) -> (Dataset, RTree) {
        let ds = Dataset::generate(GeneratorConfig::paper_uniform(n));
        let pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&pages), &ds.objects);
        let tree = RTree::bulk_load(
            &ds.objects,
            &objects,
            pages,
            RTreeConfig {
                fanout: 16,
                leaf_capacity: 25,
            },
        );
        (ds, tree)
    }

    fn brute_range(
        objects: &[UncertainObject],
        center: Point,
        radius: f64,
    ) -> Vec<&UncertainObject> {
        objects
            .iter()
            .filter(|o| o.dist_min(center) <= radius + EPS)
            .collect()
    }

    #[test]
    fn range_circle_matches_brute_force() {
        let (ds, tree) = build(800);
        for (center, radius) in [
            (Point::new(5000.0, 5000.0), 500.0),
            (Point::new(100.0, 9000.0), 1500.0),
            (Point::new(9999.0, 1.0), 50.0),
        ] {
            let mut got: Vec<u32> = tree
                .range_circle(center, radius)
                .into_iter()
                .map(|e| e.id)
                .collect();
            got.sort_unstable();
            let mut expected: Vec<u32> = brute_range(&ds.objects, center, radius)
                .into_iter()
                .map(|o| o.id)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "range mismatch at {center:?} r={radius}");
        }
    }

    #[test]
    fn range_circle_charges_leaf_io() {
        let (_, tree) = build(500);
        tree.store().reset_io();
        let center = Point::new(5000.0, 5000.0);
        tree.range_circle(center, 2000.0);
        let io_small = tree.store().io().reads;
        assert!(io_small > 0);
        tree.store().reset_io();
        tree.range_circle(center, 8000.0);
        let io_large = tree.store().io().reads;
        assert!(
            io_large >= io_small,
            "larger range should not read fewer pages"
        );
        assert!(io_large as usize <= tree.num_leaves());
    }

    #[test]
    fn range_centers_filters_by_center() {
        let (ds, tree) = build(400);
        let center = Point::new(4000.0, 4000.0);
        let radius = 1000.0;
        let got: Vec<u32> = tree
            .range_circle_centers(center, radius)
            .into_iter()
            .map(|e| e.id)
            .collect();
        for id in &got {
            assert!(ds.objects[*id as usize].center().dist(center) <= radius + EPS);
        }
        // Every object whose centre is inside must be present.
        let expected = ds
            .objects
            .iter()
            .filter(|o| o.center().dist(center) <= radius)
            .count();
        assert_eq!(got.len(), expected);
    }

    #[test]
    fn knn_matches_brute_force_ordering() {
        let (ds, tree) = build(600);
        let q = Point::new(3333.0, 7777.0);
        for k in [1, 5, 17, 60] {
            let got: Vec<u32> = tree.knn(q, k, None).into_iter().map(|e| e.id).collect();
            assert_eq!(got.len(), k);
            let mut all: Vec<(f64, u32)> =
                ds.objects.iter().map(|o| (o.dist_min(q), o.id)).collect();
            all.sort_by(|a, b| a.0.total_cmp(&b.0));
            let kth_dist = all[k - 1].0;
            // Every returned object must be within the k-th smallest distance
            // (ties make exact id comparison fragile).
            for id in &got {
                assert!(ds.objects[*id as usize].dist_min(q) <= kth_dist + EPS);
            }
        }
    }

    #[test]
    fn knn_is_canonical_sorted_with_id_tie_breaks() {
        // Co-located objects produce exact distance ties; the result must be
        // sorted by (dist, id) and resolve boundary ties to smaller ids so
        // the answer is a pure function of the geometry, not the packing.
        let pages = Arc::new(PageStore::new());
        let mut objects: Vec<UncertainObject> = (0..8u32)
            .map(|i| UncertainObject::with_uniform(i, Point::new(100.0, 100.0), 5.0))
            .collect();
        objects.push(UncertainObject::with_uniform(
            8,
            Point::new(300.0, 100.0),
            5.0,
        ));
        let store = ObjectStore::build(Arc::clone(&pages), &objects);
        let tree = RTree::build(&objects, &store, pages);
        let q = Point::new(100.0, 100.0);
        // k = 4 cuts through an 8-way tie: the four smallest ids win.
        let got: Vec<u32> = tree.knn(q, 4, None).into_iter().map(|e| e.id).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        // With an excluded id the tie resolves to the next smallest ids.
        let got: Vec<u32> = tree.knn(q, 4, Some(1)).into_iter().map(|e| e.id).collect();
        assert_eq!(got, vec![0, 2, 3, 4]);
        // A full query is globally sorted by (dist, id).
        let all: Vec<u32> = tree.knn(q, 9, None).into_iter().map(|e| e.id).collect();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn knn_excludes_requested_id_and_handles_small_trees() {
        let (_, tree) = build(30);
        let q = Point::new(5000.0, 5000.0);
        let all = tree.knn(q, 40, None);
        assert_eq!(all.len(), 30); // k larger than the dataset
        let nearest = all[0].id;
        let excluded = tree.knn(q, 40, Some(nearest));
        assert_eq!(excluded.len(), 29);
        assert!(excluded.iter().all(|e| e.id != nearest));
        assert!(tree.knn(q, 0, None).is_empty());
    }

    #[test]
    fn queries_on_empty_tree() {
        let pages = Arc::new(PageStore::new());
        let objects = ObjectStore::build(Arc::clone(&pages), &[]);
        let tree = RTree::build(&[], &objects, pages);
        assert!(tree.range_circle(Point::origin(), 100.0).is_empty());
        assert!(tree.knn(Point::origin(), 5, None).is_empty());
    }
}
