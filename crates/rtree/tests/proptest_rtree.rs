//! Property-based tests of the R-tree: range, k-NN and PNN queries agree
//! with brute force on arbitrary object layouts.

use proptest::prelude::*;
use std::sync::Arc;
use uv_data::{ObjectStore, UncertainObject};
use uv_geom::Point;
use uv_rtree::{pnn_query, RTree, RTreeConfig};
use uv_store::PageStore;

fn objects_strategy(max: usize) -> impl Strategy<Value = Vec<UncertainObject>> {
    prop::collection::vec((0.0..1000.0f64, 0.0..1000.0f64, 0.0..30.0f64), 1..max).prop_map(
        |specs| {
            specs
                .into_iter()
                .enumerate()
                .map(|(i, (x, y, r))| UncertainObject::with_uniform(i as u32, Point::new(x, y), r))
                .collect()
        },
    )
}

fn build(objects: &[UncertainObject]) -> (ObjectStore, RTree) {
    let pages = Arc::new(PageStore::new());
    let store = ObjectStore::build(Arc::clone(&pages), objects);
    let tree = RTree::bulk_load(
        objects,
        &store,
        pages,
        RTreeConfig {
            fanout: 4,
            leaf_capacity: 5,
        },
    );
    (store, tree)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Circular range queries return exactly the brute-force result set.
    #[test]
    fn range_circle_matches_brute_force(
        objects in objects_strategy(60),
        qx in 0.0..1000.0f64,
        qy in 0.0..1000.0f64,
        radius in 0.0..600.0f64,
    ) {
        let (_, tree) = build(&objects);
        let q = Point::new(qx, qy);
        let mut got: Vec<u32> = tree.range_circle(q, radius).into_iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut expected: Vec<u32> = objects
            .iter()
            .filter(|o| o.dist_min(q) <= radius + 1e-9)
            .map(|o| o.id)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// k-NN results are exactly the k closest objects by minimum distance
    /// (up to ties on the k-th distance).
    #[test]
    fn knn_matches_brute_force(
        objects in objects_strategy(60),
        qx in 0.0..1000.0f64,
        qy in 0.0..1000.0f64,
        k in 1usize..20,
    ) {
        let (_, tree) = build(&objects);
        let q = Point::new(qx, qy);
        let got = tree.knn(q, k, None);
        prop_assert_eq!(got.len(), k.min(objects.len()));
        let mut dists: Vec<f64> = objects.iter().map(|o| o.dist_min(q)).collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        let kth = dists[got.len() - 1];
        for e in &got {
            prop_assert!(e.dist_min(q) <= kth + 1e-9);
        }
    }

    /// The branch-and-prune PNN answer objects are always legal candidates
    /// and the minimum-distmax object is always among them.
    #[test]
    fn pnn_answers_are_candidates(
        objects in objects_strategy(40),
        qx in 0.0..1000.0f64,
        qy in 0.0..1000.0f64,
    ) {
        let (store, tree) = build(&objects);
        let q = Point::new(qx, qy);
        let answer = pnn_query(&tree, &store, q, 60);
        let dminmax = objects.iter().map(|o| o.dist_max(q)).fold(f64::INFINITY, f64::min);
        prop_assert!(!answer.probabilities.is_empty());
        for id in answer.answer_ids() {
            let o = &objects[id as usize];
            prop_assert!(o.dist_min(q) <= dminmax + 1e-9, "object {id} cannot be an answer");
        }
    }
}
