//! Churn experiment (beyond the paper): dynamic maintenance under a live
//! workload of joins, leaves and moves.
//!
//! Every step applies a batch of update operations equal to 1% of the
//! dataset (the *churn rate*) through [`UvSystem::apply`] and records the
//! [`uv_core::UpdateStats`] locality counters: how many leaf page lists the
//! localized repair rewrote versus the leaf count a full rebuild would
//! rewrite. The final state is verified bit-identical against a cold
//! rebuild — the same oracle the property tests enforce.
//!
//! The configuration is the *dynamic-serving* tuning: a seed-selection `k`
//! proportionate to the dataset (the paper's 300 targets 10K–80K objects;
//! pruning stays sound for any `k`) and a small leaf split capacity, which
//! trades non-leaf memory for smaller, more local leaves.
//!
//! With `grow` set (the `--grow` flag of the experiments binary), every
//! batch additionally inserts one object just beyond the current domain, so
//! every step exercises in-place exponential domain growth — the costliest
//! repair the maintenance layer has, since growth re-derives the whole
//! object set into the live index (the domain seeds every derivation).
//! Because each step pays that same derivation-dominated cost, the run
//! demonstrates the absence of a rebuild-latency cliff: the slowest step
//! stays within a small factor (~3x) of the median at a fixed seed.

use crate::workload::ExperimentScale;
use std::time::Instant;
use uv_core::{Method, UpdateBatch, UpdateStats, UvConfig, UvSystem};
use uv_data::{Dataset, GeneratorConfig, UncertainObject};
use uv_geom::Point;

/// Per-step measurements of the churn run.
#[derive(Debug, Clone)]
pub struct ChurnRow {
    /// Step number (1-based).
    pub step: usize,
    /// Update statistics of the applied batch.
    pub stats: UpdateStats,
    /// Wall-clock time of the incremental apply in milliseconds.
    pub apply_ms: f64,
}

/// Summary of the whole churn run.
#[derive(Debug, Clone)]
pub struct ChurnSummary {
    /// Objects at the start of the run.
    pub initial_objects: usize,
    /// Operations per step (1% of the dataset, at least 3).
    pub ops_per_step: usize,
    /// Average fraction of leaves refined per step.
    pub avg_refine_fraction: f64,
    /// Total incremental apply time in milliseconds.
    pub incremental_ms: f64,
    /// Wall-clock time of one cold full rebuild of the final state, for
    /// comparison, in milliseconds.
    pub rebuild_ms: f64,
    /// Steps whose batch grew the domain in place (nonzero only in `--grow`
    /// runs, where every step pushes past the current boundary).
    pub growth_events: usize,
    /// `true` when the final state was verified bit-identical to the cold
    /// rebuild (leaf structure and PNN answers).
    pub verified: bool,
}

/// The dynamic-serving configuration the churn workload runs under.
pub fn dynamic_config(n: usize) -> UvConfig {
    UvConfig::default()
        .with_seed_knn((n / 32).clamp(16, 300))
        // Smaller, more local leaves than the paper's one-page trigger; the
        // non-leaf budget is raised accordingly (they trade against each
        // other — a bound budget is replayed in place by the reconciliation
        // pass rather than forcing a rebuild, but a tight bound coarsens
        // the grid). Capacities far below the dataset's cell co-overlap
        // count degenerate (splits stop separating anything), so this stays
        // in the low tens.
        .with_leaf_split_capacity(12)
        .with_max_nonleaf(20_000)
}

/// Deterministic xorshift64* generator — the op mix must be reproducible at
/// a fixed seed without pulling a rand dependency into the harness.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn pick(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }

    fn coord(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() as f64 / u64::MAX as f64) * (hi - lo)
    }
}

/// One churn step: 1% of the live set as a batch of 60% moves (local GPS-fix
/// jitter), 20% joins and 20% leaves.
fn churn_batch(sys: &UvSystem, rng: &mut XorShift, next_id: &mut u32, grow: bool) -> UpdateBatch {
    let live: Vec<u32> = sys.objects().iter().map(|o| o.id).collect();
    let ops = (live.len() / 100).max(3);
    let domain = sys.domain();
    let mut batch = UpdateBatch::new();
    let mut used: Vec<u32> = Vec::new();
    for k in 0..ops {
        match k * 10 / ops {
            0..=5 => {
                // Move: a local position update, the dominant op of a
                // fleet-tracking feed (a GPS fix drifts by road-segment
                // scale, not across the city).
                let id = live[rng.pick(live.len())];
                if used.contains(&id) {
                    continue;
                }
                let o = sys.objects().iter().find(|o| o.id == id).unwrap();
                let c = o.center();
                let jitter = domain.width() / 250.0;
                let x = (c.x + rng.coord(-jitter, jitter))
                    .clamp(domain.min_x + 25.0, domain.max_x - 25.0);
                let y = (c.y + rng.coord(-jitter, jitter))
                    .clamp(domain.min_y + 25.0, domain.max_y - 25.0);
                batch = batch.move_to(id, Point::new(x, y));
                used.push(id);
            }
            6..=7 => {
                // Join: a new object somewhere in the domain.
                batch = batch.insert(UncertainObject::with_gaussian(
                    *next_id,
                    Point::new(
                        rng.coord(domain.min_x + 25.0, domain.max_x - 25.0),
                        rng.coord(domain.min_y + 25.0, domain.max_y - 25.0),
                    ),
                    20.0,
                ));
                *next_id += 1;
            }
            _ => {
                // Leave.
                let id = live[rng.pick(live.len())];
                if used.contains(&id) {
                    continue;
                }
                batch = batch.delete(id);
                used.push(id);
            }
        }
    }
    if grow {
        // One insert just beyond the NE corner: the batch forces an
        // in-place exponential domain growth, which re-derives the whole
        // object set, so every `--grow` step pays the same
        // derivation-dominated cost and the timings expose any
        // rebuild-style latency cliff.
        let beyond = rng.coord(domain.width() * 0.01, domain.width() * 0.04);
        batch = batch.insert(UncertainObject::with_gaussian(
            *next_id,
            Point::new(domain.max_x + beyond, domain.max_y + beyond),
            20.0,
        ));
        *next_id += 1;
    }
    batch
}

/// Runs the churn experiment: builds the system, applies `steps` churn
/// batches (each also growing the domain when `grow` is set), verifies the
/// final state against a cold rebuild.
pub fn churn_experiment(
    scale: &ExperimentScale,
    steps: usize,
    grow: bool,
) -> (Vec<ChurnRow>, ChurnSummary) {
    let n = scale.scaled(20_000);
    let dataset = Dataset::generate(GeneratorConfig::paper_uniform(n));
    let config = dynamic_config(n);
    let mut sys =
        UvSystem::build(dataset.objects.clone(), dataset.domain, Method::IC, config).unwrap();

    let mut rng = XorShift(0x5eed_cafe_f00d_0001);
    let mut next_id = n as u32;
    let mut rows = Vec::with_capacity(steps);
    let mut incremental_ms = 0.0;
    for step in 1..=steps {
        let batch = churn_batch(&sys, &mut rng, &mut next_id, grow);
        let t = Instant::now();
        let stats = sys.apply(batch).expect("churn batch must validate");
        let apply_ms = t.elapsed().as_secs_f64() * 1_000.0;
        incremental_ms += apply_ms;
        rows.push(ChurnRow {
            step,
            stats,
            apply_ms,
        });
    }

    // Oracle: a cold rebuild of the final object set must be bit-identical —
    // the full canonical leaf structure (regions and member lists), exactly
    // as the property tests compare it, plus sampled PNN answers.
    let t = Instant::now();
    let rebuilt =
        UvSystem::build(sys.objects().to_vec(), sys.domain(), Method::IC, config).unwrap();
    let rebuild_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let mut verified = sys.index().canonical_leaves() == rebuilt.index().canonical_leaves();
    for q in dataset.query_points(25, 77) {
        let a = sys.pnn(q);
        let b = rebuilt.pnn(q);
        verified &=
            a.probabilities == b.probabilities && a.candidates_examined == b.candidates_examined;
    }

    let ops_per_step = (n / 100).max(3);
    let avg_refine_fraction =
        rows.iter().map(|r| r.stats.refine_fraction()).sum::<f64>() / rows.len().max(1) as f64;
    let growth_events = rows.iter().filter(|r| r.stats.domain_grown).count();
    let summary = ChurnSummary {
        initial_objects: n,
        ops_per_step,
        avg_refine_fraction,
        incremental_ms,
        rebuild_ms,
        growth_events,
        verified,
    };
    (rows, summary)
}

/// Formats [`ChurnRow`]s for `print_table`.
pub fn churn_rows(rows: &[ChurnRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.step.to_string(),
                format!(
                    "{}i/{}d/{}m{}",
                    r.stats.inserted,
                    r.stats.deleted,
                    r.stats.moved,
                    if r.stats.domain_grown { " G" } else { "" },
                ),
                r.stats.objects_in_knn_radius.to_string(),
                r.stats.objects_rederived.to_string(),
                r.stats.leaves_refined.to_string(),
                r.stats.total_leaves.to_string(),
                format!("{:.1}%", r.stats.refine_fraction() * 100.0),
                format!("{}/{}", r.stats.leaves_split, r.stats.leaves_merged),
                format!("{:.1}", r.apply_ms),
            ]
        })
        .collect()
}

/// Formats the [`ChurnSummary`] for `print_table`.
pub fn churn_summary_row(s: &ChurnSummary) -> Vec<Vec<String>> {
    vec![vec![
        s.initial_objects.to_string(),
        s.ops_per_step.to_string(),
        format!("{:.1}%", s.avg_refine_fraction * 100.0),
        format!("{:.1}", s.incremental_ms),
        format!("{:.1}", s.rebuild_ms),
        s.growth_events.to_string(),
        if s.verified {
            "yes".into()
        } else {
            "NO".into()
        },
    ]]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two ISSUE acceptance criteria over one fixed-seed 1k-object churn
    /// run (the fixture is expensive — a 1k build plus 5 churn steps plus
    /// the cold-rebuild oracle — so both assertions share it):
    ///
    /// * **Locality** (PR 3): each 1% churn step refines at most 10% of
    ///   the leaves a full rebuild would write, and the final state
    ///   verifies bit-identical against the oracle.
    /// * **Seed-sector prefilter** (PR 4 regression): the re-derivation
    ///   count drops well below the PR-3 k-NN-radius bound (which flagged
    ///   ~30% of 1k objects at k=31), with the same oracle still holding.
    #[test]
    fn one_percent_churn_stays_local_and_prefilter_cuts_rederivations() {
        let scale = ExperimentScale {
            size_factor: 0.05, // 1_000 objects
            ..ExperimentScale::default()
        };
        let (rows, summary) = churn_experiment(&scale, 5, false);
        assert_eq!(summary.initial_objects, 1_000);
        assert_eq!(summary.growth_events, 0);
        assert!(summary.ops_per_step >= 10);
        assert!(summary.verified, "final state diverged from a cold rebuild");
        for row in &rows {
            assert!(
                !row.stats.full_rebuild,
                "step {} unexpectedly fell back to a full rebuild",
                row.step
            );
            assert!(
                row.stats.refine_fraction() <= 0.10,
                "step {} refined {:.1}% of {} leaves (limit 10%)",
                row.step,
                row.stats.refine_fraction() * 100.0,
                row.stats.total_leaves,
            );
        }
        assert!(summary.avg_refine_fraction <= 0.10);

        let rederived: usize = rows.iter().map(|r| r.stats.objects_rederived).sum();
        let in_radius: usize = rows.iter().map(|r| r.stats.objects_in_knn_radius).sum();
        assert!(
            rederived * 2 <= in_radius,
            "prefilter saved too little: {rederived} re-derived of {in_radius} in the k-NN radius"
        );
        // The loose bound still sits near the ~30%-per-step level PR 3
        // measured, so the saving is real, not a degenerate workload.
        let live = summary.initial_objects as f64;
        let avg_in_radius = in_radius as f64 / rows.len() as f64;
        assert!(
            avg_in_radius > live * 0.10,
            "the k-NN-radius bound flags too few objects ({avg_in_radius} of {live}) \
             for the comparison to be meaningful"
        );
    }

    #[test]
    fn tiny_scale_churn_smoke() {
        let scale = ExperimentScale {
            size_factor: 0.01,
            ..ExperimentScale::default()
        };
        let (rows, summary) = churn_experiment(&scale, 2, false);
        assert_eq!(rows.len(), 2);
        assert!(summary.verified);
        assert_eq!(churn_rows(&rows).len(), 2);
        assert_eq!(churn_summary_row(&summary)[0].len(), 7);
    }

    /// ISSUE 6 acceptance criterion: a `--grow` churn run — every step
    /// inserts past the current boundary, so every step triggers in-place
    /// exponential domain growth — shows no rebuild-latency cliff. All
    /// steps pay the same derivation-dominated cost, so the slowest stays
    /// within ~3x the median (with a small absolute floor to absorb timer
    /// noise at smoke scale), nothing ever falls back to a full rebuild,
    /// and the grown final state still verifies against the cold-rebuild
    /// oracle.
    #[test]
    fn grow_churn_has_no_rebuild_latency_cliff() {
        let scale = ExperimentScale {
            size_factor: 0.01, // 200 objects
            ..ExperimentScale::default()
        };
        let (rows, summary) = churn_experiment(&scale, 5, true);
        assert!(summary.verified, "grown state diverged from a cold rebuild");
        assert_eq!(summary.growth_events, 5, "every --grow step must grow");
        for row in &rows {
            assert!(
                !row.stats.full_rebuild,
                "step {} fell back to a full rebuild",
                row.step
            );
            assert!(row.stats.domain_grown, "step {} did not grow", row.step);
        }
        let mut times: Vec<f64> = rows.iter().map(|r| r.apply_ms).collect();
        times.sort_by(f64::total_cmp);
        let median = times[times.len() / 2];
        let max = times[times.len() - 1];
        assert!(
            max <= median * 3.0 + 5.0,
            "latency cliff: max step {max:.1}ms vs median {median:.1}ms"
        );
    }
}
