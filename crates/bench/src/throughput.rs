//! Serving-throughput experiment (beyond the paper): queries/second of the
//! sequential Section V-A point lookup vs. the concurrent batched
//! [`QueryEngine`](uv_core::QueryEngine), plus a trajectory (moving-PNN)
//! workload with answer-delta statistics.
//!
//! The paper evaluates PNN queries one at a time; the `ROADMAP.md` north
//! star is a system serving heavy traffic, so this experiment measures what
//! the batch engine buys on one shared IC index: worker-pool fan-out and the
//! per-leaf page/candidate-screen cache.

use crate::workload::ExperimentScale;
use std::time::Instant;
use uv_core::{Method, UvConfig, UvSystem};
use uv_data::{Dataset, GeneratorConfig};
use uv_geom::Point;

/// One measured serving mode.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Human-readable mode (sequential loop / batched at N workers).
    pub mode: String,
    /// Worker threads used (1 for the sequential loop).
    pub workers: usize,
    /// Hardware threads the runner reported (`available_parallelism`).
    /// Multi-worker speedups are only meaningful when `workers <= cores`;
    /// the sweep skips oversubscribed counts rather than print misleading
    /// sub-1.0x rows on small runners.
    pub cores: usize,
    /// Wall-clock time of the whole batch in milliseconds.
    pub wall_ms: f64,
    /// Queries per second.
    pub qps: f64,
    /// Throughput relative to the sequential loop.
    pub speedup: f64,
}

/// Result of the trajectory workload.
#[derive(Debug, Clone)]
pub struct TrajectorySummary {
    /// Number of simulated vehicles.
    pub vehicles: usize,
    /// Steps per vehicle trajectory.
    pub steps: usize,
    /// Average answer-set size across all steps.
    pub avg_answers: f64,
    /// Average churn (objects entered + left) per step.
    pub avg_churn: f64,
    /// Fraction of steps whose answer set did not change — the delta
    /// encoding a moving-NN client would exploit.
    pub unchanged_fraction: f64,
    /// Queries per second of the batched trajectory evaluation.
    pub qps: f64,
}

/// Builds the shared IC system (paper cardinality 10K, scaled) that both
/// [`throughput_sweep`] and [`trajectory_workload`] measure against —
/// construction is the dominant cost at full scale, so it is paid once.
pub fn build_throughput_system(scale: &ExperimentScale) -> (Dataset, UvSystem) {
    let n = scale.scaled(10_000);
    let dataset = Dataset::generate(GeneratorConfig::paper_uniform(n));
    let system = UvSystem::build(
        dataset.objects.clone(),
        dataset.domain,
        Method::IC,
        UvConfig::default(),
    )
    .unwrap();
    (dataset, system)
}

/// Measures every serving mode on the same query batch over the shared
/// system from [`build_throughput_system`].
pub fn throughput_sweep(
    scale: &ExperimentScale,
    dataset: &Dataset,
    system: &UvSystem,
) -> Vec<ThroughputRow> {
    let batch = (scale.queries * 8).clamp(64, 4_096);
    let queries = dataset.query_points(batch, 7);

    let mut rows = Vec::new();

    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let start = Instant::now();
    let sequential: Vec<_> = queries.iter().map(|q| system.pnn(*q)).collect();
    let seq_wall = start.elapsed().as_secs_f64();
    let seq_qps = batch as f64 / seq_wall;
    rows.push(ThroughputRow {
        mode: "sequential loop".to_string(),
        workers: 1,
        cores,
        wall_ms: seq_wall * 1_000.0,
        qps: seq_qps,
        speedup: 1.0,
    });

    // Only sweep worker counts the hardware can actually run concurrently:
    // an oversubscribed pool on a single-core runner measures scheduler
    // thrash, not engine scaling, and used to print misleading sub-1.0x
    // "speedups". The skipped counts are announced instead.
    let mut worker_counts: Vec<usize> = [1usize, 2, 4, 8]
        .into_iter()
        .filter(|w| *w <= cores)
        .collect();
    if !worker_counts.contains(&cores) && cores > 8 {
        worker_counts.push(cores);
    }
    let skipped: Vec<usize> = [2usize, 4, 8].into_iter().filter(|w| *w > cores).collect();
    if !skipped.is_empty() {
        eprintln!(
            "note: runner reports {cores} hardware thread(s); skipping \
             oversubscribed worker counts {skipped:?} (speedup expectations \
             need workers <= cores)"
        );
    }

    for &workers in &worker_counts {
        let engine = system.engine().with_workers(workers);
        let (answers, wall) = engine.pnn_batch_timed(&queries);
        // Sanity: the batched engine must reproduce the sequential answers.
        for (a, s) in answers.iter().zip(&sequential) {
            assert_eq!(
                a.probabilities, s.probabilities,
                "batched answers diverged from the sequential path"
            );
        }
        let wall = wall.as_secs_f64();
        let qps = batch as f64 / wall;
        rows.push(ThroughputRow {
            mode: format!("batched, {workers} workers, cache"),
            workers,
            cores,
            wall_ms: wall * 1_000.0,
            qps,
            speedup: qps / seq_qps,
        });
    }

    // The cache's contribution at the widest fan-out.
    let workers = *worker_counts.last().unwrap_or(&1);
    let engine = system.engine().with_workers(workers).with_cache(false);
    let (_, wall) = engine.pnn_batch_timed(&queries);
    let wall = wall.as_secs_f64();
    let qps = batch as f64 / wall;
    rows.push(ThroughputRow {
        mode: format!("batched, {workers} workers, no cache"),
        workers,
        cores,
        wall_ms: wall * 1_000.0,
        qps,
        speedup: qps / seq_qps,
    });

    rows
}

/// Formats [`throughput_sweep`] rows for `print_table`.
pub fn throughput_table(rows: &[ThroughputRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.mode.clone(),
                r.workers.to_string(),
                r.cores.to_string(),
                format!("{:.1}", r.wall_ms),
                format!("{:.0}", r.qps),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect()
}

/// Runs the moving-PNN workload: a fleet of vehicles, each following a
/// waypoint trajectory, served in per-tick batches over the shared system
/// from [`build_throughput_system`].
pub fn trajectory_workload(
    scale: &ExperimentScale,
    dataset: &Dataset,
    system: &UvSystem,
) -> TrajectorySummary {
    let vehicles = 8usize;
    let steps = scale.queries.clamp(16, 256);
    let waypoints = dataset.query_points(vehicles * 2, 99);

    let engine = system.engine();
    let start = Instant::now();
    let mut total_answers = 0usize;
    let mut total_churn = 0usize;
    let mut unchanged = 0usize;
    for v in 0..vehicles {
        let from = waypoints[2 * v];
        let to = waypoints[2 * v + 1];
        let path: Vec<Point> = (0..steps)
            .map(|i| {
                let t = i as f64 / (steps - 1).max(1) as f64;
                Point::new(from.x + (to.x - from.x) * t, from.y + (to.y - from.y) * t)
            })
            .collect();
        for step in engine.pnn_trajectory(&path) {
            total_answers += step.answer.probabilities.len();
            total_churn += step.delta.churn();
            if step.delta.is_unchanged() {
                unchanged += 1;
            }
        }
    }
    let wall = start.elapsed().as_secs_f64();
    let total_steps = vehicles * steps;
    TrajectorySummary {
        vehicles,
        steps,
        avg_answers: total_answers as f64 / total_steps as f64,
        avg_churn: total_churn as f64 / total_steps as f64,
        unchanged_fraction: unchanged as f64 / total_steps as f64,
        qps: total_steps as f64 / wall,
    }
}

/// Formats the [`TrajectorySummary`] for `print_table`.
pub fn trajectory_table(summary: &TrajectorySummary) -> Vec<Vec<String>> {
    vec![vec![
        summary.vehicles.to_string(),
        summary.steps.to_string(),
        format!("{:.2}", summary.avg_answers),
        format!("{:.2}", summary.avg_churn),
        format!("{:.0}%", summary.unchanged_fraction * 100.0),
        format!("{:.0}", summary.qps),
    ]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_throughput_and_trajectory() {
        let scale = ExperimentScale {
            size_factor: 0.01,
            queries: 8,
            ..ExperimentScale::default()
        };
        let (dataset, system) = build_throughput_system(&scale);

        let rows = throughput_sweep(&scale, &dataset, &system);
        assert!(rows.len() >= 3);
        assert_eq!(rows[0].mode, "sequential loop");
        for r in &rows {
            assert!(r.qps > 0.0);
            assert!(r.wall_ms > 0.0);
            // No oversubscribed rows: speedups are only reported for worker
            // counts the hardware can run concurrently.
            assert!(r.workers <= r.cores, "oversubscribed row {:?}", r.mode);
        }
        assert_eq!(throughput_table(&rows).len(), rows.len());

        let summary = trajectory_workload(&scale, &dataset, &system);
        assert!(summary.avg_answers >= 1.0);
        assert!(summary.qps > 0.0);
        assert_eq!(trajectory_table(&summary)[0].len(), 6);
    }
}
