//! Table II: query and construction performance on the three "real" datasets
//! (utility, roads, rrlines).
//!
//! The original German datasets are replaced by synthetic stand-ins with the
//! same cardinality and a comparable non-uniform spatial distribution (see
//! DESIGN.md); the reported columns match the paper's: average PNN time on
//! the UV-diagram and on the R-tree, the IC construction time `T_c` and the
//! pruning ratio `p_c`.

use crate::workload::{measure_pnn, ExperimentScale};
use uv_core::{Method, UvConfig, UvSystem};
use uv_data::Dataset;

/// One row of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    pub name: &'static str,
    pub objects: usize,
    pub uv_query_ms: f64,
    pub rtree_query_ms: f64,
    pub uv_query_disk_ms: f64,
    pub rtree_query_disk_ms: f64,
    pub construction_secs: f64,
    pub pruning_ratio: f64,
}

/// Builds the three datasets and measures every column of Table II.
pub fn table2(scale: &ExperimentScale) -> Vec<Table2Row> {
    Dataset::table2_datasets(scale.size_factor)
        .into_iter()
        .map(|(name, dataset)| {
            let system = UvSystem::build(
                dataset.objects.clone(),
                dataset.domain,
                Method::IC,
                UvConfig::default(),
            )
            .unwrap();
            let queries = dataset.query_points(scale.queries, 13);
            let (uv, rtree) = measure_pnn(&system, &queries);
            Table2Row {
                name,
                objects: dataset.len(),
                uv_query_ms: uv.millis(),
                rtree_query_ms: rtree.millis(),
                uv_query_disk_ms: uv.disk_adjusted_millis(),
                rtree_query_disk_ms: rtree.disk_adjusted_millis(),
                construction_secs: system.construction_stats().total.as_secs_f64(),
                pruning_ratio: system.construction_stats().avg_c_ratio,
            }
        })
        .collect()
}

/// Printable rows for Table II.
pub fn table2_rows(rows: &[Table2Row]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.objects.to_string(),
                format!("{:.2}", r.uv_query_disk_ms),
                format!("{:.2}", r.rtree_query_disk_ms),
                format!("{:.2}", r.construction_secs),
                format!("{:.1}%", r.pruning_ratio * 100.0),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_three_datasets_with_paper_ordering() {
        let scale = ExperimentScale {
            size_factor: 0.003,
            queries: 4,
            basic_cap: 100,
        };
        let rows = table2(&scale);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].name, "utility");
        assert_eq!(rows[1].name, "roads");
        assert_eq!(rows[2].name, "rrlines");
        assert!(rows[0].objects < rows[1].objects);
        assert!(rows[1].objects < rows[2].objects);
        for r in &rows {
            assert!(r.pruning_ratio > 0.5, "{}: weak pruning", r.name);
            assert!(r.uv_query_ms >= 0.0);
            assert!(r.construction_secs > 0.0);
        }
        assert_eq!(table2_rows(&rows).len(), 3);
    }
}
