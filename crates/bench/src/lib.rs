//! Experiment harness regenerating the evaluation of the UV-diagram paper
//! (Section VI): every figure and table, as printable series of rows.
//!
//! Absolute numbers differ from the paper (different language, hardware and a
//! simulated disk), but each experiment preserves the paper's *shape*: which
//! method wins, roughly by how much, and how the curves move with dataset
//! size, uncertainty-region size, skew and query-region size. The default
//! [`ExperimentScale`] shrinks the paper's cardinalities so a full run
//! completes on a laptop; pass `--scale 1.0` to the `experiments` binary for
//! the original sizes.
//!
//! | module | paper artefact |
//! |---|---|
//! | [`fig6`] | Figure 6(a)–(d): PNN query time, I/O, breakdown, uncertainty sweep |
//! | [`fig7`] | Figure 7(a)–(h): construction time, pruning ratios, breakdowns, skew, UV-partition query |
//! | [`table2`] | Table II: Germany-like datasets |
//! | [`sensitivity`] | Section VI-B(1): split-threshold sensitivity |
//! | [`throughput`] | beyond the paper: sequential vs. concurrent batched PNN serving throughput, trajectory workload |
//! | [`churn`] | beyond the paper: dynamic maintenance under a live join/leave/move workload — locality of the incremental UV-partition repair |
//! | [`snapshot`] | beyond the paper: snapshot persistence round-trip — cold-build vs load wall-clock, bytes, bit-exact verification |
//! | [`shard`] | beyond the paper: domain-sharded serving with halo replication — parallel shard-build speedup, replication overhead, bit-exact verification against the unsharded oracle |
//!
//! Every experiment can also emit its rows as a stable JSON document
//! (`experiments --json`, see [`json`]) for machine-tracked perf
//! trajectories.
//!
//! *The paper-to-code map for the whole workspace — every definition, lemma,
//! algorithm and experiment of the paper, with its module and key functions —
//! lives in `docs/PAPER_MAP.md` at the repository root.*

pub mod churn;
pub mod fig6;
pub mod fig7;
pub mod json;
pub mod sensitivity;
pub mod shard;
pub mod snapshot;
pub mod subscribe;
pub mod table2;
pub mod throughput;
pub mod workload;

pub use workload::{ExperimentScale, QueryCost};

/// Prints a markdown-style table: a header row followed by data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    println!("{}", header.join(" | "));
    println!(
        "{}",
        header.iter().map(|_| "---").collect::<Vec<_>>().join(" | ")
    );
    for row in rows {
        println!("{}", row.join(" | "));
    }
}
