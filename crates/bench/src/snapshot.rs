//! Snapshot experiment (beyond the paper): the *build once, query many*
//! cost model made durable.
//!
//! Builds a system at the dynamic-serving tuning, saves it to a snapshot
//! file, loads it back and verifies the loaded replica bit-identical to the
//! original — leaf structure, PNN answers, `cell_area`, epoch — then applies
//! one churn batch to both and re-verifies. Reports cold-build versus
//! save/load wall-clock and the snapshot size: the asymmetry is the whole
//! point (ISSUE 4 acceptance: load at least 10× faster than cold build at
//! 1k objects).

use crate::churn::dynamic_config;
use crate::workload::ExperimentScale;
use std::time::Instant;
use uv_core::{Method, UvSystem};
use uv_data::{Dataset, GeneratorConfig, UncertainObject};
use uv_geom::Point;

/// Measurements of one snapshot round-trip.
#[derive(Debug, Clone)]
pub struct SnapshotReport {
    /// Objects in the dataset.
    pub objects: usize,
    /// Wall-clock of the cold build (derivation + indexing) in ms.
    pub build_ms: f64,
    /// Wall-clock of `save_snapshot_to_path` in ms.
    pub save_ms: f64,
    /// Wall-clock of `load_snapshot_from_path` in ms.
    pub load_ms: f64,
    /// Snapshot size in bytes.
    pub bytes: u64,
    /// Bytes the format-2 d-bound encoding saves versus the PR-4 format,
    /// which persisted a redundant 8-byte radius per hull vertex (the
    /// loader now recomputes radii from the persisted centres). The
    /// size-regression criterion: `bytes` must undercut `bytes +
    /// v1_bytes_saved`, i.e. this must be positive whenever any d-bounds
    /// exist.
    pub v1_bytes_saved: u64,
    /// `build_ms / load_ms` — how much faster a warm restart is.
    pub speedup: f64,
    /// `true` when the loaded system matched the original bit-exactly,
    /// before and after one churn batch applied to both — and the snapshot
    /// size beat the PR-4 format.
    pub verified: bool,
}

/// Bit-exact comparison of the canonical leaf view (the shared
/// `UvIndex::canonical_leaves` oracle) plus sampled answers.
fn systems_match(a: &UvSystem, b: &UvSystem, queries: &[Point]) -> bool {
    let mut ok =
        a.epoch() == b.epoch() && a.index().canonical_leaves() == b.index().canonical_leaves();
    ok &= a
        .objects()
        .iter()
        .all(|o| a.cell_area(o.id).to_bits() == b.cell_area(o.id).to_bits());
    for q in queries {
        let x = a.pnn(*q);
        let y = b.pnn(*q);
        ok &= x.probabilities == y.probabilities && x.candidates_examined == y.candidates_examined;
    }
    ok
}

/// Runs the snapshot experiment at `scale` (1k objects at the default
/// `--scale 0.05`).
pub fn snapshot_experiment(scale: &ExperimentScale) -> SnapshotReport {
    let n = scale.scaled(20_000);
    let dataset = Dataset::generate(GeneratorConfig::paper_uniform(n));
    let config = dynamic_config(n);

    let t = Instant::now();
    let mut original =
        UvSystem::build(dataset.objects.clone(), dataset.domain, Method::IC, config).unwrap();
    let build_ms = t.elapsed().as_secs_f64() * 1_000.0;

    let path = std::env::temp_dir().join(format!("uv-snapshot-{}.bin", std::process::id()));
    let t = Instant::now();
    let bytes = original
        .save_snapshot_to_path(&path)
        .expect("snapshot save must succeed");
    let save_ms = t.elapsed().as_secs_f64() * 1_000.0;

    let t = Instant::now();
    let mut loaded = UvSystem::load_snapshot_from_path(&path).expect("snapshot load must succeed");
    let load_ms = t.elapsed().as_secs_f64() * 1_000.0;
    let _ = std::fs::remove_file(&path);

    let queries = dataset.query_points(scale.queries.max(8), 2_024);
    let mut verified = systems_match(&original, &loaded, &queries);

    // Size regression versus the PR-4 (format 1) snapshot layout, which
    // spent 8 bytes per d-bound hull vertex on a derivable radius. Any
    // object with a boundary-safe derivation carries d-bounds, so at this
    // scale the saving must be real.
    let v1_bytes_saved: u64 = original
        .objects()
        .iter()
        .filter_map(|o| original.object_state(o.id))
        .map(|s| 8 * s.sensitivity().d_bounds().len() as u64)
        .sum();
    verified &= v1_bytes_saved > 0;

    // One churn batch applied to both replicas: persistence must not
    // disturb dynamic maintenance.
    let domain = dataset.domain;
    let batch = |sys: &mut UvSystem| {
        sys.updater()
            .insert(UncertainObject::with_gaussian(
                n as u32 + 7,
                Point::new(domain.width() * 0.31, domain.height() * 0.62),
                20.0,
            ))
            .delete(3)
            .move_to(7, Point::new(domain.width() * 0.55, domain.height() * 0.44))
            .commit()
            .expect("churn batch applies")
    };
    let sa = batch(&mut original);
    let sb = batch(&mut loaded);
    verified &= sa.leaves_refined == sb.leaves_refined
        && sa.objects_rederived == sb.objects_rederived
        && sa.epoch == sb.epoch;
    verified &= systems_match(&original, &loaded, &queries);

    SnapshotReport {
        objects: n,
        build_ms,
        save_ms,
        load_ms,
        bytes,
        v1_bytes_saved,
        speedup: build_ms / load_ms.max(1e-9),
        verified,
    }
}

/// Formats the [`SnapshotReport`] for `print_table`.
pub fn snapshot_rows(r: &SnapshotReport) -> Vec<Vec<String>> {
    vec![vec![
        r.objects.to_string(),
        format!("{:.1}", r.build_ms),
        format!("{:.1}", r.save_ms),
        format!("{:.1}", r.load_ms),
        r.bytes.to_string(),
        r.v1_bytes_saved.to_string(),
        format!("{:.1}", r.speedup),
        if r.verified {
            "yes".into()
        } else {
            "NO".into()
        },
    ]]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ISSUE 4 acceptance, scaled down for the debug-build test budget:
    /// the round-trip verifies bit-exactly and loading beats the cold
    /// build by a wide margin even at a few hundred objects.
    #[test]
    fn snapshot_roundtrip_verifies_and_loads_much_faster_than_build() {
        let scale = ExperimentScale {
            size_factor: 0.015, // 300 objects
            queries: 10,
            ..ExperimentScale::default()
        };
        let report = snapshot_experiment(&scale);
        assert_eq!(report.objects, 300);
        assert!(report.verified, "loaded replica diverged from the original");
        assert!(report.bytes > 10_000, "implausibly small snapshot");
        assert!(
            report.speedup >= 5.0,
            "load should be far faster than a cold build (got {:.1}x: build {:.1}ms, load {:.1}ms)",
            report.speedup,
            report.build_ms,
            report.load_ms
        );
        // ISSUE 5 size regression: the saving over the PR-4 format must be
        // real (non-zero d-bounds persisted without their radii). The
        // byte-exact structural check — that the REF_TABLE section is
        // precisely as long as the hull-vertex encoding predicts — lives in
        // `uv_core::snapshot`'s
        // `ref_table_section_persists_d_bounds_as_bare_vertices`.
        assert!(
            report.v1_bytes_saved > 0,
            "the hull-vertex d-bound encoding saved no bytes over the PR-4 format"
        );
        assert_eq!(snapshot_rows(&report)[0].len(), 8);
    }
}
