//! Subscription experiment (beyond the paper): continuous PNN serving for a
//! fleet of moving clients.
//!
//! The experiment builds one [`UvSystem`] at the dynamic-serving tuning,
//! registers a fleet of clients (four per object at the default scale:
//! 1,000 objects serve 4,000 subscriptions), then drives a random-walk
//! workload where most steps are small (the continuous-query regime safe
//! regions exist for) and a few are long jumps. It reports:
//!
//! * **safe-region hit rate** — fraction of position reports answered
//!   entirely from the client's stability disk. The acceptance gate is
//!   ≥ 80% at the default walk mix; below that the experiment reports
//!   `verified = no` and the harness exits non-zero;
//! * **zero-I/O hits** — a stationary tick (every client inside its safe
//!   region) is run between two index-I/O snapshots and must read zero
//!   leaf pages;
//! * **client-ticks/s and clients-per-core** — sustained position reports
//!   per wall-clock second, and the fleet size one core sustains at a
//!   10 Hz report rate (`rate / 10 / cores`);
//! * **verification** — after the walk, every client's pushed-delta answer
//!   set must equal re-answering its position with [`UvSystem::pnn`].

use crate::churn::dynamic_config;
use crate::workload::ExperimentScale;
use std::time::Instant;
use uv_core::{Method, SubscriptionEngine, UvSystem};
use uv_data::{Dataset, GeneratorConfig};
use uv_geom::{Point, Rect};

/// Measurements of one subscription-fleet run.
#[derive(Debug, Clone)]
pub struct SubscribeReport {
    /// Objects in the dataset.
    pub objects: usize,
    /// Subscribed clients.
    pub clients: usize,
    /// Ticks driven (each moves the whole fleet).
    pub ticks: usize,
    /// Safe-region hit rate over the walk, in [0, 1].
    pub hit_rate: f64,
    /// Full derivations over the walk (misses + subscriptions).
    pub derivations: u64,
    /// Derivations that reused a leaf's cached clearance geometry (the
    /// screened arena built by an earlier co-located derivation or query).
    pub clearance_reuses: u64,
    /// Non-empty deltas pushed.
    pub deltas_pushed: u64,
    /// Leaf pages read by one all-hit (stationary) tick — must be 0.
    pub stationary_tick_reads: u64,
    /// Position reports processed per wall-clock second.
    pub reports_per_sec: f64,
    /// Fleet size one core sustains at a 10 Hz report rate.
    pub clients_per_core: f64,
    /// `true` when the hit-rate gate, the zero-I/O gate and the oracle
    /// check all passed.
    pub verified: bool,
}

/// The acceptance gate on the safe-region hit rate.
pub const HIT_RATE_GATE: f64 = 0.80;

/// Deterministic xorshift walk driver (the experiment must reproduce
/// bit-for-bit across runs).
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn step(p: Point, rng: &mut Lcg, domain: Rect) -> Point {
    // 1-in-16 steps are cross-domain jumps; the rest are short drifts —
    // a vehicle at urban speed between two 10 Hz reports (~1 m on the
    // paper's 10 km × 10 km domain).
    let jump = rng.next_f64() < 1.0 / 16.0;
    let scale = if jump { domain.width() * 0.25 } else { 2.5 };
    Point::new(
        (p.x + (rng.next_f64() - 0.5) * scale).clamp(domain.min_x, domain.max_x),
        (p.y + (rng.next_f64() - 0.5) * scale).clamp(domain.min_y, domain.max_y),
    )
}

/// Runs the subscription experiment at `scale` (1,000 objects / 4,000
/// clients at the default `--scale 0.05`).
pub fn subscribe_experiment(scale: &ExperimentScale) -> SubscribeReport {
    let n = scale.scaled(20_000);
    let clients = n * 4;
    let ticks = 25usize;
    let dataset = Dataset::generate(GeneratorConfig::paper_uniform(n));
    let domain = dataset.domain;
    let system = UvSystem::build(
        dataset.objects.clone(),
        domain,
        Method::IC,
        dynamic_config(n),
    )
    .expect("experiment build must succeed");

    let mut rng = Lcg(0x5afe_5afe_5afe_5afe ^ n as u64);
    let mut positions: Vec<Point> = (0..clients)
        .map(|_| {
            Point::new(
                domain.min_x + rng.next_f64() * domain.width(),
                domain.min_y + rng.next_f64() * domain.height(),
            )
        })
        .collect();

    let mut engine = SubscriptionEngine::new(&system);
    for (i, p) in positions.iter().enumerate() {
        engine.subscribe(i as u64, *p).expect("fresh client id");
    }
    engine.reset_stats();

    // The measured walk.
    let t = Instant::now();
    for _ in 0..ticks {
        let moves: Vec<(u64, Point)> = positions
            .iter_mut()
            .enumerate()
            .map(|(i, p)| {
                *p = step(*p, &mut rng, domain);
                (i as u64, *p)
            })
            .collect();
        engine.tick(&moves);
    }
    let wall = t.elapsed().as_secs_f64();
    let stats = engine.stats();
    let hit_rate = stats.hit_rate();
    let reports = (clients * ticks) as f64;
    let reports_per_sec = reports / wall.max(1e-9);
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1) as f64;
    let clients_per_core = reports_per_sec / 10.0 / cores;

    // Zero-I/O gate: a stationary tick hits every safe region (clients
    // whose last derivation produced no region re-derive; at this tuning
    // that is rare, and those reads are the measurement).
    let stationary: Vec<(u64, Point)> = positions
        .iter()
        .enumerate()
        .map(|(i, p)| (i as u64, *p))
        .collect();
    engine.tick(&stationary); // ensure every client's region is fresh
    system.reset_io();
    let io_before = system.index().store().io();
    engine.tick(&stationary);
    let stationary_tick_reads = system.index().store().io().since(io_before).reads;

    // Oracle check: the delta-maintained table equals per-client pnn.
    let table = engine.into_table();
    let verified_oracle = positions.iter().enumerate().all(|(i, p)| {
        let oracle: Vec<u32> = system
            .pnn(*p)
            .probabilities
            .iter()
            .map(|(id, _)| *id)
            .collect();
        table.client(i as u64).expect("registered").answer_ids() == oracle.as_slice()
    });

    SubscribeReport {
        objects: n,
        clients,
        ticks,
        hit_rate,
        derivations: stats.derivations,
        clearance_reuses: stats.clearance_reuses,
        deltas_pushed: stats.deltas_pushed,
        stationary_tick_reads,
        reports_per_sec,
        clients_per_core,
        verified: verified_oracle && hit_rate >= HIT_RATE_GATE && stationary_tick_reads == 0,
    }
}

/// Formats a [`SubscribeReport`] for `print_table`.
pub fn subscribe_rows(r: &SubscribeReport) -> Vec<Vec<String>> {
    vec![vec![
        r.objects.to_string(),
        r.clients.to_string(),
        r.ticks.to_string(),
        format!("{:.1}%", r.hit_rate * 100.0),
        r.derivations.to_string(),
        r.clearance_reuses.to_string(),
        r.deltas_pushed.to_string(),
        r.stationary_tick_reads.to_string(),
        format!("{:.0}", r.reports_per_sec),
        format!("{:.0}", r.clients_per_core),
        if r.verified {
            "yes".into()
        } else {
            "NO".into()
        },
    ]]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance gates at CI scale: ≥80% safe-region hits, a
    /// stationary tick reads zero leaf pages, and the delta-maintained
    /// fleet matches the oracle.
    #[test]
    fn subscribe_experiment_sustains_the_hit_rate_gate() {
        let scale = ExperimentScale {
            size_factor: 0.01, // 200 objects, 800 clients
            ..ExperimentScale::default()
        };
        let report = subscribe_experiment(&scale);
        assert_eq!(report.clients, report.objects * 4);
        assert!(
            report.hit_rate >= HIT_RATE_GATE,
            "hit rate {:.3} below the {HIT_RATE_GATE} gate",
            report.hit_rate
        );
        assert_eq!(report.stationary_tick_reads, 0);
        assert!(report.verified);
    }
}
