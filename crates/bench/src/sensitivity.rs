//! Sensitivity of the UV-index to the split threshold `T_theta`
//! (Section VI-B, result 1) and to the non-leaf memory budget `M` — the
//! ablation of the two knobs that govern the adaptive grid.

use crate::workload::{build_system, measure_pnn, ExperimentScale};
use uv_core::{Method, UvConfig};
use uv_data::GeneratorConfig;

/// One row of the `T_theta` sensitivity study.
#[derive(Debug, Clone)]
pub struct ThetaRow {
    pub theta: f64,
    pub nonleaf_nodes: usize,
    pub leaf_nodes: usize,
    pub leaf_pages: usize,
    pub query_ms: f64,
    pub query_io: f64,
}

/// Sweeps the split threshold; the paper observes that the index degrades
/// into long page lists for very small thresholds and is otherwise
/// insensitive.
pub fn theta_sweep(scale: &ExperimentScale) -> Vec<ThetaRow> {
    let n = scale.scaled(30_000);
    [0.2, 0.4, 0.6, 0.8, 1.0]
        .into_iter()
        .map(|theta| {
            let (dataset, system) = build_system(
                GeneratorConfig::paper_uniform(n),
                Method::IC,
                UvConfig::default().with_split_threshold(theta),
            );
            let queries = dataset.query_points(scale.queries, 59);
            let (uv, _) = measure_pnn(&system, &queries);
            let stats = system.construction_stats();
            ThetaRow {
                theta,
                nonleaf_nodes: stats.nonleaf_nodes,
                leaf_nodes: stats.leaf_nodes,
                leaf_pages: stats.leaf_pages,
                query_ms: uv.millis(),
                query_io: uv.index_io,
            }
        })
        .collect()
}

/// Printable rows for the sensitivity study.
pub fn theta_rows(rows: &[ThetaRow]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| {
            vec![
                format!("{:.1}", r.theta),
                r.nonleaf_nodes.to_string(),
                r.leaf_nodes.to_string(),
                r.leaf_pages.to_string(),
                format!("{:.3}", r.query_ms),
                format!("{:.2}", r.query_io),
            ]
        })
        .collect()
}

/// Ablation on the non-leaf memory budget `M`: with a tiny budget the grid
/// cannot adapt and queries pay more I/O.
pub fn memory_budget_sweep(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let n = scale.scaled(30_000);
    [4usize, 64, 512, 4_000]
        .into_iter()
        .map(|m| {
            let (dataset, system) = build_system(
                GeneratorConfig::paper_uniform(n),
                Method::IC,
                UvConfig::default().with_max_nonleaf(m),
            );
            let queries = dataset.query_points(scale.queries, 61);
            let (uv, _) = measure_pnn(&system, &queries);
            vec![
                m.to_string(),
                system.construction_stats().nonleaf_nodes.to_string(),
                format!("{:.2}", uv.index_io),
                format!("{:.3}", uv.millis()),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            size_factor: 0.004,
            queries: 4,
            basic_cap: 100,
        }
    }

    #[test]
    fn theta_sweep_shows_degradation_for_small_thresholds() {
        let rows = theta_sweep(&tiny_scale());
        assert_eq!(rows.len(), 5);
        // A higher threshold splits at least as eagerly as a lower one.
        assert!(rows[0].nonleaf_nodes <= rows[4].nonleaf_nodes);
        // Query I/O with the default threshold is no worse than with the
        // smallest threshold.
        assert!(rows[4].query_io <= rows[0].query_io + 1e-9);
        assert_eq!(theta_rows(&rows).len(), 5);
    }

    #[test]
    fn memory_budget_sweep_produces_rows() {
        let rows = memory_budget_sweep(&tiny_scale());
        assert_eq!(rows.len(), 4);
        let tight_nonleaf: usize = rows[0][1].parse().unwrap();
        assert!(tight_nonleaf <= 4);
    }
}
