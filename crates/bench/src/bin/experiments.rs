//! Regenerates the evaluation of the UV-diagram paper (Section VI).
//!
//! ```text
//! cargo run --release -p uv-bench --bin experiments -- all
//! cargo run --release -p uv-bench --bin experiments -- fig6a fig6b
//! cargo run --release -p uv-bench --bin experiments -- --scale 0.1 --queries 50 fig7a
//! cargo run --release -p uv-bench --bin experiments -- --json churn snapshot
//! cargo run --release -p uv-bench --bin experiments -- --grow churn
//! cargo run --release -p uv-bench --bin experiments -- --reshard shard
//! ```
//!
//! Available experiment ids: `fig6a fig6b fig6c fig6d tab2 fig7a fig7b fig7c
//! fig7d fig7e fig7f fig7g fig7h sens_theta sens_memory throughput churn
//! snapshot shard subscribe all`.
//!
//! `--scale` multiplies the paper's dataset cardinalities (default 0.05, i.e.
//! 500–4,000 objects instead of 10K–80K); `--queries` sets the number of PNN
//! queries per measurement (default 50, as in the paper); `--json` replaces
//! the tables with one stable-schema JSON document (see `uv_bench::json`)
//! suitable for committing as `BENCH_*.json` and diffing across PRs;
//! `--grow` makes every churn step insert past the current boundary, so the
//! churn table doubles as a domain-growth latency profile (no step may cost
//! a rebuild-style cliff); `--reshard` makes the shard experiment run an
//! elastic hot-split + cold-merge cycle per grid, re-verifying bit-identity
//! after each step and snapshotting the resulting non-uniform layout.

use std::collections::BTreeSet;
use uv_bench::json::JsonExperiment;
use uv_bench::{
    churn, fig6, fig7, json, print_table, sensitivity, shard, snapshot, subscribe, table2,
    throughput, ExperimentScale,
};

const ALL: &[&str] = &[
    "fig6a",
    "fig6b",
    "fig6c",
    "fig6d",
    "tab2",
    "fig7a",
    "fig7b",
    "fig7c",
    "fig7d",
    "fig7e",
    "fig7f",
    "fig7g",
    "fig7h",
    "sens_theta",
    "sens_memory",
    "throughput",
    "churn",
    "snapshot",
    "shard",
    "subscribe",
];

/// Routes every experiment's rows either to the human-readable table
/// printer or into the collected JSON document.
struct Output {
    json: bool,
    collected: Vec<JsonExperiment>,
}

impl Output {
    fn table(&mut self, id: &str, title: &str, header: &[&str], rows: Vec<Vec<String>>) {
        if self.json {
            self.collected.push(JsonExperiment {
                id: id.to_string(),
                title: title.to_string(),
                columns: header.iter().map(|h| h.to_string()).collect(),
                rows,
            });
        } else {
            print_table(title, header, &rows);
        }
    }
}

fn main() {
    let mut scale = ExperimentScale::default();
    let mut requested: BTreeSet<String> = BTreeSet::new();
    let mut as_json = false;
    let mut grow_churn = false;
    let mut reshard_shard = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                scale.size_factor = v.parse().expect("--scale must be a number");
            }
            "--queries" => {
                let v = args.next().expect("--queries needs a value");
                scale.queries = v.parse().expect("--queries must be an integer");
            }
            "--basic-cap" => {
                let v = args.next().expect("--basic-cap needs a value");
                scale.basic_cap = v.parse().expect("--basic-cap must be an integer");
            }
            "--json" => {
                as_json = true;
            }
            "--grow" => {
                grow_churn = true;
            }
            "--reshard" => {
                reshard_shard = true;
            }
            "--help" | "-h" => {
                println!("Regenerates the evaluation of the UV-diagram paper (Section VI).");
                println!();
                println!(
                    "usage: experiments [--scale F] [--queries N] [--basic-cap N] [--json] [--grow] [--reshard] <ids|all>"
                );
                println!();
                println!(
                    "  --scale F      multiply the paper's dataset cardinalities (default 0.05)"
                );
                println!("  --queries N    PNN queries per measurement (default 50)");
                println!(
                    "  --basic-cap N  largest dataset the Basic method is run on (it is O(n^3))"
                );
                println!("  --json         emit one stable-schema JSON document instead of tables");
                println!("  --grow         every churn step also inserts past the current domain,");
                println!(
                    "                 profiling in-place domain growth (no rebuild-latency cliff)"
                );
                println!("  --reshard      the shard experiment runs a hot-split + cold-merge");
                println!(
                    "                 elastic reshard cycle, bit-identity re-verified each step"
                );
                println!();
                println!("ids: {}", ALL.join(" "));
                println!("With no ids, every experiment runs (same as `all`).");
                return;
            }
            "all" => {
                requested.extend(ALL.iter().map(|s| s.to_string()));
            }
            id if ALL.contains(&id) => {
                requested.insert(id.to_string());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: experiments [--scale F] [--queries N] [--basic-cap N] [--json] [--grow] [--reshard] <ids|all>"
                );
                eprintln!("ids: {}", ALL.join(" "));
                std::process::exit(2);
            }
        }
    }
    if requested.is_empty() {
        requested.extend(ALL.iter().map(|s| s.to_string()));
    }

    if !as_json {
        println!(
            "UV-diagram experiments — scale factor {}, {} queries per measurement",
            scale.size_factor, scale.queries
        );
        println!(
            "(paper sizes 10K-80K are scaled to {}-{} objects; absolute numbers differ from the paper,",
            scale.scaled(10_000),
            scale.scaled(80_000)
        );
        println!(" the comparisons and trends are what is being reproduced)");
    }

    let wants = |id: &str| requested.contains(id);
    let mut out = Output {
        json: as_json,
        collected: Vec::new(),
    };

    // Figure 6(a)-(c) share one dataset-size sweep.
    if wants("fig6a") || wants("fig6b") || wants("fig6c") {
        let sweep = fig6::size_sweep(&scale);
        if wants("fig6a") {
            out.table(
                "fig6a",
                "Figure 6(a): PNN query time vs |O|",
                &[
                    "|O|",
                    "Tq R-tree (ms, CPU)",
                    "Tq UV-diagram (ms, CPU)",
                    "Tq R-tree (ms, disk-adjusted)",
                    "Tq UV-diagram (ms, disk-adjusted)",
                    "speedup (disk-adjusted)",
                ],
                fig6::fig6a_rows(&sweep),
            );
        }
        if wants("fig6b") {
            out.table(
                "fig6b",
                "Figure 6(b): PNN leaf-page I/O vs |O|",
                &["|O|", "I/O R-tree", "I/O UV-diagram", "ratio"],
                fig6::fig6b_rows(&sweep),
            );
        }
        if wants("fig6c") {
            out.table(
                "fig6c",
                "Figure 6(c): query-time breakdown",
                &[
                    "index",
                    "traversal (ms)",
                    "object retrieval (ms)",
                    "probability (ms)",
                ],
                fig6::fig6c_rows(&sweep),
            );
        }
    }
    if wants("fig6d") {
        let sweep = fig6::uncertainty_sweep(&scale);
        out.table(
            "fig6d",
            "Figure 6(d): query time vs uncertainty-region size",
            &[
                "diameter",
                "Tq R-tree (ms, CPU)",
                "Tq UV-diagram (ms, CPU)",
                "Tq R-tree (ms, disk-adjusted)",
                "Tq UV-diagram (ms, disk-adjusted)",
            ],
            fig6::fig6d_rows(&sweep),
        );
    }
    if wants("tab2") {
        let rows = table2::table2(&scale);
        out.table(
            "tab2",
            "Table II: Germany-like datasets",
            &[
                "dataset",
                "|O|",
                "Tq UVD (ms, disk-adjusted)",
                "Tq R-tree (ms, disk-adjusted)",
                "Tc IC (s)",
                "pc",
            ],
            table2::table2_rows(&rows),
        );
    }

    // Figure 7(a)-(e) share one construction sweep.
    if wants("fig7a") || wants("fig7b") || wants("fig7c") || wants("fig7d") || wants("fig7e") {
        let sweep = fig7::construction_sweep(&scale);
        if wants("fig7a") {
            out.table(
                "fig7a",
                "Figure 7(a): construction time vs |O|",
                &["|O|", "Basic (s)", "ICR (s)", "IC (s)"],
                fig7::fig7a_rows(&sweep),
            );
        }
        if wants("fig7b") {
            out.table(
                "fig7b",
                "Figure 7(b): pruning ratio vs |O|",
                &["|O|", "I-pruning", "C-pruning"],
                fig7::fig7b_rows(&sweep),
            );
        }
        if wants("fig7c") {
            out.table(
                "fig7c",
                "Figure 7(c): construction time, IC vs ICR",
                &["|O|", "ICR (s)", "IC (s)", "ICR/IC"],
                fig7::fig7c_rows(&sweep),
            );
        }
        if wants("fig7d") {
            out.table(
                "fig7d",
                "Figure 7(d): ICR time breakdown",
                &["|O|", "I+C pruning", "r-object generation", "indexing"],
                fig7::fig7d_rows(&sweep),
            );
        }
        if wants("fig7e") {
            out.table(
                "fig7e",
                "Figure 7(e): IC time breakdown",
                &["|O|", "I+C pruning", "indexing"],
                fig7::fig7e_rows(&sweep),
            );
        }
    }
    if wants("fig7f") {
        out.table(
            "fig7f",
            "Figure 7(f): construction time vs uncertainty-region size",
            &["diameter", "ICR (s)", "IC (s)"],
            fig7::fig7f_rows(&scale),
        );
    }
    if wants("fig7g") {
        out.table(
            "fig7g",
            "Figure 7(g): construction time vs skew (sigma of centres)",
            &["sigma", "Tc IC (s)", "avg cr-objects"],
            fig7::fig7g_rows(&scale),
        );
    }
    if wants("fig7h") {
        out.table(
            "fig7h",
            "Figure 7(h): UV-partition query vs query-region size",
            &["region side", "Tq (ms)", "partitions returned"],
            fig7::fig7h_rows(&scale),
        );
    }
    if wants("sens_theta") {
        let rows = sensitivity::theta_sweep(&scale);
        out.table(
            "sens_theta",
            "Sensitivity: split threshold T_theta",
            &[
                "T_theta",
                "non-leaf nodes",
                "leaf nodes",
                "leaf pages",
                "Tq (ms)",
                "Tq (I/O)",
            ],
            sensitivity::theta_rows(&rows),
        );
    }
    if wants("sens_memory") {
        out.table(
            "sens_memory",
            "Ablation: non-leaf memory budget M",
            &["M", "non-leaf nodes", "Tq (I/O)", "Tq (ms)"],
            sensitivity::memory_budget_sweep(&scale),
        );
    }
    if wants("throughput") {
        let (dataset, system) = throughput::build_throughput_system(&scale);
        let rows = throughput::throughput_sweep(&scale, &dataset, &system);
        out.table(
            "throughput",
            "Serving throughput: sequential vs concurrent batched PNN",
            &[
                "mode",
                "workers",
                "cores",
                "batch wall (ms)",
                "queries/s",
                "speedup",
            ],
            throughput::throughput_table(&rows),
        );
        let summary = throughput::trajectory_workload(&scale, &dataset, &system);
        out.table(
            "throughput_trajectory",
            "Trajectory (moving-PNN) workload",
            &[
                "vehicles",
                "steps each",
                "avg answers",
                "avg churn/step",
                "unchanged steps",
                "queries/s",
            ],
            throughput::trajectory_table(&summary),
        );
    }
    // Oracle failures (a maintained or loaded state diverging from a cold
    // rebuild) must fail the process, not just print "NO" — the CI smokes
    // rely on the exit code.
    let mut verification_failed = false;
    if wants("churn") {
        let (rows, summary) = churn::churn_experiment(&scale, 5, grow_churn);
        verification_failed |= !summary.verified;
        if grow_churn {
            // Every --grow step triggers an in-place domain growth; a step
            // costing a rebuild-style cliff (max far beyond the median)
            // would mean the old full-rebuild fallback is back in disguise.
            let mut times: Vec<f64> = rows.iter().map(|r| r.apply_ms).collect();
            times.sort_by(f64::total_cmp);
            let median = times[times.len() / 2];
            let max = times[times.len() - 1];
            let cliff = max > median * 3.0 + 5.0;
            verification_failed |= cliff;
            if !as_json {
                println!(
                    "domain growth latency: {} growth steps, max {max:.1} ms vs median {median:.1} ms — {}",
                    summary.growth_events,
                    if cliff {
                        "REBUILD-STYLE CLIFF"
                    } else {
                        "no rebuild-latency cliff"
                    }
                );
            }
        }
        out.table(
            "churn",
            if grow_churn {
                "Dynamic maintenance: churn steps with in-place domain growth"
            } else {
                "Dynamic maintenance: 1% churn steps (incremental repair locality)"
            },
            &[
                "step",
                "ops (i/d/m)",
                "in knn radius",
                "re-derived",
                "leaves refined",
                "total leaves",
                "refined %",
                "splits/merges",
                "apply (ms)",
            ],
            churn::churn_rows(&rows),
        );
        out.table(
            "churn_summary",
            "Churn summary (final state verified against a cold rebuild)",
            &[
                "|O|",
                "ops/step",
                "avg refined %",
                "incremental total (ms)",
                "one full rebuild (ms)",
                "growths",
                "verified",
            ],
            churn::churn_summary_row(&summary),
        );
    }
    if wants("snapshot") {
        let report = snapshot::snapshot_experiment(&scale);
        verification_failed |= !report.verified;
        out.table(
            "snapshot",
            "Snapshot persistence: build once, load many",
            &[
                "|O|",
                "build (ms)",
                "save (ms)",
                "load (ms)",
                "bytes",
                "v1 bytes saved",
                "load speedup",
                "verified",
            ],
            snapshot::snapshot_rows(&report),
        );
    }

    if wants("shard") {
        let reports = shard::shard_experiment(&scale, reshard_shard);
        verification_failed |= reports.iter().any(|r| !r.verified);
        out.table(
            "shard",
            "Domain-sharded serving: derivation-only router, halo replication, elastic resharding",
            &[
                "grid",
                "|O|",
                "unsharded build (ms)",
                "sharded build (ms)",
                "shards seq (ms)",
                "shards par (ms)",
                "par speedup",
                "halo overhead",
                "snapshot bytes",
                "router bytes",
                "router-incl bytes",
                "mem win",
                "loads",
                "reshard",
                "verified",
            ],
            shard::shard_rows(&reports),
        );
    }

    if wants("subscribe") {
        let report = subscribe::subscribe_experiment(&scale);
        verification_failed |= !report.verified;
        out.table(
            "subscribe",
            "Continuous PNN subscriptions: safe-region serving for a moving fleet",
            &[
                "|O|",
                "clients",
                "ticks",
                "hit rate",
                "derivations",
                "clearance reuses",
                "deltas",
                "stationary reads",
                "reports/s",
                "clients/core @10Hz",
                "verified",
            ],
            subscribe::subscribe_rows(&report),
        );
    }

    if as_json {
        println!(
            "{}",
            json::render(scale.size_factor, scale.queries, &out.collected)
        );
    }
    if verification_failed {
        eprintln!("verification FAILED: a maintained/loaded state diverged from its oracle");
        std::process::exit(1);
    }
}
