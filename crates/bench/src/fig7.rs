//! Figure 7: UV-diagram construction analysis.
//!
//! * 7(a) — construction time `T_c` of Basic, ICR and IC vs. `|O|`.
//! * 7(b) — pruning ratio of I- and C-pruning vs. `|O|`.
//! * 7(c) — `T_c` of IC vs. ICR.
//! * 7(d) — time breakdown of ICR (pruning / r-object generation / indexing).
//! * 7(e) — time breakdown of IC (pruning / indexing).
//! * 7(f) — `T_c` vs. uncertainty-region size (IC vs. ICR).
//! * 7(g) — `T_c` vs. skew (standard deviation of object centres).
//! * 7(h) — UV-partition query time vs. query-region size.

use crate::workload::{build_system, ExperimentScale};
use std::time::{Duration, Instant};
use uv_core::{ConstructionStats, Method, UvConfig, UvSystem};
use uv_data::{Dataset, GeneratorConfig};
use uv_geom::Rect;

/// Construction statistics of every method at one dataset size.
#[derive(Debug, Clone)]
pub struct ConstructionRow {
    pub objects: usize,
    /// `None` when the size exceeds the Basic cap of the experiment scale.
    pub basic: Option<ConstructionStats>,
    pub icr: ConstructionStats,
    pub ic: ConstructionStats,
}

fn build_stats(n: usize, method: Method) -> ConstructionStats {
    let (_, system) = build_system(
        GeneratorConfig::paper_uniform(n),
        method,
        UvConfig::default(),
    );
    system.construction_stats().clone()
}

/// Runs the construction sweep shared by Figures 7(a)–7(e).
pub fn construction_sweep(scale: &ExperimentScale) -> Vec<ConstructionRow> {
    scale
        .size_sweep()
        .into_iter()
        .map(|n| ConstructionRow {
            objects: n,
            basic: (n <= scale.basic_cap).then(|| build_stats(n, Method::Basic)),
            icr: build_stats(n, Method::ICR),
            ic: build_stats(n, Method::IC),
        })
        .collect()
}

fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Figure 7(a): `T_c` of the three methods vs. `|O|`.
pub fn fig7a_rows(sweep: &[ConstructionRow]) -> Vec<Vec<String>> {
    sweep
        .iter()
        .map(|r| {
            vec![
                r.objects.to_string(),
                r.basic
                    .as_ref()
                    .map(|s| secs(s.total))
                    .unwrap_or_else(|| "skipped (> basic cap)".to_string()),
                secs(r.icr.total),
                secs(r.ic.total),
            ]
        })
        .collect()
}

/// Figure 7(b): pruning ratios vs. `|O|` (measured on the IC build).
pub fn fig7b_rows(sweep: &[ConstructionRow]) -> Vec<Vec<String>> {
    sweep
        .iter()
        .map(|r| {
            vec![
                r.objects.to_string(),
                format!("{:.1}%", r.ic.avg_i_ratio * 100.0),
                format!("{:.1}%", r.ic.avg_c_ratio * 100.0),
            ]
        })
        .collect()
}

/// Figure 7(c): `T_c` of IC vs. ICR.
pub fn fig7c_rows(sweep: &[ConstructionRow]) -> Vec<Vec<String>> {
    sweep
        .iter()
        .map(|r| {
            vec![
                r.objects.to_string(),
                secs(r.icr.total),
                secs(r.ic.total),
                format!(
                    "{:.2}x",
                    r.icr.total.as_secs_f64() / r.ic.total.as_secs_f64().max(1e-9)
                ),
            ]
        })
        .collect()
}

/// Figure 7(d): ICR time breakdown (fractions of the accounted time).
pub fn fig7d_rows(sweep: &[ConstructionRow]) -> Vec<Vec<String>> {
    sweep
        .iter()
        .map(|r| {
            vec![
                r.objects.to_string(),
                format!("{:.1}%", r.icr.pruning_fraction() * 100.0),
                format!("{:.1}%", r.icr.refinement_fraction() * 100.0),
                format!("{:.1}%", r.icr.indexing_fraction() * 100.0),
            ]
        })
        .collect()
}

/// Figure 7(e): IC time breakdown.
pub fn fig7e_rows(sweep: &[ConstructionRow]) -> Vec<Vec<String>> {
    sweep
        .iter()
        .map(|r| {
            vec![
                r.objects.to_string(),
                format!("{:.1}%", r.ic.pruning_fraction() * 100.0),
                format!("{:.1}%", r.ic.indexing_fraction() * 100.0),
            ]
        })
        .collect()
}

/// Figure 7(f): `T_c` of IC and ICR vs. uncertainty-region diameter at the
/// paper's base cardinality (30K, scaled).
pub fn fig7f_rows(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let n = scale.scaled(30_000);
    scale
        .diameter_sweep()
        .into_iter()
        .map(|diameter| {
            let config = GeneratorConfig::paper_uniform(n).with_diameter(diameter);
            let (_, icr) = build_system(config.clone(), Method::ICR, UvConfig::default());
            let (_, ic) = build_system(config, Method::IC, UvConfig::default());
            vec![
                format!("{diameter:.0}"),
                secs(icr.construction_stats().total),
                secs(ic.construction_stats().total),
            ]
        })
        .collect()
}

/// Figure 7(g): `T_c` (IC) vs. the standard deviation of the object centres.
/// Smaller sigma = more skew = denser data = higher construction cost.
pub fn fig7g_rows(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let n = scale.scaled(30_000);
    scale
        .sigma_sweep()
        .into_iter()
        .map(|sigma| {
            let (_, system) = build_system(
                GeneratorConfig::paper_skewed(n, sigma),
                Method::IC,
                UvConfig::default(),
            );
            vec![
                format!("{sigma:.0}"),
                secs(system.construction_stats().total),
                format!("{:.1}", system.construction_stats().avg_reference_objects),
            ]
        })
        .collect()
}

/// Figure 7(h): UV-partition query time vs. query-region size.
pub fn fig7h_rows(scale: &ExperimentScale) -> Vec<Vec<String>> {
    let n = scale.scaled(30_000);
    let (dataset, system) = build_system(
        GeneratorConfig::paper_uniform(n),
        Method::IC,
        UvConfig::default(),
    );
    scale
        .query_region_sweep()
        .into_iter()
        .map(|side| {
            let (time, partitions) =
                measure_partition_query(&system, &dataset, side, scale.queries);
            vec![
                format!("{side:.0}"),
                format!("{:.3}", time.as_secs_f64() * 1e3),
                format!("{partitions:.1}"),
            ]
        })
        .collect()
}

/// Average UV-partition query time and result size for query squares of the
/// given side length, placed at workload query points.
pub fn measure_partition_query(
    system: &UvSystem,
    dataset: &Dataset,
    side: f64,
    queries: usize,
) -> (Duration, f64) {
    let centres = dataset.query_points(queries, 31);
    let mut total = Duration::ZERO;
    let mut partitions = 0usize;
    for c in &centres {
        let region = Rect::new(
            c.x - side / 2.0,
            c.y - side / 2.0,
            c.x + side / 2.0,
            c.y + side / 2.0,
        );
        let t = Instant::now();
        let cells = system.partition_query(&region);
        total += t.elapsed();
        partitions += cells.len();
    }
    (
        total / centres.len().max(1) as u32,
        partitions as f64 / centres.len().max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            size_factor: 0.002,
            queries: 3,
            basic_cap: 60,
        }
    }

    #[test]
    fn construction_sweep_has_all_methods_and_respects_basic_cap() {
        let scale = tiny_scale();
        let sweep = construction_sweep(&scale);
        assert_eq!(sweep.len(), 8);
        // The smallest size (50) is under the cap, the largest (160) is over.
        assert!(sweep[0].basic.is_some());
        assert!(sweep.last().unwrap().basic.is_none());
        assert_eq!(fig7a_rows(&sweep).len(), 8);
        assert_eq!(fig7b_rows(&sweep).len(), 8);
        assert_eq!(fig7c_rows(&sweep).len(), 8);
        assert_eq!(fig7d_rows(&sweep)[0].len(), 4);
        assert_eq!(fig7e_rows(&sweep)[0].len(), 3);
        // ICR spends part of its time on refinement, IC does not.
        assert!(sweep[0].icr.refinement_time > Duration::ZERO);
        assert_eq!(sweep[0].ic.refinement_time, Duration::ZERO);
    }

    #[test]
    fn remaining_figure_rows_have_expected_shapes() {
        let scale = tiny_scale();
        assert_eq!(fig7f_rows(&scale).len(), 5);
        assert_eq!(fig7g_rows(&scale).len(), 5);
        let h = fig7h_rows(&scale);
        assert_eq!(h.len(), 5);
        // Larger query regions intersect at least as many partitions.
        let first: f64 = h[0][2].parse().unwrap();
        let last: f64 = h[4][2].parse().unwrap();
        assert!(last >= first);
    }
}
